//! The explode → corrupt → ingest pipeline that turns a pristine trace
//! into the one a real collector would have recorded.

use crate::plan::{FaultPlan, FaultReport};
use cloudscope_model::prelude::*;
use cloudscope_model::time::{SAMPLES_PER_WEEK, SAMPLE_INTERVAL_MINUTES};
use cloudscope_sim::rng::RngFactory;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::BTreeMap;

/// One utilization reading as it crosses the wire from the in-guest
/// monitor to the trace store: a recorded timestamp (which a skewed
/// clock may have shifted off the grid) and the raw value (which may be
/// garbage).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireSample {
    /// Recorded timestamp, in trace minutes.
    pub minute: i64,
    /// Raw reading; NaN and negatives are corruption.
    pub value: f32,
}

/// Explodes a series into wire samples: one per *present* sample, at
/// its true grid timestamp.
fn explode(series: &UtilSeries) -> Vec<WireSample> {
    let base = series.start().minutes();
    series
        .iter()
        .enumerate()
        .filter(|(_, v)| v.is_finite())
        .map(|(i, value)| WireSample {
            minute: base + i as i64 * SAMPLE_INTERVAL_MINUTES,
            value,
        })
        .collect()
}

/// Applies the plan's corruptions to one VM's wire samples, in
/// transmission order, drawing every decision from `rng`. The blackout
/// check uses the *true* transmission time; clock skew only shifts the
/// timestamp that gets recorded.
fn corrupt_samples(
    samples: Vec<WireSample>,
    region: RegionId,
    plan: &FaultPlan,
    rng: &mut StdRng,
    report: &mut FaultReport,
) -> Vec<WireSample> {
    let skew = if plan.max_clock_skew_minutes > 0 {
        rng.random_range(-plan.max_clock_skew_minutes..=plan.max_clock_skew_minutes)
    } else {
        0
    };
    let mut out = Vec::with_capacity(samples.len());
    for sample in samples {
        report.samples_in += 1;
        if plan
            .blackouts
            .iter()
            .any(|b| b.covers(region, sample.minute))
        {
            report.blackout_dropped += 1;
            continue;
        }
        if plan.drop_probability > 0.0 && rng.random_bool(plan.drop_probability) {
            report.dropped += 1;
            continue;
        }
        let mut value = sample.value;
        if plan.invalid_probability > 0.0 && rng.random_bool(plan.invalid_probability) {
            report.invalidated += 1;
            value = if rng.random_bool(0.5) {
                f32::NAN
            } else {
                -value.abs() - 1.0
            };
        }
        let delivered = WireSample {
            minute: sample.minute + skew,
            value,
        };
        out.push(delivered);
        if plan.duplicate_probability > 0.0 && rng.random_bool(plan.duplicate_probability) {
            report.duplicated += 1;
            out.push(delivered);
        }
        if out.len() >= 2
            && plan.reorder_probability > 0.0
            && rng.random_bool(plan.reorder_probability)
        {
            report.reordered += 1;
            let n = out.len();
            out.swap(n - 1, n - 2);
        }
    }
    out
}

/// Explodes one VM's series into wire samples and applies the plan's
/// corruptions, returning the stream in transmission order — the form a
/// streaming ingester consumes one sample at a time. With a clean plan
/// this is exactly the pristine wire stream (one sample per present
/// slot, at its true grid timestamp). Batch ingestion of the result via
/// [`ingest_wire_samples`] is what [`corrupt_util_series`] does.
#[must_use]
pub fn corrupt_wire_samples(
    series: &UtilSeries,
    region: RegionId,
    plan: &FaultPlan,
    rng: &mut StdRng,
    report: &mut FaultReport,
) -> Vec<WireSample> {
    corrupt_samples(explode(series), region, plan, rng, report)
}

/// Re-assembles wire samples into a [`UtilSeries`] the way a collector
/// would: garbage readings (non-finite or negative) are rejected,
/// timestamps snap to the nearest 5-minute slot, slots outside the
/// trace week are discarded, duplicate slots keep the last delivered
/// value, and slots nothing filled stay *missing* on the rebuilt grid.
/// Returns `None` if no valid sample survived — the VM simply has no
/// telemetry, as [`Trace::util`] models it.
#[must_use]
pub fn ingest_wire_samples(samples: &[WireSample], report: &mut FaultReport) -> Option<UtilSeries> {
    let mut slots: BTreeMap<i64, f32> = BTreeMap::new();
    for sample in samples {
        if !sample.value.is_finite() || sample.value < 0.0 {
            continue;
        }
        // Round to the nearest slot; div_euclid keeps skewed-negative
        // timestamps exact instead of wrapping.
        let slot =
            (sample.minute + SAMPLE_INTERVAL_MINUTES / 2).div_euclid(SAMPLE_INTERVAL_MINUTES);
        if !(0..SAMPLES_PER_WEEK as i64).contains(&slot) {
            report.out_of_week += 1;
            continue;
        }
        slots.insert(slot, sample.value);
    }
    let (&first, _) = slots.iter().next()?;
    let &last = slots
        .keys()
        .next_back()
        .expect("non-empty map has a last key");
    report.samples_out += slots.len();
    let values = (first..=last).map(|slot| slots.get(&slot).copied().unwrap_or(f32::NAN));
    Some(UtilSeries::from_percentages(
        SimTime::from_minutes(first * SAMPLE_INTERVAL_MINUTES),
        values,
    ))
}

/// Runs one VM's series through the full explode → corrupt → ingest
/// pipeline with the given per-VM RNG stream.
#[must_use]
pub fn corrupt_util_series(
    series: &UtilSeries,
    region: RegionId,
    plan: &FaultPlan,
    rng: &mut StdRng,
    report: &mut FaultReport,
) -> Option<UtilSeries> {
    report.vms += 1;
    let wire = corrupt_wire_samples(series, region, plan, rng, report);
    ingest_wire_samples(&wire, report)
}

/// Corrupts every telemetry series in `trace` under `plan`, leaving
/// topology, subscriptions, and VM records untouched. Each VM draws its
/// corruption decisions from its own seeded stream, so the result is
/// independent of iteration order and byte-identical across runs with
/// the same plan.
///
/// # Panics
/// Never in practice: the rebuild re-adds the same records the original
/// trace already validated.
#[must_use]
pub fn corrupt_trace(trace: &Trace, plan: &FaultPlan) -> (Trace, FaultReport) {
    let factory = RngFactory::new(plan.seed).child("faults");
    let mut builder = Trace::builder(trace.topology().clone());
    for sub in trace.subscriptions() {
        builder
            .add_subscription(sub.clone())
            .expect("original trace order is dense");
    }
    let mut report = FaultReport::default();
    for vm in trace.vms() {
        let util = trace.util(vm.id).and_then(|series| {
            let mut rng = factory.indexed_stream("vm", vm.id.index());
            corrupt_util_series(&series, vm.region, plan, &mut rng, &mut report)
        });
        builder
            .add_vm(vm.clone(), util)
            .expect("original trace already validated this record");
    }
    report.flush_metrics();
    (builder.build(), report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Blackout;
    use cloudscope_tracegen::{generate, GeneratorConfig};

    fn flat_series(len: usize) -> UtilSeries {
        UtilSeries::from_percentages(SimTime::ZERO, std::iter::repeat_n(50.0f32, len))
    }

    #[test]
    fn clean_plan_is_identity() {
        let g = generate(&GeneratorConfig::small(21));
        let (corrupted, report) = corrupt_trace(&g.trace, &FaultPlan::clean(21));
        assert_eq!(report.loss_fraction(), 0.0);
        assert_eq!(report.samples_in, report.samples_out);
        for vm in g.trace.vms() {
            assert_eq!(g.trace.util(vm.id), corrupted.util(vm.id), "vm {}", vm.id);
        }
        assert_eq!(g.trace.stats(), corrupted.stats());
    }

    #[test]
    fn same_seed_same_corruption_different_seed_differs() {
        let g = generate(&GeneratorConfig::small(22));
        let plan = FaultPlan::standard(5);
        let (a, ra) = corrupt_trace(&g.trace, &plan);
        let (b, rb) = corrupt_trace(&g.trace, &plan);
        assert_eq!(ra, rb);
        for vm in g.trace.vms() {
            assert_eq!(a.util(vm.id), b.util(vm.id));
        }
        let (c, rc) = corrupt_trace(&g.trace, &FaultPlan::standard(6));
        assert_ne!(ra, rc, "different seed must corrupt differently");
        assert!(
            g.trace
                .vms()
                .iter()
                .any(|vm| a.util(vm.id) != c.util(vm.id)),
            "different seed should change at least one series"
        );
    }

    #[test]
    fn standard_profile_loses_roughly_its_drop_rate() {
        let g = generate(&GeneratorConfig::small(23));
        let (_, report) = corrupt_trace(&g.trace, &FaultPlan::standard(23));
        // 5% uniform drops + 0.25% negative readings + the blackout; the
        // overall loss should sit near but above 5% and well below 20%.
        assert!(report.samples_in > 10_000);
        let loss = report.loss_fraction();
        assert!(loss > 0.04, "loss {loss}");
        assert!(loss < 0.20, "loss {loss}");
        assert!(report.duplicated > 0);
        assert!(report.reordered > 0);
        assert!(report.invalidated > 0);
    }

    #[test]
    fn blackout_empties_exactly_its_window() {
        let plan = FaultPlan {
            blackouts: vec![Blackout {
                region: RegionId::new(0),
                start: SimTime::from_hours(1),
                duration: SimDuration::from_hours(1),
            }],
            ..FaultPlan::clean(1)
        };
        let series = flat_series(48); // 4 hours
        let mut report = FaultReport::default();
        let mut rng = RngFactory::new(1).indexed_stream("vm", 0);
        let out =
            corrupt_util_series(&series, RegionId::new(0), &plan, &mut rng, &mut report).unwrap();
        // Slots 12..24 (minutes 60..120) are blacked out.
        for i in 0..48 {
            let missing = out.get(i).is_none();
            assert_eq!(missing, (12..24).contains(&i), "slot {i}");
        }
        assert_eq!(report.blackout_dropped, 12);
        // A VM in another region is untouched.
        let mut report2 = FaultReport::default();
        let out2 =
            corrupt_util_series(&series, RegionId::new(1), &plan, &mut rng, &mut report2).unwrap();
        assert_eq!(out2.present_count(), 48);
    }

    #[test]
    fn ingest_rejects_garbage_dedups_and_reorders() {
        let mut report = FaultReport::default();
        let samples = [
            WireSample {
                minute: 0,
                value: 10.0,
            },
            // Out-of-order delivery of the minute-10 sample...
            WireSample {
                minute: 10,
                value: 30.0,
            },
            WireSample {
                minute: 5,
                value: 20.0,
            },
            // ...a duplicate of minute 10 with a newer value (wins)...
            WireSample {
                minute: 10,
                value: 35.0,
            },
            // ...and garbage the validator must reject.
            WireSample {
                minute: 15,
                value: f32::NAN,
            },
            WireSample {
                minute: 20,
                value: -3.0,
            },
            // A skewed timestamp snapping onto slot 5.
            WireSample {
                minute: 26,
                value: 40.0,
            },
        ];
        let out = ingest_wire_samples(&samples, &mut report).unwrap();
        assert_eq!(out.start(), SimTime::ZERO);
        assert_eq!(out.get(0), Some(10.0));
        assert_eq!(out.get(1), Some(20.0));
        assert_eq!(out.get(2), Some(35.0), "last delivered duplicate wins");
        assert!(out.get(3).is_none(), "rejected NaN leaves a gap");
        assert!(out.get(4).is_none(), "rejected negative leaves a gap");
        assert_eq!(out.get(5), Some(40.0), "minute 26 snaps to slot 5");
        assert_eq!(out.len(), 6);
        assert_eq!(report.samples_out, 4);
    }

    #[test]
    fn skewed_timestamps_off_the_week_are_discarded() {
        let plan = FaultPlan {
            max_clock_skew_minutes: 2,
            ..FaultPlan::clean(9)
        };
        // Find a VM rng whose skew is negative so the first sample
        // (minute 0) can leave the week.
        let mut report = FaultReport::default();
        let mut found_negative = false;
        for id in 0..32u64 {
            let mut rng = RngFactory::new(9).indexed_stream("vm", id);
            let skew: i64 = rng.random_range(-2i64..=2);
            if skew <= -2 {
                found_negative = true;
                let mut rng = RngFactory::new(9).indexed_stream("vm", id);
                let series = flat_series(4);
                let out =
                    corrupt_util_series(&series, RegionId::new(0), &plan, &mut rng, &mut report)
                        .unwrap();
                // Minute 0 skewed to -2 rounds to slot 0 and stays; a
                // -3 skew would discard it. Either way nothing panics
                // and the series stays within the week.
                assert!(out.start().minutes() >= 0);
                break;
            }
        }
        assert!(found_negative, "no negative skew among 32 streams");
    }

    #[test]
    fn empty_and_fully_lost_series_become_no_telemetry() {
        let mut report = FaultReport::default();
        assert!(ingest_wire_samples(&[], &mut report).is_none());
        let plan = FaultPlan {
            drop_probability: 1.0,
            ..FaultPlan::clean(3)
        };
        let mut rng = RngFactory::new(3).indexed_stream("vm", 0);
        let out = corrupt_util_series(
            &flat_series(12),
            RegionId::new(0),
            &plan,
            &mut rng,
            &mut report,
        );
        assert!(out.is_none());
        assert_eq!(report.dropped, 12);
    }
}
