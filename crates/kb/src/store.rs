//! The centralized workload knowledge base: a concurrent store keyed by
//! subscription, with the typed queries the optimization policies consume.

use crate::knowledge::{LifetimeClass, WorkloadKnowledge};
use cloudscope_analysis::UtilizationPattern;
use cloudscope_model::prelude::*;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::{PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Error a knowledge-base backend can raise on a write. The in-memory
/// [`KnowledgeBase`] never fails, but a networked or disk-backed store
/// does, and the extraction pipeline has to cope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum StoreError {
    /// The write failed for a reason that may clear on retry (timeout,
    /// contention, brief unavailability). Carries the backend's reason.
    Transient(&'static str),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Transient(reason) => write!(f, "transient store failure: {reason}"),
        }
    }
}

impl Error for StoreError {}

/// Write interface of a knowledge-base backend, as the extraction
/// pipeline sees it. `Ok(true)` means the entry was stored, `Ok(false)`
/// that it was ignored as stale; `Err` reports a backend failure the
/// caller may retry.
pub trait KbStore {
    /// Attempts to insert or refresh one subscription's knowledge.
    ///
    /// # Errors
    /// [`StoreError::Transient`] if the backend could not take the write
    /// right now.
    fn try_upsert(&self, knowledge: WorkloadKnowledge) -> Result<bool, StoreError>;
}

impl KbStore for KnowledgeBase {
    /// The in-memory store is infallible; this simply delegates to
    /// [`KnowledgeBase::upsert`].
    fn try_upsert(&self, knowledge: WorkloadKnowledge) -> Result<bool, StoreError> {
        Ok(self.upsert(knowledge))
    }
}

/// The knowledge base of Section V: writers (telemetry extractors) feed
/// it continuously; readers (optimization policies) query it. Reads and
/// writes may come from different threads.
#[derive(Debug, Default)]
pub struct KnowledgeBase {
    entries: RwLock<HashMap<SubscriptionId, WorkloadKnowledge>>,
}

impl KnowledgeBase {
    /// Creates an empty knowledge base.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Read access; a poisoned lock is recovered rather than propagated,
    /// since every write below keeps the map consistent.
    fn read(&self) -> RwLockReadGuard<'_, HashMap<SubscriptionId, WorkloadKnowledge>> {
        self.entries.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Write access; see [`Self::read`] on poisoning.
    fn write(&self) -> RwLockWriteGuard<'_, HashMap<SubscriptionId, WorkloadKnowledge>> {
        self.entries.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Inserts or refreshes one subscription's knowledge. Stale updates
    /// (older `updated_at` than the stored entry) are ignored, so
    /// out-of-order feeds are safe. Returns `true` if the entry was
    /// stored.
    pub fn upsert(&self, knowledge: WorkloadKnowledge) -> bool {
        cloudscope_obs::counter("kb.store.upserts").inc();
        let mut entries = self.write();
        match entries.get(&knowledge.subscription) {
            Some(existing) if existing.updated_at > knowledge.updated_at => false,
            _ => {
                entries.insert(knowledge.subscription, knowledge);
                true
            }
        }
    }

    /// Bulk-feeds extracted knowledge (e.g. one extraction sweep).
    /// Returns how many entries were stored.
    pub fn feed<I: IntoIterator<Item = WorkloadKnowledge>>(&self, batch: I) -> usize {
        batch.into_iter().filter(|k| self.upsert(k.clone())).count()
    }

    /// Looks up one subscription.
    #[must_use]
    pub fn get(&self, subscription: SubscriptionId) -> Option<WorkloadKnowledge> {
        self.read().get(&subscription).cloned()
    }

    /// Removes one subscription (e.g. deleted by the customer).
    pub fn remove(&self, subscription: SubscriptionId) -> Option<WorkloadKnowledge> {
        self.write().remove(&subscription)
    }

    /// Number of stored entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.read().len()
    }

    /// `true` if nothing is stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.read().is_empty()
    }

    /// Snapshot of entries matching a predicate, sorted by subscription.
    #[must_use]
    pub fn query<F: Fn(&WorkloadKnowledge) -> bool>(&self, predicate: F) -> Vec<WorkloadKnowledge> {
        let mut out: Vec<WorkloadKnowledge> = self
            .read()
            .values()
            .filter(|k| predicate(k))
            .cloned()
            .collect();
        out.sort_by_key(|k| k.subscription);
        out
    }

    /// Workloads of one cloud with the given dominant pattern.
    #[must_use]
    pub fn by_pattern(
        &self,
        cloud: CloudKind,
        pattern: UtilizationPattern,
    ) -> Vec<WorkloadKnowledge> {
        self.query(|k| k.cloud == cloud && k.pattern == Some(pattern))
    }

    /// Spot-VM adoption candidates (Insight 2 implication).
    #[must_use]
    pub fn spot_candidates(&self) -> Vec<WorkloadKnowledge> {
        self.query(WorkloadKnowledge::spot_candidate)
    }

    /// Over-subscription candidates (Insight 3 implication).
    #[must_use]
    pub fn oversubscription_candidates(&self, cloud: CloudKind) -> Vec<WorkloadKnowledge> {
        self.query(|k| k.cloud == cloud && k.oversubscription_candidate())
    }

    /// Region-agnostic workloads that can be shifted between regions
    /// (Insight 4 implication).
    #[must_use]
    pub fn shiftable_workloads(&self) -> Vec<WorkloadKnowledge> {
        self.query(WorkloadKnowledge::shiftable)
    }

    /// Workloads whose churn is mostly of the given lifetime class.
    #[must_use]
    pub fn by_lifetime(&self, class: LifetimeClass) -> Vec<WorkloadKnowledge> {
        self.query(|k| k.lifetime == class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn knowledge(id: u32, cloud: CloudKind, at: i64) -> WorkloadKnowledge {
        WorkloadKnowledge {
            subscription: SubscriptionId::new(id),
            cloud,
            pattern: Some(UtilizationPattern::Stable),
            lifetime: LifetimeClass::MostlyShort,
            mean_util: 10.0,
            p95_util: 20.0,
            util_cv: 0.1,
            regions: 1,
            region_agnostic: None,
            vm_count: 3,
            cores: 12,
            updated_at: SimTime::from_minutes(at),
        }
    }

    #[test]
    fn upsert_and_get() {
        let kb = KnowledgeBase::new();
        assert!(kb.is_empty());
        assert!(kb.upsert(knowledge(1, CloudKind::Public, 0)));
        assert_eq!(kb.len(), 1);
        assert_eq!(kb.get(SubscriptionId::new(1)).unwrap().cores, 12);
        assert!(kb.get(SubscriptionId::new(2)).is_none());
    }

    #[test]
    fn stale_updates_ignored() {
        let kb = KnowledgeBase::new();
        let mut fresh = knowledge(1, CloudKind::Public, 100);
        fresh.mean_util = 50.0;
        assert!(kb.upsert(fresh));
        // An older snapshot must not clobber the newer one.
        assert!(!kb.upsert(knowledge(1, CloudKind::Public, 10)));
        assert_eq!(kb.get(SubscriptionId::new(1)).unwrap().mean_util, 50.0);
        // Same-age updates do apply (refresh).
        let mut same = knowledge(1, CloudKind::Public, 100);
        same.mean_util = 60.0;
        assert!(kb.upsert(same));
        assert_eq!(kb.get(SubscriptionId::new(1)).unwrap().mean_util, 60.0);
    }

    #[test]
    fn queries_filter_and_sort() {
        let kb = KnowledgeBase::new();
        kb.feed([
            knowledge(3, CloudKind::Public, 0),
            knowledge(1, CloudKind::Public, 0),
            knowledge(2, CloudKind::Private, 0),
        ]);
        let spot = kb.spot_candidates();
        assert_eq!(spot.len(), 2, "private entries are not spot candidates");
        assert!(spot[0].subscription < spot[1].subscription);
        assert_eq!(
            kb.by_pattern(CloudKind::Private, UtilizationPattern::Stable)
                .len(),
            1
        );
        assert_eq!(kb.by_lifetime(LifetimeClass::MostlyShort).len(), 3);
        assert_eq!(kb.oversubscription_candidates(CloudKind::Public).len(), 2);
        assert!(kb.shiftable_workloads().is_empty());
    }

    #[test]
    fn kb_store_trait_delegates_to_upsert() {
        let kb = KnowledgeBase::new();
        assert_eq!(
            kb.try_upsert(knowledge(1, CloudKind::Public, 100)),
            Ok(true)
        );
        // Stale write: surfaced as Ok(false), not an error.
        assert_eq!(
            kb.try_upsert(knowledge(1, CloudKind::Public, 10)),
            Ok(false)
        );
        assert_eq!(kb.len(), 1);
        let e = StoreError::Transient("timeout");
        assert!(e.to_string().contains("timeout"));
    }

    #[test]
    fn remove_entries() {
        let kb = KnowledgeBase::new();
        kb.upsert(knowledge(1, CloudKind::Public, 0));
        assert!(kb.remove(SubscriptionId::new(1)).is_some());
        assert!(kb.remove(SubscriptionId::new(1)).is_none());
        assert!(kb.is_empty());
    }

    #[test]
    fn concurrent_writers_and_readers() {
        let kb = Arc::new(KnowledgeBase::new());
        let mut handles = Vec::new();
        for w in 0..4u32 {
            let kb = Arc::clone(&kb);
            handles.push(std::thread::spawn(move || {
                for i in 0..250u32 {
                    kb.upsert(knowledge(w * 1000 + i, CloudKind::Public, i64::from(i)));
                }
            }));
        }
        for r in 0..2 {
            let kb = Arc::clone(&kb);
            handles.push(std::thread::spawn(move || {
                let _ = r;
                for _ in 0..100 {
                    let _ = kb.spot_candidates();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(kb.len(), 1000);
    }
}
