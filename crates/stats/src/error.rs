//! Error type for the statistics substrate.

use std::error::Error;
use std::fmt;

/// Errors returned by statistical constructors and estimators.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StatsError {
    /// The input sample was empty; carries what was being computed.
    EmptyInput(&'static str),
    /// The input contained NaN or infinite values.
    NonFinite(&'static str),
    /// Two paired inputs had different lengths.
    LengthMismatch(usize, usize),
    /// A parameter or level was outside its documented range.
    OutOfRange(&'static str),
    /// A variance-normalized statistic was requested of a constant input.
    ZeroVariance(&'static str),
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::EmptyInput(what) => write!(f, "empty input: {what}"),
            StatsError::NonFinite(what) => write!(f, "non-finite values in {what}"),
            StatsError::LengthMismatch(a, b) => {
                write!(f, "length mismatch: {a} vs {b}")
            }
            StatsError::OutOfRange(what) => write!(f, "out of range: {what}"),
            StatsError::ZeroVariance(what) => write!(f, "zero variance in {what}"),
        }
    }
}

impl Error for StatsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        assert_eq!(
            StatsError::LengthMismatch(3, 5).to_string(),
            "length mismatch: 3 vs 5"
        );
        assert!(StatsError::EmptyInput("x").to_string().contains("empty"));
        assert!(StatsError::ZeroVariance("x")
            .to_string()
            .contains("variance"));
    }

    #[test]
    fn trait_bounds() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<StatsError>();
    }
}
