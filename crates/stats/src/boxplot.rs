//! Box-plot statistics with 1.5-IQR whiskers, matching Figures 1(b) and
//! 3(d) of the study.

use crate::error::StatsError;
use crate::percentile::percentile_sorted;
use serde::{Deserialize, Serialize};

/// The five-number summary plus outliers that a box-plot renders.
///
/// Whisker boundaries follow the paper's convention: the most extreme
/// observations within `q1 − 1.5·IQR` and `q3 + 1.5·IQR`; everything
/// beyond is an outlier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoxPlot {
    /// First quartile (25th percentile, linear interpolation).
    pub q1: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// Third quartile (75th percentile).
    pub q3: f64,
    /// Lower whisker: smallest observation ≥ `q1 − 1.5·IQR`.
    pub lower_whisker: f64,
    /// Upper whisker: largest observation ≤ `q3 + 1.5·IQR`.
    pub upper_whisker: f64,
    /// Observations outside the whiskers, sorted ascending.
    pub outliers: Vec<f64>,
    /// Number of observations.
    pub count: usize,
}

impl BoxPlot {
    /// Computes box-plot statistics from a sample.
    ///
    /// # Errors
    /// Returns [`StatsError::EmptyInput`] for an empty sample and
    /// [`StatsError::NonFinite`] if any value is NaN/∞.
    ///
    /// # Examples
    /// ```
    /// # use cloudscope_stats::boxplot::BoxPlot;
    /// # fn main() -> Result<(), cloudscope_stats::error::StatsError> {
    /// let b = BoxPlot::new(vec![1.0, 2.0, 3.0, 4.0, 100.0])?;
    /// assert_eq!(b.median, 3.0);
    /// assert_eq!(b.outliers, vec![100.0]);
    /// # Ok(())
    /// # }
    /// ```
    pub fn new(mut sample: Vec<f64>) -> Result<Self, StatsError> {
        if sample.is_empty() {
            return Err(StatsError::EmptyInput("box-plot sample"));
        }
        if sample.iter().any(|v| !v.is_finite()) {
            return Err(StatsError::NonFinite("box-plot sample"));
        }
        sample.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        let q1 = percentile_sorted(&sample, 25.0);
        let median = percentile_sorted(&sample, 50.0);
        let q3 = percentile_sorted(&sample, 75.0);
        let iqr = q3 - q1;
        let lo_fence = q1 - 1.5 * iqr;
        let hi_fence = q3 + 1.5 * iqr;
        let lower_whisker = sample
            .iter()
            .copied()
            .find(|&v| v >= lo_fence)
            .unwrap_or(sample[0]);
        let upper_whisker = sample
            .iter()
            .rev()
            .copied()
            .find(|&v| v <= hi_fence)
            .unwrap_or(*sample.last().expect("non-empty"));
        let outliers = sample
            .iter()
            .copied()
            .filter(|&v| v < lo_fence || v > hi_fence)
            .collect();
        Ok(Self {
            q1,
            median,
            q3,
            lower_whisker,
            upper_whisker,
            outliers,
            count: sample.len(),
        })
    }

    /// Interquartile range `q3 − q1`.
    #[must_use]
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }

    /// Rescales every statistic by `1/unit` (the paper's normalization).
    ///
    /// # Errors
    /// Returns [`StatsError::NonFinite`] if `unit` is zero or non-finite.
    pub fn normalized(&self, unit: f64) -> Result<BoxPlot, StatsError> {
        if unit == 0.0 || !unit.is_finite() {
            return Err(StatsError::NonFinite("normalization unit"));
        }
        Ok(BoxPlot {
            q1: self.q1 / unit,
            median: self.median / unit,
            q3: self.q3 / unit,
            lower_whisker: self.lower_whisker / unit,
            upper_whisker: self.upper_whisker / unit,
            outliers: self.outliers.iter().map(|v| v / unit).collect(),
            count: self.count,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_number_summary() {
        let b = BoxPlot::new((1..=9).map(f64::from).collect()).unwrap();
        assert_eq!(b.median, 5.0);
        assert_eq!(b.q1, 3.0);
        assert_eq!(b.q3, 7.0);
        assert_eq!(b.iqr(), 4.0);
        assert_eq!(b.lower_whisker, 1.0);
        assert_eq!(b.upper_whisker, 9.0);
        assert!(b.outliers.is_empty());
        assert_eq!(b.count, 9);
    }

    #[test]
    fn outliers_beyond_one_point_five_iqr() {
        let mut data: Vec<f64> = (1..=9).map(f64::from).collect();
        data.push(50.0);
        data.push(-40.0);
        let b = BoxPlot::new(data).unwrap();
        assert_eq!(b.outliers, vec![-40.0, 50.0]);
        // Whiskers stay at the most extreme non-outlier points.
        assert_eq!(b.lower_whisker, 1.0);
        assert_eq!(b.upper_whisker, 9.0);
    }

    #[test]
    fn single_observation() {
        let b = BoxPlot::new(vec![7.0]).unwrap();
        assert_eq!(b.median, 7.0);
        assert_eq!(b.q1, 7.0);
        assert_eq!(b.q3, 7.0);
        assert_eq!(b.lower_whisker, 7.0);
        assert_eq!(b.upper_whisker, 7.0);
        assert!(b.outliers.is_empty());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(BoxPlot::new(vec![]).is_err());
        assert!(BoxPlot::new(vec![f64::INFINITY]).is_err());
    }

    #[test]
    fn ordering_invariants() {
        let data: Vec<f64> = (0..100).map(|i| ((i * 37) % 100) as f64).collect();
        let b = BoxPlot::new(data).unwrap();
        assert!(b.lower_whisker <= b.q1);
        assert!(b.q1 <= b.median);
        assert!(b.median <= b.q3);
        assert!(b.q3 <= b.upper_whisker);
    }

    #[test]
    fn normalization() {
        let b = BoxPlot::new(vec![10.0, 20.0, 30.0, 40.0]).unwrap();
        let n = b.normalized(10.0).unwrap();
        assert_eq!(n.median, b.median / 10.0);
        assert!(b.normalized(f64::NAN).is_err());
    }
}
