//! Benchmarks for the sharded, index-backed knowledge-base serving
//! layer: a mixed read/write closed loop at 1/2/4/8 threads against the
//! sharded store vs a single-lock full-scan baseline (the pre-redesign
//! design), plus non-cloning checks backed by a counting allocator.
//! Results merge into `BENCH_kb.json` at the repo root.
//!
//! The final `verify` "benchmark" asserts the redesign's acceptance
//! criteria from the measured results: the sharded store must serve at
//! least 3x the single-lock mixed-workload throughput at 8 threads, and
//! index-backed candidate queries must not allocate (and hence not
//! clone) proportionally to the non-matching entries they skip.

use cloudscope::kb::{DurableKb, KbQuery, KnowledgeBase, LifetimeClass, WorkloadKnowledge};
use cloudscope::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::HashMap;
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

// --- counting allocator ------------------------------------------------

/// Counts allocation events while [`COUNTING`] is on. The count is the
/// evidence for the "no cloning of non-matching entries" criterion:
/// query cost in allocations must track matches, not store size.
struct CountingAlloc;

static ALLOCATION_EVENTS: AtomicUsize = AtomicUsize::new(0);
static COUNTING: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCATION_EVENTS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Allocation events performed by `f` on this thread (the harness runs
/// the measured closure single-threaded, so the global count is its).
fn allocations_during<T>(f: impl FnOnce() -> T) -> (T, usize) {
    ALLOCATION_EVENTS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    let value = f();
    COUNTING.store(false, Ordering::SeqCst);
    (value, ALLOCATION_EVENTS.load(Ordering::SeqCst))
}

// --- the pre-redesign baseline ----------------------------------------

/// The store design this PR replaced: one map behind one lock, every
/// read a predicate scan that clones the matches while holding it.
struct SingleLockStore {
    entries: Mutex<HashMap<SubscriptionId, WorkloadKnowledge>>,
}

impl SingleLockStore {
    fn new() -> Self {
        Self {
            entries: Mutex::new(HashMap::new()),
        }
    }

    fn upsert(&self, knowledge: WorkloadKnowledge) {
        let mut entries = self.entries.lock().unwrap();
        match entries.get(&knowledge.subscription) {
            Some(existing) if existing.updated_at > knowledge.updated_at => {}
            _ => {
                entries.insert(knowledge.subscription, knowledge);
            }
        }
    }

    fn query<F: Fn(&WorkloadKnowledge) -> bool>(&self, predicate: F) -> Vec<WorkloadKnowledge> {
        let entries = self.entries.lock().unwrap();
        let mut matches: Vec<WorkloadKnowledge> =
            entries.values().filter(|k| predicate(k)).cloned().collect();
        matches.sort_unstable_by_key(|k| k.subscription);
        matches
    }
}

// --- workload ----------------------------------------------------------

/// Entries in the populated store. A few percent match each candidate
/// query, like a real KB where most workloads are not candidates.
const STORE_SIZE: u32 = 20_000;

/// Mixed-loop shape per iteration: read-dominated, like a policy engine
/// sweeping the KB between extraction refreshes.
const READS_PER_ITER: usize = 48;
const WRITES_PER_ITER: usize = 4;

fn entry(id: u32) -> WorkloadKnowledge {
    // Deterministic shape: ~3% spot candidates, ~6% shiftable.
    let spot = id.is_multiple_of(32);
    WorkloadKnowledge {
        subscription: SubscriptionId::new(id),
        cloud: if spot || id.is_multiple_of(2) {
            CloudKind::Public
        } else {
            CloudKind::Private
        },
        pattern: Some(if id.is_multiple_of(5) {
            UtilizationPattern::Stable
        } else {
            UtilizationPattern::Irregular
        }),
        lifetime: if spot {
            LifetimeClass::MostlyShort
        } else {
            LifetimeClass::MostlyLong
        },
        mean_util: f64::from(id % 90),
        p95_util: f64::from(id % 90) + 5.0,
        util_cv: 0.3,
        regions: (id % 3 + 1) as usize,
        region_agnostic: if id.is_multiple_of(16) {
            Some(true)
        } else {
            None
        },
        vm_count: (id % 50 + 1) as usize,
        cores: u64::from(id % 50) * 4 + 4,
        updated_at: SimTime::from_minutes(i64::from(id % 100)),
    }
}

fn populated_sharded(shards: usize) -> KnowledgeBase {
    let kb = KnowledgeBase::with_shards(shards);
    kb.feed((0..STORE_SIZE).map(entry));
    kb
}

fn populated_single_lock() -> SingleLockStore {
    let store = SingleLockStore::new();
    for id in 0..STORE_SIZE {
        store.upsert(entry(id));
    }
    store
}

/// One closed-loop iteration against the sharded store: index-backed
/// candidate reads (non-cloning folds/counts) plus a trickle of writes.
fn sharded_mixed_iter(kb: &KnowledgeBase, thread: u32, round: u32) -> usize {
    let mut acc = 0usize;
    for i in 0..READS_PER_ITER {
        acc += match i % 3 {
            0 => KbQuery::spot_candidates().fold(kb, 0usize, |a, k| a + k.vm_count),
            1 => KbQuery::shiftable().count(kb),
            _ => KbQuery::oversubscription_candidates(CloudKind::Public).count(kb),
        };
    }
    for w in 0..WRITES_PER_ITER as u32 {
        let id = (thread * 7919 + round * 131 + w * 37) % STORE_SIZE;
        let mut k = entry(id);
        k.updated_at = SimTime::from_minutes(1_000_000);
        kb.upsert(k);
    }
    acc
}

/// The same closed loop against the baseline: every read is a full scan
/// that clones the matches under the one lock.
fn single_lock_mixed_iter(store: &SingleLockStore, thread: u32, round: u32) -> usize {
    let mut acc = 0usize;
    for i in 0..READS_PER_ITER {
        acc += match i % 3 {
            0 => store
                .query(WorkloadKnowledge::spot_candidate)
                .iter()
                .map(|k| k.vm_count)
                .sum(),
            1 => store.query(WorkloadKnowledge::shiftable).len(),
            _ => store
                .query(|k| k.cloud == CloudKind::Public && k.oversubscription_candidate())
                .len(),
        };
    }
    for w in 0..WRITES_PER_ITER as u32 {
        let id = (thread * 7919 + round * 131 + w * 37) % STORE_SIZE;
        let mut k = entry(id);
        k.updated_at = SimTime::from_minutes(1_000_000);
        store.upsert(k);
    }
    acc
}

/// Runs `per_thread` closed-loop iterations on each of `threads` threads.
fn run_threads<S: Sync>(store: &S, threads: u32, per_thread: u32, iter: fn(&S, u32, u32) -> usize) {
    std::thread::scope(|scope| {
        for t in 0..threads {
            scope.spawn(move || {
                let mut acc = 0usize;
                for round in 0..per_thread {
                    acc += iter(store, t, round);
                }
                black_box(acc);
            });
        }
    });
}

// --- benchmarks --------------------------------------------------------

const THREAD_COUNTS: [u32; 4] = [1, 2, 4, 8];

fn bench_kb_mixed(c: &mut Criterion) {
    // First group to run: point the harness at the repo-root JSON file.
    c.json_output(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kb.json"));
    let smoke = std::env::var_os("CLOUDSCOPE_BENCH_SMOKE").is_some();
    let samples = if smoke { 3 } else { 10 };

    let sharded = populated_sharded(8);
    let single = populated_single_lock();
    let mut group = c.benchmark_group("kb_mixed");
    group.sample_size(samples);
    for threads in THREAD_COUNTS {
        group.bench_with_input(
            BenchmarkId::new("sharded", threads),
            &threads,
            |b, &threads| b.iter(|| run_threads(&sharded, threads, 1, sharded_mixed_iter)),
        );
        group.bench_with_input(
            BenchmarkId::new("single_lock", threads),
            &threads,
            |b, &threads| b.iter(|| run_threads(&single, threads, 1, single_lock_mixed_iter)),
        );
    }
    group.finish();
}

/// A unique scratch directory under the system temp dir.
fn bench_dir(tag: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("cloudscope-bench-kb-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A populated durable store: every entry WAL-committed, then
/// checkpointed, like a KB that has been serving for a while.
fn populated_durable(dir: &std::path::Path, shards: usize) -> DurableKb {
    let db = DurableKb::open_with_shards(dir, Some(shards)).expect("open durable kb");
    let batch: Vec<WorkloadKnowledge> = (0..STORE_SIZE).map(entry).collect();
    db.feed(&batch).expect("feed");
    db.snapshot().expect("snapshot");
    db
}

/// The sharded mixed loop with every write going through the WAL —
/// measures the durability tax on the serving workload.
fn durable_mixed_iter(db: &DurableKb, thread: u32, round: u32) -> usize {
    let kb = db.kb();
    let mut acc = 0usize;
    for i in 0..READS_PER_ITER {
        acc += match i % 3 {
            0 => KbQuery::spot_candidates().fold(kb, 0usize, |a, k| a + k.vm_count),
            1 => KbQuery::shiftable().count(kb),
            _ => KbQuery::oversubscription_candidates(CloudKind::Public).count(kb),
        };
    }
    for w in 0..WRITES_PER_ITER as u32 {
        let id = (thread * 7919 + round * 131 + w * 37) % STORE_SIZE;
        let mut k = entry(id);
        k.updated_at = SimTime::from_minutes(1_000_000);
        db.upsert(k).expect("durable upsert");
    }
    acc
}

/// The identical loop with the writes bypassing the WAL (straight into
/// the inner store) — the adjacent baseline the overhead gate divides
/// by, so machine drift between bench groups cannot fake (or mask) a
/// durability tax.
fn durable_plain_iter(db: &DurableKb, thread: u32, round: u32) -> usize {
    sharded_mixed_iter(db.kb(), thread, round)
}

/// Serving under churn with the WAL on, plus recovery time: the
/// mixed loop through [`DurableKb`] at 1 and 8 threads (with its
/// WAL-bypassing twin as the overhead baseline), and a cold `open()`
/// of a checkpointed-plus-tail 20k-entry directory.
fn bench_kb_durable(c: &mut Criterion) {
    let smoke = std::env::var_os("CLOUDSCOPE_BENCH_SMOKE").is_some();
    let samples = if smoke { 3 } else { 10 };

    let mixed_dir = bench_dir("mixed");
    let durable = populated_durable(&mixed_dir, 8);
    let mut group = c.benchmark_group("kb_durable");
    group.sample_size(samples);
    for threads in [1u32, 8] {
        group.bench_with_input(
            BenchmarkId::new("mixed_plain", threads),
            &threads,
            |b, &threads| b.iter(|| run_threads(&durable, threads, 1, durable_plain_iter)),
        );
        group.bench_with_input(
            BenchmarkId::new("mixed_wal", threads),
            &threads,
            |b, &threads| b.iter(|| run_threads(&durable, threads, 1, durable_mixed_iter)),
        );
    }
    drop(durable);
    let _ = std::fs::remove_dir_all(&mixed_dir);

    // Recovery: snapshot holds the full population, the WAL tail holds
    // 5% refreshed entries — both recovery paths exercised.
    let recovery_dir = bench_dir("recovery");
    let db = populated_durable(&recovery_dir, 8);
    let tail: Vec<WorkloadKnowledge> = (0..STORE_SIZE / 20)
        .map(|id| {
            let mut k = entry(id);
            k.updated_at = SimTime::from_minutes(1_000_000);
            k
        })
        .collect();
    db.feed(&tail).expect("tail feed");
    drop(db);
    let recovery_id = format!("recovery/{STORE_SIZE}");
    group.bench_function(&recovery_id, |b| {
        b.iter(|| {
            let recovered = DurableKb::open(black_box(&recovery_dir)).expect("recover");
            assert_eq!(recovered.kb().len(), STORE_SIZE as usize);
            recovered
        });
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&recovery_dir);
}

fn bench_query_terminals(c: &mut Criterion) {
    let smoke = std::env::var_os("CLOUDSCOPE_BENCH_SMOKE").is_some();
    let kb = populated_sharded(8);
    let mut group = c.benchmark_group("kb_query");
    group.sample_size(if smoke { 3 } else { 20 });
    group.bench_function("indexed_count/20k", |b| {
        b.iter(|| KbQuery::spot_candidates().count(black_box(&kb)));
    });
    group.bench_function("indexed_fold/20k", |b| {
        b.iter(|| KbQuery::spot_candidates().fold(black_box(&kb), 0usize, |a, k| a + k.vm_count));
    });
    group.bench_function("scan_count/20k", |b| {
        b.iter(|| KbQuery::matching(WorkloadKnowledge::spot_candidate).count(black_box(&kb)));
    });
    group.bench_function("collect/20k", |b| {
        b.iter(|| KbQuery::spot_candidates().collect(black_box(&kb)));
    });
    group.finish();
}

/// Not a timing benchmark: checks the acceptance criteria against the
/// results measured above and the counting allocator, and fails the
/// bench run (panics) if the redesign regresses.
fn verify_acceptance(c: &mut Criterion) {
    let median = |id: &str| {
        c.results()
            .iter()
            .find(|r| r.id == id)
            .unwrap_or_else(|| panic!("missing bench result {id}"))
            .median_ns
    };
    let speedup = median("kb_mixed/single_lock/8") / median("kb_mixed/sharded/8");
    println!("kb_mixed 8-thread sharded speedup over single-lock: {speedup:.1}x");
    assert!(
        speedup >= 3.0,
        "sharded store must serve >= 3x the single-lock mixed throughput at 8 threads, got {speedup:.2}x"
    );

    // Non-cloning criterion: an index-backed count on a 20k-entry store
    // must allocate O(shards) (the lock-guard scratch), never O(entries)
    // — the non-matching ~19.4k entries are not visited, let alone
    // cloned. The fold visits its ~600 matches borrowed, so its
    // allocations stay O(shards + matches), far below store size.
    let kb = populated_sharded(8);
    let matches = KbQuery::spot_candidates().count(&kb);
    assert!(matches > 0 && matches < STORE_SIZE as usize / 16);
    let (_, count_allocs) = allocations_during(|| KbQuery::spot_candidates().count(&kb));
    assert!(
        count_allocs < 64,
        "indexed count allocated {count_allocs} times on a {STORE_SIZE}-entry store"
    );
    let (total, fold_allocs) =
        allocations_during(|| KbQuery::spot_candidates().fold(&kb, 0usize, |a, k| a + k.vm_count));
    black_box(total);
    assert!(
        fold_allocs < matches + 64,
        "non-cloning fold allocated {fold_allocs} times for {matches} matches"
    );
    println!(
        "allocation audit: indexed count {count_allocs} events, fold {fold_allocs} events, \
         {matches} matches in a {STORE_SIZE}-entry store"
    );

    // Durability gates: the WAL must tax the mixed serving loop by at
    // most 50% single-threaded (expected: single-digit %, since the
    // loop is read-dominated and reads bypass the WAL mutex), and cold
    // recovery of the 20k-entry store must land well under 5 seconds.
    //
    // The overhead estimate deliberately does NOT divide the two
    // criterion medians above: those twins run as separate benchmarks
    // seconds apart, and on a busy machine that gap alone has produced
    // readings like -9% — a nonsensical "WAL speedup" that was pure
    // drift. Instead the twins run here strictly interleaved on one
    // store — plain round, WAL round, repeat — and the estimate is the
    // median of per-round ratios, so slow drift cancels within each
    // round. A still-negative median is logged loudly and clamped to
    // zero rather than reported as a speedup.
    let smoke = std::env::var_os("CLOUDSCOPE_BENCH_SMOKE").is_some();
    let overhead_dir = bench_dir("overhead");
    let db = populated_durable(&overhead_dir, 8);
    let (rounds, iters_per_round) = if smoke { (3, 1) } else { (15, 4) };
    run_threads(&db, 1, 1, durable_plain_iter); // warm caches and WAL
    run_threads(&db, 1, 1, durable_mixed_iter);
    let mut ratios = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let t0 = std::time::Instant::now();
        run_threads(&db, 1, iters_per_round, durable_plain_iter);
        let plain = t0.elapsed().as_secs_f64();
        let t1 = std::time::Instant::now();
        run_threads(&db, 1, iters_per_round, durable_mixed_iter);
        let wal = t1.elapsed().as_secs_f64();
        ratios.push(wal / plain);
    }
    drop(db);
    let _ = std::fs::remove_dir_all(&overhead_dir);
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
    let measured_pct = (ratios[ratios.len() / 2] - 1.0) * 100.0;
    let wal_overhead_pct = if measured_pct < 0.0 {
        println!(
            "note: interleaved WAL overhead measured negative ({measured_pct:.1}%) — \
             measurement noise, clamping to 0"
        );
        0.0
    } else {
        measured_pct
    };
    let recovery_ns = median(&format!("kb_durable/recovery/{STORE_SIZE}"));
    c.report_metric("kb_durable/wal_overhead_pct", wal_overhead_pct);
    println!(
        "kb_durable WAL overhead over in-memory sharded (1 thread, {rounds} interleaved \
         rounds): {wal_overhead_pct:.1}%"
    );
    assert!(
        wal_overhead_pct <= 50.0,
        "WAL tax on the mixed loop must stay <= 50%, got {wal_overhead_pct:.1}%"
    );

    let entries_per_sec = f64::from(STORE_SIZE) / (recovery_ns / 1e9);
    c.report_metric("kb_durable/recovery_entries_per_sec", entries_per_sec);
    println!(
        "kb_durable recovery: {:.1} ms for {STORE_SIZE} entries ({entries_per_sec:.0} entries/s)",
        recovery_ns / 1e6
    );
    assert!(
        recovery_ns < 5e9,
        "recovering a {STORE_SIZE}-entry store must take < 5s, took {:.2}s",
        recovery_ns / 1e9
    );
}

criterion_group!(
    kb,
    bench_kb_mixed,
    bench_kb_durable,
    bench_query_terminals,
    verify_acceptance
);
criterion_main!(kb);
