//! Streaming summary statistics (Welford's algorithm) and the coefficient
//! of variation used throughout the study (Figure 3(d)).

use serde::{Deserialize, Serialize};

/// Single-pass, numerically stable accumulator for count, mean, variance,
/// min, and max.
///
/// # Examples
/// ```
/// # use cloudscope_stats::summary::Summary;
/// let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].iter().copied().collect();
/// assert_eq!(s.mean(), 5.0);
/// assert_eq!(s.population_std_dev(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Feeds one observation. Non-finite values are ignored (telemetry
    /// gaps are represented as NaN upstream).
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of finite observations.
    #[must_use]
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; 0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Minimum observation; NaN when empty.
    #[must_use]
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Maximum observation; NaN when empty.
    #[must_use]
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Population variance (divides by *n*); 0 when fewer than 1 sample.
    #[must_use]
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            (self.m2 / self.count as f64).max(0.0)
        }
    }

    /// Sample variance (divides by *n − 1*); 0 when fewer than 2 samples.
    #[must_use]
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / (self.count - 1) as f64).max(0.0)
        }
    }

    /// Population standard deviation.
    #[must_use]
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Coefficient of variation: population standard deviation over mean.
    ///
    /// This is the burstiness measure of Figure 3(d): computed over the
    /// distribution of hourly VM creations, a bursty (private-cloud-like)
    /// arrival process yields a larger CV than a smooth diurnal one.
    /// Returns `None` when the mean is zero or no data was seen.
    #[must_use]
    pub fn coefficient_of_variation(&self) -> Option<f64> {
        if self.count == 0 || self.mean == 0.0 {
            None
        } else {
            Some(self.population_std_dev() / self.mean.abs())
        }
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

/// Convenience: coefficient of variation of a slice.
///
/// # Examples
/// ```
/// # use cloudscope_stats::summary::coefficient_of_variation;
/// assert_eq!(coefficient_of_variation(&[5.0, 5.0, 5.0]), Some(0.0));
/// assert!(coefficient_of_variation(&[]).is_none());
/// ```
#[must_use]
pub fn coefficient_of_variation(values: &[f64]) -> Option<f64> {
    values
        .iter()
        .copied()
        .collect::<Summary>()
        .coefficient_of_variation()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert!(s.min().is_nan());
        assert!(s.max().is_nan());
        assert_eq!(s.population_variance(), 0.0);
        assert!(s.coefficient_of_variation().is_none());
    }

    #[test]
    fn known_moments() {
        let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .iter()
            .copied()
            .collect();
        assert_eq!(s.count(), 8);
        assert_eq!(s.mean(), 5.0);
        assert!((s.population_variance() - 4.0).abs() < 1e-12);
        assert!((s.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.coefficient_of_variation().unwrap() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn non_finite_values_ignored() {
        let s: Summary = [1.0, f64::NAN, 3.0, f64::INFINITY]
            .iter()
            .copied()
            .collect();
        assert_eq!(s.count(), 2);
        assert_eq!(s.mean(), 2.0);
    }

    #[test]
    fn merge_matches_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 5.0).collect();
        let sequential: Summary = data.iter().copied().collect();
        let mut left: Summary = data[..37].iter().copied().collect();
        let right: Summary = data[37..].iter().copied().collect();
        left.merge(&right);
        assert_eq!(left.count(), sequential.count());
        assert!((left.mean() - sequential.mean()).abs() < 1e-12);
        assert!((left.population_variance() - sequential.population_variance()).abs() < 1e-10);
        assert_eq!(left.min(), sequential.min());
        assert_eq!(left.max(), sequential.max());
    }

    #[test]
    fn merge_with_empty_sides() {
        let mut a = Summary::new();
        let b: Summary = [1.0, 2.0].iter().copied().collect();
        a.merge(&b);
        assert_eq!(a.count(), 2);
        let mut c: Summary = [3.0].iter().copied().collect();
        c.merge(&Summary::new());
        assert_eq!(c.count(), 1);
    }

    #[test]
    fn extend_accumulates() {
        let mut s = Summary::new();
        s.extend([1.0, 2.0, 3.0]);
        s.extend([4.0]);
        assert_eq!(s.count(), 4);
        assert_eq!(s.mean(), 2.5);
    }

    #[test]
    fn cv_none_for_zero_mean() {
        assert!(coefficient_of_variation(&[-1.0, 1.0]).is_none());
    }

    #[test]
    fn bursty_series_has_larger_cv_than_smooth() {
        // The Figure 3(d) discriminator in miniature.
        let smooth: Vec<f64> = (0..168)
            .map(|h| 50.0 + 20.0 * ((h % 24) as f64 / 24.0 * std::f64::consts::TAU).sin())
            .collect();
        let mut bursty = vec![5.0; 168];
        bursty[40] = 400.0;
        bursty[100] = 350.0;
        let cv_smooth = coefficient_of_variation(&smooth).unwrap();
        let cv_bursty = coefficient_of_variation(&bursty).unwrap();
        assert!(cv_bursty > 2.0 * cv_smooth, "{cv_bursty} vs {cv_smooth}");
    }
}
