//! Spatial deployment analyses (Figure 4): regions per subscription and
//! the core-weighted variant.

use crate::deployment::record_in_cloud;
use crate::error::AnalysisError;
use cloudscope_model::prelude::*;
use cloudscope_stats::Ecdf;
use std::collections::{HashMap, HashSet};

/// Per-subscription deployment extent: distinct regions and allocated
/// cores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubscriptionExtent {
    /// The subscription.
    pub subscription: SubscriptionId,
    /// Number of distinct regions with at least one placed VM.
    pub regions: usize,
    /// Total allocated cores over the subscription's placed VMs.
    pub cores: u64,
}

/// Computes the deployment extent of every subscription of `cloud` that
/// placed at least one VM.
#[must_use]
pub fn subscription_extents(trace: &Trace, cloud: CloudKind) -> Vec<SubscriptionExtent> {
    subscription_extents_from(trace.vms(), trace.subscriptions(), cloud)
}

/// Record-slice variant of [`subscription_extents`] — deployment extent
/// only needs VM metadata, so a pushed-down store read that skips every
/// telemetry chunk reproduces it exactly.
#[must_use]
pub fn subscription_extents_from(
    records: &[VmRecord],
    subscriptions: &[Subscription],
    cloud: CloudKind,
) -> Vec<SubscriptionExtent> {
    let mut regions: HashMap<SubscriptionId, HashSet<RegionId>> = HashMap::new();
    let mut cores: HashMap<SubscriptionId, u64> = HashMap::new();
    for vm in records {
        if !record_in_cloud(vm, subscriptions, cloud) || vm.node.is_none() {
            continue;
        }
        regions
            .entry(vm.subscription)
            .or_default()
            .insert(vm.region);
        *cores.entry(vm.subscription).or_insert(0) += u64::from(vm.size.cores());
    }
    let mut extents: Vec<SubscriptionExtent> = regions
        .into_iter()
        .map(|(subscription, set)| SubscriptionExtent {
            subscription,
            regions: set.len(),
            cores: cores[&subscription],
        })
        .collect();
    extents.sort_by_key(|e| e.subscription);
    extents
}

/// ECDF of the number of deployed regions per subscription
/// (Figure 4(a)).
///
/// # Errors
/// Returns [`AnalysisError::NoData`] if the cloud has no subscriptions
/// with placed VMs.
pub fn regions_per_subscription_cdf(
    trace: &Trace,
    cloud: CloudKind,
) -> Result<Ecdf, AnalysisError> {
    regions_cdf_from_extents(subscription_extents(trace, cloud))
}

fn regions_cdf_from_extents(extents: Vec<SubscriptionExtent>) -> Result<Ecdf, AnalysisError> {
    if extents.is_empty() {
        return Err(AnalysisError::NoData("regions per subscription"));
    }
    Ecdf::from_iter(extents.into_iter().map(|e| e.regions as f64)).map_err(AnalysisError::from)
}

/// The core-weighted CDF of Figure 4(b): point `(k, F)` means a fraction
/// `F` of the cloud's allocated cores belongs to subscriptions deployed
/// in at most `k` regions.
///
/// # Errors
/// Returns [`AnalysisError::NoData`] if the cloud has no allocated cores.
pub fn core_weighted_regions_cdf(
    trace: &Trace,
    cloud: CloudKind,
) -> Result<Vec<(usize, f64)>, AnalysisError> {
    core_weighted_from_extents(&subscription_extents(trace, cloud))
}

fn core_weighted_from_extents(
    extents: &[SubscriptionExtent],
) -> Result<Vec<(usize, f64)>, AnalysisError> {
    let total: u64 = extents.iter().map(|e| e.cores).sum();
    if total == 0 {
        return Err(AnalysisError::NoData("allocated cores"));
    }
    let max_regions = extents.iter().map(|e| e.regions).max().unwrap_or(1);
    let mut curve = Vec::with_capacity(max_regions);
    let mut acc = 0u64;
    for k in 1..=max_regions {
        acc += extents
            .iter()
            .filter(|e| e.regions == k)
            .map(|e| e.cores)
            .sum::<u64>();
        curve.push((k, acc as f64 / total as f64));
    }
    Ok(curve)
}

/// The Figure 4 bundle for both clouds.
#[derive(Debug, Clone, PartialEq)]
pub struct SpatialAnalysis {
    /// Fig 4(a), private.
    pub private_regions: Ecdf,
    /// Fig 4(a), public.
    pub public_regions: Ecdf,
    /// Fig 4(b), private.
    pub private_core_weighted: Vec<(usize, f64)>,
    /// Fig 4(b), public.
    pub public_core_weighted: Vec<(usize, f64)>,
    /// Fraction of private cores held by single-region subscriptions —
    /// paper: ≈ 0.40.
    pub private_single_region_core_share: f64,
    /// Fraction of public cores held by single-region subscriptions —
    /// paper: ≈ 0.70.
    pub public_single_region_core_share: f64,
}

impl SpatialAnalysis {
    /// Runs the Figure 4 analyses.
    ///
    /// # Errors
    /// Returns [`AnalysisError::NoData`] if either cloud is empty.
    pub fn run(trace: &Trace) -> Result<Self, AnalysisError> {
        Self::run_from_records(trace.vms(), trace.subscriptions())
    }

    /// Runs the Figure 4 analyses over a bare record slice, as produced
    /// by a metadata-only store scan (`read_vm_records`) that never
    /// touches a telemetry chunk.
    ///
    /// # Errors
    /// Returns [`AnalysisError::NoData`] if either cloud is empty.
    pub fn run_from_records(
        records: &[VmRecord],
        subscriptions: &[Subscription],
    ) -> Result<Self, AnalysisError> {
        let private_extents = subscription_extents_from(records, subscriptions, CloudKind::Private);
        let public_extents = subscription_extents_from(records, subscriptions, CloudKind::Public);
        let private_core_weighted = core_weighted_from_extents(&private_extents)?;
        let public_core_weighted = core_weighted_from_extents(&public_extents)?;
        let single_share = |curve: &[(usize, f64)]| curve.first().map_or(0.0, |&(_, f)| f);
        Ok(Self {
            private_regions: regions_cdf_from_extents(private_extents)?,
            public_regions: regions_cdf_from_extents(public_extents)?,
            private_single_region_core_share: single_share(&private_core_weighted),
            public_single_region_core_share: single_share(&public_core_weighted),
            private_core_weighted,
            public_core_weighted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::tiny_trace;

    #[test]
    fn extents_count_regions_and_cores() {
        let trace = tiny_trace();
        let extents = subscription_extents(&trace, CloudKind::Private);
        assert_eq!(extents.len(), 2);
        // sub0: 6 VMs of 4 cores in 2 regions.
        assert_eq!(extents[0].regions, 2);
        assert_eq!(extents[0].cores, 24);
        // sub1: one 2-core VM in one region.
        assert_eq!(extents[1].regions, 1);
        assert_eq!(extents[1].cores, 2);
    }

    #[test]
    fn regions_cdf() {
        let trace = tiny_trace();
        let public = regions_per_subscription_cdf(&trace, CloudKind::Public).unwrap();
        // sub2: 1, sub3: 1, sub4: 2, sub5: 1 regions.
        assert_eq!(public.eval(1.0), 0.75);
        assert_eq!(public.eval(2.0), 1.0);
    }

    #[test]
    fn core_weighted_curve() {
        let trace = tiny_trace();
        let private = core_weighted_regions_cdf(&trace, CloudKind::Private).unwrap();
        // Single-region sub1 holds 2 of 26 private cores.
        assert_eq!(private[0], (1, 2.0 / 26.0));
        assert_eq!(private.last().unwrap().1, 1.0);
    }

    #[test]
    fn full_spatial_analysis_orders_clouds() {
        let trace = tiny_trace();
        let analysis = SpatialAnalysis::run(&trace).unwrap();
        // The private single-region core share is lower than public:
        // private cores are concentrated in the multi-region sub0.
        assert!(
            analysis.private_single_region_core_share < analysis.public_single_region_core_share
        );
        // Public: sub2 (2) + sub3 (2) + sub5 (2) of 14 cores are
        // single-region.
        assert!((analysis.public_single_region_core_share - 6.0 / 14.0).abs() < 1e-9);
    }
}
