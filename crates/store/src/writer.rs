//! Streaming trace writer: partitions records into per-(region, day)
//! column chunks, compresses sealed chunks in parallel off the append
//! path, and commits the whole store with one atomic manifest rename.
//!
//! Until `finish` succeeds the directory holds no manifest (or the
//! previous one), so a crash mid-write can never yield a store that
//! reads back partially — readers trust only manifest-named chunks.

use crate::blobs::{
    encode_presence, encode_subscriptions, encode_topology, BLOB_SUBSCRIPTIONS,
    BLOB_TELEMETRY_PRESENT, BLOB_TOPOLOGY,
};
use crate::chunk::{
    assemble_chunk_file, compress_column, ChunkKind, ChunkMeta, CompressedColumn, RawColumn,
};
use crate::columns::{TelemetryColumns, VmMetaColumns};
use crate::crc::crc32;
use crate::error::StoreError;
use crate::manifest::{fsync_dir, write_then_rename, ChunkEntry, Manifest, MANIFEST_NAME};
use cloudscope_model::telemetry::UtilSeries;
use cloudscope_model::time::SAMPLE_INTERVAL_MINUTES;
use cloudscope_model::trace::Trace;
use cloudscope_model::vm::VmRecord;
use cloudscope_obs::counter;
use cloudscope_par::Parallelism;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Minutes per trace-week day.
const MINUTES_PER_DAY: i64 = 24 * 60;

/// The trace-week day (0..=6) a minute timestamp falls in. Times
/// before the window clamp to day 0, times after it to day 6 — the
/// day is a partitioning key, not an analysis quantity.
#[must_use]
pub(crate) fn day_of(minutes: i64) -> u8 {
    minutes.div_euclid(MINUTES_PER_DAY).clamp(0, 6) as u8
}

/// Tuning knobs for [`TraceWriter`].
#[derive(Debug, Clone, Copy)]
pub struct WriteOptions {
    /// Rows per VM-metadata chunk before it seals.
    pub target_chunk_rows: u32,
    /// Buffered bytes per telemetry chunk before it seals.
    pub target_chunk_bytes: usize,
    /// Compression level (0 = stored .. [`crate::codec::MAX_LEVEL`]).
    pub level: u8,
}

impl Default for WriteOptions {
    fn default() -> Self {
        Self {
            target_chunk_rows: 4096,
            target_chunk_bytes: 1 << 20,
            level: 2,
        }
    }
}

/// A sealed chunk awaiting compression and write-out.
#[derive(Debug)]
struct Sealed {
    meta: ChunkMeta,
    columns: Vec<RawColumn>,
}

/// Streaming writer for one trace directory.
///
/// Records must arrive in dense ascending VM-id order (the same
/// contract [`cloudscope_model::trace::TraceBuilder`] enforces), so
/// every chunk's rows are sorted and the manifest's id ranges support
/// binary-searched point loads. The store's byte content is a pure
/// function of the appended data and the options — worker count only
/// changes how fast compression runs.
#[derive(Debug)]
pub struct TraceWriter<'p> {
    dir: PathBuf,
    opts: WriteOptions,
    par: &'p Parallelism,
    vm_open: BTreeMap<(u32, u8), VmMetaColumns>,
    tel_open: BTreeMap<(u32, u8), TelemetryColumns>,
    seqs: BTreeMap<(u8, u32, u8), u32>,
    pending: Vec<Sealed>,
    chunks: Vec<ChunkEntry>,
    present: Vec<bool>,
    blobs: Vec<(String, Vec<u8>)>,
    vm_count: u64,
}

impl<'p> TraceWriter<'p> {
    /// Opens `dir` (creating it) for writing a new trace.
    ///
    /// # Errors
    /// [`StoreError::Io`] if the directory cannot be created.
    pub fn create(
        dir: impl Into<PathBuf>,
        opts: WriteOptions,
        par: &'p Parallelism,
    ) -> Result<Self, StoreError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| StoreError::io(&dir, e))?;
        Ok(Self {
            dir,
            opts,
            par,
            vm_open: BTreeMap::new(),
            tel_open: BTreeMap::new(),
            seqs: BTreeMap::new(),
            pending: Vec::new(),
            chunks: Vec::new(),
            present: Vec::new(),
            blobs: Vec::new(),
            vm_count: 0,
        })
    }

    /// Appends one VM record and its telemetry (if any).
    ///
    /// # Errors
    /// [`StoreError::Inconsistent`] if ids do not arrive densely in
    /// order; [`StoreError::Io`] if a sealed chunk fails to write.
    pub fn append_vm(
        &mut self,
        vm: &VmRecord,
        util: Option<&UtilSeries>,
    ) -> Result<(), StoreError> {
        if vm.id.index() != self.vm_count {
            return Err(StoreError::Inconsistent(format!(
                "vm {} appended out of order (expected index {})",
                vm.id, self.vm_count
            )));
        }
        self.vm_count += 1;
        self.present.push(util.is_some());

        let region = vm.region.index();
        let meta_key = (region, day_of(vm.created.minutes()));
        let cols = self.vm_open.entry(meta_key).or_default();
        cols.push(vm);
        if cols.rows >= self.opts.target_chunk_rows {
            let cols = self.vm_open.remove(&meta_key).expect("just inserted");
            self.seal_vm_meta(meta_key, cols)?;
        }
        if let Some(series) = util {
            self.append_telemetry(region, vm.id.index(), series)?;
        }
        Ok(())
    }

    /// Splits a series into per-day contiguous runs and buffers them.
    fn append_telemetry(
        &mut self,
        region: u32,
        id: u64,
        series: &UtilSeries,
    ) -> Result<(), StoreError> {
        let quantized = series.as_quantized();
        let start = series.start().minutes();
        if quantized.is_empty() {
            // An empty series still differs from "no telemetry" (it has
            // a start time), so persist it as one zero-length run.
            let key = (region, day_of(start));
            self.tel_open.entry(key).or_default().push(id, start, &[]);
            return Ok(());
        }
        let mut i = 0usize;
        while i < quantized.len() {
            let day = day_of(start + i as i64 * SAMPLE_INTERVAL_MINUTES);
            let mut j = i + 1;
            while j < quantized.len() && day_of(start + j as i64 * SAMPLE_INTERVAL_MINUTES) == day {
                j += 1;
            }
            let key = (region, day);
            let cols = self.tel_open.entry(key).or_default();
            cols.push(
                id,
                start + i as i64 * SAMPLE_INTERVAL_MINUTES,
                &quantized[i..j],
            );
            if cols.buffered_bytes() >= self.opts.target_chunk_bytes {
                let cols = self.tel_open.remove(&key).expect("just inserted");
                self.seal_telemetry(key, cols)?;
            }
            i = j;
        }
        Ok(())
    }

    fn next_seq(&mut self, kind: ChunkKind, key: (u32, u8)) -> u32 {
        let slot = self.seqs.entry((kind.tag(), key.0, key.1)).or_insert(0);
        let seq = *slot;
        *slot += 1;
        seq
    }

    fn seal_vm_meta(&mut self, key: (u32, u8), cols: VmMetaColumns) -> Result<(), StoreError> {
        let meta = ChunkMeta {
            kind: ChunkKind::VmMeta,
            region: key.0,
            day: key.1,
            seq: self.next_seq(ChunkKind::VmMeta, key),
            rows: cols.rows,
            min_vm: cols.min_vm,
            max_vm: cols.max_vm,
        };
        self.pending.push(Sealed {
            meta,
            columns: cols.into_columns(),
        });
        self.maybe_flush()
    }

    fn seal_telemetry(&mut self, key: (u32, u8), cols: TelemetryColumns) -> Result<(), StoreError> {
        let meta = ChunkMeta {
            kind: ChunkKind::Telemetry,
            region: key.0,
            day: key.1,
            seq: self.next_seq(ChunkKind::Telemetry, key),
            rows: cols.rows,
            min_vm: cols.min_vm,
            max_vm: cols.max_vm,
        };
        self.pending.push(Sealed {
            meta,
            columns: cols.into_columns(),
        });
        self.maybe_flush()
    }

    /// Flushes the pending batch once it is wide enough to keep every
    /// compression worker busy.
    fn maybe_flush(&mut self) -> Result<(), StoreError> {
        if self.pending.len() >= self.par.workers().max(2) * 2 {
            self.flush_pending()?;
        }
        Ok(())
    }

    /// Compresses pending chunks in parallel, then writes them out and
    /// records their manifest entries in seal order.
    ///
    /// The fan-out unit is a *(chunk, column)*, not a chunk: a flush
    /// batch holds only a handful of chunks, and per-chunk tasks left
    /// most workers idle while the widest chunk serialized the flush
    /// (the flat 1→8 write scaling the bench used to show). Columns of
    /// one chunk compress independently by construction, so splitting
    /// them costs nothing and multiplies the batch's task count by the
    /// column width. Assembly stitches the compressed columns back in
    /// column order and the write-out (file bytes, fsync, CRC) fans out
    /// per chunk — the manifest entries are still pushed in seal order,
    /// so the store's bytes remain a pure function of the appended
    /// data.
    fn flush_pending(&mut self) -> Result<(), StoreError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let level = self.opts.level;
        let batch = std::mem::take(&mut self.pending);
        let units: Vec<(usize, &RawColumn)> = batch
            .iter()
            .enumerate()
            .flat_map(|(ci, sealed)| sealed.columns.iter().map(move |col| (ci, col)))
            .collect();
        let compressed = self
            .par
            .par_map(&units, |&(_, col)| compress_column(col, level));
        let mut per_chunk: Vec<Vec<CompressedColumn>> = batch
            .iter()
            .map(|sealed| Vec::with_capacity(sealed.columns.len()))
            .collect();
        for (&(ci, _), comp) in units.iter().zip(compressed) {
            per_chunk[ci].push(comp);
        }
        let files: Vec<(PathBuf, Vec<u8>, u64)> = batch
            .iter()
            .zip(&per_chunk)
            .map(|(sealed, cols)| {
                let (bytes, raw_total) = assemble_chunk_file(&sealed.meta, cols, level);
                (self.dir.join(sealed.meta.file_name()), bytes, raw_total)
            })
            .collect();
        let written = self.par.par_map(&files, |(path, bytes, _)| {
            write_then_rename(path, bytes).map(|()| crc32(bytes))
        });
        for ((sealed, (_, bytes, raw_total)), crc) in batch.iter().zip(&files).zip(written) {
            let file_crc = crc?;
            counter("store.write.chunks").inc();
            counter("store.write.bytes_raw").add(*raw_total);
            counter("store.write.bytes_compressed").add(bytes.len() as u64);
            self.chunks.push(ChunkEntry {
                meta: sealed.meta.clone(),
                file_len: bytes.len() as u64,
                file_crc,
            });
        }
        Ok(())
    }

    /// Attaches a named opaque blob to the manifest (topology,
    /// subscriptions, generator sidecars …).
    pub fn add_blob(&mut self, name: impl Into<String>, bytes: Vec<u8>) {
        self.blobs.push((name.into(), bytes));
    }

    /// Seals open buffers, flushes everything, and commits the
    /// manifest. The rename of `manifest.csm` is the commit point.
    ///
    /// # Errors
    /// [`StoreError::Io`] on any write failure; nothing is committed.
    pub fn finish(mut self) -> Result<(), StoreError> {
        let open_vm: Vec<_> = std::mem::take(&mut self.vm_open).into_iter().collect();
        for (key, cols) in open_vm {
            self.seal_vm_meta(key, cols)?;
        }
        let open_tel: Vec<_> = std::mem::take(&mut self.tel_open).into_iter().collect();
        for (key, cols) in open_tel {
            self.seal_telemetry(key, cols)?;
        }
        self.flush_pending()?;

        let mut blobs = std::mem::take(&mut self.blobs);
        blobs.push((
            BLOB_TELEMETRY_PRESENT.to_owned(),
            encode_presence(&self.present),
        ));
        let manifest = Manifest {
            vm_count: self.vm_count,
            chunks: std::mem::take(&mut self.chunks),
            blobs,
        };
        write_then_rename(&self.dir.join(MANIFEST_NAME), &manifest.encode())?;
        fsync_dir(&self.dir)?;
        counter("store.write.manifest_commits").inc();
        Ok(())
    }
}

/// Writes a fully-resident trace to `dir` in one call: topology and
/// subscription blobs plus every record and series, committed by the
/// manifest rename.
///
/// # Errors
/// Any [`StoreError`] from the writer; on error no manifest is
/// committed.
pub fn write_trace(
    trace: &Trace,
    dir: impl Into<PathBuf>,
    opts: WriteOptions,
    par: &Parallelism,
) -> Result<(), StoreError> {
    let mut w = TraceWriter::create(dir, opts, par)?;
    w.add_blob(BLOB_TOPOLOGY, encode_topology(trace.topology()));
    w.add_blob(
        BLOB_SUBSCRIPTIONS,
        encode_subscriptions(trace.subscriptions()),
    );
    for vm in trace.vms() {
        let util = trace.util(vm.id);
        w.append_vm(vm, util.as_ref())?;
    }
    w.finish()
}

/// Convenience for callers that only have a directory: `true` if a
/// committed manifest exists there.
#[must_use]
pub fn store_exists(dir: &Path) -> bool {
    dir.join(MANIFEST_NAME).is_file()
}
