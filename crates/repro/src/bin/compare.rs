//! The private-vs-public differential summary table: every headline
//! metric of the study side by side, with the paper's expected ordering.

use cloudscope::analysis::compare::CloudComparison;
use cloudscope::prelude::*;
use cloudscope_repro::{MetricsOpt, ShapeChecks};

fn main() {
    let metrics = MetricsOpt::from_args();
    let generated = metrics.load_trace();
    let report = CharacterizationReport::analyze(&generated.trace, &ReportConfig::default())
        .expect("analysis");
    let comparison = CloudComparison::from_report(&report);
    println!("## Private-vs-public differential summary");
    println!("{comparison}");
    println!();

    let mut checks = ShapeChecks::new();
    checks.check(
        "every headline ordering matches the paper",
        comparison.orderings_holding() == comparison.metrics.len(),
        format!(
            "{}/{} orderings hold",
            comparison.orderings_holding(),
            comparison.metrics.len()
        ),
    );
    let ok = checks.finish("compare");
    metrics.write();
    std::process::exit(i32::from(!ok));
}
