//! Failure injection: degenerate configurations and partial data must
//! produce typed errors or graceful degradation, never panics.

use cloudscope::analysis::deployment::DeploymentSizeAnalysis;
use cloudscope::analysis::AnalysisError;
use cloudscope::cluster::{
    AllocationError, ClusterAllocator, PlacementPolicy, PlacementRequest, SpreadingRule,
};
use cloudscope::prelude::*;

#[test]
fn telemetry_free_trace_degrades_typed() {
    let mut config = GeneratorConfig::small(41);
    config.telemetry = false;
    let g = generate(&config);
    assert_eq!(g.trace.stats().vms_with_telemetry, 0);
    // Deployment analyses still work...
    let snapshot = SimTime::from_hours(60);
    assert!(DeploymentSizeAnalysis::run(&g.trace, snapshot).is_ok());
    // ...while telemetry-dependent ones fail with NoData, not a panic.
    let err = cloudscope::analysis::utilization::UtilizationDistribution::run(
        &g.trace,
        CloudKind::Private,
        100,
    )
    .unwrap_err();
    assert!(matches!(err, AnalysisError::NoData(_)));
    let err = cloudscope::analysis::correlation::node_vm_correlation_cdf(
        &g.trace,
        CloudKind::Public,
        100,
    )
    .unwrap_err();
    assert!(matches!(err, AnalysisError::NoData(_)));
    // The fig 5 classifier core: no telemetry means nothing classifies.
    let err = cloudscope::analysis::patterns::pattern_shares(
        &g.trace,
        CloudKind::Private,
        &PatternClassifier::default(),
        100,
    )
    .unwrap_err();
    assert!(matches!(err, AnalysisError::NoData(_)));
    // The fig 7(b) cross-region core.
    let err = cloudscope::analysis::correlation::region_pair_correlation_cdf(
        &g.trace,
        CloudKind::Public,
        "US",
    )
    .unwrap_err();
    assert!(matches!(err, AnalysisError::NoData(_)));
}

/// The whole extracted check surface — the same code path the repro
/// binaries and the robustness gate run — reports a typed error on a
/// telemetry-free trace instead of panicking partway through.
#[test]
fn full_check_surface_errors_typed_without_telemetry() {
    use cloudscope_repro::checks::{all_figure_checks, CheckProfile};
    let mut config = GeneratorConfig::small(44);
    config.telemetry = false;
    let g = generate(&config);
    let err = all_figure_checks(&g, &CheckProfile::medium()).unwrap_err();
    assert!(matches!(err, AnalysisError::NoData(_)));
}

#[test]
fn capacity_exhaustion_drops_vms_but_keeps_consistency() {
    let mut config = GeneratorConfig::small(42);
    // Starve the platform: a single tiny cluster per cloud per region.
    config.topology.racks_per_cluster = 1;
    config.topology.nodes_per_rack = 2;
    let g = generate(&config);
    let report = g.report;
    assert!(report.dropped_vms > 0, "starved platform must drop VMs");
    assert!(report.private_alloc.capacity_failures + report.public_alloc.capacity_failures > 0);
    // Every surviving record is placed and consistent.
    for vm in g.trace.vms() {
        assert!(vm.node.is_some() || vm.cluster.index() != u32::MAX);
        let cluster = g.trace.topology().cluster(vm.cluster).unwrap();
        assert_eq!(cluster.region, vm.region);
    }
    // The allocator never over-committed despite the pressure.
    let stats = g.trace.stats();
    assert_eq!(stats.private_vms + stats.public_vms, g.trace.vms().len());
}

#[test]
fn empty_cloud_analyses_error_cleanly() {
    // A topology with only private clusters: public analyses say NoData.
    let mut b = Topology::builder();
    let r = b.add_region("solo", 0, "US");
    let d = b.add_datacenter(r);
    b.add_cluster(d, CloudKind::Private, NodeSku::new(8, 64.0), 1, 2);
    let trace = Trace::builder(b.build()).build();
    let err = DeploymentSizeAnalysis::run(&trace, SimTime::ZERO).unwrap_err();
    assert!(matches!(err, AnalysisError::NoData(_)));
}

#[test]
fn allocator_failure_taxonomy_is_stable() {
    let mut b = Topology::builder();
    let r = b.add_region("x", 0, "US");
    let d = b.add_datacenter(r);
    let c = b.add_cluster(d, CloudKind::Public, NodeSku::new(4, 32.0), 1, 1);
    let topo = b.build();
    let mut alloc = ClusterAllocator::new(
        topo.cluster(c).unwrap(),
        PlacementPolicy::BestFit,
        SpreadingRule {
            max_same_service_per_rack: Some(1),
        },
    );
    let req = |vm: u64, cores: u32, service: u32| PlacementRequest {
        vm: VmId::new(vm),
        size: VmSize::new(cores, 1.0),
        service: ServiceId::new(service),
        priority: Priority::OnDemand,
    };
    alloc.place(req(0, 1, 7)).unwrap();
    // Same service, same rack: spreading violation (capacity exists).
    assert!(matches!(
        alloc.place(req(1, 1, 7)),
        Err(AllocationError::SpreadingViolation(_))
    ));
    // Different service but too big: capacity.
    assert!(matches!(
        alloc.place(req(2, 4, 8)),
        Err(AllocationError::InsufficientCapacity(_))
    ));
}

#[test]
fn kb_indexes_stay_consistent_under_corrupted_telemetry() {
    use cloudscope::faults::{corrupt_trace, FaultPlan};
    use cloudscope::kb::run_extraction_pipeline;

    // Extraction over a corrupted trace must leave the sharded store's
    // secondary indexes exactly consistent with its entries, and the
    // served results identical for any shard count.
    let g = generate(&GeneratorConfig::small(45));
    let (corrupted, _report) = corrupt_trace(&g.trace, &FaultPlan::standard(45));
    let classifier = PatternClassifier::default();

    let reference = KnowledgeBase::with_shards(1);
    let ref_stats = run_extraction_pipeline(&corrupted, &reference, &classifier, 2, 2);
    assert!(ref_stats.stored > 0, "corruption must not empty the KB");
    assert_eq!(
        reference.check_consistency().expect("reference consistent"),
        reference.len()
    );

    for shards in [2usize, 8] {
        let kb = KnowledgeBase::with_shards(shards);
        let stats = run_extraction_pipeline(&corrupted, &kb, &classifier, 2, 2);
        assert_eq!(stats, ref_stats);
        assert_eq!(kb.check_consistency().expect("consistent"), kb.len());
        assert_eq!(
            KbQuery::all().collect(&kb),
            KbQuery::all().collect(&reference),
            "shard count changed served results under corruption"
        );
        assert_eq!(
            KbQuery::spot_candidates().count(&kb),
            KbQuery::spot_candidates().count(&reference)
        );
    }
}

#[test]
fn partial_telemetry_windows_are_tolerated() {
    // Churn VMs have short telemetry windows; every analysis that
    // touches them must handle sub-day series without panicking.
    let g = generate(&GeneratorConfig::small(43));
    let classifier = PatternClassifier::default();
    let mut short_windows = 0;
    for vm in g.trace.vms() {
        if let Some(util) = g.trace.util(vm.id) {
            if util.len() < 288 {
                short_windows += 1;
                // Too short to classify: must be None, not a panic.
                assert_eq!(classifier.classify_vm(&g.trace, vm.id), None);
            }
        }
    }
    assert!(short_windows > 0, "churn produces short telemetry windows");
}
