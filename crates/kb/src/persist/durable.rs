//! [`DurableKb`]: the knowledge base behind a write-ahead log and
//! per-shard snapshots, with crash recovery.
//!
//! Every write (`upsert`/`feed`/`remove`) appends one framed record to
//! `wal.log` *before* mutating the in-memory store, under one mutex that
//! spans both steps — so the log order is exactly the apply order and a
//! snapshot cut taken under the same mutex is consistent. Reads go
//! straight to the inner [`KnowledgeBase`] (no lock beyond the store's
//! own shard locks). [`DurableKb::snapshot`] (serialized: one snapshot
//! at a time) writes one file per in-memory shard in parallel over
//! `cloudscope-par`, each committed by an atomic rename, commits the
//! generation by renaming the manifest, then rotates the WAL down to
//! the post-cut tail so log size and recovery cost track
//! since-last-snapshot volume, not lifetime volume. [`DurableKb::open`]
//! recovers: newest committed generation, then the WAL tail —
//! tolerating a torn final record — reproducing the pre-crash committed
//! state exactly, at *any* shard count.
//!
//! # Durability scope
//!
//! Under the default [`SyncPolicy::OsBuffered`], an acknowledged write
//! has reached the OS page cache: it survives any process crash or kill
//! (the failure mode the [`CrashPoint`] harness simulates), but an OS
//! crash or power failure may lose the most recent appends.
//! [`SyncPolicy::Always`] adds an `fdatasync` per append for
//! power-failure durability at a per-write latency cost. Snapshot
//! artifacts are always committed by write → fsync → rename → directory
//! fsync, whichever policy is active.

use super::crash::{CrashPlan, CrashPoint, CrashSwitch};
use super::snapshot::{self, Manifest};
use super::wal::{self, WalRecord};
use super::{codec, PersistError};
use crate::knowledge::WorkloadKnowledge;
use crate::store::{FeedOutcome, KbStore, KnowledgeBase, StoreError};
use cloudscope_model::ids::SubscriptionId;
use cloudscope_par::Parallelism;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// What recovery found when a [`DurableKb`] was opened.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Committed snapshot generation loaded (0 = no snapshot yet).
    pub generation: u64,
    /// Entries loaded from the snapshot files.
    pub snapshot_entries: usize,
    /// WAL records replayed after the snapshot cut.
    pub replayed_records: usize,
    /// Entries those records carried (upserts + removes).
    pub replayed_entries: usize,
    /// `true` if a torn final WAL record was dropped (the residue of a
    /// crash mid-append; everything before it was kept).
    pub torn_tail: bool,
}

/// What one completed [`DurableKb::snapshot`] wrote.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotReport {
    /// The generation this snapshot committed.
    pub generation: u64,
    /// Shard files written (one per in-memory shard).
    pub shard_files: usize,
    /// Entries captured across all shard files.
    pub entries: usize,
    /// WAL byte offset the snapshot cut at: recovery replays from here
    /// (until the post-commit rotation folds the cut away).
    pub wal_offset: u64,
}

/// How aggressively WAL appends are pushed to stable storage. Snapshot
/// artifacts (shard files, manifest, rotated segments) are always
/// fsynced and committed by rename plus directory fsync regardless of
/// policy; this knob only governs the per-append hot path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub enum SyncPolicy {
    /// Appends reach the OS page cache and flush on the kernel's
    /// schedule: durable against process crashes and kills (the
    /// failure mode the crash harness simulates), but an OS crash or
    /// power failure may lose the most recent appends. The default —
    /// no fsync on the write path.
    #[default]
    OsBuffered,
    /// `fdatasync` after every append: acknowledged records survive OS
    /// crashes and power failure (to the extent the storage stack
    /// honours flushes), at a large per-write latency cost.
    Always,
}

/// Serialized writer state: the WAL handle plus the bookkeeping that
/// must move in lockstep with it (the apply-to-memory step and the
/// snapshot generation counter).
#[derive(Debug)]
struct WalWriter {
    file: File,
    /// Valid bytes in `wal.log` (header included).
    len: u64,
    /// Segment sequence in the live log's header.
    seq: u64,
    /// Last snapshot generation started (committed or not; generations
    /// only ever grow, and only the manifest commits one).
    generation: u64,
    /// `false` after a failed append whose rollback (truncate back to
    /// `len`) also failed: the file may end in garbage, so no further
    /// append or rotation may trust it until the rollback succeeds.
    healthy: bool,
}

/// A [`KnowledgeBase`] that survives restarts: WAL on every write,
/// parallel per-shard snapshots, crash recovery on open.
///
/// # Example
/// ```no_run
/// use cloudscope_kb::{DurableKb, KbQuery};
///
/// let db = DurableKb::open("/var/lib/cloudscope/kb").unwrap();
/// // ... feed extraction sweeps through the KbStore trait ...
/// let snap = db.snapshot().unwrap();
/// println!("generation {} captured {} entries", snap.generation, snap.entries);
/// // After a restart, open() replays the WAL tail on top of the
/// // snapshot: the store is exactly what was committed before.
/// let restored = DurableKb::open("/var/lib/cloudscope/kb").unwrap();
/// println!("{} spot candidates", KbQuery::spot_candidates().count(restored.kb()));
/// ```
#[derive(Debug)]
pub struct DurableKb {
    kb: KnowledgeBase,
    dir: PathBuf,
    wal: Mutex<WalWriter>,
    /// Serializes whole snapshots: generation bump → shard files →
    /// manifest rename → cleanup → WAL rotation. Without it, a newer
    /// generation's cleanup could delete shard files an older in-flight
    /// snapshot is about to commit a manifest for.
    snapshots: Mutex<()>,
    sync: SyncPolicy,
    crash: Arc<CrashSwitch>,
    recovery: RecoveryStats,
}

impl DurableKb {
    /// Opens (creating if absent) the durable KB at `dir` with the
    /// default in-memory shard count, recovering any committed state:
    /// the newest valid snapshot generation plus the WAL tail.
    ///
    /// # Errors
    /// I/O errors, and loud [`PersistError::Corrupt`] /
    /// [`PersistError::Malformed`] for any checksum or format defect —
    /// silently loading corrupt state is never an option. The only
    /// tolerated defect is a torn *final* WAL record (a crash
    /// mid-append), which is dropped and truncated away.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, PersistError> {
        Self::open_with_shards(dir, None)
    }

    /// [`DurableKb::open`] with an explicit in-memory shard count. The
    /// shard count is a concurrency knob of *this* process: recovery
    /// accepts snapshots written at any other count and produces
    /// identical query results.
    ///
    /// # Errors
    /// See [`DurableKb::open`].
    ///
    /// # Panics
    /// Panics if `shards == Some(0)`.
    pub fn open_with_shards(
        dir: impl AsRef<Path>,
        shards: Option<usize>,
    ) -> Result<Self, PersistError> {
        Self::open_with(dir, shards, SyncPolicy::default())
    }

    /// [`DurableKb::open_with_shards`] with an explicit WAL
    /// [`SyncPolicy`] (see the module docs for the durability scope of
    /// each).
    ///
    /// # Errors
    /// See [`DurableKb::open`].
    ///
    /// # Panics
    /// Panics if `shards == Some(0)`.
    pub fn open_with(
        dir: impl AsRef<Path>,
        shards: Option<usize>,
        sync: SyncPolicy,
    ) -> Result<Self, PersistError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(|e| PersistError::io(&dir, e))?;
        for name in [
            "kb.persist.wal_appends",
            "kb.persist.wal_bytes",
            "kb.persist.wal_rotations",
            "kb.persist.snapshots_written",
            "kb.persist.recovery_replayed",
        ] {
            cloudscope_obs::counter(name).add(0);
        }
        let started = Instant::now();
        let kb = match shards {
            Some(n) => KnowledgeBase::with_shards(n),
            None => KnowledgeBase::new(),
        };
        let mut recovery = RecoveryStats::default();

        // 1. The manifest names the committed generation, if any.
        let manifest_path = dir.join(snapshot::MANIFEST_FILE);
        let manifest: Option<Manifest> = match std::fs::read(&manifest_path) {
            Ok(bytes) => Some(snapshot::decode_manifest(&bytes, snapshot::MANIFEST_FILE)?),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(PersistError::io(&manifest_path, e)),
        };

        // 2. Load every shard file of that generation.
        if let Some(m) = manifest {
            recovery.generation = m.generation;
            for shard in 0..m.shard_files as usize {
                let name = snapshot::shard_file_name(m.generation, shard);
                let path = dir.join(&name);
                let bytes = std::fs::read(&path).map_err(|e| PersistError::io(&path, e))?;
                let entries = snapshot::decode_shard_snapshot(&bytes, &name, m.generation, shard)?;
                recovery.snapshot_entries += entries.len();
                let outcome = kb.feed_batch(&entries);
                debug_assert_eq!(outcome.stored, entries.len(), "snapshot entries are unique");
            }
        }

        // 3. Replay the WAL tail on top. The segment sequence decides
        // where the tail starts: the manifest's cut offset points into
        // the segment it was taken in; a segment carrying the
        // manifest's generation was rotated after that commit and
        // replays whole.
        let wal_path = dir.join(wal::WAL_FILE);
        let buf = match std::fs::read(&wal_path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                if manifest.is_some() {
                    return Err(PersistError::Malformed {
                        file: wal::WAL_FILE.to_owned(),
                        reason: "manifest present but wal.log is missing".to_owned(),
                    });
                }
                // Create segment 0 whole via tmp → fsync → rename, so
                // a crash mid-creation can never leave a torn header.
                let header = wal::encode_header(0);
                let tmp_path = dir.join(format!("{}.tmp", wal::WAL_FILE));
                write_then_rename(&tmp_path, &wal_path, &header)?;
                fsync_dir(&dir)?;
                header.to_vec()
            }
            Err(e) => return Err(PersistError::io(&wal_path, e)),
        };
        let seq = wal::parse_seq(&buf, wal::WAL_FILE)?;
        let wal_offset = match manifest {
            None if seq == 0 => wal::WAL_HEADER as u64,
            None => {
                return Err(PersistError::Malformed {
                    file: wal::WAL_FILE.to_owned(),
                    reason: format!(
                        "log is rotated segment {seq} but the manifest that committed \
                         it is missing"
                    ),
                });
            }
            Some(m) if seq == m.wal_seq => m.wal_offset,
            Some(m) if seq == m.generation => wal::WAL_HEADER as u64,
            Some(m) => {
                return Err(PersistError::Malformed {
                    file: wal::WAL_FILE.to_owned(),
                    reason: format!(
                        "log segment {seq} matches neither the manifest's cut segment {} \
                         nor its generation {}",
                        m.wal_seq, m.generation
                    ),
                });
            }
        };
        let replayed = wal::replay(&buf, wal_offset, wal::WAL_FILE)?;
        recovery.torn_tail = replayed.torn_tail;
        recovery.replayed_records = replayed.records.len();
        for record in &replayed.records {
            recovery.replayed_entries += record.entry_count();
            match record {
                WalRecord::Feed(batch) => {
                    let _ = kb.feed_batch(batch);
                }
                WalRecord::Remove(id) => {
                    let _ = kb.remove(*id);
                }
            }
        }

        // 4. Truncate any torn tail and keep appending after the valid
        // prefix — new records must never follow garbage bytes.
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&wal_path)
            .map_err(|e| PersistError::io(&wal_path, e))?;
        file.set_len(replayed.valid_len)
            .map_err(|e| PersistError::io(&wal_path, e))?;
        file.seek(SeekFrom::End(0))
            .map_err(|e| PersistError::io(&wal_path, e))?;

        cloudscope_obs::counter("kb.persist.recovery_replayed")
            .add(recovery.replayed_entries as u64);
        cloudscope_obs::gauge("kb.persist.recovery_ns").set(started.elapsed().as_nanos() as f64);

        Ok(Self {
            kb,
            dir,
            wal: Mutex::new(WalWriter {
                file,
                len: replayed.valid_len,
                seq,
                generation: recovery.generation,
                healthy: true,
            }),
            snapshots: Mutex::new(()),
            sync,
            crash: Arc::new(CrashSwitch::default()),
            recovery,
        })
    }

    /// The in-memory store, for queries ([`KbQuery`](crate::KbQuery)
    /// terminals take `&KnowledgeBase`). Writes through this reference
    /// bypass the WAL and will not survive a restart — route writes
    /// through [`DurableKb::upsert`]/[`DurableKb::feed`]/
    /// [`DurableKb::remove`] (or the [`KbStore`] impl) instead.
    #[must_use]
    pub fn kb(&self) -> &KnowledgeBase {
        &self.kb
    }

    /// What recovery found when this handle was opened.
    #[must_use]
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.recovery
    }

    /// The directory this KB persists into.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Arms a crash: the durability layer will simulate a process kill
    /// at the planned point. A test hook — after the crash fires, every
    /// operation fails with [`PersistError::Crashed`] until the
    /// directory is recovered by a fresh [`DurableKb::open`].
    pub fn arm_crash(&self, plan: CrashPlan) {
        self.crash.arm(plan);
    }

    /// Queues `count` *transient* torn-append faults: each makes one
    /// WAL append write a partial frame and then fail with an I/O error
    /// — the ENOSPC/EIO shape — while the process stays alive. A test
    /// hook for the retry path: unlike [`DurableKb::arm_crash`], the
    /// handle stays usable, and a retried append must land on the valid
    /// log prefix, never after the failed append's garbage bytes.
    pub fn arm_torn_append_faults(&self, count: u32) {
        self.crash.arm_torn_appends(count);
    }

    /// `true` once an armed crash has fired.
    #[must_use]
    pub fn crashed(&self) -> bool {
        self.crash.is_dead()
    }

    fn lock_wal(&self) -> MutexGuard<'_, WalWriter> {
        self.wal.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Appends one framed record, observing the write-path crash points
    /// and fault injection. On success the record has reached the OS
    /// (and stable storage under [`SyncPolicy::Always`]); on failure
    /// the file is rolled back to the valid prefix, so a later retry
    /// appends after valid records — never after the failed append's
    /// partial bytes, which would corrupt the log mid-file.
    fn append(&self, wal: &mut WalWriter, payload: &[u8]) -> Result<(), PersistError> {
        self.crash.reached(CrashPoint::BeforeWalAppend)?;
        let wal_path = self.dir.join(wal::WAL_FILE);
        if !wal.healthy {
            // An earlier failed append could not be rolled back; retry
            // that rollback before accepting new records.
            restore_append_point(wal).map_err(|e| PersistError::io(&wal_path, e))?;
            wal.healthy = true;
        }
        let mut framed = Vec::with_capacity(codec::FRAME_HEADER + payload.len());
        codec::append_frame(&mut framed, payload);
        if self.crash.should_die(CrashPoint::MidWalRecord) {
            // A torn write: the first half of the record reaches disk,
            // the rest never does (and the process is dead, so no
            // rollback runs — recovery truncates the torn tail).
            let half = &framed[..framed.len() / 2];
            let _ = wal.file.write_all(half);
            wal.len += half.len() as u64;
            return Err(PersistError::Crashed);
        }
        let wrote = if self.crash.take_torn_fault() {
            // Injected transient failure: some bytes reach the file,
            // then the device errors — but the process lives on.
            let _ = wal.file.write_all(&framed[..framed.len() / 2]);
            Err(std::io::Error::other("injected torn-append fault"))
        } else {
            wal.file.write_all(&framed)
        };
        let synced = wrote.and_then(|()| match self.sync {
            SyncPolicy::Always => wal.file.sync_data(),
            SyncPolicy::OsBuffered => Ok(()),
        });
        if let Err(e) = synced {
            // Partial frame bytes may sit after the valid prefix now;
            // truncate them away and repark the cursor. If even that
            // fails, poison the writer so nothing appends after the
            // garbage.
            if restore_append_point(wal).is_err() {
                wal.healthy = false;
            }
            return Err(PersistError::io(&wal_path, e));
        }
        wal.len += framed.len() as u64;
        cloudscope_obs::counter("kb.persist.wal_appends").inc();
        cloudscope_obs::counter("kb.persist.wal_bytes").add(framed.len() as u64);
        self.crash.reached(CrashPoint::AfterWalAppend)?;
        Ok(())
    }

    /// Durably inserts or refreshes one entry: WAL append, then the
    /// in-memory upsert. Returns the store's verdict (`false` = stale).
    ///
    /// # Errors
    /// The WAL append's I/O error (the store is untouched then), or
    /// [`PersistError::Crashed`] under an armed crash plan.
    pub fn upsert(&self, knowledge: WorkloadKnowledge) -> Result<bool, PersistError> {
        let mut wal = self.lock_wal();
        self.append(
            &mut wal,
            &wal::encode_feed(std::slice::from_ref(&knowledge)),
        )?;
        Ok(self.kb.upsert(knowledge))
    }

    /// Durably ingests one batch as a single WAL record, then one
    /// in-memory batched write. Atomic under crash: recovery sees the
    /// whole batch or none of it.
    ///
    /// # Errors
    /// See [`DurableKb::upsert`].
    pub fn feed(&self, batch: &[WorkloadKnowledge]) -> Result<FeedOutcome, PersistError> {
        if batch.is_empty() {
            return Ok(FeedOutcome::default());
        }
        let mut wal = self.lock_wal();
        self.append(&mut wal, &wal::encode_feed(batch))?;
        Ok(self.kb.feed_batch(batch))
    }

    /// Durably removes one subscription.
    ///
    /// # Errors
    /// See [`DurableKb::upsert`].
    pub fn remove(
        &self,
        subscription: SubscriptionId,
    ) -> Result<Option<WorkloadKnowledge>, PersistError> {
        let mut wal = self.lock_wal();
        self.append(&mut wal, &wal::encode_remove(subscription))?;
        Ok(self.kb.remove(subscription))
    }

    /// Takes a snapshot with [`Parallelism::auto`] workers.
    ///
    /// # Errors
    /// See [`DurableKb::snapshot_with`].
    pub fn snapshot(&self) -> Result<SnapshotReport, PersistError> {
        self.snapshot_with(&Parallelism::auto())
    }

    /// Writes one snapshot file per in-memory shard (in parallel over
    /// `parallelism`), each committed by an atomic rename, commits the
    /// generation by atomically renaming the manifest, then rotates the
    /// WAL down to the post-cut tail. The cut is consistent: it is
    /// taken under the WAL mutex, so it sits exactly between two
    /// records. A crash anywhere before the manifest rename leaves the
    /// previous generation live and loses nothing — the WAL still
    /// covers every committed write; a crash after it (cleanup or
    /// rotation) has already committed the new generation.
    ///
    /// Snapshots are serialized on a dedicated mutex: a second
    /// concurrent call blocks until the first finishes, so a newer
    /// generation can never delete files an in-flight older one is
    /// still committing.
    ///
    /// # Errors
    /// I/O errors from the file writes/renames, or
    /// [`PersistError::Crashed`] under an armed crash plan.
    pub fn snapshot_with(&self, parallelism: &Parallelism) -> Result<SnapshotReport, PersistError> {
        let _one_at_a_time = self
            .snapshots
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let (generation, wal_seq, wal_offset, dumps) = {
            let mut wal = self.lock_wal();
            self.crash.reached(CrashPoint::BeforeSnapshot)?;
            wal.generation += 1;
            (
                wal.generation,
                wal.seq,
                wal.len,
                self.kb.export_shard_entries(),
            )
        };
        debug_assert!(wal_seq < generation, "rotation sequences trail generations");
        let entries: usize = dumps.iter().map(|(_, v)| v.len()).sum();

        // Parallel per-shard writes; each task is independent and each
        // file is atomically renamed, so any subset surviving a crash is
        // harmless (recovery only reads manifest-named generations).
        let results = parallelism.par_map(&dumps, |(shard, entries)| {
            self.write_shard_file(generation, *shard, entries)
        });
        for result in results {
            result?;
        }
        // One directory fsync covers all the shard renames, so the
        // manifest can never commit names the directory might forget.
        fsync_dir(&self.dir)?;

        self.crash.reached(CrashPoint::BeforeManifestRename)?;
        let manifest = Manifest {
            generation,
            shard_files: dumps.len() as u32,
            wal_seq,
            wal_offset,
        };
        let final_path = self.dir.join(snapshot::MANIFEST_FILE);
        let tmp_path = self.dir.join(format!("{}.tmp", snapshot::MANIFEST_FILE));
        write_then_rename(
            &tmp_path,
            &final_path,
            &snapshot::encode_manifest(&manifest),
        )?;
        fsync_dir(&self.dir)?;
        self.crash.reached(CrashPoint::AfterManifestRename)?;

        cloudscope_obs::counter("kb.persist.snapshots_written").add(dumps.len() as u64);
        self.cleanup_stale_generations(generation);
        self.rotate_wal(generation, wal_offset)?;
        Ok(SnapshotReport {
            generation,
            shard_files: dumps.len(),
            entries,
            wal_offset,
        })
    }

    /// Rewrites `wal.log` as a fresh segment (sequence = the committed
    /// `generation`) holding only the records after byte `cut` — the
    /// part no snapshot covers — so log size and recovery replay cost
    /// track since-last-snapshot write volume instead of lifetime
    /// volume. Runs strictly after the manifest rename: until the
    /// atomic segment swap lands, the manifest's `(wal_seq, wal_offset)`
    /// cut stays valid against the old segment, and afterwards recovery
    /// recognizes the rotated segment by its sequence. A crash or error
    /// mid-rotation leaves the old segment live — pure growth, no
    /// correctness loss.
    fn rotate_wal(&self, generation: u64, cut: u64) -> Result<(), PersistError> {
        let mut wal = self.lock_wal();
        if !wal.healthy {
            // A failed append's rollback is still pending; the file
            // tail is not trustworthy, so keep the old segment.
            return Ok(());
        }
        let wal_path = self.dir.join(wal::WAL_FILE);
        let tmp_path = self.dir.join(format!("{}.tmp", wal::WAL_FILE));
        let buf = std::fs::read(&wal_path).map_err(|e| PersistError::io(&wal_path, e))?;
        let tail =
            buf.get(cut as usize..wal.len as usize)
                .ok_or_else(|| PersistError::Malformed {
                    file: wal::WAL_FILE.to_owned(),
                    reason: format!(
                        "log shrank below its own append point ({} bytes, cursor {})",
                        buf.len(),
                        wal.len
                    ),
                })?;
        if self.crash.should_die(CrashPoint::MidWalRotate) {
            // A torn rotation temp that never replaces the live
            // segment; the manifest's cut keeps working.
            let _ = std::fs::write(&tmp_path, &wal::encode_header(generation)[..4]);
            return Err(PersistError::Crashed);
        }
        let io = |e| PersistError::io(&tmp_path, e);
        let mut file = File::create(&tmp_path).map_err(io)?;
        file.write_all(&wal::encode_header(generation))
            .map_err(io)?;
        file.write_all(tail).map_err(io)?;
        file.sync_all().map_err(io)?;
        let new_len = (wal::WAL_HEADER + tail.len()) as u64;
        std::fs::rename(&tmp_path, &wal_path).map_err(|e| PersistError::io(&wal_path, e))?;
        // The tmp handle owns the inode now named `wal.log`, cursor at
        // the end — swap it in before anything else can fail, so the
        // writer never keeps appending to the unlinked old inode.
        wal.file = file;
        wal.len = new_len;
        wal.seq = generation;
        cloudscope_obs::counter("kb.persist.wal_rotations").inc();
        fsync_dir(&self.dir)?;
        self.crash.reached(CrashPoint::AfterWalRotate)?;
        Ok(())
    }

    /// Writes one shard's snapshot file (tmp → fsync → rename),
    /// observing the snapshot-path crash points.
    fn write_shard_file(
        &self,
        generation: u64,
        shard: usize,
        entries: &[WorkloadKnowledge],
    ) -> Result<(), PersistError> {
        self.crash.alive()?;
        let bytes = snapshot::encode_shard_snapshot(generation, shard, entries);
        let name = snapshot::shard_file_name(generation, shard);
        let final_path = self.dir.join(&name);
        let tmp_path = self.dir.join(format!("{name}.tmp"));
        if self.crash.should_die(CrashPoint::MidShardSnapshot) {
            // A torn temp file that never gets renamed into place.
            let _ = std::fs::write(&tmp_path, &bytes[..bytes.len() / 2]);
            return Err(PersistError::Crashed);
        }
        write_then_rename(&tmp_path, &final_path, &bytes)?;
        self.crash.reached(CrashPoint::BetweenShardSnapshots)?;
        Ok(())
    }

    /// Best-effort removal of snapshot files from generations older
    /// than `live` and of leftover `.tmp` files. Only ever called under
    /// the snapshot mutex, after this generation's shard files and
    /// manifest have been renamed into place and before its WAL
    /// rotation starts — so every `.tmp` it can see is a dead leftover
    /// (a crashed snapshot or rotation), never an in-flight artifact.
    /// Failures are ignored: recovery never reads anything the manifest
    /// does not name.
    fn cleanup_stale_generations(&self, live: u64) {
        let Ok(dir) = std::fs::read_dir(&self.dir) else {
            return;
        };
        for entry in dir.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let stale_snap = name
                .strip_prefix("snap-")
                .and_then(|rest| rest.split('-').next())
                .and_then(|generation| generation.parse::<u64>().ok())
                .is_some_and(|generation| generation < live);
            if (stale_snap && name.ends_with(".snap")) || name.ends_with(".tmp") {
                let _ = std::fs::remove_file(entry.path());
            }
        }
    }
}

/// Writes `bytes` to `tmp`, fsyncs, and atomically renames onto
/// `target` — the commit idiom every snapshot artifact uses. Callers
/// follow up with [`fsync_dir`] once their batch of renames is done.
fn write_then_rename(tmp: &Path, target: &Path, bytes: &[u8]) -> Result<(), PersistError> {
    let io = |e| PersistError::io(tmp, e);
    let mut file = File::create(tmp).map_err(io)?;
    file.write_all(bytes).map_err(io)?;
    file.sync_all().map_err(io)?;
    drop(file);
    std::fs::rename(tmp, target).map_err(|e| PersistError::io(target, e))
}

/// Fsyncs the directory itself, making prior renames durable against
/// power loss (a rename alone only updates the in-memory dirent on
/// most filesystems).
fn fsync_dir(dir: &Path) -> Result<(), PersistError> {
    let handle = File::open(dir).map_err(|e| PersistError::io(dir, e))?;
    handle.sync_all().map_err(|e| PersistError::io(dir, e))
}

/// Truncates the WAL file back to `wal.len` and reparks the cursor
/// there — the rollback that keeps a failed append's partial bytes out
/// of the record stream.
fn restore_append_point(wal: &mut WalWriter) -> std::io::Result<()> {
    wal.file.set_len(wal.len)?;
    wal.file.seek(SeekFrom::Start(wal.len))?;
    Ok(())
}

impl KbStore for DurableKb {
    /// [`DurableKb::upsert`] surfaced as a [`KbStore`] write: WAL I/O
    /// failures become transient store errors the extraction pipeline
    /// already knows how to retry.
    fn try_upsert(&self, knowledge: WorkloadKnowledge) -> Result<bool, StoreError> {
        self.upsert(knowledge)
            .map_err(|_| StoreError::Transient("kb durability layer unavailable"))
    }

    /// One WAL record per batch, then the store's native batched write.
    /// If the append fails, the whole batch is reported failed (the
    /// record is all-or-nothing), preserving per-entry retryability.
    fn try_feed(&self, batch: &[WorkloadKnowledge]) -> FeedOutcome {
        match self.feed(batch) {
            Ok(outcome) => outcome,
            Err(_) => FeedOutcome {
                failures: (0..batch.len())
                    .map(|i| (i, StoreError::Transient("kb durability layer unavailable")))
                    .collect(),
                ..FeedOutcome::default()
            },
        }
    }
}
