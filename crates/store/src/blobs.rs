//! Codecs for the manifest's non-columnar blobs: the platform
//! topology, the subscription population, and the telemetry presence
//! bitmap.
//!
//! The topology is stored as a builder replay — the region, datacenter
//! and cluster-shape sequence that produced it. [`TopologyBuilder`]
//! assigns ids densely in insertion order and clusters are uniform
//! `racks × nodes_per_rack` grids, so replaying the sequence rebuilds
//! the exact same structure (verified by `PartialEq` in tests).

use crate::error::StoreError;
use crate::layout::{Dec, Enc};
use cloudscope_model::ids::{DatacenterId, SubscriptionId};
use cloudscope_model::subscription::{CloudKind, PartyKind, Subscription};
use cloudscope_model::topology::{NodeSku, Topology};
use std::path::Path;

/// Blob name for the topology replay.
pub const BLOB_TOPOLOGY: &str = "topology";
/// Blob name for the subscription table.
pub const BLOB_SUBSCRIPTIONS: &str = "subscriptions";
/// Blob name for the telemetry presence bitmap.
pub const BLOB_TELEMETRY_PRESENT: &str = "telemetry_present";

fn cloud_tag(c: CloudKind) -> u8 {
    match c {
        CloudKind::Private => 0,
        CloudKind::Public => 1,
    }
}

fn cloud_from_tag(t: u8) -> Result<CloudKind, String> {
    match t {
        0 => Ok(CloudKind::Private),
        1 => Ok(CloudKind::Public),
        other => Err(format!("unknown cloud tag {other}")),
    }
}

/// Serializes a topology as its builder replay.
#[must_use]
pub fn encode_topology(t: &Topology) -> Vec<u8> {
    let mut e = Enc::with_capacity(256);
    e.put_u32(t.regions().len() as u32);
    for r in t.regions() {
        e.put_str(&r.name);
        e.put_i64(i64::from(r.tz_offset_hours));
        e.put_str(&r.geo);
    }
    e.put_u32(t.datacenters().len() as u32);
    for d in t.datacenters() {
        e.put_u32(d.region.index());
    }
    e.put_u32(t.clusters().len() as u32);
    for c in t.clusters() {
        e.put_u32(c.datacenter.index());
        e.put_u8(cloud_tag(c.cloud));
        e.put_u32(c.sku.cores);
        e.put_f64(c.sku.memory_gb);
        e.put_u32(c.racks.len() as u32);
        // Clusters are uniform grids; the builder takes nodes-per-rack.
        e.put_u32((c.nodes.len() / c.racks.len()) as u32);
    }
    e.into_vec()
}

/// Rebuilds a topology from its builder replay.
pub fn decode_topology(path: &Path, bytes: &[u8]) -> Result<Topology, StoreError> {
    let fail = |e: String| StoreError::malformed(path, format!("topology blob: {e}"));
    let mut d = Dec::new(bytes);
    let mut b = Topology::builder();
    let region_count = d.take_u32().map_err(&fail)? as usize;
    if region_count > bytes.len() {
        return Err(fail(format!("region count {region_count} impossible")));
    }
    for _ in 0..region_count {
        let name = d.take_str().map_err(&fail)?;
        let tz = d.take_i64().map_err(&fail)?;
        let tz = i32::try_from(tz).map_err(|_| fail(format!("tz offset {tz} out of range")))?;
        let geo = d.take_str().map_err(&fail)?;
        b.add_region(name, tz, geo);
    }
    let dc_count = d.take_u32().map_err(&fail)? as usize;
    if dc_count > bytes.len() {
        return Err(fail(format!("datacenter count {dc_count} impossible")));
    }
    for i in 0..dc_count {
        let region = d.take_u32().map_err(&fail)?;
        if region as usize >= region_count {
            return Err(fail(format!("datacenter {i} references region {region}")));
        }
        b.add_datacenter(region.into());
    }
    let cluster_count = d.take_u32().map_err(&fail)? as usize;
    if cluster_count > bytes.len() {
        return Err(fail(format!("cluster count {cluster_count} impossible")));
    }
    for i in 0..cluster_count {
        let dc = d.take_u32().map_err(&fail)?;
        if dc as usize >= dc_count {
            return Err(fail(format!("cluster {i} references datacenter {dc}")));
        }
        let cloud = cloud_from_tag(d.take_u8().map_err(&fail)?).map_err(&fail)?;
        let cores = d.take_u32().map_err(&fail)?;
        let memory_gb = d.take_f64().map_err(&fail)?;
        if cores == 0 || !(memory_gb > 0.0 && memory_gb.is_finite()) {
            return Err(fail(format!(
                "cluster {i} has implausible SKU {cores}c/{memory_gb}g"
            )));
        }
        let racks = d.take_u32().map_err(&fail)? as usize;
        let nodes_per_rack = d.take_u32().map_err(&fail)? as usize;
        if racks == 0 || nodes_per_rack == 0 || racks.saturating_mul(nodes_per_rack) > (1 << 28) {
            return Err(fail(format!(
                "cluster {i} has implausible shape {racks}x{nodes_per_rack}"
            )));
        }
        b.add_cluster(
            DatacenterId::new(dc),
            cloud,
            NodeSku::new(cores, memory_gb),
            racks,
            nodes_per_rack,
        );
    }
    if d.remaining() != 0 {
        return Err(fail(format!("{} trailing bytes", d.remaining())));
    }
    Ok(b.build())
}

/// Serializes the subscription table.
#[must_use]
pub fn encode_subscriptions(subs: &[Subscription]) -> Vec<u8> {
    let mut e = Enc::with_capacity(4 + subs.len() * 2);
    e.put_u32(subs.len() as u32);
    for s in subs {
        e.put_u8(cloud_tag(s.cloud));
        e.put_u8(match s.party {
            PartyKind::FirstParty => 0,
            PartyKind::ThirdParty => 1,
        });
    }
    e.into_vec()
}

/// Rebuilds the subscription table (ids are dense, so only the
/// cloud/party tags travel).
pub fn decode_subscriptions(path: &Path, bytes: &[u8]) -> Result<Vec<Subscription>, StoreError> {
    let fail = |e: String| StoreError::malformed(path, format!("subscriptions blob: {e}"));
    let mut d = Dec::new(bytes);
    let count = d.take_u32().map_err(&fail)? as usize;
    if d.remaining() != count * 2 {
        return Err(fail(format!(
            "{} bytes for {count} subscriptions",
            d.remaining()
        )));
    }
    let mut subs = Vec::with_capacity(count);
    for i in 0..count {
        let cloud = cloud_from_tag(d.take_u8().map_err(&fail)?).map_err(&fail)?;
        let party = match d.take_u8().map_err(&fail)? {
            0 => PartyKind::FirstParty,
            1 => PartyKind::ThirdParty,
            other => return Err(fail(format!("subscription {i}: unknown party tag {other}"))),
        };
        if cloud == CloudKind::Private && party == PartyKind::ThirdParty {
            return Err(fail(format!(
                "subscription {i}: third-party in the private cloud"
            )));
        }
        subs.push(Subscription::new(
            SubscriptionId::new(i as u32),
            cloud,
            party,
        ));
    }
    Ok(subs)
}

/// Packs the per-VM telemetry presence flags into a bitmap.
#[must_use]
pub(crate) fn encode_presence(present: &[bool]) -> Vec<u8> {
    let mut e = Enc::with_capacity(8 + present.len() / 8 + 1);
    e.put_u64(present.len() as u64);
    let mut byte = 0u8;
    for (i, &p) in present.iter().enumerate() {
        if p {
            byte |= 1 << (i % 8);
        }
        if i % 8 == 7 {
            e.put_u8(byte);
            byte = 0;
        }
    }
    if !present.len().is_multiple_of(8) {
        e.put_u8(byte);
    }
    e.into_vec()
}

/// Unpacks the presence bitmap.
pub(crate) fn decode_presence(path: &Path, bytes: &[u8]) -> Result<Vec<bool>, StoreError> {
    let fail = |e: String| StoreError::malformed(path, format!("presence blob: {e}"));
    let mut d = Dec::new(bytes);
    let count = d.take_u64().map_err(&fail)? as usize;
    let expected = count.div_ceil(8);
    if d.remaining() != expected {
        return Err(fail(format!(
            "{} bitmap bytes for {count} VMs (expected {expected})",
            d.remaining()
        )));
    }
    let bits = d.take_slice(expected).map_err(&fail)?;
    Ok((0..count)
        .map(|i| bits[i / 8] & (1 << (i % 8)) != 0)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_topology() -> Topology {
        let mut b = Topology::builder();
        let r0 = b.add_region("us-west", -8, "US");
        let r1 = b.add_region("eu-north", 1, "EU");
        let d0 = b.add_datacenter(r0);
        let d1 = b.add_datacenter(r1);
        b.add_cluster(d0, CloudKind::Private, NodeSku::new(48, 384.0), 2, 4);
        b.add_cluster(d0, CloudKind::Public, NodeSku::new(64, 512.5), 3, 2);
        b.add_cluster(d1, CloudKind::Public, NodeSku::new(64, 512.5), 1, 2);
        b.build()
    }

    #[test]
    fn topology_replay_is_exact() {
        let t = sample_topology();
        let bytes = encode_topology(&t);
        let back = decode_topology(Path::new("m"), &bytes).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn topology_truncations_error() {
        let bytes = encode_topology(&sample_topology());
        for cut in 0..bytes.len() {
            assert!(
                decode_topology(Path::new("m"), &bytes[..cut]).is_err(),
                "truncation to {cut} accepted"
            );
        }
    }

    #[test]
    fn subscriptions_roundtrip_and_reject_invalid() {
        let subs = vec![
            Subscription::new(
                SubscriptionId::new(0),
                CloudKind::Private,
                PartyKind::FirstParty,
            ),
            Subscription::new(
                SubscriptionId::new(1),
                CloudKind::Public,
                PartyKind::ThirdParty,
            ),
            Subscription::new(
                SubscriptionId::new(2),
                CloudKind::Public,
                PartyKind::FirstParty,
            ),
        ];
        let bytes = encode_subscriptions(&subs);
        let back = decode_subscriptions(Path::new("m"), &bytes).unwrap();
        assert_eq!(back, subs);
        // private + third-party must be rejected, not panic.
        let mut evil = bytes.clone();
        evil[6] = 0; // cloud of sub 1 -> private (party stays third-party)
        assert!(decode_subscriptions(Path::new("m"), &evil).is_err());
    }

    #[test]
    fn presence_roundtrip_all_lengths() {
        for len in 0..20usize {
            let present: Vec<bool> = (0..len).map(|i| i % 3 == 0).collect();
            let bytes = encode_presence(&present);
            assert_eq!(decode_presence(Path::new("m"), &bytes).unwrap(), present);
        }
        assert!(decode_presence(Path::new("m"), &[1, 2]).is_err());
    }
}
