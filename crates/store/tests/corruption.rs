//! Corruption fuzz suite: every single-byte truncation and every
//! single-bit flip of every store file must surface as a loud, typed
//! [`StoreError`] naming the damaged file — never a silently wrong
//! trace. Also covers missing chunks and stale manifests.

mod common;

use cloudscope_par::Parallelism;
use cloudscope_store::{
    write_trace, PrefetchConfig, Projection, StoreError, StoreTelemetry, TelemetryMode,
    TraceReader, WriteOptions,
};
use common::{trace_from_seeds, TempDir};
use std::path::Path;

/// A small store: every chunk kind present, a few KiB total, so the
/// every-offset loops stay fast.
fn build_store(dir: &Path) {
    let seeds: Vec<u64> = (0..40u64)
        .map(|i| i.wrapping_mul(0xA076_1D64_78BD_642F))
        .collect();
    let trace = trace_from_seeds(&seeds);
    write_trace(
        &trace,
        dir,
        WriteOptions {
            target_chunk_rows: 16,
            target_chunk_bytes: 2048,
            level: 2,
        },
        &Parallelism::with_workers(2),
    )
    .unwrap();
}

/// Fully reads the store: open, every chunk, the assembled trace.
/// Returns the first error. A corrupted store must never get through
/// this whole path cleanly.
fn read_everything(dir: &Path) -> Result<(), StoreError> {
    let reader = TraceReader::open(dir)?;
    let entries: Vec<_> = reader.chunks(Default::default()).cloned().collect();
    for entry in &entries {
        reader.read_chunk(entry, Projection::all())?;
    }
    reader.read_trace(TelemetryMode::Resident, &Parallelism::with_workers(1))?;
    Ok(())
}

/// Offset stride for the every-offset loops: exhaustive in release —
/// the mode check.sh runs this suite in — and strided in debug so the
/// tier-1 workspace test run stays fast.
fn stride() -> usize {
    if cfg!(debug_assertions) {
        13
    } else {
        1
    }
}

/// Bits to flip per sampled byte: all eight in release, one in debug.
fn bits() -> std::ops::Range<u8> {
    if cfg!(debug_assertions) {
        0..1
    } else {
        0..8
    }
}

/// The store's files, manifest last (largest blast radius first).
fn store_files(dir: &Path) -> Vec<std::path::PathBuf> {
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    files.sort();
    files
}

#[test]
fn every_truncation_of_every_file_errors_loudly() {
    let dir = TempDir::new("fuzz-trunc");
    build_store(dir.path());
    assert!(read_everything(dir.path()).is_ok(), "clean store must read");

    for file in store_files(dir.path()) {
        let clean = std::fs::read(&file).unwrap();
        let name = file.file_name().unwrap().to_string_lossy().into_owned();
        for cut in (0..clean.len()).step_by(stride()) {
            std::fs::write(&file, &clean[..cut]).unwrap();
            let err = read_everything(dir.path())
                .expect_err(&format!("{name} truncated to {cut} bytes read cleanly"));
            let msg = err.to_string();
            assert!(
                msg.contains(&name),
                "{name} truncated to {cut}: error does not name the file: {msg}"
            );
        }
        std::fs::write(&file, &clean).unwrap();
        assert!(read_everything(dir.path()).is_ok(), "restore after {name}");
    }
}

#[test]
fn every_bit_flip_of_every_file_errors_loudly() {
    let dir = TempDir::new("fuzz-flip");
    build_store(dir.path());

    for file in store_files(dir.path()) {
        let clean = std::fs::read(&file).unwrap();
        let name = file.file_name().unwrap().to_string_lossy().into_owned();
        for byte in (0..clean.len()).step_by(stride()) {
            for bit in bits() {
                let mut evil = clean.clone();
                evil[byte] ^= 1 << bit;
                std::fs::write(&file, &evil).unwrap();
                let err = read_everything(dir.path()).expect_err(&format!(
                    "{name} with byte {byte} bit {bit} flipped read cleanly"
                ));
                let msg = err.to_string();
                assert!(
                    msg.contains(&name),
                    "{name} byte {byte} bit {bit}: error does not name the file: {msg}"
                );
            }
        }
        std::fs::write(&file, &clean).unwrap();
    }
    assert!(read_everything(dir.path()).is_ok());
}

#[test]
fn chunk_errors_name_file_and_chunk() {
    let dir = TempDir::new("fuzz-naming");
    build_store(dir.path());
    let reader = TraceReader::open(dir.path()).unwrap();
    let entry = reader.chunks(Default::default()).next().unwrap().clone();
    let chunk_name = entry.meta.name();
    let file = dir.path().join(format!("{chunk_name}.chunk"));
    let mut bytes = std::fs::read(&file).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&file, &bytes).unwrap();

    let err = reader.read_chunk(&entry, Projection::all()).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains(&chunk_name),
        "error must name the chunk: {msg}"
    );
    assert!(
        msg.contains(&file.display().to_string()),
        "error must name the file: {msg}"
    );
    assert!(
        matches!(err, StoreError::Corrupt { .. }),
        "bit flip must classify as corruption, got {err:?}"
    );
}

#[test]
fn missing_chunk_is_loud_at_open() {
    let dir = TempDir::new("fuzz-missing");
    build_store(dir.path());
    let reader = TraceReader::open(dir.path()).unwrap();
    let victim = reader
        .chunks(Default::default())
        .next()
        .unwrap()
        .meta
        .name();
    drop(reader);
    std::fs::remove_file(dir.path().join(format!("{victim}.chunk"))).unwrap();

    let err = TraceReader::open(dir.path()).unwrap_err();
    assert!(
        matches!(&err, StoreError::Missing { chunk, .. } if *chunk == victim),
        "expected Missing for {victim}, got {err:?}"
    );
    assert!(err.to_string().contains(&victim));
}

#[test]
fn stale_manifest_is_loud_at_open() {
    let dir = TempDir::new("fuzz-stale");
    build_store(dir.path());
    let reader = TraceReader::open(dir.path()).unwrap();
    let victim = reader
        .chunks(Default::default())
        .next()
        .unwrap()
        .meta
        .name();
    drop(reader);
    // The chunk grew after the manifest was committed: stale manifest.
    let path = dir.path().join(format!("{victim}.chunk"));
    let mut bytes = std::fs::read(&path).unwrap();
    bytes.push(0);
    std::fs::write(&path, &bytes).unwrap();

    let err = TraceReader::open(dir.path()).unwrap_err();
    let msg = err.to_string();
    assert!(
        matches!(err, StoreError::Corrupt { .. }) && msg.contains("stale manifest"),
        "expected a stale-manifest report, got {msg}"
    );
    assert!(msg.contains(&victim), "must name the chunk: {msg}");
}

#[test]
fn missing_manifest_is_not_a_store() {
    let dir = TempDir::new("fuzz-nomanifest");
    build_store(dir.path());
    std::fs::remove_file(dir.path().join("manifest.csm")).unwrap();
    assert!(!cloudscope_store::store_exists(dir.path()));
    let err = TraceReader::open(dir.path()).unwrap_err();
    assert!(matches!(err, StoreError::Io { .. }), "got {err:?}");
}

/// A chunk file swapped with another (valid!) chunk file must still be
/// rejected: internal checksums pass, but the manifest CRC, length, or
/// header identity disagrees.
#[test]
fn swapped_chunk_files_are_rejected() {
    let dir = TempDir::new("fuzz-swap");
    build_store(dir.path());
    let reader = TraceReader::open(dir.path()).unwrap();
    let names: Vec<String> = reader
        .chunks(Default::default())
        .map(|e| e.meta.name())
        .collect();
    assert!(names.len() >= 2, "need two chunks to swap");
    drop(reader);
    let a = dir.path().join(format!("{}.chunk", names[0]));
    let b = dir.path().join(format!("{}.chunk", names[1]));
    let (ba, bb) = (std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap());
    std::fs::write(&a, &bb).unwrap();
    std::fs::write(&b, &ba).unwrap();
    assert!(
        read_everything(dir.path()).is_err(),
        "swapped chunk files read cleanly"
    );
}

/// A bit flip decoded asynchronously by a prefetch worker must surface
/// as a typed [`StoreError`] on the thread that demands the chunk —
/// never a silently wrong series, and never out of order: VMs whose
/// series avoid the damaged chunk still decode byte-identically.
#[test]
fn prefetched_corruption_fails_on_the_consuming_thread() {
    let dir = TempDir::new("fuzz-prefetch");
    build_store(dir.path());
    let trace = trace_from_seeds(
        &(0..40u64)
            .map(|i| i.wrapping_mul(0xA076_1D64_78BD_642F))
            .collect::<Vec<_>>(),
    );

    // Corrupt a chunk that has a lane predecessor, so the id-ordered
    // sweep's readahead planner targets it before any demand does.
    let reader = TraceReader::open(dir.path()).unwrap();
    let mut lanes: std::collections::HashMap<(u32, u8), Vec<_>> = std::collections::HashMap::new();
    for entry in reader
        .chunks(cloudscope_store::ScanFilter::all().kind(cloudscope_store::ChunkKind::Telemetry))
    {
        lanes
            .entry((entry.meta.region, entry.meta.day))
            .or_default()
            .push(entry.clone());
    }
    drop(reader);
    let mut lane = lanes
        .into_values()
        .find(|chunks| chunks.len() >= 2)
        .expect("a lane with a successor chunk");
    lane.sort_by_key(|e| e.meta.seq);
    let victim = lane[1].meta.name();
    let file = dir.path().join(format!("{victim}.chunk"));
    let mut bytes = std::fs::read(&file).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&file, &bytes).unwrap();

    let registry = std::sync::Arc::new(cloudscope_obs::Registry::new());
    let (issued, failures) = cloudscope_obs::scoped(&registry, || {
        let telemetry = StoreTelemetry::open_with(
            dir.path(),
            2,
            PrefetchConfig {
                workers: 2,
                depth: 2,
                window_bytes: 1 << 20,
            },
            Parallelism::with_workers(2),
        )
        .unwrap();

        // Id-ordered sweep, exactly like an out-of-core analysis pass.
        let mut failures = Vec::new();
        for vm in trace.vms() {
            match telemetry.try_load(vm.id) {
                Ok(series) => assert_eq!(series, trace.util(vm.id), "vm {:?}", vm.id),
                Err(err) => {
                    assert!(
                        matches!(err, StoreError::Corrupt { .. }),
                        "expected Corrupt, got {err:?}"
                    );
                    assert!(
                        err.to_string().contains(&victim),
                        "error must name the damaged chunk: {err}"
                    );
                    // The failure is sticky: a retry re-fails rather
                    // than serving a half-decoded chunk.
                    assert!(telemetry.try_load(vm.id).is_err(), "retry must re-fail");
                    failures.push(vm.id);
                }
            }
        }
        let issued = registry.snapshot().counter("store.prefetch.issued");
        (issued, failures)
    });
    assert!(
        !failures.is_empty(),
        "no demand ever touched the corrupted chunk"
    );
    assert!(
        issued.unwrap_or(0) >= 1,
        "the readahead planner never issued a prefetch: {issued:?}"
    );
}

/// Corruption is detected under projection too — the file-level CRC
/// guards even the columns a projected read skips decompressing.
#[test]
fn projection_does_not_weaken_integrity() {
    let dir = TempDir::new("fuzz-projected");
    build_store(dir.path());
    let reader = TraceReader::open(dir.path()).unwrap();
    let entry = reader.chunks(Default::default()).next().unwrap().clone();
    let file = dir.path().join(entry.meta.file_name());
    let clean = std::fs::read(&file).unwrap();
    // Flip one bit in every byte position; a projected read must fail
    // for all of them even though it decodes only the id column.
    let projection = Projection::columns(&[]);
    for byte in (0..clean.len()).step_by(7) {
        let mut evil = clean.clone();
        evil[byte] ^= 0x01;
        std::fs::write(&file, &evil).unwrap();
        assert!(
            reader.read_chunk(&entry, projection).is_err(),
            "projected read survived a flip at byte {byte}"
        );
    }
}
