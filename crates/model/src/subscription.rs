//! Subscriptions and cloud platform membership.

use crate::ids::SubscriptionId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which cloud platform a workload runs on.
///
/// In the study, private and public cloud workloads run in disjoint sets of
/// clusters of the same provider.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CloudKind {
    /// The private cloud hosting the provider's own (first-party) services.
    Private,
    /// The public cloud shared by first- and third-party customers.
    Public,
}

impl CloudKind {
    /// Both cloud kinds, private first (the paper's normalization baseline).
    pub const BOTH: [CloudKind; 2] = [CloudKind::Private, CloudKind::Public];
}

impl fmt::Display for CloudKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CloudKind::Private => "private",
            CloudKind::Public => "public",
        })
    }
}

/// Who owns a workload: the cloud provider itself or an external customer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PartyKind {
    /// First-party: the provider's own services (e.g. productivity suites).
    FirstParty,
    /// Third-party: external customer workloads; opaque to the platform.
    ThirdParty,
}

impl fmt::Display for PartyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PartyKind::FirstParty => "first-party",
            PartyKind::ThirdParty => "third-party",
        })
    }
}

/// A subscription: the unit of ownership. Each user creates one or more
/// subscriptions; a subscription deploys VMs into one or more regions.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Subscription {
    /// Unique identifier.
    pub id: SubscriptionId,
    /// Which cloud platform the subscription's clusters belong to.
    pub cloud: CloudKind,
    /// Ownership class. Private-cloud subscriptions are always first-party;
    /// public-cloud subscriptions may be either.
    pub party: PartyKind,
}

impl Subscription {
    /// Creates a subscription record.
    ///
    /// # Panics
    /// Panics if a third-party subscription is placed in the private cloud,
    /// which the studied platform does not allow.
    #[must_use]
    pub fn new(id: SubscriptionId, cloud: CloudKind, party: PartyKind) -> Self {
        assert!(
            !(cloud == CloudKind::Private && party == PartyKind::ThirdParty),
            "the private cloud hosts only first-party workloads"
        );
        Self { id, cloud, party }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn private_cloud_is_first_party_only() {
        let s = Subscription::new(
            SubscriptionId::new(1),
            CloudKind::Private,
            PartyKind::FirstParty,
        );
        assert_eq!(s.cloud, CloudKind::Private);
    }

    #[test]
    #[should_panic(expected = "first-party")]
    fn third_party_in_private_cloud_rejected() {
        let _ = Subscription::new(
            SubscriptionId::new(1),
            CloudKind::Private,
            PartyKind::ThirdParty,
        );
    }

    #[test]
    fn public_cloud_hosts_both_parties() {
        for party in [PartyKind::FirstParty, PartyKind::ThirdParty] {
            let s = Subscription::new(SubscriptionId::new(2), CloudKind::Public, party);
            assert_eq!(s.party, party);
        }
    }

    #[test]
    fn displays() {
        assert_eq!(CloudKind::Private.to_string(), "private");
        assert_eq!(CloudKind::Public.to_string(), "public");
        assert_eq!(PartyKind::FirstParty.to_string(), "first-party");
    }
}
