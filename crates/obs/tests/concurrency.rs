//! Property tests for registry behaviour under concurrent updates: the
//! registry must never lose an increment and histogram bucket counts
//! must always account for every observation.

use cloudscope_obs::{MetricValue, Registry};
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// N threads each bump a private counter and one shared counter;
    /// every increment must be visible in the final snapshot.
    #[test]
    fn concurrent_counter_increments_are_exact(
        threads in 1usize..8,
        per_thread in prop::collection::vec(1u64..200, 1..8),
    ) {
        let reg = Arc::new(Registry::new());
        let plan: Vec<u64> = (0..threads)
            .map(|t| per_thread[t % per_thread.len()])
            .collect();
        std::thread::scope(|scope| {
            for (t, &increments) in plan.iter().enumerate() {
                let reg = Arc::clone(&reg);
                scope.spawn(move || {
                    let own = reg.counter(&format!("test.thread_{t}.ops"));
                    let shared = reg.counter("test.shared.ops");
                    for _ in 0..increments {
                        own.inc();
                        shared.inc();
                    }
                });
            }
        });
        let snap = reg.snapshot();
        for (t, &increments) in plan.iter().enumerate() {
            prop_assert_eq!(
                snap.counter(&format!("test.thread_{t}.ops")),
                Some(increments)
            );
        }
        prop_assert_eq!(
            snap.counter("test.shared.ops"),
            Some(plan.iter().sum::<u64>())
        );
    }

    /// Bucket counts sum to the observation count, and the recorded sum
    /// matches, no matter how observations interleave across threads.
    #[test]
    fn concurrent_histogram_buckets_sum_to_count(
        threads in 1usize..6,
        values in prop::collection::vec(any::<u64>(), 1..64),
    ) {
        let reg = Arc::new(Registry::new());
        std::thread::scope(|scope| {
            for chunk in values.chunks(values.len().div_ceil(threads)) {
                let reg = Arc::clone(&reg);
                scope.spawn(move || {
                    let h = reg.histogram("test.hist");
                    for &v in chunk {
                        h.observe(v);
                    }
                });
            }
        });
        let snap = reg.snapshot();
        match snap.metrics.get("test.hist") {
            Some(MetricValue::Histogram(h)) => {
                prop_assert_eq!(h.count, values.len() as u64);
                prop_assert_eq!(
                    h.buckets.iter().map(|(_, n)| n).sum::<u64>(),
                    values.len() as u64
                );
                let expected_sum = values
                    .iter()
                    .fold(0u64, |acc, &v| acc.wrapping_add(v));
                prop_assert_eq!(h.sum, expected_sum);
            }
            other => prop_assert!(false, "expected histogram, got {:?}", other),
        }
    }
}

/// Deterministic smoke check outside proptest: a snapshot taken while
/// writers are mid-flight is internally consistent (buckets account for
/// at least `count` observations).
#[test]
fn snapshot_under_load_is_consistent() {
    let reg = Arc::new(Registry::new());
    std::thread::scope(|scope| {
        let writer_reg = Arc::clone(&reg);
        scope.spawn(move || {
            let h = writer_reg.histogram("test.live");
            for v in 0..20_000u64 {
                h.observe(v);
            }
        });
        for _ in 0..50 {
            let snap = reg.snapshot();
            if let Some(MetricValue::Histogram(h)) = snap.metrics.get("test.live") {
                let bucket_total: u64 = h.buckets.iter().map(|(_, n)| n).sum();
                assert!(
                    bucket_total >= h.count,
                    "buckets {bucket_total} must cover count {}",
                    h.count
                );
            }
        }
    });
    let final_snap = reg.snapshot();
    match final_snap.metrics.get("test.live") {
        Some(MetricValue::Histogram(h)) => {
            assert_eq!(h.count, 20_000);
            assert_eq!(h.buckets.iter().map(|(_, n)| n).sum::<u64>(), 20_000);
        }
        other => panic!("expected histogram, got {other:?}"),
    }
}
