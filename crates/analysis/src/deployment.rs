//! Deployment-size analyses (Figure 1): VMs per subscription and
//! subscriptions per cluster.

use crate::error::AnalysisError;
use cloudscope_model::prelude::*;
use cloudscope_stats::{BoxPlot, Ecdf};
use std::collections::{HashMap, HashSet};

/// Whether `vm` belongs to `cloud`, resolved through the dense
/// subscription table (the record itself does not carry the cloud).
pub(crate) fn record_in_cloud(
    vm: &VmRecord,
    subscriptions: &[Subscription],
    cloud: CloudKind,
) -> bool {
    subscriptions
        .get(vm.subscription.as_usize())
        .is_some_and(|s| s.cloud == cloud)
}

/// ECDF of the number of alive VMs per subscription at time `at`
/// (Figure 1(a)). Subscriptions with zero alive VMs are excluded, as the
/// trace only records deploying subscriptions.
///
/// # Errors
/// Returns [`AnalysisError::NoData`] if no subscription of `cloud` has an
/// alive VM at `at`.
pub fn vms_per_subscription_cdf(
    trace: &Trace,
    cloud: CloudKind,
    at: SimTime,
) -> Result<Ecdf, AnalysisError> {
    vms_per_subscription_cdf_from(trace.vms(), trace.subscriptions(), cloud, at)
}

/// [`vms_per_subscription_cdf`] over a bare record slice — the entry
/// point for metadata-only scans (e.g. a store read pushed down to the
/// snapshot's creation days). `records` may be any superset of the VMs
/// alive at `at`; the liveness filter still applies.
///
/// # Errors
/// Returns [`AnalysisError::NoData`] if no subscription of `cloud` has an
/// alive VM at `at`.
pub fn vms_per_subscription_cdf_from(
    records: &[VmRecord],
    subscriptions: &[Subscription],
    cloud: CloudKind,
    at: SimTime,
) -> Result<Ecdf, AnalysisError> {
    let mut counts: HashMap<SubscriptionId, u64> = HashMap::new();
    for vm in records {
        if record_in_cloud(vm, subscriptions, cloud) && vm.node.is_some() && vm.alive_at(at) {
            *counts.entry(vm.subscription).or_insert(0) += 1;
        }
    }
    if counts.is_empty() {
        return Err(AnalysisError::NoData("vms per subscription"));
    }
    Ecdf::from_iter(counts.into_values().map(|c| c as f64)).map_err(AnalysisError::from)
}

/// Box-plot of the number of distinct subscriptions with at least one
/// alive VM per cluster at time `at` (Figure 1(b)). Clusters hosting no
/// VM are skipped.
///
/// # Errors
/// Returns [`AnalysisError::NoData`] if no cluster of `cloud` hosts VMs.
pub fn subscriptions_per_cluster(
    trace: &Trace,
    cloud: CloudKind,
    at: SimTime,
) -> Result<BoxPlot, AnalysisError> {
    subscriptions_per_cluster_from(trace.vms(), trace.subscriptions(), cloud, at)
}

/// [`subscriptions_per_cluster`] over a bare record slice.
///
/// # Errors
/// Returns [`AnalysisError::NoData`] if no cluster of `cloud` hosts VMs.
pub fn subscriptions_per_cluster_from(
    records: &[VmRecord],
    subscriptions: &[Subscription],
    cloud: CloudKind,
    at: SimTime,
) -> Result<BoxPlot, AnalysisError> {
    let mut per_cluster: HashMap<ClusterId, HashSet<SubscriptionId>> = HashMap::new();
    for vm in records {
        if record_in_cloud(vm, subscriptions, cloud) && vm.node.is_some() && vm.alive_at(at) {
            per_cluster
                .entry(vm.cluster)
                .or_default()
                .insert(vm.subscription);
        }
    }
    if per_cluster.is_empty() {
        return Err(AnalysisError::NoData("subscriptions per cluster"));
    }
    BoxPlot::new(
        per_cluster
            .into_values()
            .map(|subs| subs.len() as f64)
            .collect(),
    )
    .map_err(AnalysisError::from)
}

/// The Figure 1 bundle for both clouds, plus the headline ratio the paper
/// reports (a public cluster hosts ≈ 20× the subscriptions of a private
/// one at the median).
#[derive(Debug, Clone, PartialEq)]
pub struct DeploymentSizeAnalysis {
    /// Fig 1(a), private curve.
    pub private_vms_per_subscription: Ecdf,
    /// Fig 1(a), public curve.
    pub public_vms_per_subscription: Ecdf,
    /// Fig 1(b), private box.
    pub private_subscriptions_per_cluster: BoxPlot,
    /// Fig 1(b), public box.
    pub public_subscriptions_per_cluster: BoxPlot,
    /// Median subscriptions-per-cluster ratio, public / private.
    pub subscriptions_per_cluster_ratio: f64,
}

impl DeploymentSizeAnalysis {
    /// Runs the Figure 1 analyses at time `at`.
    ///
    /// # Errors
    /// Returns [`AnalysisError::NoData`] if either cloud is empty at `at`.
    pub fn run(trace: &Trace, at: SimTime) -> Result<Self, AnalysisError> {
        Self::run_from_records(trace.vms(), trace.subscriptions(), at)
    }

    /// Runs the Figure 1 analyses over a bare record slice — every
    /// input is point-in-time metadata, so a pushed-down store read of
    /// the snapshot's creation days reproduces [`DeploymentSizeAnalysis::run`]
    /// exactly without materializing a [`Trace`].
    ///
    /// # Errors
    /// Returns [`AnalysisError::NoData`] if either cloud is empty at `at`.
    pub fn run_from_records(
        records: &[VmRecord],
        subscriptions: &[Subscription],
        at: SimTime,
    ) -> Result<Self, AnalysisError> {
        let private_vms =
            vms_per_subscription_cdf_from(records, subscriptions, CloudKind::Private, at)?;
        let public_vms =
            vms_per_subscription_cdf_from(records, subscriptions, CloudKind::Public, at)?;
        let private_clusters =
            subscriptions_per_cluster_from(records, subscriptions, CloudKind::Private, at)?;
        let public_clusters =
            subscriptions_per_cluster_from(records, subscriptions, CloudKind::Public, at)?;
        let ratio = if private_clusters.median > 0.0 {
            public_clusters.median / private_clusters.median
        } else {
            f64::INFINITY
        };
        Ok(Self {
            private_vms_per_subscription: private_vms,
            public_vms_per_subscription: public_vms,
            private_subscriptions_per_cluster: private_clusters,
            public_subscriptions_per_cluster: public_clusters,
            subscriptions_per_cluster_ratio: ratio,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::tiny_trace;

    #[test]
    fn counts_alive_vms_per_subscription() {
        let trace = tiny_trace();
        let at = SimTime::from_hours(24);
        let cdf = vms_per_subscription_cdf(&trace, CloudKind::Private, at).unwrap();
        // sub0 holds 6 standing VMs; sub1's VM is already gone at 24h.
        assert_eq!(cdf.max(), 6.0);
        assert_eq!(cdf.len(), 1);
        let public = vms_per_subscription_cdf(&trace, CloudKind::Public, at).unwrap();
        assert!(public.median() <= 2.0);
    }

    #[test]
    fn cluster_subscription_counts() {
        let trace = tiny_trace();
        let at = SimTime::from_hours(24);
        let private = subscriptions_per_cluster(&trace, CloudKind::Private, at).unwrap();
        assert_eq!(private.median, 1.0, "one private subscription");
        let public = subscriptions_per_cluster(&trace, CloudKind::Public, at).unwrap();
        assert!(
            public.median >= 2.0,
            "several public subscriptions share a cluster"
        );
    }

    #[test]
    fn full_analysis_ratio() {
        let trace = tiny_trace();
        let analysis = DeploymentSizeAnalysis::run(&trace, SimTime::from_hours(24)).unwrap();
        assert!(analysis.subscriptions_per_cluster_ratio >= 2.0);
        // Private deployments are larger.
        assert!(
            analysis.private_vms_per_subscription.median()
                > analysis.public_vms_per_subscription.median()
        );
    }

    #[test]
    fn dead_time_has_no_data() {
        let trace = tiny_trace();
        // Far before any VM exists.
        let at = SimTime::from_minutes(-100 * 24 * 60);
        assert!(matches!(
            vms_per_subscription_cdf(&trace, CloudKind::Private, at),
            Err(AnalysisError::NoData(_))
        ));
    }
}
