//! Virtual machines: sizes (SKUs), priorities, service models, and the
//! per-VM deployment record the analyses consume.

use crate::ids::{ClusterId, NodeId, RegionId, ServiceId, SubscriptionId, VmId};
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The resource shape of a VM: CPU cores and memory.
///
/// # Examples
/// ```
/// # use cloudscope_model::vm::VmSize;
/// let size = VmSize::new(4, 16.0);
/// assert_eq!(size.cores(), 4);
/// assert_eq!(size.memory_gb(), 16.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VmSize {
    cores: u32,
    memory_gb: f64,
}

impl VmSize {
    /// Creates a VM size.
    ///
    /// # Panics
    /// Panics if `cores` is zero or `memory_gb` is not strictly positive.
    #[must_use]
    pub fn new(cores: u32, memory_gb: f64) -> Self {
        assert!(cores > 0, "a VM must have at least one core");
        assert!(
            memory_gb > 0.0 && memory_gb.is_finite(),
            "memory must be positive and finite: {memory_gb}"
        );
        Self { cores, memory_gb }
    }

    /// Number of virtual CPU cores.
    #[must_use]
    pub const fn cores(self) -> u32 {
        self.cores
    }

    /// Memory in GiB.
    #[must_use]
    pub const fn memory_gb(self) -> f64 {
        self.memory_gb
    }

    /// Memory-to-core ratio in GiB per core, the axis the paper's Figure 2
    /// heatmap implicitly spans.
    #[must_use]
    pub fn memory_per_core(self) -> f64 {
        self.memory_gb / self.cores as f64
    }
}

impl fmt::Display for VmSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}c/{}g", self.cores, self.memory_gb)
    }
}

/// VM priority class: regular on-demand or evictable spot capacity.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum Priority {
    /// Regular VM with an availability SLA.
    #[default]
    OnDemand,
    /// Spot VM: deeply discounted, evictable when capacity is reclaimed.
    Spot,
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Priority::OnDemand => "on-demand",
            Priority::Spot => "spot",
        })
    }
}

/// The service model a VM belongs to. Both clouds in the study host all
/// three.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum ServiceModel {
    /// Infrastructure as a Service.
    #[default]
    Iaas,
    /// Platform as a Service.
    Paas,
    /// Software as a Service.
    Saas,
}

impl ServiceModel {
    /// All service models.
    pub const ALL: [ServiceModel; 3] = [ServiceModel::Iaas, ServiceModel::Paas, ServiceModel::Saas];
}

impl fmt::Display for ServiceModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ServiceModel::Iaas => "IaaS",
            ServiceModel::Paas => "PaaS",
            ServiceModel::Saas => "SaaS",
        })
    }
}

/// A single VM's deployment record: who owns it, where it ran, its shape,
/// and its creation/termination times. This is the row schema the
/// characterization pipeline consumes — the synthetic stand-in for one line
/// of the Azure deployment trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VmRecord {
    /// Unique VM identifier.
    pub id: VmId,
    /// Owning subscription.
    pub subscription: SubscriptionId,
    /// Logical service the VM belongs to (services group many VMs).
    pub service: ServiceId,
    /// Resource shape.
    pub size: VmSize,
    /// Priority class.
    pub priority: Priority,
    /// Service model.
    pub service_model: ServiceModel,
    /// Region the subscription deployed the VM into.
    pub region: RegionId,
    /// Cluster the allocator placed the VM in.
    pub cluster: ClusterId,
    /// Node the allocator placed the VM on, if placement succeeded.
    pub node: Option<NodeId>,
    /// Creation time (may precede the trace window).
    pub created: SimTime,
    /// Termination time; `None` if still running at the end of the window.
    pub ended: Option<SimTime>,
}

impl VmRecord {
    /// The VM lifetime, if it terminated.
    ///
    /// # Examples
    /// ```
    /// # use cloudscope_model::{vm::*, ids::*, time::*};
    /// # let mut vm = VmRecord {
    /// #     id: VmId::new(0), subscription: SubscriptionId::new(0),
    /// #     service: ServiceId::new(0), size: VmSize::new(2, 8.0),
    /// #     priority: Priority::OnDemand, service_model: ServiceModel::Iaas,
    /// #     region: RegionId::new(0), cluster: ClusterId::new(0), node: None,
    /// #     created: SimTime::ZERO, ended: Some(SimTime::from_hours(3)),
    /// # };
    /// assert_eq!(vm.lifetime(), Some(SimDuration::from_hours(3)));
    /// vm.ended = None;
    /// assert_eq!(vm.lifetime(), None);
    /// ```
    #[must_use]
    pub fn lifetime(&self) -> Option<SimDuration> {
        self.ended.map(|e| e.saturating_since(self.created))
    }

    /// `true` if the VM both started and ended inside the trace week — the
    /// filter the paper applies before the Figure 3(a) lifetime CDF.
    #[must_use]
    pub fn bounded_by_trace_week(&self) -> bool {
        self.created.in_trace_week() && self.ended.is_some_and(|e| e.in_trace_week())
    }

    /// `true` if the VM is running (created, not yet ended) at time `t`.
    /// Creation is inclusive, termination exclusive.
    #[must_use]
    pub fn alive_at(&self, t: SimTime) -> bool {
        self.created <= t && self.ended.is_none_or(|e| t < e)
    }

    /// The half-open interval `[created, ended_or(end_of_window))` clipped
    /// to `[window_start, window_end)`; `None` if the VM never overlaps the
    /// window.
    #[must_use]
    pub fn overlap_with(
        &self,
        window_start: SimTime,
        window_end: SimTime,
    ) -> Option<(SimTime, SimTime)> {
        let start = self.created.max(window_start);
        let end = self.ended.unwrap_or(window_end).min(window_end);
        (start < end).then_some((start, end))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::*;

    fn vm(created: i64, ended: Option<i64>) -> VmRecord {
        VmRecord {
            id: VmId::new(1),
            subscription: SubscriptionId::new(1),
            service: ServiceId::new(1),
            size: VmSize::new(4, 16.0),
            priority: Priority::OnDemand,
            service_model: ServiceModel::Paas,
            region: RegionId::new(0),
            cluster: ClusterId::new(0),
            node: Some(NodeId::new(3)),
            created: SimTime::from_minutes(created),
            ended: ended.map(SimTime::from_minutes),
        }
    }

    #[test]
    fn lifetime_requires_termination() {
        assert_eq!(
            vm(0, Some(90)).lifetime(),
            Some(SimDuration::from_minutes(90))
        );
        assert_eq!(vm(0, None).lifetime(), None);
    }

    #[test]
    fn trace_week_bounding_filter() {
        assert!(vm(10, Some(100)).bounded_by_trace_week());
        assert!(
            !vm(-10, Some(100)).bounded_by_trace_week(),
            "created before window"
        );
        assert!(!vm(10, None).bounded_by_trace_week(), "still running");
        let beyond = crate::time::MINUTES_PER_WEEK + 5;
        assert!(
            !vm(10, Some(beyond)).bounded_by_trace_week(),
            "ends after window"
        );
    }

    #[test]
    fn alive_at_is_half_open() {
        let v = vm(60, Some(120));
        assert!(!v.alive_at(SimTime::from_minutes(59)));
        assert!(v.alive_at(SimTime::from_minutes(60)));
        assert!(v.alive_at(SimTime::from_minutes(119)));
        assert!(!v.alive_at(SimTime::from_minutes(120)));
        assert!(vm(60, None).alive_at(SimTime::from_days(30)));
    }

    #[test]
    fn overlap_clips_to_window() {
        let v = vm(-100, Some(50));
        let (s, e) = v
            .overlap_with(SimTime::ZERO, SimTime::WEEK_END)
            .expect("overlaps");
        assert_eq!(s, SimTime::ZERO);
        assert_eq!(e, SimTime::from_minutes(50));
        assert!(vm(-100, Some(-10))
            .overlap_with(SimTime::ZERO, SimTime::WEEK_END)
            .is_none());
    }

    #[test]
    fn vm_size_accessors() {
        let s = VmSize::new(8, 32.0);
        assert_eq!(s.memory_per_core(), 4.0);
        assert_eq!(s.to_string(), "8c/32g");
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_core_size_rejected() {
        let _ = VmSize::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_memory_rejected() {
        let _ = VmSize::new(1, 0.0);
    }

    #[test]
    fn display_impls() {
        assert_eq!(Priority::Spot.to_string(), "spot");
        assert_eq!(ServiceModel::Saas.to_string(), "SaaS");
    }
}
