//! # cloudscope-timeseries
//!
//! Time-series substrate for the cloudscope suite: fixed-interval series,
//! a from-scratch radix-2 FFT and periodogram, autocorrelation, a
//! Vlachos-style period detector (periodogram candidates validated on ACF
//! hills — the method the DSN'23 study cites for diurnal/hourly pattern
//! detection), daily/weekly profile folding, and cross-population
//! percentile bands (the study's Figure 6).
//!
//! ## Example
//! ```
//! use cloudscope_timeseries::period::PeriodDetector;
//! use cloudscope_timeseries::series::Series;
//!
//! // One week of 5-minute samples with a daily cycle.
//! let values: Vec<f64> = (0..2016)
//!     .map(|i| 30.0 + 20.0 * (std::f64::consts::TAU * i as f64 / 288.0).sin())
//!     .collect();
//! let series = Series::new(0, 5, values);
//! assert!(PeriodDetector::default().has_period_near(&series, 1440.0, 150.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acf;
pub mod anomaly;
pub mod decompose;
pub mod error;
pub mod fft;
pub mod gaps;
pub mod period;
pub mod profile;
pub mod series;

pub use anomaly::{detect_bursts, Burst};
pub use decompose::{decompose, Decomposition};
pub use error::SeriesError;
pub use gaps::{coverage, fill_linear_capped, finite_mean, finite_std, FillReport};
pub use period::{DetectedPeriod, PeriodDetector, PeriodDetectorConfig};
pub use profile::{daily_profile, peak_minute_of_day, weekday_weekend_means, PercentileBands};
pub use series::Series;
