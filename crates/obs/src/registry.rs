//! The metrics registry and the three instrument kinds.
//!
//! A [`Registry`] is a named collection of [`Counter`]s, [`Gauge`]s, and
//! [`Histogram`]s. Handles returned by the lookup methods are cheap
//! `Arc` clones of the shared atomic state, so hot call sites fetch a
//! handle once and update it lock-free; casual call sites go through the
//! name lookup every time (one short mutex hold over a `BTreeMap`).

use crate::snapshot::{HistogramSnapshot, MetricValue, Snapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Number of histogram buckets: bucket `i` (for `i > 0`) counts
/// observations whose bit length is `i`, i.e. values in
/// `[2^(i-1), 2^i - 1]`; bucket 0 counts zero observations. Fixed
/// log-scale boundaries make bucket counts from different runs and
/// different processes directly comparable.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Upper (inclusive) bound of histogram bucket `i`.
#[must_use]
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// The bucket an observation of `value` lands in.
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// A monotonically increasing counter.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increments by 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge holding one `f64` (last write wins; `add` is atomic).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Adds `delta` atomically (compare-and-swap loop).
    pub fn add(&self, delta: f64) {
        let mut current = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + delta).to_bits();
            match self
                .0
                .compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }

    /// Raises the gauge to `value` if it is below it (atomic max).
    pub fn set_max(&self, value: f64) {
        let mut current = self.0.load(Ordering::Relaxed);
        loop {
            if f64::from_bits(current) >= value {
                return;
            }
            match self.0.compare_exchange_weak(
                current,
                value.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Shared state of a histogram with [`HISTOGRAM_BUCKETS`] fixed
/// log-scale buckets.
#[derive(Debug)]
pub struct HistogramCore {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl HistogramCore {
    fn new() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A histogram of `u64` observations (durations in nanoseconds, sizes,
/// depths) over fixed power-of-two buckets.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, value: u64) {
        // Bucket before count, with the count increment releasing: a
        // snapshot that observes a count value also observes the bucket
        // increments of every observe() that produced it, so the bucket
        // sum can trail count in neither direction — only lead it (from
        // observes still mid-flight).
        self.0.sum.fetch_add(value, Ordering::Relaxed);
        self.0.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Release);
    }

    /// Observations recorded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values (wrapping on overflow).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> HistogramSnapshot {
        // Count first, acquiring: pairs with the releasing increment in
        // observe(), so every observation counted here already has its
        // bucket store visible — the bucket sum below is >= count.
        let count = self.0.count.load(Ordering::Acquire);
        let sum = self.0.sum.load(Ordering::Relaxed);
        let buckets = self
            .0
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((bucket_upper_bound(i), n))
            })
            .collect();
        HistogramSnapshot {
            count,
            sum,
            buckets,
        }
    }
}

#[derive(Debug, Clone)]
enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Instrument {
    fn kind(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

/// A named collection of metrics. Cloning handles is cheap; the registry
/// itself is usually shared behind an [`Arc`].
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Instrument>>,
}

impl Registry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn instrument<F: FnOnce() -> Instrument>(&self, name: &str, make: F) -> Instrument {
        let mut metrics = self.metrics.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(existing) = metrics.get(name) {
            return existing.clone();
        }
        let made = make();
        metrics.insert(name.to_owned(), made.clone());
        made
    }

    /// The counter named `name`, registering it on first use.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different kind.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        match self.instrument(name, || {
            Instrument::Counter(Counter(Arc::new(AtomicU64::new(0))))
        }) {
            Instrument::Counter(c) => c,
            other => panic!("metric {name} is a {}, not a counter", other.kind()),
        }
    }

    /// The gauge named `name`, registering it on first use.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different kind.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.instrument(name, || {
            Instrument::Gauge(Gauge(Arc::new(AtomicU64::new(0f64.to_bits()))))
        }) {
            Instrument::Gauge(g) => g,
            other => panic!("metric {name} is a {}, not a gauge", other.kind()),
        }
    }

    /// The histogram named `name`, registering it on first use.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different kind.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Histogram {
        match self.instrument(name, || {
            Instrument::Histogram(Histogram(Arc::new(HistogramCore::new())))
        }) {
            Instrument::Histogram(h) => h,
            other => panic!("metric {name} is a {}, not a histogram", other.kind()),
        }
    }

    /// Number of registered metrics.
    #[must_use]
    pub fn len(&self) -> usize {
        self.metrics
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// `true` if nothing is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A point-in-time copy of every metric, deterministically ordered
    /// by name.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let metrics = self.metrics.lock().unwrap_or_else(PoisonError::into_inner);
        Snapshot {
            metrics: metrics
                .iter()
                .map(|(name, inst)| {
                    let value = match inst {
                        Instrument::Counter(c) => MetricValue::Counter(c.get()),
                        Instrument::Gauge(g) => MetricValue::Gauge(g.get()),
                        Instrument::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                    };
                    (name.clone(), value)
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share_state() {
        let reg = Registry::new();
        let a = reg.counter("x.y.z");
        let b = reg.counter("x.y.z");
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn gauges_set_add_and_max() {
        let reg = Registry::new();
        let g = reg.gauge("g");
        g.set(1.5);
        g.add(2.0);
        assert!((g.get() - 3.5).abs() < 1e-12);
        g.set_max(2.0);
        assert!(
            (g.get() - 3.5).abs() < 1e-12,
            "max below current is a no-op"
        );
        g.set_max(10.0);
        assert!((g.get() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_are_log_scale() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
        // Boundaries are consistent: every value falls at or below its
        // bucket's bound and above the previous one.
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX / 2, u64::MAX] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper_bound(i), "{v} in bucket {i}");
            if i > 0 {
                assert!(v > bucket_upper_bound(i - 1), "{v} above bucket {}", i - 1);
            }
        }
    }

    #[test]
    fn histogram_observations_tally() {
        let reg = Registry::new();
        let h = reg.histogram("h");
        for v in [0, 1, 2, 3, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1006);
        let snap = reg.snapshot();
        match snap.metrics.get("h") {
            Some(MetricValue::Histogram(hs)) => {
                assert_eq!(hs.count, 5);
                assert_eq!(hs.buckets.iter().map(|(_, n)| n).sum::<u64>(), 5);
                assert_eq!(hs.buckets[0], (0, 1));
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "is a counter, not a gauge")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        let _ = reg.counter("same.name");
        let _ = reg.gauge("same.name");
    }
}
