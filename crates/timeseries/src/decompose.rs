//! Classical additive decomposition of a series into trend, seasonal,
//! and residual components — the preprocessing behind robust diurnal
//! detection and anomaly screening on utilization telemetry.

use crate::error::SeriesError;
use crate::series::Series;
use serde::{Deserialize, Serialize};

/// The result of an additive decomposition:
/// `value[t] = trend[t] + seasonal[t % period] + residual[t]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Decomposition {
    /// Centered-moving-average trend (same length as the input).
    pub trend: Vec<f64>,
    /// One seasonal cycle of length `period`, mean-centred.
    pub seasonal: Vec<f64>,
    /// Residuals (same length as the input).
    pub residual: Vec<f64>,
    /// The seasonal period in samples.
    pub period: usize,
}

impl Decomposition {
    /// Fraction of the detrended variance explained by the seasonal
    /// component, in `[0, 1]`: near 1 for a cleanly periodic signal.
    #[must_use]
    pub fn seasonal_strength(&self) -> f64 {
        let var = |xs: &[f64]| {
            if xs.is_empty() {
                return 0.0;
            }
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64
        };
        let resid_var = var(&self.residual);
        // Detrended = seasonal + residual, sampled per slot.
        let seasonal_var = var(&self.seasonal);
        if seasonal_var + resid_var == 0.0 {
            return 0.0;
        }
        (seasonal_var / (seasonal_var + resid_var)).clamp(0.0, 1.0)
    }
}

/// Decomposes `series` with seasonal period `period` (in samples) using
/// the classical method: centered moving average of window `period`
/// (even windows use the standard 2×MA), seasonal means of the
/// detrended values per phase slot, residual as the remainder.
///
/// # Errors
/// - [`SeriesError::TooShort`] unless the series covers at least two
///   full periods.
/// - [`SeriesError::BadResampleFactor`] if `period < 2`.
pub fn decompose(series: &Series, period: usize) -> Result<Decomposition, SeriesError> {
    if period < 2 {
        return Err(SeriesError::BadResampleFactor);
    }
    let n = series.len();
    if n < 2 * period {
        return Err(SeriesError::TooShort(n));
    }
    let values = series.values();

    // Centered moving average; even periods average two adjacent windows.
    let trend: Vec<f64> = (0..n)
        .map(|i| {
            let half = period / 2;
            if i < half || i + half >= n {
                // Edge: partial window mean.
                let lo = i.saturating_sub(half);
                let hi = (i + half + 1).min(n);
                values[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
            } else if period % 2 == 1 {
                values[i - half..=i + half].iter().sum::<f64>() / period as f64
            } else {
                let a: f64 = values[i - half..i + half].iter().sum::<f64>() / period as f64;
                let b: f64 = values[i - half + 1..=i + half].iter().sum::<f64>() / period as f64;
                (a + b) / 2.0
            }
        })
        .collect();

    // Seasonal means per phase slot of the detrended series. Edge
    // samples use partial trend windows whose bias would leak into the
    // seasonal component, so (as in the classical method) they are
    // excluded from the seasonal means.
    let half = period / 2;
    let mut slot_sum = vec![0.0f64; period];
    let mut slot_n = vec![0u32; period];
    for i in half..n.saturating_sub(half) {
        slot_sum[i % period] += values[i] - trend[i];
        slot_n[i % period] += 1;
    }
    let mut seasonal: Vec<f64> = slot_sum
        .iter()
        .zip(&slot_n)
        .map(|(&s, &c)| if c == 0 { 0.0 } else { s / f64::from(c) })
        .collect();
    // Centre the seasonal component so the trend keeps the level.
    let seasonal_mean = seasonal.iter().sum::<f64>() / period as f64;
    for s in &mut seasonal {
        *s -= seasonal_mean;
    }

    let residual: Vec<f64> = (0..n)
        .map(|i| values[i] - trend[i] - seasonal[i % period])
        .collect();

    Ok(Decomposition {
        trend,
        seasonal,
        residual,
        period,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seasonal_signal(n: usize, period: usize, trend_slope: f64, noise_amp: f64) -> Series {
        fn hash_noise(i: u64) -> f64 {
            let mut z = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = z ^ (z >> 27);
            (z % 1000) as f64 / 500.0 - 1.0
        }
        let values = (0..n)
            .map(|i| {
                20.0 + trend_slope * i as f64
                    + 10.0 * (std::f64::consts::TAU * (i % period) as f64 / period as f64).sin()
                    + noise_amp * hash_noise(i as u64)
            })
            .collect();
        Series::new(0, 5, values)
    }

    #[test]
    fn recovers_seasonal_shape() {
        let s = seasonal_signal(288 * 4, 288, 0.0, 0.2);
        let d = decompose(&s, 288).unwrap();
        // The seasonal component tracks the sine.
        let expected: Vec<f64> = (0..288)
            .map(|i| 10.0 * (std::f64::consts::TAU * i as f64 / 288.0).sin())
            .collect();
        for (got, want) in d.seasonal.iter().zip(&expected) {
            assert!((got - want).abs() < 1.5, "{got} vs {want}");
        }
        assert!(d.seasonal_strength() > 0.9, "{}", d.seasonal_strength());
    }

    #[test]
    fn recovers_linear_trend() {
        let s = seasonal_signal(288 * 4, 288, 0.05, 0.2);
        let d = decompose(&s, 288).unwrap();
        // Away from edges, trend[i+288] - trend[i] ≈ 288 * slope.
        let i = 400;
        let rise = d.trend[i + 288] - d.trend[i];
        assert!((rise - 288.0 * 0.05).abs() < 1.5, "rise {rise}");
    }

    #[test]
    fn components_sum_to_signal() {
        let s = seasonal_signal(288 * 3, 288, 0.01, 1.0);
        let d = decompose(&s, 288).unwrap();
        for i in 0..s.len() {
            let reconstructed = d.trend[i] + d.seasonal[i % 288] + d.residual[i];
            assert!((reconstructed - s.values()[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn noise_has_low_seasonal_strength() {
        fn hash_noise(i: u64) -> f64 {
            let mut z = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = z ^ (z >> 27);
            (z % 1000) as f64 / 500.0 - 1.0
        }
        let s = Series::new(
            0,
            5,
            (0..1000).map(|i| hash_noise(i as u64) * 5.0).collect(),
        );
        let d = decompose(&s, 100).unwrap();
        assert!(d.seasonal_strength() < 0.4, "{}", d.seasonal_strength());
    }

    #[test]
    fn odd_periods_supported() {
        let s = seasonal_signal(99 * 3, 99, 0.0, 0.1);
        let d = decompose(&s, 99).unwrap();
        assert_eq!(d.seasonal.len(), 99);
        assert!(d.seasonal_strength() > 0.8);
    }

    #[test]
    fn error_conditions() {
        let s = Series::new(0, 5, vec![1.0; 100]);
        assert!(matches!(
            decompose(&s, 1),
            Err(SeriesError::BadResampleFactor)
        ));
        assert!(matches!(decompose(&s, 80), Err(SeriesError::TooShort(100))));
    }
}
