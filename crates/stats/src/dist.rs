//! Sampling distributions implemented from first principles on top of
//! [`rand`]'s uniform source: normal (Box–Muller), log-normal, exponential,
//! Pareto, Poisson, Zipf, and a Vose alias-method categorical sampler.
//!
//! The trace generator composes these to produce deployment sizes
//! (heavy-tailed), lifetimes (binned mixtures), arrival processes, and
//! utilization noise.

use crate::error::StatsError;
use rand::Rng;

/// A distribution that can draw `f64` samples from an RNG.
pub trait Sample {
    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64;
}

/// Standard normal via the Box–Muller transform (one value per draw).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StdNormal;

impl Sample for StdNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // u1 in (0, 1] so ln is finite.
        let u1: f64 = 1.0 - rng.random::<f64>();
        let u2: f64 = rng.random::<f64>();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

/// Normal distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Errors
    /// Returns [`StatsError::OutOfRange`] if `std_dev < 0` or either
    /// parameter is non-finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, StatsError> {
        if !mean.is_finite() || !std_dev.is_finite() || std_dev < 0.0 {
            return Err(StatsError::OutOfRange("normal parameters"));
        }
        Ok(Self { mean, std_dev })
    }
}

impl Sample for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * StdNormal.sample(rng)
    }
}

/// Log-normal distribution: `exp(N(mu, sigma²))`. The canonical
/// heavy-tailed model for deployment sizes and lifetimes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal with the given log-space parameters.
    ///
    /// # Errors
    /// Returns [`StatsError::OutOfRange`] for invalid parameters.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, StatsError> {
        if !mu.is_finite() || !sigma.is_finite() || sigma < 0.0 {
            return Err(StatsError::OutOfRange("log-normal parameters"));
        }
        Ok(Self { mu, sigma })
    }

    /// Creates a log-normal from its real-space median and the
    /// multiplicative spread `sigma` (log-space standard deviation).
    ///
    /// # Errors
    /// Returns [`StatsError::OutOfRange`] if `median <= 0`.
    pub fn from_median(median: f64, sigma: f64) -> Result<Self, StatsError> {
        if median <= 0.0 || !median.is_finite() {
            return Err(StatsError::OutOfRange("log-normal median"));
        }
        Self::new(median.ln(), sigma)
    }
}

impl Sample for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * StdNormal.sample(rng)).exp()
    }
}

/// Exponential distribution with the given rate (events per unit time).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution.
    ///
    /// # Errors
    /// Returns [`StatsError::OutOfRange`] unless `rate > 0` and finite.
    pub fn new(rate: f64) -> Result<Self, StatsError> {
        if rate <= 0.0 || !rate.is_finite() {
            return Err(StatsError::OutOfRange("exponential rate"));
        }
        Ok(Self { rate })
    }
}

impl Sample for Exponential {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = 1.0 - rng.random::<f64>();
        -u.ln() / self.rate
    }
}

/// Pareto (type I) distribution: `P(X > x) = (scale/x)^shape` for
/// `x >= scale`. Models the extreme tail of public-cloud deployment sizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    scale: f64,
    shape: f64,
}

impl Pareto {
    /// Creates a Pareto distribution.
    ///
    /// # Errors
    /// Returns [`StatsError::OutOfRange`] unless both parameters are
    /// positive and finite.
    pub fn new(scale: f64, shape: f64) -> Result<Self, StatsError> {
        if scale <= 0.0 || shape <= 0.0 || !scale.is_finite() || !shape.is_finite() {
            return Err(StatsError::OutOfRange("pareto parameters"));
        }
        Ok(Self { scale, shape })
    }
}

impl Sample for Pareto {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = 1.0 - rng.random::<f64>();
        self.scale / u.powf(1.0 / self.shape)
    }
}

/// Poisson distribution. Uses Knuth's product method for small means and a
/// normal approximation (rounded, clamped at zero) for large means.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    mean: f64,
}

impl Poisson {
    /// Creates a Poisson distribution.
    ///
    /// # Errors
    /// Returns [`StatsError::OutOfRange`] unless `mean >= 0` and finite.
    pub fn new(mean: f64) -> Result<Self, StatsError> {
        if mean < 0.0 || !mean.is_finite() {
            return Err(StatsError::OutOfRange("poisson mean"));
        }
        Ok(Self { mean })
    }

    /// Draws one count.
    pub fn sample_count<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.mean == 0.0 {
            return 0;
        }
        if self.mean < 30.0 {
            // Knuth: multiply uniforms until the product drops below e^-λ.
            let limit = (-self.mean).exp();
            let mut count = 0u64;
            let mut product: f64 = rng.random();
            while product > limit {
                count += 1;
                product *= rng.random::<f64>();
            }
            count
        } else {
            let draw = self.mean + self.mean.sqrt() * StdNormal.sample(rng);
            draw.round().max(0.0) as u64
        }
    }
}

impl Sample for Poisson {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.sample_count(rng) as f64
    }
}

/// Zipf distribution over ranks `1..=n` with exponent `s`: popularity of
/// services/subscriptions follows a power law.
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` ranks with exponent `s`.
    ///
    /// # Errors
    /// Returns [`StatsError::OutOfRange`] if `n == 0` or `s < 0`.
    pub fn new(n: usize, s: f64) -> Result<Self, StatsError> {
        if n == 0 || s < 0.0 || !s.is_finite() {
            return Err(StatsError::OutOfRange("zipf parameters"));
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Ok(Self { cdf })
    }

    /// Draws a rank in `1..=n` (1 is most popular).
    pub fn sample_rank<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        self.cdf.partition_point(|&c| c < u) + 1
    }
}

impl Sample for Zipf {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.sample_rank(rng) as f64
    }
}

/// Weighted categorical sampling in O(1) per draw via Vose's alias method.
#[derive(Debug, Clone, PartialEq)]
pub struct Categorical {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl Categorical {
    /// Builds the alias tables from non-negative weights.
    ///
    /// # Errors
    /// Returns [`StatsError::EmptyInput`] for no weights and
    /// [`StatsError::OutOfRange`] if any weight is negative/non-finite or
    /// all weights are zero.
    pub fn new(weights: &[f64]) -> Result<Self, StatsError> {
        if weights.is_empty() {
            return Err(StatsError::EmptyInput("categorical weights"));
        }
        if weights.iter().any(|&w| !w.is_finite() || w < 0.0) {
            return Err(StatsError::OutOfRange("categorical weights"));
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(StatsError::OutOfRange("categorical weights sum to zero"));
        }
        let n = weights.len();
        let mut scaled: Vec<f64> = weights.iter().map(|w| w * n as f64 / total).collect();
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for (i, &p) in scaled.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        let mut prob = vec![0.0; n];
        let mut alias = vec![0usize; n];
        while !small.is_empty() && !large.is_empty() {
            let s = small.pop().expect("checked non-empty");
            let l = large.pop().expect("checked non-empty");
            prob[s] = scaled[s];
            alias[s] = l;
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        for i in small.into_iter().chain(large) {
            prob[i] = 1.0;
            alias[i] = i;
        }
        Ok(Self { prob, alias })
    }

    /// Draws one category index.
    pub fn sample_index<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.random_range(0..self.prob.len());
        if rng.random::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::Summary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xC10D)
    }

    fn moments<D: Sample>(d: &D, n: usize) -> Summary {
        let mut r = rng();
        (0..n).map(|_| d.sample(&mut r)).collect()
    }

    #[test]
    fn std_normal_moments() {
        let s = moments(&StdNormal, 200_000);
        assert!(s.mean().abs() < 0.02, "mean {}", s.mean());
        assert!((s.population_std_dev() - 1.0).abs() < 0.02);
    }

    #[test]
    fn normal_parameterization() {
        let d = Normal::new(10.0, 2.0).unwrap();
        let s = moments(&d, 100_000);
        assert!((s.mean() - 10.0).abs() < 0.05);
        assert!((s.population_std_dev() - 2.0).abs() < 0.05);
        assert!(Normal::new(0.0, -1.0).is_err());
    }

    #[test]
    fn lognormal_median() {
        let d = LogNormal::from_median(8.0, 1.0).unwrap();
        let mut r = rng();
        let mut draws: Vec<f64> = (0..100_000).map(|_| d.sample(&mut r)).collect();
        draws.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = draws[draws.len() / 2];
        assert!((median - 8.0).abs() / 8.0 < 0.05, "median {median}");
        assert!(LogNormal::from_median(0.0, 1.0).is_err());
    }

    #[test]
    fn exponential_mean_is_inverse_rate() {
        let d = Exponential::new(0.25).unwrap();
        let s = moments(&d, 100_000);
        assert!((s.mean() - 4.0).abs() < 0.1);
        assert!(s.min() >= 0.0);
        assert!(Exponential::new(0.0).is_err());
    }

    #[test]
    fn pareto_support_and_tail() {
        let d = Pareto::new(2.0, 3.0).unwrap();
        let s = moments(&d, 100_000);
        assert!(s.min() >= 2.0);
        // E[X] = shape*scale/(shape-1) = 3.
        assert!((s.mean() - 3.0).abs() < 0.1, "mean {}", s.mean());
        assert!(Pareto::new(-1.0, 2.0).is_err());
    }

    #[test]
    fn poisson_small_and_large_regimes() {
        for mean in [0.5, 4.0, 100.0] {
            let d = Poisson::new(mean).unwrap();
            let s = moments(&d, 60_000);
            assert!(
                (s.mean() - mean).abs() < mean.max(1.0) * 0.05,
                "mean {mean}: {}",
                s.mean()
            );
            assert!((s.population_variance() - mean).abs() < mean.max(1.0) * 0.15);
        }
        assert_eq!(Poisson::new(0.0).unwrap().sample_count(&mut rng()), 0);
        assert!(Poisson::new(-1.0).is_err());
    }

    #[test]
    fn zipf_rank_one_most_popular() {
        let d = Zipf::new(100, 1.2).unwrap();
        let mut r = rng();
        let mut counts = vec![0u32; 101];
        for _ in 0..50_000 {
            counts[d.sample_rank(&mut r)] += 1;
        }
        assert!(counts[1] > counts[2]);
        assert!(counts[2] > counts[10]);
        assert!(counts[10] > counts[90]);
        assert!(Zipf::new(0, 1.0).is_err());
    }

    #[test]
    fn categorical_matches_weights() {
        let c = Categorical::new(&[1.0, 0.0, 3.0]).unwrap();
        let mut r = rng();
        let mut counts = [0u32; 3];
        for _ in 0..40_000 {
            counts[c.sample_index(&mut r)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn categorical_error_cases() {
        assert!(Categorical::new(&[]).is_err());
        assert!(Categorical::new(&[0.0, 0.0]).is_err());
        assert!(Categorical::new(&[1.0, -2.0]).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let d = LogNormal::new(1.0, 0.5).unwrap();
        let a: Vec<f64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..5).map(|_| d.sample(&mut r)).collect()
        };
        let b: Vec<f64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..5).map(|_| d.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }
}
