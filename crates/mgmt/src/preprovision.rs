//! Predictive pre-provisioning for hourly-peak workloads (the Insight 3
//! implication): meetings start on the hour and half-hour, so capacity
//! can be raised moments *before* the peak instead of reacting to it.

use crate::error::MgmtError;
use cloudscope_stats::percentile::percentile;
use serde::{Deserialize, Serialize};

/// A pre-provisioning plan for one hourly-peak workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PreProvisionPlan {
    /// Minutes before each hour/half-hour mark to raise capacity.
    pub lead_minutes: i64,
    /// Extra capacity to hold through the peak, as a utilization
    /// headroom in percentage points above the off-peak baseline.
    pub headroom_pct: f64,
    /// Off-peak baseline (median utilization away from the marks).
    pub baseline_pct: f64,
}

/// Builds a plan from a 5-minute utilization history: the headroom is the
/// `p`-quantile of on-mark samples minus the off-peak median.
///
/// `history` must be 5-minute samples aligned to the hour (sample `i` is
/// minute `5 i` past some hour).
///
/// # Errors
/// Returns [`MgmtError::InsufficientHistory`] with less than one day of
/// samples.
pub fn plan_preprovision(
    history: &[f64],
    coverage_percentile: f64,
) -> Result<PreProvisionPlan, MgmtError> {
    if history.len() < 288 {
        return Err(MgmtError::InsufficientHistory(
            "need at least one day of 5-minute samples",
        ));
    }
    let mut on_mark = Vec::new();
    let mut off_mark = Vec::new();
    for (i, &v) in history.iter().enumerate() {
        let minute_in_half_hour = (i * 5) % 30;
        if minute_in_half_hour < 10 {
            on_mark.push(v);
        } else {
            off_mark.push(v);
        }
    }
    let baseline = percentile(&off_mark, 50.0)
        .map_err(|_| MgmtError::InsufficientHistory("off-peak samples"))?;
    let peak = percentile(&on_mark, coverage_percentile.clamp(0.0, 100.0))
        .map_err(|_| MgmtError::InsufficientHistory("on-peak samples"))?;
    Ok(PreProvisionPlan {
        lead_minutes: 5,
        headroom_pct: (peak - baseline).max(0.0),
        baseline_pct: baseline,
    })
}

/// Evaluates a plan against a (held-out) history: the fraction of
/// on-mark demand above baseline that the headroom covers, versus a
/// reactive baseline that only ever provides the off-peak median.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PreProvisionEvaluation {
    /// Fraction of above-baseline peak demand covered by the plan.
    pub covered_fraction: f64,
    /// Fraction covered by the reactive baseline (no headroom).
    pub reactive_fraction: f64,
}

/// Evaluates `plan` on `history` (same alignment rules as
/// [`plan_preprovision`]).
///
/// # Errors
/// Returns [`MgmtError::InsufficientHistory`] with less than one day of
/// samples.
pub fn evaluate_preprovision(
    plan: &PreProvisionPlan,
    history: &[f64],
) -> Result<PreProvisionEvaluation, MgmtError> {
    if history.len() < 288 {
        return Err(MgmtError::InsufficientHistory(
            "need at least one day of 5-minute samples",
        ));
    }
    let mut demand_above = 0.0f64;
    let mut covered = 0.0f64;
    for (i, &v) in history.iter().enumerate() {
        if (i * 5) % 30 < 10 {
            let above = (v - plan.baseline_pct).max(0.0);
            demand_above += above;
            covered += above.min(plan.headroom_pct);
        }
    }
    if demand_above <= 0.0 {
        return Ok(PreProvisionEvaluation {
            covered_fraction: 1.0,
            reactive_fraction: 1.0,
        });
    }
    Ok(PreProvisionEvaluation {
        covered_fraction: covered / demand_above,
        reactive_fraction: 0.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two days of 5-minute samples: base 10%, spikes to 50% in the first
    /// 10 minutes of each half-hour.
    fn hourly_peak_history() -> Vec<f64> {
        (0..576)
            .map(|i| {
                let m = (i * 5) % 30;
                if m < 10 {
                    50.0 - m as f64
                } else {
                    10.0
                }
            })
            .collect()
    }

    #[test]
    fn plan_captures_spike_height() {
        let plan = plan_preprovision(&hourly_peak_history(), 95.0).unwrap();
        assert!((plan.baseline_pct - 10.0).abs() < 1.0);
        assert!(plan.headroom_pct > 30.0, "headroom {}", plan.headroom_pct);
        assert_eq!(plan.lead_minutes, 5);
    }

    #[test]
    fn evaluation_covers_planned_peaks() {
        let history = hourly_peak_history();
        let plan = plan_preprovision(&history, 95.0).unwrap();
        let eval = evaluate_preprovision(&plan, &history).unwrap();
        assert!(
            eval.covered_fraction > 0.95,
            "covered {}",
            eval.covered_fraction
        );
        assert_eq!(eval.reactive_fraction, 0.0);
    }

    #[test]
    fn undersized_plan_covers_less() {
        let history = hourly_peak_history();
        let small = PreProvisionPlan {
            lead_minutes: 5,
            headroom_pct: 5.0,
            baseline_pct: 10.0,
        };
        let eval = evaluate_preprovision(&small, &history).unwrap();
        assert!(eval.covered_fraction < 0.5);
    }

    #[test]
    fn flat_history_yields_zero_headroom() {
        let flat = vec![12.0; 288];
        let plan = plan_preprovision(&flat, 95.0).unwrap();
        assert_eq!(plan.headroom_pct, 0.0);
        let eval = evaluate_preprovision(&plan, &flat).unwrap();
        assert_eq!(eval.covered_fraction, 1.0);
    }

    #[test]
    fn short_history_rejected() {
        assert!(plan_preprovision(&[1.0; 100], 95.0).is_err());
        let plan = PreProvisionPlan {
            lead_minutes: 5,
            headroom_pct: 1.0,
            baseline_pct: 1.0,
        };
        assert!(evaluate_preprovision(&plan, &[1.0; 10]).is_err());
    }
}
