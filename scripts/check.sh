#!/usr/bin/env bash
# Pre-merge gate: formatting, lints, and the tier-1 build+test suite.
# Everything runs offline against the vendored dependency shims.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE_FILE=scripts/test_count_baseline

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings -D deprecated"
cargo clippy --workspace --all-targets -- -D warnings -D deprecated

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q (debug: catches overflow/shift panics release wraps)"
debug_out=$(cargo test -q --workspace 2>&1) || {
  printf '%s\n' "$debug_out"
  exit 1
}
printf '%s\n' "$debug_out"

echo "==> cargo test -q --release"
cargo test -q --release --workspace

echo "==> robustness gate: all 26 shape checks under telemetry corruption"
cargo test -q -p cloudscope --test full_pipeline robustness_gate
cargo test -q -p cloudscope --test full_pipeline --release robustness_gate

echo "==> observability gate: metrics reconcile with subsystem ground truth"
cargo test -q -p cloudscope --test observability
cargo test -q -p cloudscope --test observability --release

# Durability gate: the crash-point matrix (simulated kills at every WAL
# append / shard snapshot / manifest rename boundary, plus random
# interleavings) and the corruption fuzz suite (bit flips, truncation)
# must pass in release — the mode real recovery runs in, where
# debug-asserts are compiled out and torn-tail handling is the only
# safety net.
echo "==> kb durability gate: crash matrix + corruption fuzzing (release)"
cargo test -q -p cloudscope-kb --test crash_matrix --release
cargo test -q -p cloudscope-kb --test durability --release

# Trace-store gate: the columnar store's round-trip proptests, the
# corruption fuzz suite (bit flips and truncations at every offset,
# missing chunks, stale manifests), and the generator ↔ store
# byte-identity tests must pass in release — the mode the repro
# binaries stream traces in, where debug asserts are compiled out and
# the CRC-checked footers are the only safety net.
echo "==> trace store gate: round-trip + corruption fuzzing (release)"
cargo test -q -p cloudscope-store --release
cargo test -q -p cloudscope-tracegen --test store_roundtrip --release

# The free-capacity index must select the identical node the linear scan
# would, for every policy, on long randomized place/release/evict
# histories. Release mode matters: this is the mode the benchmarks and
# binaries run in, and the debug-assert oracle inside place() is
# compiled out here, so the proptest is the only release-mode witness.
echo "==> allocator index oracle: indexed placement replays the scan (release)"
cargo test -q -p cloudscope-cluster --test index_oracle --release

# A real binary run must emit a snapshot whose names/kinds validate
# against the committed schema (values are free to drift; names are not).
echo "==> metrics schema: fig1 --metrics vs tests/golden/metrics_schema.json"
ARTIFACTS_DIR=${ARTIFACTS_DIR:-target/check-artifacts}
mkdir -p "$ARTIFACTS_DIR"
CLOUDSCOPE_TRACE_SCALE=small cargo run -q --release -p cloudscope-repro --bin fig1 -- \
  --metrics "$ARTIFACTS_DIR/fig1_metrics.json" > /dev/null
cargo run -q --release -p cloudscope-repro --bin metrics_schema -- \
  "$ARTIFACTS_DIR/fig1_metrics.json" tests/golden/metrics_schema.json
echo "    (metrics snapshot archived at $ARTIFACTS_DIR/fig1_metrics.json)"

# KB serving-layer bench smoke: a short criterion run must produce a
# parseable BENCH_kb.json covering the mixed closed loop at every thread
# count. The bench binary itself enforces the >= 3x sharded-vs-single-lock
# acceptance ratio, the no-cloning allocation audit, the <= 50% WAL
# overhead gate, and the < 5s cold-recovery gate (it panics, and this
# step fails, if any regresses).
echo "==> kb bench smoke: sharded serving layer vs single-lock baseline"
rm -f BENCH_kb.json
CLOUDSCOPE_BENCH_SMOKE=1 cargo bench -q -p cloudscope-bench --bench kb > /dev/null
test -s BENCH_kb.json || { echo "ERROR: BENCH_kb.json not produced" >&2; exit 1; }
python3 - <<'PY'
import json, sys
results = json.load(open("BENCH_kb.json"))
expected = [
    f"kb_mixed/{store}/{threads}"
    for store in ("sharded", "single_lock")
    for threads in (1, 2, 4, 8)
] + [
    "kb_durable/mixed_plain/1",
    "kb_durable/mixed_wal/1",
    "kb_durable/mixed_wal/8",
    "kb_durable/recovery/20000",
    "kb_durable/wal_overhead_pct",
    "kb_durable/recovery_entries_per_sec",
]
missing = [k for k in expected if k not in results]
if missing:
    sys.exit(f"ERROR: BENCH_kb.json missing ids: {missing}")
print(f"    (BENCH_kb.json parses: {len(results)} benchmark ids)")
PY

# Tracegen bench smoke: the indexed, cluster-group-parallel generator
# must produce a parseable BENCH_tracegen.json. The bench binary
# enforces the acceptance ratios (indexed placement >= 2x the 120-node
# scan; end-to-end medium generation at 8 workers >= 4x the serial
# reference; hardware-aware 1->8 worker scaling; small-config parity
# with the serial reference) and panics — failing this step — if any
# regresses. While here, every committed BENCH_*.json must parse.
echo "==> tracegen bench smoke: indexed parallel generator vs serial reference"
rm -f BENCH_tracegen.json
CLOUDSCOPE_BENCH_SMOKE=1 cargo bench -q -p cloudscope-bench --bench tracegen > /dev/null
test -s BENCH_tracegen.json || { echo "ERROR: BENCH_tracegen.json not produced" >&2; exit 1; }
python3 - <<'PY'
import json, sys
for path in (
    "BENCH_analysis.json",
    "BENCH_kb.json",
    "BENCH_tracegen.json",
    "BENCH_store.json",
    "BENCH_ingest.json",
):
    try:
        results = json.load(open(path))
    except (OSError, ValueError) as e:
        sys.exit(f"ERROR: {path} unreadable: {e}")
    if not results:
        sys.exit(f"ERROR: {path} is empty")
    print(f"    ({path} parses: {len(results)} benchmark ids)")
expected = ["tracegen_e2e/serial_reference/medium"] + [
    f"tracegen_e2e/parallel/{w}" for w in (1, 2, 4, 8)
]
results = json.load(open("BENCH_tracegen.json"))
missing = [k for k in expected if k not in results]
if missing:
    sys.exit(f"ERROR: BENCH_tracegen.json missing ids: {missing}")
PY

# Scaling gate: the bench binary asserts the ratios in-process with the
# freshly measured numbers; this step re-derives them from the JSON it
# wrote, so a stale or hand-edited BENCH_tracegen.json cannot hide a
# regression, and requires the per-phase breakdown that makes a flat
# curve diagnosable. The wall-clock floor is hardware-aware: a host
# without 8 threads cannot show parallel speedup, so there the gate
# degrades to bounding the partition/merge machinery's overhead.
echo "==> tracegen scaling gate: 1 -> 8 worker ratio from BENCH_tracegen.json"
python3 - <<'PY'
import json, os, sys
results = json.load(open("BENCH_tracegen.json"))
phases = ("prepare", "placement", "merge", "telemetry", "assemble")
missing = [
    f"tracegen_phase/{p}/{w}"
    for p in phases
    for w in (1, 2, 4, 8)
    if f"tracegen_phase/{p}/{w}" not in results
]
if missing:
    sys.exit(f"ERROR: BENCH_tracegen.json missing phase breakdown: {missing}")
scaling = results["tracegen_e2e/parallel/1"] / results["tracegen_e2e/parallel/8"]
cores = os.cpu_count() or 1
if cores >= 8:
    floor, label = 2.5, f"scaling floor on {cores}-thread host"
else:
    floor, label = 0.75, f"overhead bound on {cores}-thread host (speedup unobservable)"
print(f"    (1->8 workers: {scaling:.2f}x; gate >= {floor}x: {label})")
if scaling < floor:
    sys.exit(f"ERROR: tracegen scaling gate failed: {scaling:.2f}x < {floor}x")
PY

# Trace-store bench smoke: a short criterion run must produce a
# parseable BENCH_store.json. The bench binary enforces the acceptance
# gates in-process (compression ratio > 1x, out-of-core analysis peak
# heap under a budget the fully-materialized pass exceeds) and panics —
# failing this step — if either regresses. The budget claim is then
# re-derived from the JSON it wrote, so a stale or hand-edited
# BENCH_store.json cannot hide a regression.
echo "==> trace store bench smoke: compressed streaming I/O + peak-heap budget"
rm -f BENCH_store.json
CLOUDSCOPE_BENCH_SMOKE=1 cargo bench -q -p cloudscope-bench --bench store > /dev/null
test -s BENCH_store.json || { echo "ERROR: BENCH_store.json not produced" >&2; exit 1; }
python3 - <<'PY'
import json, os, sys
results = json.load(open("BENCH_store.json"))
expected = [
    "store_write/parallel/1",
    "store_write/parallel/8",
    "store_read/resident",
    "store_read/out_of_core_sweep",
    "store_read/metadata_only",
    "store/compression_ratio",
    "store/write_mb_per_sec",
    "store/out_of_core_sweep_mb_per_sec",
    "store/out_of_core_over_resident",
    "store/write_scaling_1_to_8",
    "store/peak_heap_resident_mb",
    "store/peak_heap_out_of_core_mb",
    "store/peak_heap_budget_mb",
]
missing = [k for k in expected if k not in results]
if missing:
    sys.exit(f"ERROR: BENCH_store.json missing ids: {missing}")
ooc = results["store/peak_heap_out_of_core_mb"]
budget = results["store/peak_heap_budget_mb"]
resident = results["store/peak_heap_resident_mb"]
if not ooc < budget < resident:
    sys.exit(
        f"ERROR: out-of-core peak-heap budget violated: "
        f"out-of-core {ooc:.1f} MB, budget {budget:.1f} MB, resident {resident:.1f} MB"
    )
# Pipelined-read overlap: re-derive the streamed/resident sweep ratio
# from the raw medians, not just the reported metric, and hold it to
# the same 1.4x bound the bench asserts in-process.
ratio = results["store_read/out_of_core_sweep"] / results["store_read/resident"]
reported = results["store/out_of_core_over_resident"]
if abs(ratio - reported) > 0.05 * ratio:
    sys.exit(
        f"ERROR: reported overlap ratio {reported:.2f}x does not match "
        f"the medians ({ratio:.2f}x)"
    )
if ratio > 1.4:
    sys.exit(
        f"ERROR: pipelined out-of-core sweep is {ratio:.2f}x resident "
        f"(bound 1.4x): prefetch overlap regressed"
    )
# Write scaling: 8 compression workers must beat 1 where the hardware
# can show it; a starved runner only has to bound the fan-out overhead.
scaling = results["store_write/parallel/1"] / results["store_write/parallel/8"]
floor = 1.15 if (os.cpu_count() or 1) >= 8 else 0.75
if scaling < floor:
    sys.exit(
        f"ERROR: store write scaling 1->8 is {scaling:.2f}x on "
        f"{os.cpu_count()} cores (floor {floor}x)"
    )
print(
    f"    (BENCH_store.json parses: {len(results)} ids; peak heap "
    f"{ooc:.1f} MB out-of-core vs {resident:.1f} MB resident; "
    f"sweep overlap {ratio:.2f}x; write scaling {scaling:.2f}x)"
)
PY

# Ingest gate: the headline convergence claim must hold in release —
# the mode the service runs in, where debug asserts are compiled out.
# A clean stream's classifications converge to the batch classifier
# output exactly; under the standard fault plan the divergence is
# bounded and fully accounted for by reported drops. The property
# suite replays shuffled/duplicated deliveries and stragglers.
echo "==> ingest gate: streaming/batch convergence + watermark properties (release)"
cargo test -q -p cloudscope-ingest --test convergence --release
cargo test -q -p cloudscope-ingest --test properties --release
cargo test -q -p cloudscope-ingest --test streaming --release

# Ingest bench smoke: a short criterion run must produce a parseable
# BENCH_ingest.json. The bench binary enforces the acceptance gates
# in-process (sustained samples/sec floor, p99 offer latency bound,
# hardware-aware worker scaling) and panics — failing this step — if
# any regresses. The floors are then re-derived from the JSON it
# wrote, so a stale or hand-edited BENCH_ingest.json cannot hide a
# regression.
echo "==> ingest bench smoke: partitioned live-stream replay at 1/2/4/8 workers"
rm -f BENCH_ingest.json
CLOUDSCOPE_BENCH_SMOKE=1 cargo bench -q -p cloudscope-bench --bench ingest > /dev/null
test -s BENCH_ingest.json || { echo "ERROR: BENCH_ingest.json not produced" >&2; exit 1; }
python3 - <<'PY'
import json, os, sys
results = json.load(open("BENCH_ingest.json"))
expected = [f"ingest_stream/workers/{w}" for w in (1, 2, 4, 8)] + [
    f"ingest/samples_per_sec/{w}" for w in (1, 2, 4, 8)
] + ["ingest/samples_total", "ingest/p50_offer_ns", "ingest/p99_offer_ns"]
missing = [k for k in expected if k not in results]
if missing:
    sys.exit(f"ERROR: BENCH_ingest.json missing ids: {missing}")
best = max(results[f"ingest/samples_per_sec/{w}"] for w in (1, 2, 4, 8))
p99 = results["ingest/p99_offer_ns"]
if best < 200_000:
    sys.exit(f"ERROR: sustained ingest throughput floor violated: {best:.0f} samples/s")
if p99 >= 1_000_000:
    sys.exit(f"ERROR: p99 offer latency bound violated: {p99:.0f} ns")
cores = os.cpu_count() or 1
speedup = results["ingest_stream/workers/1"] / results["ingest_stream/workers/8"]
if cores >= 8 and speedup < 1.2:
    sys.exit(f"ERROR: ingest worker scaling gate failed: {speedup:.2f}x on {cores}-thread host")
print(
    f"    (BENCH_ingest.json parses: {len(results)} ids; best {best:.0f} samples/s, "
    f"p99 offer {p99:.0f} ns, 1->8 workers {speedup:.2f}x)"
)
PY

# Test-count delta: the suite must never shrink. The baseline is the
# committed count from the last blessed run; growing it is expected
# (update the file), shrinking it fails the gate.
total=$(printf '%s\n' "$debug_out" \
  | awk '/^test result:/ { for (i = 1; i <= NF; i++) if ($i == "passed;") sum += $(i - 1) } END { print sum + 0 }')
baseline=$(cat "$BASELINE_FILE" 2>/dev/null || echo 0)
delta=$((total - baseline))
echo "==> test count: $total (baseline $baseline, delta ${delta#-} $([ "$delta" -ge 0 ] && echo gained || echo LOST))"
if [ "$total" -lt "$baseline" ]; then
  echo "ERROR: test count shrank from $baseline to $total; restore the missing tests" >&2
  exit 1
fi
if [ "$total" -gt "$baseline" ]; then
  echo "    (new high-water mark; bless it with: echo $total > $BASELINE_FILE)"
fi

echo "==> OK: all checks passed"
