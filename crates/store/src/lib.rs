//! `cloudscope-store`: an out-of-core columnar trace store with
//! compressed streaming I/O.
//!
//! A one-week cloud workload trace is dominated by telemetry — one
//! byte per VM per five minutes adds up to far more than the metadata.
//! This crate persists a [`Trace`](cloudscope_model::trace::Trace) as
//! a directory of immutable, independently-compressed column chunks
//! partitioned by `(region, trace-week day)`, so the figure pipelines
//! can stream it back chunk-at-a-time in bounded memory and still
//! produce byte-identical results.
//!
//! # On-disk format
//!
//! ```text
//! trace-dir/
//!   manifest.csm            — the single commit point (CRC-tailed)
//!   vmmeta-r0-d0-0.chunk    — VM metadata columns for (region 0, day 0)
//!   telemetry-r0-d0-0.chunk — telemetry runs for (region 0, day 0)
//!   ...
//! ```
//!
//! Each chunk file frames per-column blocks, individually compressed
//! with a self-contained LZ-family block codec ([`codec`]) and guarded
//! by a per-column CRC plus a whole-file CRC footer — projection can
//! skip decompressing unwanted columns without weakening integrity.
//! Utilization series are split into per-day runs (the day function is
//! monotone in time, so runs are contiguous and reassemble exactly).
//!
//! # Commit protocol
//!
//! Chunks are written tmp → fsync → rename; the manifest — which
//! names every chunk with its exact length and CRC and carries the
//! topology/subscription blobs — is committed the same way, last.
//! Until that final rename lands, readers see either the previous
//! store or none: a crash can truncate files, but never a committed
//! store. Every decode path funnels into [`StoreError`], naming the
//! file (and chunk) it blames — corruption is loud, never silent.
//!
//! # Memory bounds
//!
//! Writing buffers one open chunk per `(kind, region, day)` cell plus
//! one compression batch. Reading out-of-core keeps VM metadata and a
//! presence bitmap resident while telemetry loads through a bounded
//! LRU of decoded chunks ([`StoreTelemetry`]) — peak heap stays far
//! below a fully-materialized trace.

pub mod codec;
pub mod layout;

mod blobs;
mod chunk;
mod columns;
mod crc;
mod error;
mod manifest;
mod reader;
mod source;
mod writer;

pub use blobs::{
    decode_subscriptions, decode_topology, encode_subscriptions, encode_topology,
    BLOB_SUBSCRIPTIONS, BLOB_TELEMETRY_PRESENT, BLOB_TOPOLOGY,
};
pub use chunk::{ChunkKind, ChunkMeta};
pub use columns::{Batch, Column, Projection, TelemetryBatch, VmMetaBatch};
pub use error::StoreError;
pub use manifest::{ChunkEntry, Manifest, MANIFEST_NAME};
pub use reader::{ScanFilter, TelemetryMode, TraceReader};
pub use source::{PrefetchConfig, StoreTelemetry};
pub use writer::{store_exists, write_trace, TraceWriter, WriteOptions};
