//! Offline stand-in for `criterion`, implementing the subset the
//! workspace's benches use: [`Criterion::bench_function`], benchmark
//! groups with `sample_size`/`bench_with_input`/`finish`, [`BenchmarkId`],
//! [`black_box`], and the `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement model: each benchmark is warmed up once, then timed over
//! adaptively sized batches until `sample_size` samples are collected or a
//! per-benchmark wall-clock budget is exhausted. The median per-iteration
//! time is reported on stdout and, when the `BENCH_JSON` environment
//! variable names a file (or [`Criterion::json_output`] is called), all
//! results are merged into that JSON file — the hook the repo uses to
//! track `BENCH_analysis.json` across PRs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt::Display;
use std::path::PathBuf;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-benchmark wall-clock budget (warmup + sampling).
const TIME_BUDGET: Duration = Duration::from_millis(1500);

/// One measured benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Fully qualified id (`group/function[/parameter]`).
    pub id: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Samples collected.
    pub samples: usize,
}

/// The benchmark harness handle passed to group functions.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
    json_path: Option<PathBuf>,
}

impl Criterion {
    /// Mirrors upstream's CLI-configuration hook; a no-op here.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Requests that results be merged into a JSON file at `path` when
    /// this handle finalizes (equivalent to setting `BENCH_JSON`).
    pub fn json_output(&mut self, path: impl Into<PathBuf>) -> &mut Self {
        self.json_path = Some(path.into());
        self
    }

    /// Benchmarks a closure under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.run_named(id.to_string(), DEFAULT_SAMPLE_SIZE, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }

    /// All results measured through this handle so far.
    #[must_use]
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Records an externally measured value under `id`, printing it and
    /// merging it into the JSON output alongside timed benchmarks. The
    /// hook benches use to publish derived numbers — per-phase medians,
    /// ratios — next to the raw medians they came from. (Upstream
    /// criterion has no equivalent; this shim is offline-only.)
    pub fn report_metric(&mut self, id: impl Into<String>, value: f64) -> &mut Self {
        let id = id.into();
        println!("bench {id:<60} {value:>14.1} (reported)");
        self.results.push(BenchResult {
            id,
            median_ns: value,
            samples: 0,
        });
        self
    }

    /// Prints results and merges them into the JSON output file, if one
    /// was configured here or via `BENCH_JSON`. Called by
    /// `criterion_main!`; safe to call repeatedly.
    pub fn finalize(&self) {
        let path = self
            .json_path
            .clone()
            .or_else(|| std::env::var_os("BENCH_JSON").map(PathBuf::from));
        let Some(path) = path else { return };
        let mut merged = read_flat_json(&path);
        for r in &self.results {
            merged.insert(r.id.clone(), r.median_ns);
        }
        let mut out = String::from("{\n");
        for (i, (k, v)) in merged.iter().enumerate() {
            let comma = if i + 1 == merged.len() { "" } else { "," };
            out.push_str(&format!("  \"{k}\": {v:.1}{comma}\n"));
        }
        out.push_str("}\n");
        if let Err(e) = std::fs::write(&path, out) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }

    fn run_named<F: FnMut(&mut Bencher)>(&mut self, id: String, sample_size: usize, mut f: F) {
        let mut bencher = Bencher {
            samples: Vec::new(),
            target_samples: sample_size.max(2),
            deadline: Instant::now() + TIME_BUDGET,
        };
        f(&mut bencher);
        let mut samples = bencher.samples;
        if samples.is_empty() {
            eprintln!("warning: bench {id} measured nothing");
            return;
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
        let median_ns = samples[samples.len() / 2];
        println!(
            "bench {id:<60} {median_ns:>14.1} ns/iter ({} samples)",
            samples.len()
        );
        self.results.push(BenchResult {
            id,
            median_ns,
            samples: samples.len(),
        });
    }
}

const DEFAULT_SAMPLE_SIZE: usize = 20;

/// A group of related benchmarks sharing an id prefix and sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples collected per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmarks a closure under `group/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{id}", self.name);
        self.criterion.run_named(full, self.sample_size, f);
        self
    }

    /// Benchmarks a closure with an input value under `group/id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        let sample_size = self.sample_size;
        self.criterion.run_named(full, sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API parity; results are already recorded).
    pub fn finish(self) {}
}

/// A benchmark id, optionally parameterized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Id from a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self(format!("{}/{parameter}", name.into()))
    }

    /// Id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self(parameter.to_string())
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs the measurement.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<f64>,
    target_samples: usize,
    deadline: Instant,
}

impl Bencher {
    /// Measures `routine` repeatedly, recording per-iteration times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + batch-size calibration: aim for batches of >= ~1 ms so
        // timer overhead stays below 0.1%.
        let warmup_start = Instant::now();
        black_box(routine());
        let once = warmup_start.elapsed();
        let batch = (Duration::from_millis(1).as_nanos() / once.as_nanos().max(1)).clamp(1, 10_000)
            as usize;
        while self.samples.len() < self.target_samples && Instant::now() < self.deadline {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples.push(elapsed.as_nanos() as f64 / batch as f64);
        }
        if self.samples.is_empty() {
            // The single warmup iteration blew the whole budget; report it.
            self.samples.push(once.as_nanos() as f64);
        }
    }
}

/// Minimal parser for the flat `{"id": number, ...}` files [`Criterion::finalize`]
/// writes; anything unparsable is ignored.
fn read_flat_json(path: &std::path::Path) -> BTreeMap<String, f64> {
    let mut map = BTreeMap::new();
    let Ok(text) = std::fs::read_to_string(path) else {
        return map;
    };
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some(rest) = line.strip_prefix('"') else {
            continue;
        };
        let Some((key, value)) = rest.split_once("\":") else {
            continue;
        };
        if let Ok(v) = value.trim().parse::<f64>() {
            map.insert(key.to_string(), v);
        }
    }
    map
}

/// Defines a benchmark group function callable from `criterion_main!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(criterion: &mut $crate::Criterion) {
            $( $target(criterion); )+
        }
    };
}

/// Defines `main`, running each group against one shared [`Criterion`]
/// and finalizing (stdout report + optional JSON merge) at the end.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $( $group(&mut criterion); )+
            criterion.finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_records() {
        let mut c = Criterion::default();
        c.bench_function("noop_sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        let r = c.results();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].id, "noop_sum");
        assert!(r[0].median_ns > 0.0);
    }

    #[test]
    fn group_ids_are_prefixed() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.bench_function("f", |b| b.iter(|| 1 + 1));
            g.bench_with_input(BenchmarkId::from_parameter(4), &4, |b, &x| {
                b.iter(|| x * 2);
            });
            g.finish();
        }
        let ids: Vec<&str> = c.results().iter().map(|r| r.id.as_str()).collect();
        assert_eq!(ids, ["g/f", "g/4"]);
    }

    #[test]
    fn reported_metrics_merge_like_benchmarks() {
        let dir = std::env::temp_dir().join("criterion_shim_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.json");
        let _ = std::fs::remove_file(&path);
        let mut c = Criterion::default();
        c.json_output(&path);
        c.report_metric("phase/x/8", 1234.5);
        assert_eq!(c.results().last().unwrap().median_ns, 1234.5);
        assert_eq!(c.results().last().unwrap().samples, 0);
        c.finalize();
        assert_eq!(read_flat_json(&path).get("phase/x/8"), Some(&1234.5));
    }

    #[test]
    fn flat_json_roundtrip() {
        let dir = std::env::temp_dir().join("criterion_shim_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.json");
        let _ = std::fs::remove_file(&path);
        let mut c = Criterion::default();
        c.json_output(&path);
        c.bench_function("a/b", |b| b.iter(|| 2 + 2));
        c.finalize();
        let parsed = read_flat_json(&path);
        assert!(parsed.contains_key("a/b"));
        // Merge keeps existing keys.
        let mut c2 = Criterion::default();
        c2.json_output(&path);
        c2.bench_function("c/d", |b| b.iter(|| 2 + 2));
        c2.finalize();
        let merged = read_flat_json(&path);
        assert!(merged.contains_key("a/b") && merged.contains_key("c/d"));
    }
}
