//! Figure 6: CPU-utilization percentile bands over the week and the day.

use cloudscope::analysis::utilization::UtilizationDistribution;
use cloudscope::prelude::*;
use cloudscope_repro::checks::fig6_checks;
use cloudscope_repro::{MetricsOpt, ShapeChecks};

fn main() {
    let metrics = MetricsOpt::from_args();
    let generated = metrics.load_trace();
    let private =
        UtilizationDistribution::run(&generated.trace, CloudKind::Private, 3000).expect("private");
    let public =
        UtilizationDistribution::run(&generated.trace, CloudKind::Public, 3000).expect("public");

    for (label, d) in [("private", &private), ("public", &public)] {
        println!("## Fig 6 {label}: weekly percentile bands (hourly)");
        println!("hour,p5,p25,p50,p75,p95");
        for h in 0..168 {
            let row: Vec<String> = d
                .weekly
                .bands
                .iter()
                .map(|b| format!("{:.1}", b[h]))
                .collect();
            println!("{h},{}", row.join(","));
        }
        println!();
        println!("## Fig 6 {label}: daily percentile bands (hourly)");
        println!("hour,p5,p25,p50,p75,p95");
        for h in 0..24 {
            let row: Vec<String> = d
                .daily
                .bands
                .iter()
                .map(|b| format!("{:.1}", b[h]))
                .collect();
            println!("{h},{}", row.join(","));
        }
        println!();
    }

    let mut checks = ShapeChecks::new();
    fig6_checks(
        &private,
        &public,
        &cloudscope_repro::active_profile(),
        &mut checks,
    );
    let ok = checks.finish("fig6");
    metrics.write();
    std::process::exit(i32::from(!ok));
}
