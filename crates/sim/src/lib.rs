//! # cloudscope-sim
//!
//! A minimal discrete-event simulation engine (time-ordered event queue
//! with deterministic FIFO tie-breaking) and deterministic named RNG
//! streams derived from a single master seed via SplitMix64.
//!
//! The trace generator and the cluster allocator are both driven by this
//! engine, which stands in for the real platform's control plane clock.
//!
//! ## Example
//! ```
//! use cloudscope_sim::engine::Simulation;
//! use cloudscope_sim::rng::RngFactory;
//! use cloudscope_model::time::{SimTime, SimDuration};
//! use rand::Rng;
//!
//! let factory = RngFactory::new(1);
//! let mut rng = factory.stream("demo");
//! let mut sim = Simulation::new();
//! sim.schedule(SimTime::ZERO, ());
//! let mut count = 0u32;
//! sim.run(SimTime::from_days(1), |s, t, ()| {
//!     count += 1;
//!     if rng.random::<f64>() < 0.5 && count < 100 {
//!         s.schedule(t + SimDuration::HOUR, ());
//!     }
//! });
//! assert!(count >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calendar;
pub mod engine;
pub mod rng;

pub use calendar::CalendarQueue;
pub use engine::{EventQueue, Scheduler, Simulation};
pub use rng::RngFactory;
