//! Autocorrelation function and helpers for validating candidate periods
//! on the ACF, the second stage of Vlachos-style period detection.

use crate::error::SeriesError;

/// Sample autocorrelation at lags `0..=max_lag` of a signal.
///
/// Uses the biased estimator (normalizing by `n` at every lag), which is
/// what periodicity detection expects: it damps long-lag noise.
///
/// # Errors
/// - [`SeriesError::TooShort`] if the signal has fewer than 2 points or
///   `max_lag >= len`.
/// - [`SeriesError::ZeroVariance`] if the signal is constant.
///
/// # Examples
/// ```
/// # use cloudscope_timeseries::acf::autocorrelation;
/// # fn main() -> Result<(), cloudscope_timeseries::error::SeriesError> {
/// let acf = autocorrelation(&[1.0, -1.0, 1.0, -1.0, 1.0, -1.0], 2)?;
/// assert!((acf[0] - 1.0).abs() < 1e-12);
/// assert!(acf[1] < 0.0); // alternating signal
/// assert!(acf[2] > 0.0);
/// # Ok(())
/// # }
/// ```
pub fn autocorrelation(signal: &[f64], max_lag: usize) -> Result<Vec<f64>, SeriesError> {
    let n = signal.len();
    if n < 2 || max_lag >= n {
        return Err(SeriesError::TooShort(n));
    }
    let mean = signal.iter().sum::<f64>() / n as f64;
    let var: f64 = signal.iter().map(|v| (v - mean) * (v - mean)).sum();
    if var == 0.0 {
        return Err(SeriesError::ZeroVariance);
    }
    let mut acf = Vec::with_capacity(max_lag + 1);
    for lag in 0..=max_lag {
        let cov: f64 = signal[..n - lag]
            .iter()
            .zip(&signal[lag..])
            .map(|(a, b)| (a - mean) * (b - mean))
            .sum();
        acf.push(cov / var);
    }
    Ok(acf)
}

/// `true` if `lag` sits on a *hill* of the ACF: a local maximum whose
/// value exceeds `threshold`. Vlachos et al. validate periodogram
/// candidates by requiring them to land on an ACF hill rather than a
/// valley; this rejects spectral-leakage false positives.
#[must_use]
pub fn is_acf_hill(acf: &[f64], lag: usize, threshold: f64) -> bool {
    if lag == 0 || lag + 1 >= acf.len() {
        return false;
    }
    let v = acf[lag];
    // Look one step and a few steps out so flat-topped hills still count.
    let left = acf[lag - 1];
    let right = acf[lag + 1];
    v >= threshold && v >= left && v >= right
}

/// Searches the neighbourhood `lag ± radius` for the strongest ACF hill
/// and returns `(refined_lag, acf_value)` if one clears `threshold`.
#[must_use]
pub fn refine_on_acf(
    acf: &[f64],
    lag: usize,
    radius: usize,
    threshold: f64,
) -> Option<(usize, f64)> {
    let lo = lag.saturating_sub(radius).max(1);
    let hi = (lag + radius).min(acf.len().saturating_sub(2));
    let mut best: Option<(usize, f64)> = None;
    for cand in lo..=hi {
        if is_acf_hill(acf, cand, threshold) {
            match best {
                Some((_, v)) if v >= acf[cand] => {}
                _ => best = Some((cand, acf[cand])),
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine(period: usize, cycles: usize) -> Vec<f64> {
        (0..period * cycles)
            .map(|i| (std::f64::consts::TAU * i as f64 / period as f64).sin())
            .collect()
    }

    #[test]
    fn lag_zero_is_one() {
        let acf = autocorrelation(&[1.0, 3.0, 2.0, 5.0], 2).unwrap();
        assert!((acf[0] - 1.0).abs() < 1e-12);
        assert_eq!(acf.len(), 3);
    }

    #[test]
    fn periodic_signal_peaks_at_period() {
        let signal = sine(24, 6);
        let acf = autocorrelation(&signal, 48).unwrap();
        // The ACF at the true period is a strong hill.
        assert!(acf[24] > 0.8, "acf[24] = {}", acf[24]);
        assert!(is_acf_hill(&acf, 24, 0.5));
        // Half-period is a valley for a sine.
        assert!(acf[12] < -0.5);
        assert!(!is_acf_hill(&acf, 12, 0.0));
    }

    #[test]
    fn white_noise_has_small_acf() {
        // Deterministic pseudo-noise via a splitmix64-style hash.
        fn hash_noise(i: u64) -> f64 {
            let mut z = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z = z ^ (z >> 31);
            (z % 10_000) as f64 / 10_000.0
        }
        let signal: Vec<f64> = (0..512).map(hash_noise).collect();
        let acf = autocorrelation(&signal, 32).unwrap();
        for &v in &acf[1..] {
            assert!(v.abs() < 0.2, "noise acf too large: {v}");
        }
    }

    #[test]
    fn error_conditions() {
        assert!(matches!(
            autocorrelation(&[1.0], 0),
            Err(SeriesError::TooShort(1))
        ));
        assert!(matches!(
            autocorrelation(&[1.0, 2.0, 3.0], 3),
            Err(SeriesError::TooShort(3))
        ));
        assert!(matches!(
            autocorrelation(&[2.0, 2.0, 2.0], 1),
            Err(SeriesError::ZeroVariance)
        ));
    }

    #[test]
    fn refine_finds_nearby_hill() {
        let signal = sine(20, 8);
        let acf = autocorrelation(&signal, 60).unwrap();
        // Candidate slightly off the true period is refined to it.
        let (lag, v) = refine_on_acf(&acf, 18, 4, 0.3).expect("hill found");
        assert_eq!(lag, 20);
        assert!(v > 0.8);
        // No hill clears an impossible threshold.
        assert!(refine_on_acf(&acf, 18, 4, 0.999999).is_none());
    }

    #[test]
    fn hill_edges_are_not_hills() {
        let acf = vec![1.0, 0.9, 0.8];
        assert!(!is_acf_hill(&acf, 0, 0.0));
        assert!(!is_acf_hill(&acf, 2, 0.0));
    }
}
