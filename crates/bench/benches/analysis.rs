//! Benchmarks for the per-series analysis fast path: autocorrelation
//! (naive oracle vs FFT), periodogram with and without the thread-local
//! plan cache, and the end-to-end classification sweep. Results merge
//! into `BENCH_analysis.json` at the repo root so the perf trajectory is
//! tracked across PRs.

use cloudscope::analysis::patterns::pattern_shares;
use cloudscope::prelude::*;
use cloudscope::timeseries::acf::{autocorrelation_fft, autocorrelation_naive};
use cloudscope::timeseries::fft::{fft_in_place, next_power_of_two, periodogram, Complex};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::OnceLock;

/// Week of 5-minute samples, the series length every per-VM analysis sees.
const WEEK_SAMPLES: usize = 2016;

fn week_signal() -> &'static Vec<f64> {
    static SIGNAL: OnceLock<Vec<f64>> = OnceLock::new();
    SIGNAL.get_or_init(|| {
        // Daily sine + weekly trend + deterministic hash noise: enough
        // structure to exercise every ACF lag without a flat spectrum.
        (0..WEEK_SAMPLES)
            .map(|i| {
                let t = i as f64;
                let daily = (std::f64::consts::TAU * t / 288.0).sin() * 20.0;
                let mut z = (i as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = z ^ (z >> 31);
                50.0 + daily + 0.002 * t + (z % 1000) as f64 / 250.0
            })
            .collect()
    })
}

fn generated() -> &'static GeneratedTrace {
    static TRACE: OnceLock<GeneratedTrace> = OnceLock::new();
    TRACE.get_or_init(|| generate(&GeneratorConfig::medium(7777)))
}

/// The periodogram as it was before the plan cache: a fresh buffer and a
/// from-scratch transform (twiddles recomputed stage by stage) per call.
fn periodogram_uncached(signal: &[f64]) -> (Vec<f64>, usize) {
    let mean = signal.iter().sum::<f64>() / signal.len() as f64;
    let n = next_power_of_two(signal.len());
    let mut buf = vec![Complex::default(); n];
    for (slot, &v) in buf.iter_mut().zip(signal) {
        *slot = Complex::new(v - mean, 0.0);
    }
    fft_in_place(&mut buf).expect("power of two");
    let power = buf[..n / 2]
        .iter()
        .map(|c| c.norm_sq() / n as f64)
        .collect();
    (power, n)
}

fn bench_autocorrelation(c: &mut Criterion) {
    // First group to run: point the harness at the repo-root JSON file.
    c.json_output(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_analysis.json"
    ));
    let signal = week_signal();
    let max_lag = WEEK_SAMPLES / 2;
    let mut group = c.benchmark_group("autocorrelation");
    group.sample_size(20);
    group.bench_function("naive/2016", |b| {
        b.iter(|| autocorrelation_naive(black_box(signal), max_lag).unwrap());
    });
    group.bench_function("fft/2016", |b| {
        b.iter(|| autocorrelation_fft(black_box(signal), max_lag).unwrap());
    });
    group.finish();
}

fn bench_periodogram(c: &mut Criterion) {
    let signal = week_signal();
    let mut group = c.benchmark_group("periodogram");
    group.sample_size(20);
    group.bench_function("uncached/2016", |b| {
        b.iter(|| periodogram_uncached(black_box(signal)));
    });
    group.bench_function("cached/2016", |b| {
        b.iter(|| periodogram(black_box(signal)).unwrap());
    });
    group.finish();
}

fn bench_classify_sweep(c: &mut Criterion) {
    let g = generated();
    let classifier = PatternClassifier::default();
    let mut group = c.benchmark_group("classify_trace");
    group.sample_size(10);
    group.bench_function("sweep_200_vms_per_cloud", |b| {
        b.iter(|| {
            for cloud in CloudKind::BOTH {
                pattern_shares(black_box(&g.trace), cloud, &classifier, 200).unwrap();
            }
        });
    });
    group.finish();
}

criterion_group!(
    analysis,
    bench_autocorrelation,
    bench_periodogram,
    bench_classify_sweep
);
criterion_main!(analysis);
