//! Hand-built miniature trace with exactly known properties, shared by
//! the unit tests of every analysis module.

use cloudscope_model::prelude::*;
use cloudscope_model::time::SAMPLES_PER_WEEK;

/// Raised-cosine daily activity bump in `[0, 1]` peaking at `peak_hour`.
pub fn bump(hour: f64, peak_hour: f64) -> f64 {
    let mut d = (hour - peak_hour).abs();
    if d > 12.0 {
        d = 24.0 - d;
    }
    if d >= 7.0 {
        0.0
    } else {
        0.5 * (1.0 + (std::f64::consts::PI * d / 7.0).cos())
    }
}

/// A full-week diurnal series: base 10%, amplitude 40%, peaking at
/// `peak_hour` on the clock `tz` hours from UTC, damped to 30% amplitude
/// on weekends. A deterministic jitter keyed by `salt` keeps series of
/// different VMs non-identical.
pub fn diurnal_series(peak_hour: f64, tz: i32, salt: u64) -> UtilSeries {
    let values = (0..SAMPLES_PER_WEEK).map(|i| {
        let t = SimTime::from_minutes(i as i64 * 5).to_local(tz);
        let amp = if t.is_weekend() { 12.0 } else { 40.0 };
        let jitter = ((i as u64).wrapping_mul(salt.wrapping_add(7)) % 100) as f32 / 100.0;
        10.0 + amp as f32 * bump(t.fractional_hour_of_day(), peak_hour) as f32 + jitter
    });
    UtilSeries::from_percentages(SimTime::ZERO, values.collect::<Vec<_>>())
}

/// A full-week stable series around `level` percent with a small
/// deterministic wiggle (so it is not exactly constant).
pub fn stable_series(level: f32, salt: u64) -> UtilSeries {
    let values = (0..SAMPLES_PER_WEEK).map(|i| {
        let wiggle = ((i as u64).wrapping_mul(salt.wrapping_add(13)) % 40) as f32 / 40.0;
        level + wiggle
    });
    UtilSeries::from_percentages(SimTime::ZERO, values.collect::<Vec<_>>())
}

/// Builds the miniature trace:
///
/// * Topology: regions `r0` (UTC-8, US) and `r1` (UTC-5, US); per region
///   one private and one public cluster of 1 rack × 4 nodes (16c/128g).
/// * `sub0` (private, service 0, **region-agnostic diurnal**): 4 standing
///   VMs in r0 (two on the same node) + 2 standing in r1; all share one
///   UTC-clock diurnal profile.
/// * `sub1` (private, service 1): one short-lived VM in r0
///   (10:00–10:30 Monday), no telemetry.
/// * `sub2` (public, service 2): one stable VM in r0.
/// * `sub3` (public, service 3): one VM in r0 created 20:00 Monday, ended
///   30:00 (Tuesday 06:00), no telemetry.
/// * `sub4` (public, service 4, **region-sensitive diurnal**): one VM in
///   r0 and one in r1, each following its local clock.
/// * `sub5` (public, service 5): one stable spot VM in r1.
pub fn tiny_trace() -> Trace {
    let mut tb = Topology::builder();
    let r0 = tb.add_region("us-west", -8, "US");
    let r1 = tb.add_region("us-east", -5, "US");
    let d0 = tb.add_datacenter(r0);
    let d1 = tb.add_datacenter(r1);
    let sku = NodeSku::new(16, 128.0);
    let c0 = tb.add_cluster(d0, CloudKind::Private, sku, 1, 4); // nodes 0..4
    let c1 = tb.add_cluster(d0, CloudKind::Public, sku, 1, 4); // nodes 4..8
    let c2 = tb.add_cluster(d1, CloudKind::Private, sku, 1, 4); // nodes 8..12
    let c3 = tb.add_cluster(d1, CloudKind::Public, sku, 1, 4); // nodes 12..16
    let topology = tb.build();

    let mut b = Trace::builder(topology);
    let subs = [
        (CloudKind::Private, PartyKind::FirstParty),
        (CloudKind::Private, PartyKind::FirstParty),
        (CloudKind::Public, PartyKind::ThirdParty),
        (CloudKind::Public, PartyKind::ThirdParty),
        (CloudKind::Public, PartyKind::FirstParty),
        (CloudKind::Public, PartyKind::ThirdParty),
    ];
    for (i, (cloud, party)) in subs.into_iter().enumerate() {
        b.add_subscription(Subscription::new(
            SubscriptionId::new(i as u32),
            cloud,
            party,
        ))
        .expect("dense ids");
    }

    let mut next_vm = 0u64;
    let mut add = |b: &mut TraceBuilder,
                   sub: u32,
                   region: RegionId,
                   cluster: ClusterId,
                   node: u32,
                   size: VmSize,
                   priority: Priority,
                   created: i64,
                   ended: Option<i64>,
                   util: Option<UtilSeries>| {
        let record = VmRecord {
            id: VmId::new(next_vm),
            subscription: SubscriptionId::new(sub),
            service: ServiceId::new(sub),
            size,
            priority,
            service_model: ServiceModel::Saas,
            region,
            cluster,
            node: Some(NodeId::new(node)),
            created: SimTime::from_minutes(created),
            ended: ended.map(SimTime::from_minutes),
        };
        next_vm += 1;
        b.add_vm(record, util).expect("consistent record");
    };

    let big = VmSize::new(4, 16.0);
    let small = VmSize::new(2, 8.0);
    let before = -2 * 24 * 60;

    // sub0: region-agnostic diurnal service (UTC clock, peak 14:00 UTC).
    for (node, salt) in [(0u32, 1u64), (0, 2), (1, 3), (2, 4)] {
        add(
            &mut b,
            0,
            RegionId::new(0),
            c0,
            node,
            big,
            Priority::OnDemand,
            before,
            None,
            Some(diurnal_series(14.0, 0, salt)),
        );
    }
    for (node, salt) in [(8u32, 5u64), (9, 6)] {
        add(
            &mut b,
            0,
            RegionId::new(1),
            c2,
            node,
            big,
            Priority::OnDemand,
            before,
            None,
            Some(diurnal_series(14.0, 0, salt)),
        );
    }

    // sub1: short-lived private VM (Monday 10:00–10:30).
    add(
        &mut b,
        1,
        RegionId::new(0),
        c0,
        3,
        small,
        Priority::OnDemand,
        10 * 60,
        Some(10 * 60 + 30),
        None,
    );

    // sub2: stable public VM in r0, co-located with sub3/sub4 on node 4.
    add(
        &mut b,
        2,
        RegionId::new(0),
        c1,
        4,
        small,
        Priority::OnDemand,
        before,
        None,
        Some(stable_series(20.0, 7)),
    );

    // sub3: bounded public VM, Monday 20:00 – Tuesday 06:00.
    add(
        &mut b,
        3,
        RegionId::new(0),
        c1,
        4,
        small,
        Priority::OnDemand,
        20 * 60,
        Some(30 * 60),
        None,
    );

    // sub4: region-sensitive diurnal service (local clocks, peak 13:00).
    add(
        &mut b,
        4,
        RegionId::new(0),
        c1,
        4,
        big,
        Priority::OnDemand,
        before,
        None,
        Some(diurnal_series(13.0, -8, 8)),
    );
    add(
        &mut b,
        4,
        RegionId::new(1),
        c3,
        12,
        big,
        Priority::OnDemand,
        before,
        None,
        Some(diurnal_series(13.0, -5, 9)),
    );

    // sub5: stable spot VM in r1.
    add(
        &mut b,
        5,
        RegionId::new(1),
        c3,
        13,
        small,
        Priority::Spot,
        before,
        None,
        Some(stable_series(35.0, 10)),
    );

    b.build()
}
