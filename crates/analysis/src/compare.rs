//! Differential private-vs-public summary: the compact comparison table
//! that the paper's narrative builds (and that a workload knowledge base
//! would export to operators).

use crate::report::CharacterizationReport;
use crate::UtilizationPattern;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One compared metric: its name and both clouds' values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparedMetric {
    /// Human-readable metric name.
    pub name: String,
    /// Private-cloud value.
    pub private: f64,
    /// Public-cloud value.
    pub public: f64,
    /// The paper's qualitative expectation: `private > public`?
    pub expect_private_higher: bool,
}

impl ComparedMetric {
    /// `true` if the measured ordering matches the paper's expectation.
    #[must_use]
    pub fn ordering_holds(&self) -> bool {
        if self.expect_private_higher {
            self.private > self.public
        } else {
            self.private < self.public
        }
    }
}

/// The full differential summary, derived from a
/// [`CharacterizationReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CloudComparison {
    /// Compared metrics in presentation order.
    pub metrics: Vec<ComparedMetric>,
}

impl CloudComparison {
    /// Builds the comparison from a finished report.
    #[must_use]
    pub fn from_report(report: &CharacterizationReport) -> Self {
        let m =
            |name: &str, private: f64, public: f64, expect_private_higher: bool| ComparedMetric {
                name: name.to_owned(),
                private,
                public,
                expect_private_higher,
            };
        let metrics = vec![
            m(
                "median VMs per subscription",
                report.deployment.private_vms_per_subscription.median(),
                report.deployment.public_vms_per_subscription.median(),
                true,
            ),
            m(
                "median subscriptions per cluster",
                report.deployment.private_subscriptions_per_cluster.median,
                report.deployment.public_subscriptions_per_cluster.median,
                false,
            ),
            m(
                "VM-size corner mass",
                report.vm_size.private_corner_mass,
                report.vm_size.public_corner_mass,
                false,
            ),
            m(
                "shortest-lifetime-bin fraction",
                report.temporal.private_short_fraction,
                report.temporal.public_short_fraction,
                false,
            ),
            m(
                "median creation CV across regions",
                report.temporal.creation_cv.0.median,
                report.temporal.creation_cv.1.median,
                true,
            ),
            m(
                "single-region core share",
                report.spatial.private_single_region_core_share,
                report.spatial.public_single_region_core_share,
                false,
            ),
            m(
                "diurnal pattern share",
                report
                    .private_patterns
                    .fraction(UtilizationPattern::Diurnal),
                report.public_patterns.fraction(UtilizationPattern::Diurnal),
                true,
            ),
            m(
                "stable pattern share",
                report.private_patterns.fraction(UtilizationPattern::Stable),
                report.public_patterns.fraction(UtilizationPattern::Stable),
                false,
            ),
            m(
                "hourly-peak pattern share",
                report
                    .private_patterns
                    .fraction(UtilizationPattern::HourlyPeak),
                report
                    .public_patterns
                    .fraction(UtilizationPattern::HourlyPeak),
                true,
            ),
            m(
                "daily median-utilization variability",
                report.private_utilization.daily_median_variability(),
                report.public_utilization.daily_median_variability(),
                true,
            ),
            m(
                "median VM-node correlation",
                report.node_correlation.0.median(),
                report.node_correlation.1.median(),
                true,
            ),
            m(
                "median cross-region correlation",
                report.region_correlation.0.median(),
                report.region_correlation.1.median(),
                true,
            ),
        ];
        Self { metrics }
    }

    /// Number of metrics whose measured ordering matches the paper.
    #[must_use]
    pub fn orderings_holding(&self) -> usize {
        self.metrics.iter().filter(|m| m.ordering_holds()).count()
    }
}

impl fmt::Display for CloudComparison {
    /// Renders a fixed-width text table.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<42} {:>10} {:>10}  paper ordering",
            "metric", "private", "public"
        )?;
        for m in &self.metrics {
            writeln!(
                f,
                "{:<42} {:>10.3} {:>10.3}  {} {}",
                m.name,
                m.private,
                m.public,
                if m.expect_private_higher {
                    "P > p"
                } else {
                    "P < p"
                },
                if m.ordering_holds() { "ok" } else { "MISS" },
            )?;
        }
        write!(
            f,
            "{}/{} orderings hold",
            self.orderings_holding(),
            self.metrics.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::ReportConfig;
    use crate::test_support::tiny_trace;
    use cloudscope_model::time::SimTime;

    fn comparison() -> CloudComparison {
        let trace = tiny_trace();
        let config = ReportConfig {
            snapshot: SimTime::from_hours(24),
            ..ReportConfig::default()
        };
        let report = CharacterizationReport::analyze(&trace, &config).unwrap();
        CloudComparison::from_report(&report)
    }

    #[test]
    fn covers_all_headline_metrics() {
        let c = comparison();
        assert_eq!(c.metrics.len(), 12);
        // Deployment-size ordering must hold even on the tiny trace.
        let deploy = &c.metrics[0];
        assert!(deploy.ordering_holds(), "{deploy:?}");
    }

    #[test]
    fn display_renders_table() {
        let c = comparison();
        let text = c.to_string();
        assert!(text.contains("metric"));
        assert!(text.contains("median VM-node correlation"));
        assert!(text.contains("orderings hold"));
        assert_eq!(text.lines().count(), 1 + c.metrics.len() + 1);
    }

    #[test]
    fn ordering_logic() {
        let m = ComparedMetric {
            name: "x".into(),
            private: 2.0,
            public: 1.0,
            expect_private_higher: true,
        };
        assert!(m.ordering_holds());
        let m2 = ComparedMetric {
            expect_private_higher: false,
            ..m
        };
        assert!(!m2.ordering_holds());
    }
}
