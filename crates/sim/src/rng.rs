//! Deterministic random-number streams.
//!
//! Every stochastic component of the simulator draws from its own named
//! stream derived from one master seed via SplitMix64. This keeps runs
//! reproducible *and* decoupled: adding draws to one component never
//! perturbs another component's sequence.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// One step of the SplitMix64 generator; also a high-quality 64-bit mixer.
#[must_use]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hashes a label (FNV-1a) for stream derivation.
#[must_use]
fn hash_label(label: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Derives independent, reproducible RNG streams from one master seed.
///
/// # Examples
/// ```
/// # use cloudscope_sim::rng::RngFactory;
/// use rand::Rng;
/// let factory = RngFactory::new(42);
/// let mut a = factory.stream("arrivals");
/// let mut b = factory.stream("arrivals");
/// assert_eq!(a.random::<u64>(), b.random::<u64>()); // same label, same stream
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RngFactory {
    master_seed: u64,
}

impl RngFactory {
    /// Creates a factory from a master seed.
    #[must_use]
    pub const fn new(master_seed: u64) -> Self {
        Self { master_seed }
    }

    /// The master seed this factory derives from.
    #[must_use]
    pub const fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// A named stream: deterministic in `(master_seed, label)`.
    #[must_use]
    pub fn stream(&self, label: &str) -> StdRng {
        let mut state = self.master_seed ^ hash_label(label);
        let seed = splitmix64(&mut state);
        StdRng::seed_from_u64(seed)
    }

    /// An indexed stream, for per-entity substreams (e.g. one per VM).
    #[must_use]
    pub fn indexed_stream(&self, label: &str, index: u64) -> StdRng {
        let mut state =
            self.master_seed ^ hash_label(label) ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let seed = splitmix64(&mut state);
        StdRng::seed_from_u64(seed)
    }

    /// Derives a child factory, for nesting components.
    #[must_use]
    pub fn child(&self, label: &str) -> RngFactory {
        let mut state = self.master_seed ^ hash_label(label);
        RngFactory::new(splitmix64(&mut state))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_label_same_stream() {
        let f = RngFactory::new(7);
        let a: Vec<u64> = f.stream("x").random_iter().take(4).collect();
        let b: Vec<u64> = f.stream("x").random_iter().take(4).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_labels_different_streams() {
        let f = RngFactory::new(7);
        let a: u64 = f.stream("arrivals").random();
        let b: u64 = f.stream("lifetimes").random();
        assert_ne!(a, b);
    }

    #[test]
    fn different_seeds_different_streams() {
        let a: u64 = RngFactory::new(1).stream("x").random();
        let b: u64 = RngFactory::new(2).stream("x").random();
        assert_ne!(a, b);
    }

    #[test]
    fn indexed_streams_distinct_and_stable() {
        let f = RngFactory::new(7);
        let a: u64 = f.indexed_stream("vm", 0).random();
        let b: u64 = f.indexed_stream("vm", 1).random();
        let a2: u64 = f.indexed_stream("vm", 0).random();
        assert_ne!(a, b);
        assert_eq!(a, a2);
    }

    #[test]
    fn child_factories_are_namespaced() {
        let f = RngFactory::new(7);
        let c1 = f.child("private");
        let c2 = f.child("public");
        assert_ne!(c1.master_seed(), c2.master_seed());
        let a: u64 = c1.stream("arrivals").random();
        let b: u64 = c2.stream("arrivals").random();
        assert_ne!(a, b);
    }

    #[test]
    fn splitmix_mixes() {
        let mut s = 0u64;
        let a = splitmix64(&mut s);
        let b = splitmix64(&mut s);
        assert_ne!(a, b);
        assert_ne!(a, 0);
    }
}
