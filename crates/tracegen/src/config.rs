//! Generator configuration: every knob is calibrated to a quantitative
//! statement of the DSN'23 study (see DESIGN.md §4 for the fact ledger).

use cloudscope_model::topology::NodeSku;
use serde::{Deserialize, Serialize};

/// One region of the simulated platform.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionSpec {
    /// Region name (e.g. `us-west`).
    pub name: String,
    /// Offset from UTC in whole hours.
    pub tz_offset_hours: i32,
    /// Geography tag; the paper's cross-region study restricts to "US".
    pub geo: String,
}

/// Shape of the physical plant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopologyConfig {
    /// Regions to build. The default mirrors the paper's US study setup:
    /// about 10 regions spread over many time zones.
    pub regions: Vec<RegionSpec>,
    /// Private-cloud clusters per region.
    pub private_clusters_per_region: usize,
    /// Public-cloud clusters per region. The paper samples a similar
    /// number of public clusters as private ones.
    pub public_clusters_per_region: usize,
    /// Racks (fault domains) per cluster.
    pub racks_per_cluster: usize,
    /// Nodes per rack.
    pub nodes_per_rack: usize,
    /// Node SKU, identical within a cluster (and, here, across clusters —
    /// the paper notes private and public clusters have similar sizes).
    pub node_sku: NodeSku,
}

impl Default for TopologyConfig {
    fn default() -> Self {
        // ~10 US regions over 9 time zones, as in the paper's Fig 7(b)
        // setting, plus tz variety resembling US geography.
        let regions = [
            ("us-east", -5),
            ("us-east-2", -5),
            ("us-central", -6),
            ("us-south-central", -6),
            ("us-mountain", -7),
            ("us-west", -8),
            ("us-west-2", -8),
            ("us-northwest", -8),
            ("us-alaska", -9),
            ("us-hawaii", -10),
        ]
        .into_iter()
        .map(|(name, tz)| RegionSpec {
            name: name.to_owned(),
            tz_offset_hours: tz,
            geo: "US".to_owned(),
        })
        .collect();
        Self {
            regions,
            private_clusters_per_region: 2,
            public_clusters_per_region: 2,
            racks_per_cluster: 5,
            nodes_per_rack: 40,
            node_sku: NodeSku::new(64, 640.0),
        }
    }
}

/// Mixture of the four utilization-pattern archetypes (Figure 5).
/// Weights need not be normalized; sampling normalizes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PatternMix {
    /// Daily cycle tied to user activity.
    pub diurnal: f64,
    /// Flat utilization (over-subscription candidates).
    pub stable: f64,
    /// Low base with unpredictable spikes.
    pub irregular: f64,
    /// Spikes at hour/half-hour marks (meeting joins).
    pub hourly_peak: f64,
}

impl PatternMix {
    /// Weights as an array in `[diurnal, stable, irregular, hourly_peak]`
    /// order.
    #[must_use]
    pub fn weights(&self) -> [f64; 4] {
        [self.diurnal, self.stable, self.irregular, self.hourly_peak]
    }
}

/// Parameters of one cloud's VM arrival machinery.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArrivalProfile {
    /// Mean regular (non-burst) VM creations per hour per region at the
    /// diurnal baseline.
    pub base_rate_per_hour: f64,
    /// Diurnal modulation amplitude in `[0, 1]`: 0 = flat, 1 = rate swings
    /// from 0 to 2× base at the daily peak.
    pub diurnal_amplitude: f64,
    /// Multiplier applied to the rate on weekends (the paper observes a
    /// significant weekend decrease in both clouds).
    pub weekend_factor: f64,
    /// Expected number of deployment bursts per region over the week
    /// (private-cloud spikes of Figure 3(b)/(c)); 0 disables bursts.
    pub bursts_per_region_week: f64,
    /// Mean VMs created by one burst (geometric-ish around this mean).
    pub burst_size_mean: f64,
}

/// Churn lifetime mixture, calibrated to Figure 3(a): the shortest
/// lifetime bin holds 49% of private and 81% of public bounded VMs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LifetimeProfile {
    /// Probability a regular churn VM is short-lived (exponential with
    /// [`LifetimeProfile::short_mean_minutes`]).
    pub short_fraction: f64,
    /// Mean of the short-lived exponential, in minutes.
    pub short_mean_minutes: f64,
    /// Median of the medium log-normal, in minutes.
    pub medium_median_minutes: f64,
    /// Log-space sigma of the medium log-normal.
    pub medium_sigma: f64,
    /// Probability a churn VM is long-lived (log-normal in days) —
    /// usually censored by the week window and excluded from Fig 3(a).
    pub long_fraction: f64,
    /// Median of the long-lived log-normal, in minutes.
    pub long_median_minutes: f64,
}

/// VM-size sampling profile over the SKU catalog (Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SizeProfile {
    /// Extra probability mass pushed to the catalog's extreme corners
    /// (1-core/min-memory and max-core/max-memory). The paper observes
    /// non-negligible corner demand only in the public cloud.
    pub corner_mass: f64,
    /// Concentration of the central sizes: higher = narrower, more
    /// homogeneous size distribution (private cloud).
    pub concentration: f64,
}

/// Full per-cloud workload profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CloudProfile {
    /// Number of subscriptions.
    pub subscriptions: usize,
    /// Median standing VMs per subscription (log-normal).
    pub deployment_median: f64,
    /// Log-space sigma of the deployment-size log-normal.
    pub deployment_sigma: f64,
    /// Fraction of subscriptions deployed in a single region (Fig 4(a):
    /// >50% in both clouds; larger multi-region tail in private).
    pub single_region_fraction: f64,
    /// Maximum regions a multi-region subscription spans.
    pub max_regions: usize,
    /// Deployment-size multiplier per extra region: multi-region private
    /// subscriptions are the large ones (Fig 4(b): 60% of private cores
    /// are multi-region vs 30% public).
    pub multi_region_size_boost: f64,
    /// Fraction of a subscription's VMs that are long-standing (alive
    /// before and often beyond the trace week) as opposed to churn.
    pub standing_fraction: f64,
    /// Arrival machinery.
    pub arrival: ArrivalProfile,
    /// Churn lifetime mixture.
    pub lifetime: LifetimeProfile,
    /// Utilization-pattern mixture (per service).
    pub pattern_mix: PatternMix,
    /// Fraction of multi-region services fronted by a geo-level load
    /// balancer, making them region-agnostic (Fig 7(b)/(c)).
    pub geo_lb_fraction: f64,
    /// VM size sampling.
    pub size: SizeProfile,
    /// Fraction of churn creations that belong to diurnal auto-scaling
    /// (created in the local morning, removed in the local evening) —
    /// the mechanism behind the public cloud's clean diurnal counts.
    pub autoscale_fraction: f64,
    /// Fraction of VMs launched as evictable spot instances.
    pub spot_fraction: f64,
    /// Range of local peak hours diurnal services draw from. First-party
    /// work-related services cluster in the early afternoon; third-party
    /// customer services serve diverse user bases and spread wider.
    pub peak_hour_range: (f64, f64),
}

impl CloudProfile {
    /// Default private-cloud profile (first-party workloads).
    #[must_use]
    pub fn private_default() -> Self {
        Self {
            subscriptions: 100,
            deployment_median: 48.0,
            deployment_sigma: 0.85,
            single_region_fraction: 0.52,
            max_regions: 8,
            multi_region_size_boost: 1.20,
            standing_fraction: 0.78,
            arrival: ArrivalProfile {
                base_rate_per_hour: 8.0,
                diurnal_amplitude: 0.35,
                weekend_factor: 0.55,
                bursts_per_region_week: 3.0,
                burst_size_mean: 260.0,
            },
            lifetime: LifetimeProfile {
                short_fraction: 0.75,
                short_mean_minutes: 22.0,
                medium_median_minutes: 9.0 * 60.0,
                medium_sigma: 0.9,
                long_fraction: 0.10,
                long_median_minutes: 4.0 * 24.0 * 60.0,
            },
            pattern_mix: PatternMix {
                diurnal: 0.58,
                stable: 0.13,
                irregular: 0.07,
                hourly_peak: 0.22,
            },
            geo_lb_fraction: 0.70,
            size: SizeProfile {
                corner_mass: 0.01,
                concentration: 2.2,
            },
            autoscale_fraction: 0.06,
            spot_fraction: 0.02,
            peak_hour_range: (12.5, 16.5),
        }
    }

    /// Default public-cloud profile (first- plus third-party workloads).
    #[must_use]
    pub fn public_default() -> Self {
        Self {
            subscriptions: 5000,
            deployment_median: 1.8,
            deployment_sigma: 1.1,
            single_region_fraction: 0.76,
            max_regions: 4,
            multi_region_size_boost: 0.85,
            standing_fraction: 0.60,
            arrival: ArrivalProfile {
                base_rate_per_hour: 30.0,
                diurnal_amplitude: 0.75,
                weekend_factor: 0.60,
                bursts_per_region_week: 0.0,
                burst_size_mean: 0.0,
            },
            lifetime: LifetimeProfile {
                short_fraction: 0.90,
                short_mean_minutes: 18.0,
                medium_median_minutes: 7.0 * 60.0,
                medium_sigma: 1.0,
                long_fraction: 0.04,
                long_median_minutes: 4.0 * 24.0 * 60.0,
            },
            pattern_mix: PatternMix {
                diurnal: 0.36,
                stable: 0.32,
                irregular: 0.24,
                hourly_peak: 0.08,
            },
            geo_lb_fraction: 0.15,
            size: SizeProfile {
                corner_mass: 0.10,
                concentration: 1.0,
            },
            autoscale_fraction: 0.22,
            spot_fraction: 0.08,
            peak_hour_range: (7.0, 21.0),
        }
    }
}

/// Top-level generator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Master seed; every stochastic choice derives from it.
    pub seed: u64,
    /// Physical plant.
    pub topology: TopologyConfig,
    /// Private-cloud workload profile.
    pub private: CloudProfile,
    /// Public-cloud workload profile.
    pub public: CloudProfile,
    /// Generate 5-minute utilization telemetry (disable for deployment-
    /// only studies to speed up generation).
    pub telemetry: bool,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            seed: 0xC10D_5C09,
            topology: TopologyConfig::default(),
            private: CloudProfile::private_default(),
            public: CloudProfile::public_default(),
            telemetry: true,
        }
    }
}

impl GeneratorConfig {
    /// A mid-scale configuration for examples and integration tests:
    /// 6 regions and roughly a quarter of the default telemetry volume,
    /// large enough for every figure's shape to be stable.
    #[must_use]
    pub fn medium(seed: u64) -> Self {
        let mut cfg = Self {
            seed,
            ..Self::default()
        };
        cfg.topology.regions.truncate(6);
        cfg.topology.private_clusters_per_region = 1;
        cfg.topology.public_clusters_per_region = 1;
        cfg.topology.racks_per_cluster = 3;
        cfg.topology.nodes_per_rack = 40;
        cfg.private.subscriptions = 60;
        cfg.private.deployment_median = 30.0;
        cfg.private.arrival.base_rate_per_hour = 4.0;
        cfg.private.arrival.burst_size_mean = 120.0;
        cfg.public.subscriptions = 1100;
        cfg.public.arrival.base_rate_per_hour = 12.0;
        cfg
    }

    /// A scaled-down configuration for unit tests and doc examples:
    /// 3 regions, small clusters, ~40× fewer subscriptions.
    #[must_use]
    pub fn small(seed: u64) -> Self {
        let mut cfg = Self {
            seed,
            ..Self::default()
        };
        cfg.topology.regions.truncate(3);
        cfg.topology.private_clusters_per_region = 1;
        cfg.topology.public_clusters_per_region = 1;
        cfg.topology.racks_per_cluster = 2;
        cfg.topology.nodes_per_rack = 16;
        cfg.private.subscriptions = 20;
        cfg.private.deployment_median = 14.0;
        cfg.private.arrival.base_rate_per_hour = 2.0;
        cfg.private.arrival.burst_size_mean = 40.0;
        cfg.public.subscriptions = 300;
        cfg.public.arrival.base_rate_per_hour = 10.0;
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_reflect_paper_facts() {
        let cfg = GeneratorConfig::default();
        // Fig 1: private deployments much larger, far fewer subscriptions.
        assert!(cfg.private.deployment_median > 10.0 * cfg.public.deployment_median);
        assert!(cfg.public.subscriptions > 10 * cfg.private.subscriptions);
        // Fig 3(a): public churn much more short-lived.
        assert!(cfg.public.lifetime.short_fraction > cfg.private.lifetime.short_fraction);
        // Fig 3(c): only the private cloud has deployment bursts.
        assert!(cfg.private.arrival.bursts_per_region_week > 0.0);
        assert_eq!(cfg.public.arrival.bursts_per_region_week, 0.0);
        // Fig 4: both clouds mostly single-region; private tail heavier.
        assert!(cfg.private.single_region_fraction > 0.5);
        assert!(cfg.public.single_region_fraction > 0.5);
        assert!(cfg.private.max_regions > cfg.public.max_regions);
        // Fig 5(d): diurnal most common in both; private roughly double;
        // stable higher in public; hourly-peak mostly private.
        let p = cfg.private.pattern_mix;
        let q = cfg.public.pattern_mix;
        assert!(p.diurnal >= p.stable && p.diurnal >= p.irregular && p.diurnal >= p.hourly_peak);
        assert!(q.diurnal >= q.stable && q.diurnal >= q.irregular && q.diurnal >= q.hourly_peak);
        assert!(p.diurnal / q.diurnal > 1.4);
        assert!(q.stable > p.stable);
        assert!(p.hourly_peak > 2.0 * q.hourly_peak);
        // Fig 7: geo-LB (region-agnostic) mostly a private phenomenon.
        assert!(cfg.private.geo_lb_fraction > 3.0 * cfg.public.geo_lb_fraction);
        // Fig 2: corner sizes only material in public.
        assert!(cfg.public.size.corner_mass > 5.0 * cfg.private.size.corner_mass);
    }

    #[test]
    fn topology_spans_many_time_zones() {
        let topo = TopologyConfig::default();
        assert!(topo.regions.len() >= 9);
        let zones: std::collections::HashSet<i32> =
            topo.regions.iter().map(|r| r.tz_offset_hours).collect();
        assert!(zones.len() >= 5);
        assert!(topo.regions.iter().all(|r| r.geo == "US"));
    }

    #[test]
    fn small_and_medium_scale_down() {
        let small = GeneratorConfig::small(1);
        let medium = GeneratorConfig::medium(1);
        let full = GeneratorConfig::default();
        assert!(small.topology.regions.len() < medium.topology.regions.len());
        assert!(medium.topology.regions.len() < full.topology.regions.len());
        assert!(small.public.subscriptions < full.public.subscriptions / 10);
        assert!(medium.public.subscriptions < full.public.subscriptions);
        assert!(medium.public.subscriptions > small.public.subscriptions);
    }

    #[test]
    fn pattern_weights_order() {
        let mix = PatternMix {
            diurnal: 1.0,
            stable: 2.0,
            irregular: 3.0,
            hourly_peak: 4.0,
        };
        assert_eq!(mix.weights(), [1.0, 2.0, 3.0, 4.0]);
    }
}
