//! Exports the default synthetic trace as CSV files (deployment records
//! and long-format telemetry), for analysis in external tooling.
//!
//! ```sh
//! cargo run --release -p cloudscope-repro --bin export -- [output_dir]
//! ```

use cloudscope::model::export::{write_deployments, write_telemetry};
use cloudscope_repro::MetricsOpt;
use std::fs::File;
use std::io::BufWriter;
use std::path::PathBuf;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (metrics, positionals) = MetricsOpt::from_args_with_positionals();
    let dir: PathBuf = positionals
        .first()
        .cloned()
        .unwrap_or_else(|| "trace_export".to_owned())
        .into();
    std::fs::create_dir_all(&dir)?;
    let generated = metrics.load_trace();

    let deployments_path = dir.join("deployments.csv");
    write_deployments(
        &generated.trace,
        BufWriter::new(File::create(&deployments_path)?),
    )?;
    eprintln!(
        "# wrote {} ({} VM records)",
        deployments_path.display(),
        generated.trace.vms().len()
    );

    let telemetry_path = dir.join("telemetry.csv");
    write_telemetry(
        &generated.trace,
        BufWriter::new(File::create(&telemetry_path)?),
    )?;
    eprintln!("# wrote {}", telemetry_path.display());
    println!(
        "exported {} VMs to {}",
        generated.trace.vms().len(),
        dir.display()
    );
    metrics.write();
    Ok(())
}
