//! The utilization-pattern classifier (Figure 5): assigns each VM's CPU
//! series to one of the four archetypes — diurnal, stable, irregular, or
//! hourly-peak — using the Vlachos-style period detector plus a standard-
//! deviation gate, exactly the recipe the paper describes.

use crate::error::AnalysisError;
use cloudscope_model::prelude::*;
use cloudscope_par::Parallelism;
use cloudscope_timeseries::gaps::{coverage, fill_linear_capped, finite_std};
use cloudscope_timeseries::{PeriodDetector, Series};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The four utilization-pattern classes of the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UtilizationPattern {
    /// Daily periodicity tied to user activity.
    Diurnal,
    /// Low standard deviation — over-subscription candidate.
    Stable,
    /// Neither periodic nor flat.
    Irregular,
    /// Periodicity at the hour/half-hour scale (meeting joins).
    HourlyPeak,
}

impl UtilizationPattern {
    /// All classes, in Figure 5 order.
    pub const ALL: [UtilizationPattern; 4] = [
        UtilizationPattern::Diurnal,
        UtilizationPattern::Stable,
        UtilizationPattern::Irregular,
        UtilizationPattern::HourlyPeak,
    ];
}

impl fmt::Display for UtilizationPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            UtilizationPattern::Diurnal => "diurnal",
            UtilizationPattern::Stable => "stable",
            UtilizationPattern::Irregular => "irregular",
            UtilizationPattern::HourlyPeak => "hourly-peak",
        })
    }
}

/// Tuning knobs of the classifier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PatternClassifierConfig {
    /// Series with standard deviation below this (percentage points) are
    /// stable.
    pub stable_std_threshold: f64,
    /// Sub-daily periods within this tolerance of 30 or 60 minutes count
    /// as hourly peaks.
    pub hourly_tolerance_minutes: f64,
    /// Periods within this tolerance of 24 h count as diurnal.
    pub daily_tolerance_minutes: f64,
    /// Minimum telemetry length (in days) to classify a VM at all.
    pub min_days: usize,
    /// Minimum fraction of present (non-gap) samples to classify a
    /// gap-bearing series at all.
    pub min_coverage: f64,
    /// Gaps up to this many samples are linearly interpolated before
    /// classification; longer ones stay masked and are handled by the
    /// gap-aware period detector.
    pub max_fill_gap_samples: usize,
}

impl Default for PatternClassifierConfig {
    fn default() -> Self {
        Self {
            stable_std_threshold: 3.0,
            hourly_tolerance_minutes: 12.0,
            daily_tolerance_minutes: 240.0,
            min_days: 3,
            // A 30-minute fill cap: short monitor hiccups are repaired,
            // but a blackout window stays masked rather than invented.
            min_coverage: 0.6,
            max_fill_gap_samples: 6,
        }
    }
}

/// The pattern classifier.
#[derive(Debug, Clone, Copy, Default)]
pub struct PatternClassifier {
    config: PatternClassifierConfig,
    detector: PeriodDetector,
}

impl PatternClassifier {
    /// Creates a classifier with custom thresholds.
    #[must_use]
    pub fn new(config: PatternClassifierConfig) -> Self {
        Self {
            config,
            detector: PeriodDetector::default(),
        }
    }

    /// Classifies a 5-minute utilization series; `None` if it is too
    /// short (fewer than `min_days` days of *present* samples) or too
    /// sparse (coverage below `min_coverage`).
    ///
    /// Gap-bearing series (NaN slots) are repaired first: gaps up to
    /// `max_fill_gap_samples` are linearly interpolated, longer ones stay
    /// masked and flow into the gap-aware period detector.
    #[must_use]
    pub fn classify_series(&self, series: &Series) -> Option<UtilizationPattern> {
        let samples_per_day = (24 * 60 / series.step_minutes()) as usize;
        let has_gaps = series.values().iter().any(|v| !v.is_finite());
        let filled_storage: Series;
        let series = if has_gaps {
            if coverage(series.values()) < self.config.min_coverage {
                cloudscope_obs::counter("analysis.classify.coverage_rejections").inc();
                return None;
            }
            cloudscope_obs::counter("analysis.classify.masked_dispatch").inc();
            let mut values = series.values().to_vec();
            fill_linear_capped(&mut values, self.config.max_fill_gap_samples);
            if values.iter().any(|v| !v.is_finite()) {
                cloudscope_obs::counter("analysis.classify.fill_cap_hits").inc();
            }
            filled_storage = Series::new(series.start_minute(), series.step_minutes(), values);
            &filled_storage
        } else {
            cloudscope_obs::counter("analysis.classify.dense_dispatch").inc();
            series
        };
        let present = if has_gaps {
            series.values().iter().filter(|v| v.is_finite()).count()
        } else {
            series.len()
        };
        if present < self.config.min_days * samples_per_day {
            return None;
        }
        // Stable gate first: the paper extracts the stable class by
        // restricting the standard deviation (over present samples).
        if finite_std(series.values()).unwrap_or(0.0) < self.config.stable_std_threshold {
            return Some(UtilizationPattern::Stable);
        }
        // Hourly-peak: a strong sub-daily period at 30/60 minutes,
        // detected on a two-day window at native resolution.
        let two_days = (2 * samples_per_day).min(series.len());
        let window = Series::new(
            series.start_minute(),
            series.step_minutes(),
            series.values()[..two_days].to_vec(),
        );
        let tol = self.config.hourly_tolerance_minutes;
        if self.detector.has_period_near(&window, 60.0, tol)
            || self.detector.has_period_near(&window, 30.0, tol)
        {
            return Some(UtilizationPattern::HourlyPeak);
        }
        // Diurnal: a 24-hour period, detected on a half-hourly
        // downsample of the full series (cheap and leakage-resistant).
        let coarse = series
            .downsample_mean((30 / series.step_minutes()).max(1) as usize)
            .expect("positive factor");
        if self
            .detector
            .has_period_near(&coarse, 24.0 * 60.0, self.config.daily_tolerance_minutes)
        {
            return Some(UtilizationPattern::Diurnal);
        }
        Some(UtilizationPattern::Irregular)
    }

    /// Classifies one VM given any [`TelemetrySource`] — a resident
    /// [`Trace`], an out-of-core store, or a live ingest session — and
    /// returns `None` if the VM lacks telemetry or the telemetry is too
    /// short. The batch, out-of-core, and streaming paths all land here,
    /// which is what makes their outputs directly comparable.
    #[must_use]
    pub fn classify_vm(
        &self,
        source: &(impl TelemetrySource + ?Sized),
        vm: VmId,
    ) -> Option<UtilizationPattern> {
        let util = source.load(vm)?;
        let series = Series::new(
            util.start().minutes(),
            cloudscope_model::time::SAMPLE_INTERVAL_MINUTES,
            util.to_f64_vec(),
        );
        self.classify_series(&series)
    }
}

/// Class shares over a VM population (Figure 5(d)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PatternShares {
    /// VMs classified diurnal.
    pub diurnal: usize,
    /// VMs classified stable.
    pub stable: usize,
    /// VMs classified irregular.
    pub irregular: usize,
    /// VMs classified hourly-peak.
    pub hourly_peak: usize,
    /// VMs skipped (no or too-short telemetry).
    pub unclassified: usize,
}

impl PatternShares {
    /// Total classified VMs.
    #[must_use]
    pub fn classified(&self) -> usize {
        self.diurnal + self.stable + self.irregular + self.hourly_peak
    }

    /// Fraction of sampled VMs that could be classified, in `[0, 1]` —
    /// the figure's coverage ratio (0 if nothing was sampled).
    #[must_use]
    pub fn classified_fraction(&self) -> f64 {
        let total = self.classified() + self.unclassified;
        if total == 0 {
            return 0.0;
        }
        self.classified() as f64 / total as f64
    }

    /// Fraction of classified VMs in `pattern` (0 if nothing classified).
    #[must_use]
    pub fn fraction(&self, pattern: UtilizationPattern) -> f64 {
        let total = self.classified();
        if total == 0 {
            return 0.0;
        }
        let count = match pattern {
            UtilizationPattern::Diurnal => self.diurnal,
            UtilizationPattern::Stable => self.stable,
            UtilizationPattern::Irregular => self.irregular,
            UtilizationPattern::HourlyPeak => self.hourly_peak,
        };
        count as f64 / total as f64
    }

    fn add(&mut self, pattern: Option<UtilizationPattern>) {
        match pattern {
            Some(UtilizationPattern::Diurnal) => self.diurnal += 1,
            Some(UtilizationPattern::Stable) => self.stable += 1,
            Some(UtilizationPattern::Irregular) => self.irregular += 1,
            Some(UtilizationPattern::HourlyPeak) => self.hourly_peak += 1,
            None => self.unclassified += 1,
        }
    }
}

/// Classifies (up to `max_vms`, stride-sampled) VMs of one cloud and
/// tallies the class shares. Work is spread over worker threads.
///
/// # Errors
/// Returns [`AnalysisError::NoData`] if no VM could be classified.
pub fn pattern_shares(
    trace: &Trace,
    cloud: CloudKind,
    classifier: &PatternClassifier,
    max_vms: usize,
) -> Result<PatternShares, AnalysisError> {
    pattern_shares_from(trace, trace, cloud, classifier, max_vms)
}

/// [`pattern_shares`] with telemetry decoupled from VM metadata: `trace`
/// supplies the population, `source` the samples. Pass the trace itself
/// for resident telemetry, a [`StoreTelemetry`] for out-of-core reads,
/// or an `IngestSession` for streamed state — same classifier, same
/// tallies.
///
/// [`StoreTelemetry`]: https://docs.rs/cloudscope-store
///
/// # Errors
/// Returns [`AnalysisError::NoData`] if no VM could be classified.
pub fn pattern_shares_from(
    trace: &Trace,
    source: &(impl TelemetrySource + ?Sized),
    cloud: CloudKind,
    classifier: &PatternClassifier,
    max_vms: usize,
) -> Result<PatternShares, AnalysisError> {
    let candidates: Vec<VmId> = trace
        .vms_of(cloud)
        .filter(|vm| source.has(vm.id))
        .map(|vm| vm.id)
        .collect();
    let stride = (candidates.len() / max_vms.max(1)).max(1);
    let sampled: Vec<VmId> = candidates
        .into_iter()
        .step_by(stride)
        .take(max_vms)
        .collect();

    let shares = Parallelism::auto().par_map_reduce(
        &sampled,
        |&vm| classifier.classify_vm(source, vm),
        PatternShares::default(),
        |mut acc, pattern| {
            acc.add(pattern);
            acc
        },
    );

    if shares.classified() == 0 {
        return Err(AnalysisError::NoData("classifiable telemetry"));
    }
    Ok(shares)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{diurnal_series, stable_series, tiny_trace};

    fn to_series(util: &UtilSeries) -> Series {
        Series::new(util.start().minutes(), 5, util.to_f64_vec())
    }

    #[test]
    fn classifies_diurnal() {
        let classifier = PatternClassifier::default();
        let series = to_series(&diurnal_series(14.0, 0, 1));
        assert_eq!(
            classifier.classify_series(&series),
            Some(UtilizationPattern::Diurnal)
        );
    }

    #[test]
    fn classifies_stable() {
        let classifier = PatternClassifier::default();
        let series = to_series(&stable_series(20.0, 3));
        assert_eq!(
            classifier.classify_series(&series),
            Some(UtilizationPattern::Stable)
        );
    }

    #[test]
    fn classifies_hourly_peak() {
        // Spikes at :00 and :30 during work hours for a week.
        let values: Vec<f64> = (0..2016)
            .map(|i| {
                let minute = i * 5;
                let t = cloudscope_model::time::SimTime::from_minutes(minute);
                let work = !t.is_weekend() && (8..18).contains(&t.hour_of_day());
                let m = minute % 30;
                let spike = if m < 10 {
                    40.0 * (1.0 - m as f64 / 10.0)
                } else {
                    0.0
                };
                8.0 + if work { spike } else { 0.0 }
            })
            .collect();
        let series = Series::new(0, 5, values);
        assert_eq!(
            PatternClassifier::default().classify_series(&series),
            Some(UtilizationPattern::HourlyPeak)
        );
    }

    #[test]
    fn classifies_irregular() {
        // Low base, a few tall aperiodic plateaus.
        let values: Vec<f64> = (0..2016)
            .map(|i| {
                let spike = matches!(i, 200..=215 | 777..=790 | 1500..=1540);
                if spike {
                    70.0
                } else {
                    5.0
                }
            })
            .collect();
        let series = Series::new(0, 5, values);
        assert_eq!(
            PatternClassifier::default().classify_series(&series),
            Some(UtilizationPattern::Irregular)
        );
    }

    #[test]
    fn too_short_series_is_unclassified() {
        let series = Series::new(0, 5, vec![10.0; 100]);
        assert_eq!(PatternClassifier::default().classify_series(&series), None);
    }

    #[test]
    fn corrupted_diurnal_still_classifies_diurnal() {
        let classifier = PatternClassifier::default();
        let mut series = to_series(&diurnal_series(14.0, 0, 1));
        let values = series.values_mut();
        // 5% pseudo-random loss plus a 6-hour blackout.
        for i in (0..values.len()).step_by(20) {
            values[i] = f64::NAN;
        }
        for v in &mut values[700..772] {
            *v = f64::NAN;
        }
        assert_eq!(
            classifier.classify_series(&series),
            Some(UtilizationPattern::Diurnal)
        );
    }

    #[test]
    fn corrupted_stable_still_classifies_stable() {
        let classifier = PatternClassifier::default();
        let mut series = to_series(&stable_series(20.0, 3));
        for i in (0..series.len()).step_by(13) {
            series.values_mut()[i] = f64::NAN;
        }
        assert_eq!(
            classifier.classify_series(&series),
            Some(UtilizationPattern::Stable)
        );
    }

    #[test]
    fn sparse_series_is_unclassified() {
        // Only every fourth sample present: coverage 0.25 < 0.6 floor.
        let values: Vec<f64> = (0..2016)
            .map(|i| if i % 4 == 0 { 10.0 } else { f64::NAN })
            .collect();
        let series = Series::new(0, 5, values);
        assert_eq!(PatternClassifier::default().classify_series(&series), None);
    }

    #[test]
    fn shares_over_tiny_trace() {
        let trace = tiny_trace();
        let classifier = PatternClassifier::default();
        let private = pattern_shares(&trace, CloudKind::Private, &classifier, 1000).unwrap();
        // All 6 telemetry VMs of the private cloud are diurnal.
        assert_eq!(private.diurnal, 6);
        assert_eq!(private.classified(), 6);
        assert!((private.fraction(UtilizationPattern::Diurnal) - 1.0).abs() < 1e-12);
        let public = pattern_shares(&trace, CloudKind::Public, &classifier, 1000).unwrap();
        assert_eq!(public.stable, 2, "sub2 and sub5");
        assert_eq!(public.diurnal, 2, "sub4's two VMs");
    }

    #[test]
    fn max_vms_caps_work() {
        let trace = tiny_trace();
        let classifier = PatternClassifier::default();
        let shares = pattern_shares(&trace, CloudKind::Private, &classifier, 2).unwrap();
        assert!(shares.classified() <= 2);
    }

    #[test]
    fn display_names() {
        assert_eq!(UtilizationPattern::HourlyPeak.to_string(), "hourly-peak");
        assert_eq!(UtilizationPattern::ALL.len(), 4);
    }
}
