//! Error types for the model crate.

use std::error::Error;
use std::fmt;

/// Errors returned by model-layer constructors and lookups.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// A lookup referenced an entity id that was never built. Carries the
    /// entity kind and the offending raw id.
    UnknownEntity(&'static str, u64),
    /// An argument violated a documented precondition.
    InvalidArgument(&'static str),
    /// A trace-consistency rule was violated while building a trace.
    InconsistentTrace(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::UnknownEntity(kind, id) => {
                write!(f, "unknown {kind} id {id}")
            }
            ModelError::InvalidArgument(msg) => f.write_str(msg),
            ModelError::InconsistentTrace(msg) => {
                write!(f, "inconsistent trace: {msg}")
            }
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            ModelError::UnknownEntity("node", 7).to_string(),
            "unknown node id 7"
        );
        assert_eq!(ModelError::InvalidArgument("boom").to_string(), "boom");
        assert!(ModelError::InconsistentTrace("x".into())
            .to_string()
            .contains("inconsistent trace"));
    }

    #[test]
    fn is_std_error_send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<ModelError>();
    }
}
