//! Figure 1: deployment sizes — CDFs of VMs per subscription and
//! box-plots of subscriptions per cluster.

use cloudscope::analysis::deployment::DeploymentSizeAnalysis;
use cloudscope::prelude::*;
use cloudscope_repro::checks::fig1_checks;
use cloudscope_repro::{print_ecdf, MetricsOpt, ShapeChecks};

fn main() {
    let metrics = MetricsOpt::from_args();
    let generated = metrics.load_trace();
    let snapshot = SimTime::from_minutes(2 * 24 * 60 + 14 * 60);
    let a = DeploymentSizeAnalysis::run(&generated.trace, snapshot).expect("analysis");

    print_ecdf(
        "Fig 1(a) private: VMs per subscription",
        &a.private_vms_per_subscription,
    );
    print_ecdf(
        "Fig 1(a) public: VMs per subscription",
        &a.public_vms_per_subscription,
    );
    for (label, b) in [
        ("private", &a.private_subscriptions_per_cluster),
        ("public", &a.public_subscriptions_per_cluster),
    ] {
        println!("## Fig 1(b) {label}: subscriptions per cluster");
        println!(
            "lower_whisker,q1,median,q3,upper_whisker,outliers\n{:.1},{:.1},{:.1},{:.1},{:.1},{}",
            b.lower_whisker,
            b.q1,
            b.median,
            b.q3,
            b.upper_whisker,
            b.outliers.len()
        );
        println!();
    }

    let mut checks = ShapeChecks::new();
    fig1_checks(&a, &cloudscope_repro::active_profile(), &mut checks);
    let ok = checks.finish("fig1");
    metrics.write();
    std::process::exit(i32::from(!ok));
}
