//! Hierarchical wall-clock span timers.
//!
//! A [`Span`] measures one region of work; dropping it records the
//! elapsed nanoseconds into the histogram `<path>.duration_ns` of its
//! registry. Hierarchy is explicit — `Span::child("stage")` produces
//! the path `parent.stage` — so metric names are determined by the
//! instrumented code alone, never by which caller happened to be on the
//! stack. That keeps the exported name set stable for schema checks.

use crate::registry::Registry;
use std::sync::Arc;
use std::time::Instant;

/// A timed region of work. Records on drop.
#[derive(Debug)]
pub struct Span {
    registry: Arc<Registry>,
    path: String,
    start: Instant,
}

impl Span {
    /// Starts a root span named `path` against `registry`.
    #[must_use]
    pub fn root(registry: Arc<Registry>, path: &str) -> Self {
        Self {
            registry,
            path: path.to_owned(),
            start: Instant::now(),
        }
    }

    /// Starts a child span; its metrics land under `<self.path>.<name>`.
    #[must_use]
    pub fn child(&self, name: &str) -> Self {
        Self {
            registry: Arc::clone(&self.registry),
            path: format!("{}.{name}", self.path),
            start: Instant::now(),
        }
    }

    /// The dotted path this span records under (without the
    /// `.duration_ns` suffix).
    #[must_use]
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Ends the span now instead of at end of scope.
    pub fn finish(self) {
        drop(self);
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let elapsed = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.registry
            .histogram(&format!("{}.duration_ns", self.path))
            .observe(elapsed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_into_path_duration_histogram() {
        let reg = Arc::new(Registry::new());
        {
            let root = Span::root(Arc::clone(&reg), "analysis.report");
            {
                let child = root.child("fig1");
                assert_eq!(child.path(), "analysis.report.fig1");
            }
            root.child("fig2").finish();
        }
        let snap = reg.snapshot();
        for name in [
            "analysis.report.duration_ns",
            "analysis.report.fig1.duration_ns",
            "analysis.report.fig2.duration_ns",
        ] {
            let h = snap
                .histogram(name)
                .unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(h.count, 1, "{name}");
        }
    }
}
