//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for the
//! vendored serde stand-in. The marker traits in the `serde` shim are
//! blanket-implemented, so the derives only need to exist and accept
//! `#[serde(...)]` helper attributes; they emit no code.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
