//! One benchmark group per evaluation artifact of the paper: each group
//! times the analysis that regenerates the corresponding figure from a
//! shared mid-scale trace.

use cloudscope::analysis::correlation::{
    node_vm_correlation_cdf, region_pair_correlation_cdf, service_region_daily_profiles,
};
use cloudscope::analysis::deployment::DeploymentSizeAnalysis;
use cloudscope::analysis::patterns::pattern_shares;
use cloudscope::analysis::spatial::SpatialAnalysis;
use cloudscope::analysis::temporal::TemporalAnalysis;
use cloudscope::analysis::utilization::UtilizationDistribution;
use cloudscope::analysis::vmsize::VmSizeAnalysis;
use cloudscope::mgmt::oversub::{OversubMethod, OversubPlanner, VmDemand};
use cloudscope::mgmt::rebalance::simulate_shift;
use cloudscope::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::OnceLock;

fn generated() -> &'static GeneratedTrace {
    static TRACE: OnceLock<GeneratedTrace> = OnceLock::new();
    TRACE.get_or_init(|| generate(&GeneratorConfig::medium(7777)))
}

fn snapshot() -> SimTime {
    SimTime::from_minutes(2 * 24 * 60 + 14 * 60)
}

fn bench_fig1(c: &mut Criterion) {
    let g = generated();
    c.bench_function("fig1_deployment_sizes", |b| {
        b.iter(|| DeploymentSizeAnalysis::run(black_box(&g.trace), snapshot()).unwrap());
    });
}

fn bench_fig2(c: &mut Criterion) {
    let g = generated();
    c.bench_function("fig2_vm_size_heatmaps", |b| {
        b.iter(|| VmSizeAnalysis::run(black_box(&g.trace)).unwrap());
    });
}

fn bench_fig3(c: &mut Criterion) {
    let g = generated();
    c.bench_function("fig3_temporal", |b| {
        b.iter(|| TemporalAnalysis::run(black_box(&g.trace), RegionId::new(0)).unwrap());
    });
}

fn bench_fig4(c: &mut Criterion) {
    let g = generated();
    c.bench_function("fig4_spatial", |b| {
        b.iter(|| SpatialAnalysis::run(black_box(&g.trace)).unwrap());
    });
}

fn bench_fig5(c: &mut Criterion) {
    let g = generated();
    let classifier = PatternClassifier::default();
    let mut group = c.benchmark_group("fig5_patterns");
    group.sample_size(10);
    group.bench_function("classify_200_vms_per_cloud", |b| {
        b.iter(|| {
            for cloud in CloudKind::BOTH {
                pattern_shares(black_box(&g.trace), cloud, &classifier, 200).unwrap();
            }
        });
    });
    group.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let g = generated();
    let mut group = c.benchmark_group("fig6_utilization_bands");
    group.sample_size(10);
    group.bench_function("bands_1000_vms_per_cloud", |b| {
        b.iter(|| {
            for cloud in CloudKind::BOTH {
                UtilizationDistribution::run(black_box(&g.trace), cloud, 1000).unwrap();
            }
        });
    });
    group.finish();
}

fn bench_fig7(c: &mut Criterion) {
    let g = generated();
    let mut group = c.benchmark_group("fig7_correlation");
    group.sample_size(10);
    group.bench_function("node_level_200_nodes", |b| {
        b.iter(|| {
            node_vm_correlation_cdf(black_box(&g.trace), CloudKind::Private, 200).unwrap();
        });
    });
    group.bench_function("cross_region_private", |b| {
        b.iter(|| {
            region_pair_correlation_cdf(black_box(&g.trace), CloudKind::Private, "US").unwrap();
        });
    });
    if let Some(flagship) = g.flagship_service() {
        group.bench_function("servicex_daily_profiles", |b| {
            b.iter(|| {
                service_region_daily_profiles(black_box(&g.trace), flagship.service).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_pilot(c: &mut Criterion) {
    let g = generated();
    let flagship = g.flagship_service().expect("flagship");
    let from = flagship.regions[0];
    let to = g
        .trace
        .topology()
        .regions()
        .iter()
        .map(|r| r.id)
        .find(|&r| r != from)
        .expect("second region");
    c.bench_function("pilot_region_shift", |b| {
        b.iter(|| {
            let _ = simulate_shift(
                black_box(&g.trace),
                CloudKind::Private,
                flagship.service,
                from,
                to,
                snapshot(),
            );
        });
    });
}

fn bench_oversub(c: &mut Criterion) {
    let g = generated();
    let pool: Vec<VmDemand> = g
        .trace
        .vms_of(CloudKind::Public)
        .filter_map(|vm| {
            let util = g.trace.util(vm.id)?;
            (util.start().minutes() == 0 && util.len() == 2016).then(|| VmDemand {
                cores: vm.size.cores(),
                utilization: util.to_f64_vec(),
            })
        })
        .take(200)
        .collect();
    c.bench_function("oversub_sweep_200_vms", |b| {
        b.iter(|| {
            for eps in [0.001, 0.01, 0.1] {
                OversubPlanner::new(eps, OversubMethod::EmpiricalQuantile)
                    .unwrap()
                    .plan(black_box(&pool))
                    .unwrap();
            }
        });
    });
}

criterion_group!(
    figures,
    bench_fig1,
    bench_fig2,
    bench_fig3,
    bench_fig4,
    bench_fig5,
    bench_fig6,
    bench_fig7,
    bench_pilot,
    bench_oversub
);
criterion_main!(figures);
