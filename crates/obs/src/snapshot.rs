//! Point-in-time copies of a registry, with deterministic ordering and
//! subtraction (`diff`) so a test or tool can measure exactly what one
//! region of work recorded.

use std::collections::BTreeMap;

/// A frozen histogram: total count, sum, and only the non-empty buckets
/// as `(inclusive_upper_bound, count)` pairs in ascending bound order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Non-empty buckets, ascending by bound.
    pub buckets: Vec<(u64, u64)>,
}

/// One metric's frozen value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic counter value.
    Counter(u64),
    /// Last-written gauge value.
    Gauge(f64),
    /// Frozen histogram state.
    Histogram(HistogramSnapshot),
}

impl MetricValue {
    /// The metric kind as a lowercase string (`counter` / `gauge` /
    /// `histogram`) — the vocabulary the schema and exporters share.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        }
    }
}

/// A deterministic (name-ordered) copy of every metric in a registry at
/// one instant.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Metric name → frozen value, ordered by name.
    pub metrics: BTreeMap<String, MetricValue>,
}

impl Snapshot {
    /// An empty snapshot.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, or `None` if absent or a different kind.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.metrics.get(name) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// The gauge named `name`, or `None` if absent or a different kind.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.metrics.get(name) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// The histogram named `name`, or `None` if absent or a different
    /// kind.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.metrics.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// What happened between `earlier` and `self`: counters and
    /// histograms are subtracted (saturating, so a restarted registry
    /// never yields negative garbage); gauges keep the later value.
    /// Metrics absent from `earlier` are carried over as-is.
    #[must_use]
    pub fn diff(&self, earlier: &Snapshot) -> Snapshot {
        let metrics = self
            .metrics
            .iter()
            .map(|(name, later)| {
                let value = match (later, earlier.metrics.get(name)) {
                    (MetricValue::Counter(b), Some(MetricValue::Counter(a))) => {
                        MetricValue::Counter(b.saturating_sub(*a))
                    }
                    (MetricValue::Histogram(b), Some(MetricValue::Histogram(a))) => {
                        MetricValue::Histogram(diff_histogram(b, a))
                    }
                    // Gauges, new metrics, and kind changes: later wins.
                    (later, _) => later.clone(),
                };
                (name.clone(), value)
            })
            .collect();
        Snapshot { metrics }
    }
}

fn diff_histogram(later: &HistogramSnapshot, earlier: &HistogramSnapshot) -> HistogramSnapshot {
    let earlier_by_bound: BTreeMap<u64, u64> = earlier.buckets.iter().copied().collect();
    let buckets = later
        .buckets
        .iter()
        .filter_map(|&(bound, n)| {
            let delta = n.saturating_sub(earlier_by_bound.get(&bound).copied().unwrap_or(0));
            (delta > 0).then_some((bound, delta))
        })
        .collect();
    HistogramSnapshot {
        count: later.count.saturating_sub(earlier.count),
        sum: later.sum.saturating_sub(earlier.sum),
        buckets,
    }
}

#[cfg(test)]
mod tests {
    use crate::registry::Registry;

    #[test]
    fn diff_subtracts_counters_and_keeps_latest_gauge() {
        let reg = Registry::new();
        let c = reg.counter("c");
        let g = reg.gauge("g");
        c.add(10);
        g.set(1.0);
        let before = reg.snapshot();
        c.add(5);
        g.set(7.5);
        let after = reg.snapshot();
        let d = after.diff(&before);
        assert_eq!(d.counter("c"), Some(5));
        assert_eq!(d.gauge("g"), Some(7.5));
    }

    #[test]
    fn diff_subtracts_histogram_buckets() {
        let reg = Registry::new();
        let h = reg.histogram("h");
        h.observe(1);
        h.observe(100);
        let before = reg.snapshot();
        h.observe(1);
        h.observe(1000);
        let after = reg.snapshot();
        let d = after.diff(&before);
        let hs = d.histogram("h").expect("histogram survives diff");
        assert_eq!(hs.count, 2);
        assert_eq!(hs.sum, 1001);
        assert_eq!(hs.buckets.iter().map(|(_, n)| n).sum::<u64>(), 2);
    }

    #[test]
    fn diff_carries_new_metrics_through() {
        let reg = Registry::new();
        let before = reg.snapshot();
        reg.counter("fresh").add(3);
        let d = reg.snapshot().diff(&before);
        assert_eq!(d.counter("fresh"), Some(3));
    }
}
