//! The write-ahead log: one append-only file (`wal.log`) of framed
//! records, written *before* the in-memory store applies an operation.
//! Replaying the log from any snapshot cut reproduces the store exactly,
//! because the store's freshness rule is deterministic in feed order.
//!
//! File layout: a 16-byte header — an 8-byte magic plus a `u64` segment
//! sequence — then frames ([`codec::append_frame`]). The sequence ties
//! the log to the manifest across rotations: after a snapshot commits,
//! [`DurableKb`](super::DurableKb) rewrites `wal.log` to just the
//! post-cut tail under a new sequence (the committed generation), so
//! recovery can tell "this is the segment the manifest's offset points
//! into" (sequences match: replay from the offset) from "the log was
//! rotated after the commit" (sequence equals the manifest's
//! generation: replay from the header). Each frame's payload is one
//! [`WalRecord`]: a feed batch (tag 1) or a removal (tag 2). A torn
//! final frame — the residue of a crash mid-append — is tolerated and
//! truncated on the next open; a checksum mismatch or implausible
//! length anywhere is corruption and fails loudly with the offending
//! record's number.

use super::codec::{self, FrameOutcome, ENTRY_BYTES};
use super::PersistError;
use crate::knowledge::WorkloadKnowledge;
use cloudscope_model::ids::SubscriptionId;

/// Magic prefix of `wal.log` (also the format version marker).
pub(crate) const WAL_MAGIC: &[u8; 8] = b"CSKBWAL2";

/// Bytes before the first frame: the magic plus the `u64` segment
/// sequence.
pub(crate) const WAL_HEADER: usize = WAL_MAGIC.len() + 8;

/// The WAL's file name inside a durable KB directory.
pub(crate) const WAL_FILE: &str = "wal.log";

/// Builds a segment header carrying `seq`.
pub(crate) fn encode_header(seq: u64) -> [u8; WAL_HEADER] {
    let mut header = [0u8; WAL_HEADER];
    header[..WAL_MAGIC.len()].copy_from_slice(WAL_MAGIC);
    header[WAL_MAGIC.len()..].copy_from_slice(&seq.to_le_bytes());
    header
}

/// Record tag: a batch of upserts ([`WalRecord::Feed`]).
const TAG_FEED: u8 = 1;
/// Record tag: one removal ([`WalRecord::Remove`]).
const TAG_REMOVE: u8 = 2;

/// One logical WAL record.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum WalRecord {
    /// A batch of upserts, applied in order (the unit of one
    /// `upsert`/`feed` call).
    Feed(Vec<WorkloadKnowledge>),
    /// One subscription removal.
    Remove(SubscriptionId),
}

impl WalRecord {
    /// Entries this record carries (for replay accounting).
    pub(crate) fn entry_count(&self) -> usize {
        match self {
            WalRecord::Feed(batch) => batch.len(),
            WalRecord::Remove(_) => 1,
        }
    }
}

/// Encodes a feed batch as one record payload.
pub(crate) fn encode_feed(batch: &[WorkloadKnowledge]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(5 + batch.len() * ENTRY_BYTES);
    payload.push(TAG_FEED);
    payload.extend_from_slice(&(batch.len() as u32).to_le_bytes());
    for k in batch {
        codec::encode_entry(k, &mut payload);
    }
    payload
}

/// Encodes a removal as one record payload.
pub(crate) fn encode_remove(id: SubscriptionId) -> Vec<u8> {
    let mut payload = Vec::with_capacity(5);
    payload.push(TAG_REMOVE);
    payload.extend_from_slice(&id.index().to_le_bytes());
    payload
}

/// Decodes one record payload. `record` is the frame's 1-based ordinal
/// in `file`, for error attribution.
pub(crate) fn decode_record(
    payload: &[u8],
    file: &str,
    record: u64,
) -> Result<WalRecord, PersistError> {
    let corrupt = |reason: String| PersistError::Corrupt {
        file: file.to_owned(),
        record,
        reason,
    };
    let Some((&tag, body)) = payload.split_first() else {
        return Err(corrupt("empty record payload".to_owned()));
    };
    match tag {
        TAG_FEED => {
            if body.len() < 4 {
                return Err(corrupt(
                    "feed record shorter than its count field".to_owned(),
                ));
            }
            let count =
                u32::from_le_bytes(body[0..4].try_into().expect("4 bytes present")) as usize;
            let entries = &body[4..];
            if entries.len() != count * ENTRY_BYTES {
                return Err(corrupt(format!(
                    "feed record declares {count} entries but carries {} bytes",
                    entries.len()
                )));
            }
            let mut batch = Vec::with_capacity(count);
            for (i, chunk) in entries.chunks_exact(ENTRY_BYTES).enumerate() {
                batch.push(codec::decode_entry(chunk).map_err(|reason| {
                    corrupt(format!("feed entry {} of {count}: {reason}", i + 1))
                })?);
            }
            Ok(WalRecord::Feed(batch))
        }
        TAG_REMOVE => {
            if body.len() != 4 {
                return Err(corrupt(format!(
                    "remove record carries {} bytes, expected 4",
                    body.len()
                )));
            }
            Ok(WalRecord::Remove(SubscriptionId::new(u32::from_le_bytes(
                body.try_into().expect("4 bytes present"),
            ))))
        }
        other => Err(corrupt(format!("unknown record tag {other}"))),
    }
}

/// Result of replaying a WAL buffer.
#[derive(Debug)]
pub(crate) struct WalReplay {
    /// Decoded records from the requested offset onward, in log order.
    pub records: Vec<WalRecord>,
    /// Byte length of the valid log prefix (the append point after a
    /// torn tail is truncated away).
    pub valid_len: u64,
    /// `true` if a torn final record was dropped.
    pub torn_tail: bool,
}

/// Parses the segment header, returning its sequence.
///
/// # Errors
/// [`PersistError::Malformed`] for a bad magic or a file shorter than
/// the header (the header is written whole via rename, so a short one
/// is never a tolerable torn tail).
pub(crate) fn parse_seq(buf: &[u8], file: &str) -> Result<u64, PersistError> {
    let malformed = |reason: String| PersistError::Malformed {
        file: file.to_owned(),
        reason,
    };
    if buf.len() < WAL_MAGIC.len() || &buf[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(malformed("bad magic (not a cloudscope KB WAL)".to_owned()));
    }
    if buf.len() < WAL_HEADER {
        return Err(malformed(format!(
            "log is {} bytes, shorter than its {WAL_HEADER}-byte header",
            buf.len()
        )));
    }
    Ok(u64::from_le_bytes(
        buf[WAL_MAGIC.len()..WAL_HEADER]
            .try_into()
            .expect("8 bytes present"),
    ))
}

/// Validates `buf` (the whole `wal.log`) and decodes every record at or
/// after byte offset `from`. Frames before `from` (already captured by
/// a snapshot) are CRC-validated but not decoded.
///
/// # Errors
/// [`PersistError::Malformed`] for a bad header or an offset that does
/// not land on a record boundary; [`PersistError::Corrupt`] (with the
/// 1-based record number) for any checksum or decode failure.
pub(crate) fn replay(buf: &[u8], from: u64, file: &str) -> Result<WalReplay, PersistError> {
    let malformed = |reason: String| PersistError::Malformed {
        file: file.to_owned(),
        reason,
    };
    parse_seq(buf, file)?;
    let from = usize::try_from(from).map_err(|_| malformed("offset beyond memory".to_owned()))?;
    if from < WAL_HEADER || from > buf.len() {
        return Err(malformed(format!(
            "snapshot cut at byte {from} is outside the log (len {})",
            buf.len()
        )));
    }
    let mut pos = WAL_HEADER;
    let mut record_no = 0u64;
    let mut records = Vec::new();
    loop {
        record_no += 1;
        match codec::next_frame(buf, pos, file, record_no)? {
            FrameOutcome::End => {
                if pos < from {
                    return Err(malformed(format!(
                        "snapshot cut at byte {from} is past the log's records"
                    )));
                }
                return Ok(WalReplay {
                    records,
                    valid_len: pos as u64,
                    torn_tail: false,
                });
            }
            FrameOutcome::TornTail => {
                if pos < from {
                    return Err(malformed(format!(
                        "snapshot cut at byte {from} lands inside a torn record"
                    )));
                }
                return Ok(WalReplay {
                    records,
                    valid_len: pos as u64,
                    torn_tail: true,
                });
            }
            FrameOutcome::Frame(payload, next) => {
                if pos >= from {
                    records.push(decode_record(payload, file, record_no)?);
                } else if next > from {
                    return Err(malformed(format!(
                        "snapshot cut at byte {from} lands inside record {record_no}"
                    )));
                }
                pos = next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knowledge::LifetimeClass;
    use cloudscope_model::prelude::{CloudKind, SimTime};

    fn entry(id: u32, minutes: i64) -> WorkloadKnowledge {
        WorkloadKnowledge {
            subscription: SubscriptionId::new(id),
            cloud: CloudKind::Public,
            pattern: None,
            lifetime: LifetimeClass::MostlyShort,
            mean_util: 0.125,
            p95_util: 0.25,
            util_cv: 0.5,
            regions: 1,
            region_agnostic: None,
            vm_count: 1,
            cores: 2,
            updated_at: SimTime::from_minutes(minutes),
        }
    }

    fn log_with(records: &[WalRecord]) -> Vec<u8> {
        let mut buf = encode_header(7).to_vec();
        for record in records {
            let payload = match record {
                WalRecord::Feed(batch) => encode_feed(batch),
                WalRecord::Remove(id) => encode_remove(*id),
            };
            codec::append_frame(&mut buf, &payload);
        }
        buf
    }

    #[test]
    fn roundtrip_and_offset_replay() {
        let records = vec![
            WalRecord::Feed(vec![entry(1, 0), entry(2, 5)]),
            WalRecord::Remove(SubscriptionId::new(1)),
            WalRecord::Feed(vec![entry(3, 9)]),
        ];
        let buf = log_with(&records);
        let all = replay(&buf, WAL_HEADER as u64, "wal.log").unwrap();
        assert_eq!(parse_seq(&buf, "wal.log").unwrap(), 7);
        assert_eq!(all.records, records);
        assert_eq!(all.valid_len, buf.len() as u64);
        assert!(!all.torn_tail);

        // Replay from the second record's boundary: first is skipped but
        // still CRC-validated.
        let first_len = log_with(&records[..1]).len() as u64;
        let tail = replay(&buf, first_len, "wal.log").unwrap();
        assert_eq!(tail.records, records[1..]);
    }

    #[test]
    fn torn_tail_is_dropped_and_reported() {
        let records = vec![
            WalRecord::Feed(vec![entry(1, 0)]),
            WalRecord::Feed(vec![entry(2, 0)]),
        ];
        let buf = log_with(&records);
        let first_len = log_with(&records[..1]).len();
        for cut in first_len + 1..buf.len() {
            let replayed = replay(&buf[..cut], WAL_HEADER as u64, "wal.log").unwrap();
            assert_eq!(replayed.records, records[..1], "cut at {cut}");
            assert_eq!(replayed.valid_len as usize, first_len);
            assert!(replayed.torn_tail);
        }
    }

    #[test]
    fn corrupt_record_errors_name_the_record_number() {
        let records = vec![
            WalRecord::Feed(vec![entry(1, 0)]),
            WalRecord::Remove(SubscriptionId::new(9)),
            WalRecord::Feed(vec![entry(2, 0)]),
        ];
        let mut buf = log_with(&records);
        // Flip one payload byte inside the *second* record.
        let second_start = log_with(&records[..1]).len();
        buf[second_start + codec::FRAME_HEADER] ^= 0x01;
        let err = replay(&buf, WAL_HEADER as u64, "wal.log").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("wal.log"), "{msg}");
        assert!(msg.contains("record 2"), "{msg}");
    }

    #[test]
    fn bad_magic_and_bad_offsets_are_malformed() {
        let buf = log_with(&[WalRecord::Remove(SubscriptionId::new(1))]);
        assert!(replay(b"NOTAWAL0AAAAAAAA", 16, "wal.log").is_err());
        // A file shorter than the header is malformed, not a torn tail.
        assert!(parse_seq(&buf[..WAL_HEADER - 3], "wal.log").is_err());
        // Offsets inside the header, inside a record, or past the end.
        for bad in [0, 3, 12, buf.len() as u64 - 1, buf.len() as u64 + 4] {
            let err = replay(&buf, bad, "wal.log").unwrap_err();
            assert!(
                matches!(err, PersistError::Malformed { .. }),
                "offset {bad}: {err}"
            );
        }
    }

    #[test]
    fn feed_count_mismatch_is_corrupt() {
        let mut payload = encode_feed(&[entry(1, 0)]);
        payload[1] = 7; // declare 7 entries, carry 1
        let err = decode_record(&payload, "wal.log", 5).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("record 5"), "{msg}");
        assert!(msg.contains("declares 7 entries"), "{msg}");
    }
}
