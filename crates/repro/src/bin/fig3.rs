//! Figure 3: temporal deployment — lifetime CDFs, VM counts and
//! creations per hour, and per-region creation CVs.

use cloudscope::analysis::temporal::TemporalAnalysis;
use cloudscope::model::ids::RegionId;
use cloudscope::par::Parallelism;
use cloudscope::store::{ScanFilter, TraceReader};
use cloudscope_repro::checks::fig3_checks;
use cloudscope_repro::{print_csv, print_ecdf, MetricsOpt, ShapeChecks};

fn main() {
    let metrics = MetricsOpt::from_args();
    let sample_region = RegionId::new(0);
    // Figure 3 is metadata-only: a store-backed run never assembles the
    // trace. The global curves (lifetimes, per-region CVs) need every
    // record, but the region-sliced 3(b)/(c) series re-read only the
    // sample region's chunks through predicate pushdown. (With
    // --trace-out the full trace is still needed for the copy, so the
    // pushdown path is skipped.)
    let a = match (metrics.trace_dir(), metrics.trace_out()) {
        (Some(dir), None) => {
            let fail = |what: &str, e: cloudscope::store::StoreError| -> ! {
                eprintln!("error: {what}: {e}");
                std::process::exit(2);
            };
            let par = Parallelism::auto();
            let reader = TraceReader::open(dir)
                .unwrap_or_else(|e| fail(&format!("opening trace store {}", dir.display()), e));
            let subscriptions = reader
                .read_subscriptions()
                .unwrap_or_else(|e| fail("reading subscription table", e));
            let records = reader
                .read_vm_records(ScanFilter::all(), &par)
                .unwrap_or_else(|e| fail("reading metadata chunks", e));
            let region_records = reader
                .read_vm_records(ScanFilter::all().region(sample_region.index()), &par)
                .unwrap_or_else(|e| fail("reading region-sliced metadata chunks", e));
            eprintln!(
                "# pushdown: region {} slice holds {} of {} records from {}",
                sample_region.index(),
                region_records.len(),
                records.len(),
                dir.display()
            );
            TemporalAnalysis::run_from_records(
                &records,
                &region_records,
                &subscriptions,
                sample_region,
            )
        }
        _ => {
            let generated = metrics.load_trace();
            TemporalAnalysis::run(&generated.trace, sample_region)
        }
    }
    .expect("analysis");

    print_ecdf(
        "Fig 3(a) private: VM lifetime (minutes)",
        &a.private_lifetimes,
    );
    print_ecdf(
        "Fig 3(a) public: VM lifetime (minutes)",
        &a.public_lifetimes,
    );

    let rows: Vec<[f64; 3]> = (0..168)
        .map(|h| {
            [
                h as f64,
                a.vm_counts.0.values()[h],
                a.vm_counts.1.values()[h],
            ]
        })
        .collect();
    print_csv(
        "Fig 3(b): VM counts per hour (region 0)",
        ["hour", "private", "public"],
        &rows,
    );

    let rows: Vec<[f64; 3]> = (0..168)
        .map(|h| {
            [
                h as f64,
                a.creations.0.values()[h],
                a.creations.1.values()[h],
            ]
        })
        .collect();
    print_csv(
        "Fig 3(c): VM creations per hour (region 0)",
        ["hour", "private", "public"],
        &rows,
    );

    for (label, b) in [("private", &a.creation_cv.0), ("public", &a.creation_cv.1)] {
        println!("## Fig 3(d) {label}: creation CV across regions");
        println!(
            "lower_whisker,q1,median,q3,upper_whisker\n{:.2},{:.2},{:.2},{:.2},{:.2}",
            b.lower_whisker, b.q1, b.median, b.q3, b.upper_whisker
        );
        println!();
    }

    let mut checks = ShapeChecks::new();
    fig3_checks(&a, &cloudscope_repro::active_profile(), &mut checks);
    let ok = checks.finish("fig3");
    metrics.write();
    std::process::exit(i32::from(!ok));
}
