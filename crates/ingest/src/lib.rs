//! # cloudscope-ingest
//!
//! The online ingestion service: the paper's characterization pipeline
//! run against a *live* telemetry stream instead of a finished trace.
//! Production monitors do not hand the analyst a clean week-long
//! [`UtilSeries`] per VM — they emit one wire sample at a time, late,
//! duplicated, reordered, and occasionally garbage. This crate consumes
//! that stream continuously, keeps per-VM sliding-window state in
//! bounded memory, re-runs the Figure 5 pattern classification as each
//! window closes, and publishes refreshed knowledge into the KB through
//! the same batched write path the batch extraction pipeline uses.
//!
//! The pipeline, stage by stage:
//!
//! 1. **Offer** — [`Ingestor::offer`] validates each [`WireSample`]
//!    exactly like the batch collector
//!    ([`cloudscope_faults::ingest_wire_samples`]): garbage readings are
//!    rejected, timestamps snap to the 5-minute grid, out-of-week slots
//!    are discarded, and duplicate slots keep the last delivered value.
//!    Accepted samples are quantized on arrival
//!    ([`quantize_percentage`]) and buffered per VM.
//! 2. **Seal** — [`Ingestor::advance_watermark`] moves the low
//!    watermark. Slots that fall entirely behind it *seal*: their values
//!    become immutable window state (rolling mean, P² p95 sketch,
//!    coverage) and their buffer entries are freed. A sample arriving
//!    for an already-sealed slot is counted in `dropped_late` — never
//!    silently applied.
//! 3. **Close** — when the watermark crosses a window boundary, every
//!    lane reconstructs its window as a gap-preserving series, computes
//!    the masked daily autocorrelation, and re-runs the batch
//!    [`PatternClassifier`] on it. Because sealed state is
//!    byte-identical to what the batch collector would have assembled
//!    from the same stream, streaming classification *converges to the
//!    batch classifier output exactly* on clean data; under faults the
//!    divergence is bounded and fully accounted for by reported drops.
//! 4. **Publish** — [`publish_closed_windows`] re-extracts
//!    [`WorkloadKnowledge`](cloudscope_kb::WorkloadKnowledge) for the
//!    affected subscriptions from the live window state and feeds it
//!    through [`cloudscope_kb::publish_batch`] — the identical
//!    `try_feed` + retry-ledger path, so a durable KB's WAL semantics
//!    apply unchanged.
//!
//! [`drive_ingest`] wires the stages to the discrete-event clock of
//! `cloudscope-sim`: per-VM delivery events at the monitor cadence
//! (content corrupted by a seeded [`FaultPlan`], cadence preserved),
//! periodic watermark ticks, and a final catch-up close. The end state
//! is an [`IngestSession`] — a [`TelemetrySource`] interchangeable with
//! a resident [`Trace`](cloudscope_model::trace::Trace) or the
//! out-of-core store, so every analysis that accepts a source runs
//! unmodified over streamed telemetry.
//!
//! ## Example
//! ```no_run
//! use cloudscope_ingest::{drive_ingest, DriveOutcome, IngestConfig};
//! use cloudscope_analysis::PatternClassifier;
//! use cloudscope_faults::FaultPlan;
//! use cloudscope_kb::KnowledgeBase;
//! # use cloudscope_tracegen::{generate, GeneratorConfig};
//! let generated = generate(&GeneratorConfig::small(7));
//! let kb = KnowledgeBase::new();
//! let DriveOutcome { session, fault_report, .. } = drive_ingest(
//!     &generated.trace,
//!     &FaultPlan::standard(7),
//!     &IngestConfig::default(),
//!     &PatternClassifier::default(),
//!     &kb,
//! );
//! println!(
//!     "streamed {} samples, dropped {} late, {} KB entries live",
//!     session.report().samples_offered,
//!     session.report().dropped_late,
//!     kb.len(),
//! );
//! # let _ = fault_report;
//! ```
//!
//! [`UtilSeries`]: cloudscope_model::telemetry::UtilSeries
//! [`WireSample`]: cloudscope_faults::WireSample
//! [`FaultPlan`]: cloudscope_faults::FaultPlan
//! [`PatternClassifier`]: cloudscope_analysis::PatternClassifier
//! [`quantize_percentage`]: cloudscope_model::telemetry::quantize_percentage
//! [`TelemetrySource`]: cloudscope_model::trace::TelemetrySource

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod drive;
pub mod ingestor;
pub mod publish;
pub mod session;

pub use drive::{drive_ingest, DriveOutcome, IngestEvent};
pub use ingestor::{IngestConfig, IngestReport, Ingestor, WindowClose};
pub use publish::publish_closed_windows;
pub use session::IngestSession;
