//! Figure 5: utilization-pattern samples and class shares.

use cloudscope::analysis::patterns::{pattern_shares, PatternClassifier};
use cloudscope::prelude::*;
use cloudscope_repro::ShapeChecks;

fn main() {
    let generated = cloudscope_repro::default_trace();
    let classifier = PatternClassifier::default();

    // Fig 5(a-c): one sample series per pattern, from ground truth.
    for pattern in UtilizationPattern::ALL {
        let sample = generated.trace.vms().iter().find(|vm| {
            generated.trace.util(vm.id).is_some_and(|u| u.len() > 1500)
                && classifier.classify_vm(&generated.trace, vm.id) == Some(pattern)
        });
        if let Some(vm) = sample {
            let util = generated.trace.util(vm.id).expect("has telemetry");
            println!("## Fig 5 sample: {pattern} ({})", vm.id);
            println!("hour,util_pct");
            for (i, v) in util.iter().enumerate().step_by(12).take(48) {
                println!("{:.1},{v:.1}", i as f64 / 12.0);
            }
            println!();
        }
    }

    let private = pattern_shares(&generated.trace, CloudKind::Private, &classifier, 4000)
        .expect("private shares");
    let public = pattern_shares(&generated.trace, CloudKind::Public, &classifier, 4000)
        .expect("public shares");
    println!("## Fig 5(d): pattern shares");
    println!("pattern,private,public");
    for p in UtilizationPattern::ALL {
        println!("{p},{:.3},{:.3}", private.fraction(p), public.fraction(p));
    }
    println!();

    let mut checks = ShapeChecks::new();
    let d = UtilizationPattern::Diurnal;
    checks.check(
        "diurnal most common in both clouds",
        UtilizationPattern::ALL
            .iter()
            .all(|&p| private.fraction(d) >= private.fraction(p))
            && UtilizationPattern::ALL
                .iter()
                .all(|&p| public.fraction(d) >= public.fraction(p)),
        format!(
            "diurnal {:.2} / {:.2}",
            private.fraction(d),
            public.fraction(d)
        ),
    );
    checks.check(
        "private has roughly double the diurnal share",
        private.fraction(d) > 1.3 * public.fraction(d),
        format!("ratio {:.2}", private.fraction(d) / public.fraction(d)),
    );
    checks.check(
        "stable share higher in public",
        public.fraction(UtilizationPattern::Stable) > private.fraction(UtilizationPattern::Stable),
        format!(
            "stable {:.2} vs {:.2}",
            private.fraction(UtilizationPattern::Stable),
            public.fraction(UtilizationPattern::Stable)
        ),
    );
    checks.check(
        "hourly-peak mostly private",
        private.fraction(UtilizationPattern::HourlyPeak)
            > 2.0 * public.fraction(UtilizationPattern::HourlyPeak),
        format!(
            "hourly {:.2} vs {:.2}",
            private.fraction(UtilizationPattern::HourlyPeak),
            public.fraction(UtilizationPattern::HourlyPeak)
        ),
    );
    std::process::exit(i32::from(!checks.finish("fig5")));
}
