//! Correlation measures: Pearson (the paper's node- and region-level
//! similarity metric, Figure 7) and Spearman rank correlation.

use crate::error::StatsError;

/// Pearson product-moment correlation between two equally long series.
///
/// Returns a value in `[-1, 1]`. This is the statistic behind Figure 7:
/// at the node level between each VM's CPU series and its host node's,
/// and at the region level between the per-region average utilization of
/// one subscription.
///
/// # Errors
/// - [`StatsError::LengthMismatch`] if lengths differ.
/// - [`StatsError::EmptyInput`] if fewer than 2 points.
/// - [`StatsError::NonFinite`] if any value is NaN/∞.
/// - [`StatsError::ZeroVariance`] if either series is constant.
///
/// # Examples
/// ```
/// # use cloudscope_stats::correlation::pearson;
/// # fn main() -> Result<(), cloudscope_stats::error::StatsError> {
/// let r = pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0])?;
/// assert!((r - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn pearson(x: &[f64], y: &[f64]) -> Result<f64, StatsError> {
    if x.len() != y.len() {
        return Err(StatsError::LengthMismatch(x.len(), y.len()));
    }
    if x.len() < 2 {
        return Err(StatsError::EmptyInput("pearson needs >= 2 points"));
    }
    if x.iter().chain(y.iter()).any(|v| !v.is_finite()) {
        return Err(StatsError::NonFinite("pearson input"));
    }
    let n = x.len() as f64;
    let mean_x = x.iter().sum::<f64>() / n;
    let mean_y = y.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var_x = 0.0;
    let mut var_y = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        let dx = a - mean_x;
        let dy = b - mean_y;
        cov += dx * dy;
        var_x += dx * dx;
        var_y += dy * dy;
    }
    if var_x == 0.0 || var_y == 0.0 {
        return Err(StatsError::ZeroVariance("pearson input"));
    }
    Ok((cov / (var_x.sqrt() * var_y.sqrt())).clamp(-1.0, 1.0))
}

/// Pearson correlation that treats degenerate inputs as "no correlation".
///
/// Telemetry of idle VMs is often exactly constant; the paper's CDFs still
/// include those pairs. This helper maps [`StatsError::ZeroVariance`] to
/// `Some(0.0)` and every other error to `None`.
#[must_use]
pub fn pearson_or_zero(x: &[f64], y: &[f64]) -> Option<f64> {
    match pearson(x, y) {
        Ok(r) => Some(r),
        Err(StatsError::ZeroVariance(_)) => Some(0.0),
        Err(_) => None,
    }
}

/// Spearman rank correlation: Pearson on midranks. Robust to monotone
/// nonlinear relationships.
///
/// # Errors
/// Same conditions as [`pearson`].
pub fn spearman(x: &[f64], y: &[f64]) -> Result<f64, StatsError> {
    if x.len() != y.len() {
        return Err(StatsError::LengthMismatch(x.len(), y.len()));
    }
    pearson(&ranks(x)?, &ranks(y)?)
}

/// Midranks of a sample (ties get the average of their rank range).
fn ranks(values: &[f64]) -> Result<Vec<f64>, StatsError> {
    if values.iter().any(|v| !v.is_finite()) {
        return Err(StatsError::NonFinite("rank input"));
    }
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).expect("finite"));
    let mut out = vec![0.0; values.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && values[order[j + 1]] == values[order[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            out[idx] = avg_rank;
        }
        i = j + 1;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_correlations() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let up: Vec<f64> = x.iter().map(|v| 3.0 * v + 1.0).collect();
        let down: Vec<f64> = x.iter().map(|v| -2.0 * v).collect();
        assert!((pearson(&x, &up).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&x, &down).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn independence_yields_near_zero() {
        // Orthogonal-by-construction series.
        let x = [1.0, -1.0, 1.0, -1.0];
        let y = [1.0, 1.0, -1.0, -1.0];
        assert!(pearson(&x, &y).unwrap().abs() < 1e-12);
    }

    #[test]
    fn scale_and_shift_invariance() {
        let x = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0];
        let y = [2.0, 7.0, 1.0, 8.0, 2.0, 8.0];
        let base = pearson(&x, &y).unwrap();
        let scaled: Vec<f64> = x.iter().map(|v| 100.0 * v - 42.0).collect();
        assert!((pearson(&scaled, &y).unwrap() - base).abs() < 1e-12);
    }

    #[test]
    fn error_conditions() {
        assert!(matches!(
            pearson(&[1.0], &[1.0, 2.0]),
            Err(StatsError::LengthMismatch(1, 2))
        ));
        assert!(matches!(
            pearson(&[1.0], &[1.0]),
            Err(StatsError::EmptyInput(_))
        ));
        assert!(matches!(
            pearson(&[1.0, f64::NAN], &[1.0, 2.0]),
            Err(StatsError::NonFinite(_))
        ));
        assert!(matches!(
            pearson(&[5.0, 5.0], &[1.0, 2.0]),
            Err(StatsError::ZeroVariance(_))
        ));
    }

    #[test]
    fn or_zero_maps_constant_series() {
        assert_eq!(pearson_or_zero(&[5.0, 5.0], &[1.0, 2.0]), Some(0.0));
        assert_eq!(pearson_or_zero(&[1.0], &[1.0, 2.0]), None);
        assert!(pearson_or_zero(&[1.0, 2.0], &[2.0, 4.0]).unwrap() > 0.99);
    }

    #[test]
    fn spearman_monotone_nonlinear() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y: Vec<f64> = x.iter().map(|v| f64::exp(*v)).collect();
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_ties() {
        let x = [1.0, 2.0, 2.0, 3.0];
        let y = [1.0, 2.0, 2.0, 3.0];
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ranks_midrank_convention() {
        assert_eq!(
            ranks(&[10.0, 20.0, 20.0, 30.0]).unwrap(),
            vec![1.0, 2.5, 2.5, 4.0]
        );
    }
}
