//! The self-contained block codec every column block runs through: an
//! LZ77 byte-oriented format in the LZ4 block style (token byte with
//! literal/match nibbles, 255-extension lengths, 16-bit match offsets),
//! implemented from the format description with zero external
//! dependencies.
//!
//! Levels trade match-search effort for ratio:
//!
//! | level | strategy                                    |
//! |-------|---------------------------------------------|
//! | 0     | stored (no compression)                     |
//! | 1     | greedy, single hash probe                   |
//! | 2     | greedy, 16-deep hash chain                  |
//! | 3     | greedy, 64-deep hash chain                  |
//!
//! Every level is deterministic — the same input bytes always produce
//! the same output bytes — and if compression does not win, the block
//! falls back to stored form, so output never exceeds `input + 1`.
//!
//! The decoder trusts nothing: every length, offset, and copy is
//! bounds-checked against the declared raw length, and any violation
//! returns a reason string the caller wraps into a
//! [`crate::StoreError::Corrupt`] naming the file and chunk.

/// Highest supported compression level.
pub const MAX_LEVEL: u8 = 3;

/// Minimum match length the format can encode.
const MIN_MATCH: usize = 4;
/// Match offsets are 16-bit: the sliding window is 64 KiB.
const MAX_OFFSET: usize = u16::MAX as usize;
/// Hash table: 4-byte keys into 16-bit buckets.
const HASH_BITS: u32 = 16;
/// Method byte: block is raw bytes.
const METHOD_STORED: u8 = 0;
/// Method byte: block is LZ-compressed sequences.
const METHOD_LZ: u8 = 1;

/// Compresses `src` at `level` (clamped to [`MAX_LEVEL`]). The first
/// output byte is the method tag; [`decompress`] consumes it.
#[must_use]
pub fn compress(src: &[u8], level: u8) -> Vec<u8> {
    let chain_depth = match level.min(MAX_LEVEL) {
        0 => {
            let mut out = Vec::with_capacity(src.len() + 1);
            out.push(METHOD_STORED);
            out.extend_from_slice(src);
            return out;
        }
        1 => 1,
        2 => 16,
        _ => 64,
    };
    let mut out = compress_lz(src, chain_depth);
    if out.len() > src.len() {
        out.clear();
        out.push(METHOD_STORED);
        out.extend_from_slice(src);
    }
    out
}

/// Decompresses a [`compress`]-produced block, expecting exactly
/// `raw_len` output bytes.
///
/// # Errors
/// Returns a human-readable reason when the block is malformed:
/// unknown method byte, truncated stream, out-of-window match offset,
/// or a length disagreeing with `raw_len`. The caller attaches file
/// and chunk context.
pub fn decompress(block: &[u8], raw_len: usize) -> Result<Vec<u8>, String> {
    let (&method, body) = block
        .split_first()
        .ok_or_else(|| "empty block (missing method byte)".to_owned())?;
    match method {
        METHOD_STORED => {
            if body.len() != raw_len {
                return Err(format!(
                    "stored block holds {} bytes, expected {raw_len}",
                    body.len()
                ));
            }
            Ok(body.to_vec())
        }
        METHOD_LZ => decompress_lz(body, raw_len),
        other => Err(format!("unknown block method {other}")),
    }
}

/// Hash of the 4 bytes at `src[i..]` into [`HASH_BITS`] bits
/// (Fibonacci hashing on the little-endian word).
#[inline]
fn hash4(src: &[u8], i: usize) -> usize {
    let word = u32::from_le_bytes([src[i], src[i + 1], src[i + 2], src[i + 3]]);
    (word.wrapping_mul(2_654_435_761) >> (32 - HASH_BITS)) as usize
}

/// Greedy LZ compressor with a `chain_depth`-deep hash chain.
fn compress_lz(src: &[u8], chain_depth: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(src.len() / 2 + 16);
    out.push(METHOD_LZ);
    const NONE: u32 = u32::MAX;
    let mut head = vec![NONE; 1 << HASH_BITS];
    let mut prev = vec![NONE; src.len()];

    let mut anchor = 0usize;
    let mut i = 0usize;
    while i + MIN_MATCH <= src.len() {
        let h = hash4(src, i);
        // Walk the chain for the longest in-window match.
        let mut best_len = 0usize;
        let mut best_off = 0usize;
        let mut cand = head[h];
        let mut steps = 0usize;
        while cand != NONE && steps < chain_depth {
            let c = cand as usize;
            let off = i - c;
            if off > MAX_OFFSET {
                break; // chain positions only get older
            }
            let len = common_prefix(src, c, i);
            if len > best_len {
                best_len = len;
                best_off = off;
            }
            cand = prev[c];
            steps += 1;
        }
        prev[i] = head[h];
        head[h] = i as u32;

        if best_len >= MIN_MATCH {
            emit_sequence(&mut out, &src[anchor..i], best_len, best_off as u16);
            // Index the covered positions so later matches can reach
            // into this span (sparsely for long matches: every byte of
            // short matches, stride 2 beyond — determinism is what
            // matters, full indexing just costs time).
            let end = i + best_len;
            let mut j = i + 1;
            while j + MIN_MATCH <= src.len() && j < end {
                let hj = hash4(src, j);
                prev[j] = head[hj];
                head[hj] = j as u32;
                j += if best_len > 32 { 2 } else { 1 };
            }
            i = end;
            anchor = end;
        } else {
            i += 1;
        }
    }
    emit_final_literals(&mut out, &src[anchor..]);
    out
}

/// Longest common prefix of `src[a..]` and `src[b..]` (with `a < b`),
/// capped so a match never runs past the end of input.
#[inline]
fn common_prefix(src: &[u8], a: usize, b: usize) -> usize {
    let max = src.len() - b;
    let mut n = 0;
    while n < max && src[a + n] == src[b + n] {
        n += 1;
    }
    n
}

/// Writes one `(literals, match)` sequence: token, extended lengths,
/// literal bytes, little-endian offset.
fn emit_sequence(out: &mut Vec<u8>, literals: &[u8], match_len: usize, offset: u16) {
    debug_assert!(match_len >= MIN_MATCH);
    let lit_nibble = literals.len().min(15) as u8;
    let match_extra = match_len - MIN_MATCH;
    let match_nibble = match_extra.min(15) as u8;
    out.push((lit_nibble << 4) | match_nibble);
    if literals.len() >= 15 {
        emit_extended(out, literals.len() - 15);
    }
    out.extend_from_slice(literals);
    out.extend_from_slice(&offset.to_le_bytes());
    if match_extra >= 15 {
        emit_extended(out, match_extra - 15);
    }
}

/// Final sequence: literals only, match nibble zero, no offset — the
/// stream simply ends after the literal bytes.
fn emit_final_literals(out: &mut Vec<u8>, literals: &[u8]) {
    let lit_nibble = literals.len().min(15) as u8;
    out.push(lit_nibble << 4);
    if literals.len() >= 15 {
        emit_extended(out, literals.len() - 15);
    }
    out.extend_from_slice(literals);
}

/// LZ4-style length extension: 255-valued bytes plus a terminator.
fn emit_extended(out: &mut Vec<u8>, mut extra: usize) {
    while extra >= 255 {
        out.push(255);
        extra -= 255;
    }
    out.push(extra as u8);
}

/// Reads a length extension, guarding against truncation.
fn read_extended(body: &[u8], pos: &mut usize) -> Result<usize, String> {
    let mut extra = 0usize;
    loop {
        let &b = body
            .get(*pos)
            .ok_or_else(|| "truncated length extension".to_owned())?;
        *pos += 1;
        extra += b as usize;
        if b != 255 {
            return Ok(extra);
        }
    }
}

/// Sequence-by-sequence decoder; every read and copy is checked.
fn decompress_lz(body: &[u8], raw_len: usize) -> Result<Vec<u8>, String> {
    let mut out: Vec<u8> = Vec::with_capacity(raw_len.min(body.len().saturating_mul(256)));
    let mut pos = 0usize;
    loop {
        let &token = body
            .get(pos)
            .ok_or_else(|| "truncated stream (missing token)".to_owned())?;
        pos += 1;
        let mut lit_len = (token >> 4) as usize;
        if lit_len == 15 {
            lit_len += read_extended(body, &mut pos)?;
        }
        let lit_end = pos
            .checked_add(lit_len)
            .filter(|&e| e <= body.len())
            .ok_or_else(|| "literal run past end of block".to_owned())?;
        out.extend_from_slice(&body[pos..lit_end]);
        if out.len() > raw_len {
            return Err(format!("output exceeds declared length {raw_len}"));
        }
        pos = lit_end;

        if pos == body.len() {
            // Final literals-only sequence.
            if (token & 0x0F) != 0 {
                return Err("stream ends inside a match sequence".to_owned());
            }
            break;
        }

        let off_end = pos + 2;
        if off_end > body.len() {
            return Err("truncated match offset".to_owned());
        }
        let offset = u16::from_le_bytes([body[pos], body[pos + 1]]) as usize;
        pos = off_end;
        if offset == 0 || offset > out.len() {
            return Err(format!(
                "match offset {offset} outside the {} bytes produced",
                out.len()
            ));
        }
        let mut match_len = (token & 0x0F) as usize;
        if match_len == 15 {
            match_len += read_extended(body, &mut pos)?;
        }
        match_len += MIN_MATCH;
        if out.len() + match_len > raw_len {
            return Err(format!("output exceeds declared length {raw_len}"));
        }
        // Byte-wise copy: overlapping matches (offset < len) replicate,
        // exactly as the encoder's window semantics require.
        let start = out.len() - offset;
        for k in 0..match_len {
            let b = out[start + k];
            out.push(b);
        }
    }
    if out.len() != raw_len {
        return Err(format!(
            "block decoded to {} bytes, expected {raw_len}",
            out.len()
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8], level: u8) {
        let packed = compress(data, level);
        let back = decompress(&packed, data.len()).expect("clean block decodes");
        assert_eq!(back, data, "level {level}, {} bytes", data.len());
    }

    #[test]
    fn roundtrips_across_levels_and_shapes() {
        let shapes: Vec<Vec<u8>> = vec![
            vec![],
            vec![7],
            vec![0; 100_000],
            (0..=255u8).cycle().take(10_000).collect(),
            b"abcabcabcabcabcabcabcabc".repeat(40),
            (0..50_000u32)
                .map(|i| (i.wrapping_mul(2_654_435_761)) as u8)
                .collect(),
        ];
        for data in &shapes {
            for level in 0..=MAX_LEVEL {
                roundtrip(data, level);
            }
        }
    }

    #[test]
    fn long_range_matches_roundtrip() {
        // A repeat distance near the window edge and far beyond it.
        let mut data = vec![0u8; 70_000];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        for level in 1..=MAX_LEVEL {
            roundtrip(&data, level);
        }
    }

    #[test]
    fn compression_wins_on_redundant_data() {
        let data = b"cloud workload ".repeat(1000);
        let packed = compress(&data, 2);
        assert!(
            packed.len() < data.len() / 4,
            "{} -> {}",
            data.len(),
            packed.len()
        );
    }

    #[test]
    fn incompressible_data_falls_back_to_stored() {
        let data: Vec<u8> = (0..4096u32)
            .map(|i| (i.wrapping_mul(2_654_435_761) >> 13) as u8)
            .collect();
        let packed = compress(&data, 3);
        assert!(packed.len() <= data.len() + 1);
    }

    #[test]
    fn determinism_per_level() {
        let data = b"determinism determinism determinism".repeat(100);
        for level in 0..=MAX_LEVEL {
            assert_eq!(compress(&data, level), compress(&data, level));
        }
    }

    #[test]
    fn truncation_always_errors() {
        let data = b"abcabcabcabcabcabc012345".repeat(20);
        let packed = compress(&data, 1);
        for cut in 0..packed.len() {
            assert!(
                decompress(&packed[..cut], data.len()).is_err(),
                "truncation at {cut} must not decode"
            );
        }
    }

    #[test]
    fn wrong_raw_len_errors() {
        let data = b"xyzxyzxyzxyz".repeat(10);
        let packed = compress(&data, 1);
        assert!(decompress(&packed, data.len() + 1).is_err());
        assert!(decompress(&packed, data.len() - 1).is_err());
        let stored = compress(&data, 0);
        assert!(decompress(&stored, data.len() - 1).is_err());
    }

    #[test]
    fn hostile_blocks_never_panic() {
        // Tokens promising matches into an empty window, absurd
        // extensions, unknown methods.
        let cases: Vec<Vec<u8>> = vec![
            vec![METHOD_LZ, 0x0F],
            vec![METHOD_LZ, 0x01, 0x00, 0x00],
            vec![METHOD_LZ, 0xF0, 255, 255],
            vec![METHOD_LZ, 0x11, b'a', 0xFF, 0xFF],
            vec![9, 1, 2, 3],
            vec![],
        ];
        for case in &cases {
            assert!(decompress(case, 64).is_err(), "{case:?}");
        }
    }
}
