//! Physical topology: regions → datacenters → clusters → racks → nodes.
//!
//! Clusters contain thousands of nodes with identical SKU configurations;
//! racks serve as fault domains. The topology is immutable once built; the
//! allocation service tracks mutable capacity separately.

use crate::error::ModelError;
use crate::ids::{ClusterId, DatacenterId, NodeId, RackId, RegionId};
use crate::subscription::CloudKind;
use serde::{Deserialize, Serialize};

/// A geographic region: one or more datacenters sharing a geo-location and
/// a time zone.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Region {
    /// Unique identifier.
    pub id: RegionId,
    /// Human-readable name (e.g. `us-west-2`).
    pub name: String,
    /// Offset from UTC in whole hours; drives local-wall-clock analyses.
    pub tz_offset_hours: i32,
    /// Country/geography tag, used e.g. to restrict cross-region studies to
    /// US regions as the paper does.
    pub geo: String,
}

/// A datacenter within a region.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Datacenter {
    /// Unique identifier.
    pub id: DatacenterId,
    /// Region the datacenter sits in.
    pub region: RegionId,
}

/// The hardware SKU every node of a cluster shares.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeSku {
    /// Physical cores per node.
    pub cores: u32,
    /// Memory per node in GiB.
    pub memory_gb: f64,
}

impl NodeSku {
    /// Creates a node SKU.
    ///
    /// # Panics
    /// Panics if `cores` is zero or memory non-positive.
    #[must_use]
    pub fn new(cores: u32, memory_gb: f64) -> Self {
        assert!(cores > 0, "node SKU must have cores");
        assert!(memory_gb > 0.0, "node SKU must have memory");
        Self { cores, memory_gb }
    }
}

/// A cluster: a set of racks of identical nodes, dedicated to one cloud.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    /// Unique identifier.
    pub id: ClusterId,
    /// Datacenter housing the cluster.
    pub datacenter: DatacenterId,
    /// Region (denormalized for cheap lookups).
    pub region: RegionId,
    /// Which cloud platform the cluster serves.
    pub cloud: CloudKind,
    /// Hardware SKU of every node in the cluster.
    pub sku: NodeSku,
    /// Racks in this cluster, in id order.
    pub racks: Vec<RackId>,
    /// Nodes in this cluster, in id order.
    pub nodes: Vec<NodeId>,
}

impl Cluster {
    /// Total physical cores across the cluster.
    #[must_use]
    pub fn total_cores(&self) -> u64 {
        self.nodes.len() as u64 * u64::from(self.sku.cores)
    }
}

/// A physical node (server).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    /// Unique identifier.
    pub id: NodeId,
    /// Cluster the node belongs to.
    pub cluster: ClusterId,
    /// Rack (fault domain) the node is stacked in.
    pub rack: RackId,
}

/// Immutable description of the whole simulated platform.
///
/// Build one with [`TopologyBuilder`]; entity vectors are indexed by the
/// dense ids handed out at build time.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Topology {
    regions: Vec<Region>,
    datacenters: Vec<Datacenter>,
    clusters: Vec<Cluster>,
    nodes: Vec<Node>,
    racks_per_cluster: Vec<usize>,
}

impl Topology {
    /// Starts building a topology.
    #[must_use]
    pub fn builder() -> TopologyBuilder {
        TopologyBuilder::default()
    }

    /// All regions in id order.
    #[must_use]
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// All clusters in id order.
    #[must_use]
    pub fn clusters(&self) -> &[Cluster] {
        &self.clusters
    }

    /// All nodes in id order.
    #[must_use]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All datacenters in id order.
    #[must_use]
    pub fn datacenters(&self) -> &[Datacenter] {
        &self.datacenters
    }

    /// Looks up a region.
    ///
    /// # Errors
    /// Returns [`ModelError::UnknownEntity`] if the id was not built here.
    pub fn region(&self, id: RegionId) -> Result<&Region, ModelError> {
        self.regions
            .get(id.as_usize())
            .ok_or(ModelError::UnknownEntity("region", id.index() as u64))
    }

    /// Looks up a cluster.
    ///
    /// # Errors
    /// Returns [`ModelError::UnknownEntity`] if the id was not built here.
    pub fn cluster(&self, id: ClusterId) -> Result<&Cluster, ModelError> {
        self.clusters
            .get(id.as_usize())
            .ok_or(ModelError::UnknownEntity("cluster", id.index() as u64))
    }

    /// Looks up a node.
    ///
    /// # Errors
    /// Returns [`ModelError::UnknownEntity`] if the id was not built here.
    pub fn node(&self, id: NodeId) -> Result<&Node, ModelError> {
        self.nodes
            .get(id.as_usize())
            .ok_or(ModelError::UnknownEntity("node", u64::from(id.index())))
    }

    /// Clusters serving the given cloud.
    pub fn clusters_of(&self, cloud: CloudKind) -> impl Iterator<Item = &Cluster> {
        self.clusters.iter().filter(move |c| c.cloud == cloud)
    }

    /// Clusters located in the given region.
    pub fn clusters_in_region(&self, region: RegionId) -> impl Iterator<Item = &Cluster> {
        self.clusters.iter().filter(move |c| c.region == region)
    }

    /// Regions whose `geo` tag matches (e.g. `"US"`).
    pub fn regions_in_geo<'a>(&'a self, geo: &'a str) -> impl Iterator<Item = &'a Region> {
        self.regions.iter().filter(move |r| r.geo == geo)
    }

    /// Number of nodes across all clusters.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

/// Incremental builder for [`Topology`] (C-BUILDER). Ids are dense and
/// assigned in insertion order.
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    topology: Topology,
    next_rack: u32,
}

impl TopologyBuilder {
    /// Adds a region and returns its id.
    pub fn add_region(
        &mut self,
        name: impl Into<String>,
        tz_offset_hours: i32,
        geo: impl Into<String>,
    ) -> RegionId {
        let id = RegionId::new(self.topology.regions.len() as u32);
        self.topology.regions.push(Region {
            id,
            name: name.into(),
            tz_offset_hours,
            geo: geo.into(),
        });
        id
    }

    /// Adds a datacenter in `region` and returns its id.
    ///
    /// # Panics
    /// Panics if `region` does not exist yet.
    pub fn add_datacenter(&mut self, region: RegionId) -> DatacenterId {
        assert!(
            region.as_usize() < self.topology.regions.len(),
            "unknown region {region}"
        );
        let id = DatacenterId::new(self.topology.datacenters.len() as u32);
        self.topology.datacenters.push(Datacenter { id, region });
        id
    }

    /// Adds a cluster of `racks × nodes_per_rack` identical nodes and
    /// returns its id.
    ///
    /// # Panics
    /// Panics if the datacenter is unknown or the shape is degenerate.
    pub fn add_cluster(
        &mut self,
        datacenter: DatacenterId,
        cloud: CloudKind,
        sku: NodeSku,
        racks: usize,
        nodes_per_rack: usize,
    ) -> ClusterId {
        assert!(racks > 0 && nodes_per_rack > 0, "cluster must have nodes");
        let dc = self
            .topology
            .datacenters
            .get(datacenter.as_usize())
            .unwrap_or_else(|| panic!("unknown datacenter {datacenter}"));
        let region = dc.region;
        let id = ClusterId::new(self.topology.clusters.len() as u32);
        let mut rack_ids = Vec::with_capacity(racks);
        let mut node_ids = Vec::with_capacity(racks * nodes_per_rack);
        for _ in 0..racks {
            let rack = RackId::new(self.next_rack);
            self.next_rack += 1;
            rack_ids.push(rack);
            for _ in 0..nodes_per_rack {
                let node = NodeId::new(self.topology.nodes.len() as u32);
                self.topology.nodes.push(Node {
                    id: node,
                    cluster: id,
                    rack,
                });
                node_ids.push(node);
            }
        }
        self.topology.clusters.push(Cluster {
            id,
            datacenter,
            region,
            cloud,
            sku,
            racks: rack_ids,
            nodes: node_ids,
        });
        id
    }

    /// Finishes building.
    #[must_use]
    pub fn build(self) -> Topology {
        self.topology
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_topology() -> Topology {
        let mut b = Topology::builder();
        let r0 = b.add_region("us-west", -8, "US");
        let r1 = b.add_region("eu-north", 1, "EU");
        let d0 = b.add_datacenter(r0);
        let d1 = b.add_datacenter(r1);
        b.add_cluster(d0, CloudKind::Private, NodeSku::new(48, 384.0), 2, 4);
        b.add_cluster(d0, CloudKind::Public, NodeSku::new(48, 384.0), 2, 4);
        b.add_cluster(d1, CloudKind::Public, NodeSku::new(64, 512.0), 1, 2);
        b.build()
    }

    #[test]
    fn builder_assigns_dense_ids() {
        let t = small_topology();
        assert_eq!(t.regions().len(), 2);
        assert_eq!(t.clusters().len(), 3);
        assert_eq!(t.node_count(), 8 + 8 + 2);
        for (i, n) in t.nodes().iter().enumerate() {
            assert_eq!(n.id.as_usize(), i);
        }
    }

    #[test]
    fn cluster_membership_and_fault_domains() {
        let t = small_topology();
        let c = t.cluster(ClusterId::new(0)).unwrap();
        assert_eq!(c.racks.len(), 2);
        assert_eq!(c.nodes.len(), 8);
        assert_eq!(c.total_cores(), 8 * 48);
        // Nodes of a cluster point back at it and at one of its racks.
        for &nid in &c.nodes {
            let n = t.node(nid).unwrap();
            assert_eq!(n.cluster, c.id);
            assert!(c.racks.contains(&n.rack));
        }
        // Rack ids are globally unique across clusters.
        let c1 = t.cluster(ClusterId::new(1)).unwrap();
        assert!(c.racks.iter().all(|r| !c1.racks.contains(r)));
    }

    #[test]
    fn filtered_views() {
        let t = small_topology();
        assert_eq!(t.clusters_of(CloudKind::Private).count(), 1);
        assert_eq!(t.clusters_of(CloudKind::Public).count(), 2);
        assert_eq!(t.clusters_in_region(RegionId::new(0)).count(), 2);
        assert_eq!(t.regions_in_geo("US").count(), 1);
    }

    #[test]
    fn unknown_lookups_error() {
        let t = small_topology();
        assert!(t.region(RegionId::new(99)).is_err());
        assert!(t.cluster(ClusterId::new(99)).is_err());
        assert!(t.node(NodeId::new(999)).is_err());
    }

    #[test]
    #[should_panic(expected = "unknown region")]
    fn datacenter_requires_region() {
        let mut b = Topology::builder();
        b.add_datacenter(RegionId::new(5));
    }

    #[test]
    #[should_panic(expected = "must have nodes")]
    fn degenerate_cluster_rejected() {
        let mut b = Topology::builder();
        let r = b.add_region("x", 0, "US");
        let d = b.add_datacenter(r);
        b.add_cluster(d, CloudKind::Public, NodeSku::new(8, 64.0), 0, 4);
    }
}
