//! Figure 1: deployment sizes — CDFs of VMs per subscription and
//! box-plots of subscriptions per cluster.

use cloudscope::analysis::deployment::DeploymentSizeAnalysis;
use cloudscope::model::time::MINUTES_PER_DAY;
use cloudscope::par::Parallelism;
use cloudscope::prelude::*;
use cloudscope::store::{ScanFilter, TraceReader};
use cloudscope_repro::checks::fig1_checks;
use cloudscope_repro::{print_ecdf, MetricsOpt, ShapeChecks};

fn main() {
    let metrics = MetricsOpt::from_args();
    let snapshot = SimTime::from_minutes(2 * 24 * 60 + 14 * 60);
    // Figure 1 is a pure point-in-time metadata analysis, so a
    // store-backed run pushes the snapshot day into the chunk scan: a
    // VM alive at the snapshot was created on a (clamped) day <= its
    // day, and chunks are keyed by creation day, so later-day chunks
    // are never read. (With --trace-out the full trace is still needed
    // for the copy, so the pushdown path is skipped.)
    let a = match (metrics.trace_dir(), metrics.trace_out()) {
        (Some(dir), None) => {
            let fail = |what: &str, e: cloudscope::store::StoreError| -> ! {
                eprintln!("error: {what}: {e}");
                std::process::exit(2);
            };
            let reader = TraceReader::open(dir)
                .unwrap_or_else(|e| fail(&format!("opening trace store {}", dir.display()), e));
            let subscriptions = reader
                .read_subscriptions()
                .unwrap_or_else(|e| fail("reading subscription table", e));
            let snapshot_day = u8::try_from(snapshot.minutes() / MINUTES_PER_DAY).expect("day");
            let records = reader
                .read_vm_records(
                    ScanFilter::all().max_day(snapshot_day),
                    &Parallelism::auto(),
                )
                .unwrap_or_else(|e| fail("reading metadata chunks", e));
            eprintln!(
                "# pushdown: read {} records from creation days <= {snapshot_day} of {}",
                records.len(),
                dir.display()
            );
            DeploymentSizeAnalysis::run_from_records(&records, &subscriptions, snapshot)
        }
        _ => {
            let generated = metrics.load_trace();
            DeploymentSizeAnalysis::run(&generated.trace, snapshot)
        }
    }
    .expect("analysis");

    print_ecdf(
        "Fig 1(a) private: VMs per subscription",
        &a.private_vms_per_subscription,
    );
    print_ecdf(
        "Fig 1(a) public: VMs per subscription",
        &a.public_vms_per_subscription,
    );
    for (label, b) in [
        ("private", &a.private_subscriptions_per_cluster),
        ("public", &a.public_subscriptions_per_cluster),
    ] {
        println!("## Fig 1(b) {label}: subscriptions per cluster");
        println!(
            "lower_whisker,q1,median,q3,upper_whisker,outliers\n{:.1},{:.1},{:.1},{:.1},{:.1},{}",
            b.lower_whisker,
            b.q1,
            b.median,
            b.q3,
            b.upper_whisker,
            b.outliers.len()
        );
        println!();
    }

    let mut checks = ShapeChecks::new();
    fig1_checks(&a, &cloudscope_repro::active_profile(), &mut checks);
    let ok = checks.finish("fig1");
    metrics.write();
    std::process::exit(i32::from(!ok));
}
