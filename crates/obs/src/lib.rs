//! `cloudscope-obs`: a zero-dependency, thread-safe metrics layer for
//! the cloudscope pipeline.
//!
//! - [`Registry`] — named counters, gauges, and fixed log-bucket
//!   histograms, all lock-free to update once a handle is held.
//! - [`Span`] — hierarchical wall-clock timers recording into
//!   `<path>.duration_ns` histograms.
//! - [`Snapshot`] — deterministic point-in-time copies with `diff`.
//! - [`to_json`] / [`to_prometheus`] — serializers, each paired with a
//!   parser so snapshots round-trip exactly.
//! - [`Schema`] — committed name/kind sets for CI validation.
//! - [`testing`] — assertion helpers for metrics-driven tests.
//!
//! # Which registry do updates go to?
//!
//! Library code records against [`current()`]: the innermost registry
//! installed by [`scoped()`] on this thread, or the process-wide
//! [`global()`] registry when none is. Tests wrap the code under test
//! in `scoped(&my_registry, || ...)` to observe it in isolation even
//! though the test harness runs tests concurrently; binaries just use
//! the global registry and dump it at exit.
//!
//! Metric names follow `<crate>.<subsystem>.<name>`, e.g.
//! `faults.corrupt.samples_dropped`.

mod export;
mod registry;
mod schema;
mod snapshot;
mod span;
pub mod testing;

pub use export::{parse_json, parse_prometheus, to_json, to_prometheus, ParseError};
pub use registry::{
    bucket_index, bucket_upper_bound, Counter, Gauge, Histogram, Registry, HISTOGRAM_BUCKETS,
};
pub use schema::Schema;
pub use snapshot::{HistogramSnapshot, MetricValue, Snapshot};
pub use span::Span;

use std::cell::RefCell;
use std::sync::{Arc, OnceLock};

static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();

thread_local! {
    static SCOPED: RefCell<Vec<Arc<Registry>>> = const { RefCell::new(Vec::new()) };
}

/// The process-wide registry binaries export at exit.
#[must_use]
pub fn global() -> Arc<Registry> {
    Arc::clone(GLOBAL.get_or_init(|| Arc::new(Registry::new())))
}

/// The registry this thread currently records against: the innermost
/// [`scoped()`] registry, or [`global()`] outside any scope.
#[must_use]
pub fn current() -> Arc<Registry> {
    SCOPED
        .with(|stack| stack.borrow().last().map(Arc::clone))
        .unwrap_or_else(global)
}

struct ScopeGuard;

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        SCOPED.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

/// Runs `work` with `registry` as this thread's current registry,
/// restoring the previous one afterwards (also on panic). Scopes nest.
///
/// Worker threads do not inherit the scope automatically;
/// `cloudscope-par` captures [`current()`] before spawning and
/// re-installs it in each worker, so parallel sections stay attributed
/// to the caller's registry.
pub fn scoped<R>(registry: &Arc<Registry>, work: impl FnOnce() -> R) -> R {
    SCOPED.with(|stack| stack.borrow_mut().push(Arc::clone(registry)));
    let _guard = ScopeGuard;
    work()
}

/// The counter `name` on the current registry.
#[must_use]
pub fn counter(name: &str) -> Counter {
    current().counter(name)
}

/// The gauge `name` on the current registry.
#[must_use]
pub fn gauge(name: &str) -> Gauge {
    current().gauge(name)
}

/// The histogram `name` on the current registry.
#[must_use]
pub fn histogram(name: &str) -> Histogram {
    current().histogram(name)
}

/// Starts a root [`Span`] named `path` on the current registry.
#[must_use]
pub fn span(path: &str) -> Span {
    Span::root(current(), path)
}

/// Snapshots the current registry.
#[must_use]
pub fn snapshot() -> Snapshot {
    current().snapshot()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_overrides_global_and_restores() {
        let reg = Arc::new(Registry::new());
        scoped(&reg, || {
            counter("scoped.only").inc();
        });
        assert_eq!(reg.snapshot().counter("scoped.only"), Some(1));
        assert_eq!(global().snapshot().counter("scoped.only"), None);
    }

    #[test]
    fn scopes_nest_innermost_wins() {
        let outer = Arc::new(Registry::new());
        let inner = Arc::new(Registry::new());
        scoped(&outer, || {
            counter("depth").inc();
            scoped(&inner, || counter("depth").inc());
            counter("depth").inc();
        });
        assert_eq!(outer.snapshot().counter("depth"), Some(2));
        assert_eq!(inner.snapshot().counter("depth"), Some(1));
    }

    #[test]
    fn scope_is_restored_after_panic() {
        let reg = Arc::new(Registry::new());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            scoped(&reg, || panic!("boom"));
        }));
        assert!(result.is_err());
        // The scope stack is clean: recording now goes to the global
        // registry, not the panicked scope's.
        counter("lib.after_panic").inc();
        assert_eq!(reg.snapshot().counter("lib.after_panic"), None);
    }

    #[test]
    fn schema_validates_matching_snapshot() {
        let reg = Registry::new();
        reg.counter("a.b.c").inc();
        reg.gauge("a.b.g").set(1.0);
        reg.histogram("a.b.h").observe(5);
        let snap = reg.snapshot();
        let schema = Schema::from_snapshot(&snap);
        assert!(schema.validate(&snap).is_empty());

        // Round-trips through JSON.
        let parsed = Schema::parse_json(&schema.to_json()).expect("parses");
        assert_eq!(parsed, schema);

        // A metric missing from the snapshot is fine; an extra or
        // retyped metric is a violation.
        let reg2 = Registry::new();
        reg2.counter("a.b.c").inc();
        assert!(schema.validate(&reg2.snapshot()).is_empty());
        reg2.counter("a.b.new").inc();
        assert_eq!(schema.validate(&reg2.snapshot()).len(), 1);
        let reg3 = Registry::new();
        reg3.gauge("a.b.c").set(0.0);
        assert_eq!(schema.validate(&reg3.snapshot()).len(), 1);
    }
}
