//! Periodicity detection in the style of Vlachos, Yu & Castelli (ICDM'05),
//! the method the paper cites (\[18\]) for identifying diurnal and
//! hourly-peak utilization patterns.
//!
//! Stage 1 extracts candidate periods from periodogram bins whose power
//! clears an adaptive threshold. Stage 2 validates each candidate on the
//! autocorrelation function: a true period must land on an ACF *hill*
//! (local maximum above a correlation threshold); spectral leakage and
//! harmonics land on slopes or valleys and are discarded.

use crate::acf::{autocorrelation, autocorrelation_masked, refine_on_acf};
use crate::error::SeriesError;
use crate::fft::{periodogram, periodogram_masked};
use crate::series::Series;
use serde::{Deserialize, Serialize};

/// A detected period.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectedPeriod {
    /// Period length in minutes.
    pub minutes: f64,
    /// Period length in samples of the analyzed series.
    pub lag: usize,
    /// ACF value at the validated lag (strength of the periodicity).
    pub acf_strength: f64,
    /// Normalized periodogram power of the originating candidate bin.
    pub power_fraction: f64,
}

/// Tuning knobs for the detector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeriodDetectorConfig {
    /// How many of the strongest periodogram bins become candidates.
    pub max_candidates: usize,
    /// A candidate bin must carry at least this fraction of total
    /// (non-DC) spectral power.
    pub min_power_fraction: f64,
    /// Minimum ACF value for a hill to validate a candidate.
    pub min_acf: f64,
    /// Search radius (in samples) around the candidate lag when looking
    /// for the ACF hill, as a fraction of the candidate lag.
    pub refine_radius_fraction: f64,
}

impl Default for PeriodDetectorConfig {
    fn default() -> Self {
        Self {
            max_candidates: 8,
            min_power_fraction: 0.04,
            min_acf: 0.3,
            refine_radius_fraction: 0.2,
        }
    }
}

/// Periodicity detector. Construct once, reuse across series.
///
/// # Examples
/// ```
/// # use cloudscope_timeseries::period::PeriodDetector;
/// # use cloudscope_timeseries::series::Series;
/// // A daily (1440-minute) pattern sampled every 5 minutes for a week.
/// let values: Vec<f64> = (0..2016)
///     .map(|i| (std::f64::consts::TAU * (i as f64) / 288.0).sin())
///     .collect();
/// let series = Series::new(0, 5, values);
/// let detector = PeriodDetector::default();
/// let periods = detector.detect(&series).unwrap();
/// assert!(periods.iter().any(|p| (p.minutes - 1440.0).abs() < 150.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PeriodDetector {
    config: PeriodDetectorConfig,
}

impl PeriodDetector {
    /// Creates a detector with custom configuration.
    #[must_use]
    pub const fn new(config: PeriodDetectorConfig) -> Self {
        Self { config }
    }

    /// Detects periods in a series, strongest (by ACF) first.
    ///
    /// Gap-bearing series (NaN slots) are handled transparently: both
    /// stages switch to their mask-and-renormalize estimators
    /// ([`periodogram_masked`], [`autocorrelation_masked`]), which need at
    /// least 16 *present* samples.
    ///
    /// # Errors
    /// - [`SeriesError::TooShort`] if the series has fewer than 16
    ///   (present) samples.
    /// - [`SeriesError::ZeroVariance`] if the (present) series is constant.
    pub fn detect(&self, series: &Series) -> Result<Vec<DetectedPeriod>, SeriesError> {
        let values = series.values();
        let has_gaps = values.iter().any(|v| !v.is_finite());
        let present = if has_gaps {
            values.iter().filter(|v| v.is_finite()).count()
        } else {
            values.len()
        };
        if present < 16 {
            return Err(SeriesError::TooShort(present));
        }
        let (power, padded_n) = if has_gaps {
            periodogram_masked(values)?
        } else {
            periodogram(values)?
        };
        let total_power: f64 = power.iter().skip(1).sum();
        if total_power <= 0.0 {
            return Err(SeriesError::ZeroVariance);
        }

        // Stage 1: candidate bins, strongest first, above the power floor.
        let mut bins: Vec<(usize, f64)> = power
            .iter()
            .enumerate()
            .skip(1)
            .map(|(k, &p)| (k, p / total_power))
            .filter(|&(_, frac)| frac >= self.config.min_power_fraction)
            .collect();
        bins.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite power"));
        bins.truncate(self.config.max_candidates);

        // Stage 2: validate on the ACF.
        let max_lag = values.len() / 2;
        let acf = if has_gaps {
            autocorrelation_masked(values, max_lag)?
        } else {
            autocorrelation(values, max_lag)?
        };
        let mut found: Vec<DetectedPeriod> = Vec::new();
        for (k, frac) in bins {
            // Bin k of an N-point transform corresponds to period N/k samples.
            let lag_estimate = (padded_n as f64 / k as f64).round() as usize;
            if lag_estimate < 2 || lag_estimate > max_lag {
                continue;
            }
            let radius =
                ((lag_estimate as f64 * self.config.refine_radius_fraction) as usize).max(1);
            let Some((lag, strength)) =
                refine_on_acf(&acf, lag_estimate, radius, self.config.min_acf)
            else {
                continue;
            };
            // Deduplicate: skip lags within 10% of an accepted period.
            if found
                .iter()
                .any(|p| (p.lag as f64 - lag as f64).abs() < 0.1 * p.lag as f64)
            {
                continue;
            }
            found.push(DetectedPeriod {
                minutes: lag as f64 * series.step_minutes() as f64,
                lag,
                acf_strength: strength,
                power_fraction: frac,
            });
        }
        found.sort_by(|a, b| b.acf_strength.partial_cmp(&a.acf_strength).expect("finite"));
        Ok(found)
    }

    /// Convenience: `true` if some detected period lies within
    /// `tolerance_minutes` of `target_minutes`. Constant or too-short
    /// series simply report `false`.
    #[must_use]
    pub fn has_period_near(
        &self,
        series: &Series,
        target_minutes: f64,
        tolerance_minutes: f64,
    ) -> bool {
        self.detect(series).is_ok_and(|periods| {
            periods
                .iter()
                .any(|p| (p.minutes - target_minutes).abs() <= tolerance_minutes)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-noise in [-1, 1] via a splitmix64-style hash.
    fn noise(i: usize) -> f64 {
        let mut z = (i as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z = z ^ (z >> 31);
        (z % 10_000) as f64 / 5_000.0 - 1.0
    }

    fn weekly_series(period_samples: usize, amplitude: f64, noise_amp: f64) -> Series {
        let values: Vec<f64> = (0..2016)
            .map(|i| {
                amplitude * (std::f64::consts::TAU * i as f64 / period_samples as f64).sin()
                    + noise_amp * noise(i)
            })
            .collect();
        Series::new(0, 5, values)
    }

    #[test]
    fn detects_daily_period_in_five_minute_data() {
        // 288 five-minute samples per day.
        let series = weekly_series(288, 10.0, 1.0);
        let detector = PeriodDetector::default();
        let periods = detector.detect(&series).unwrap();
        assert!(!periods.is_empty());
        assert!(
            (periods[0].minutes - 1440.0).abs() <= 150.0,
            "got {:?}",
            periods[0]
        );
        assert!(detector.has_period_near(&series, 1440.0, 150.0));
    }

    #[test]
    fn detects_hourly_period() {
        let series = weekly_series(12, 10.0, 1.0);
        let detector = PeriodDetector::default();
        assert!(detector.has_period_near(&series, 60.0, 10.0));
        assert!(!detector.has_period_near(&series, 1440.0, 150.0));
    }

    #[test]
    fn pure_noise_detects_nothing_strong() {
        let values: Vec<f64> = (0..2016).map(noise).collect();
        let series = Series::new(0, 5, values);
        let periods = PeriodDetector::default().detect(&series).unwrap();
        for p in &periods {
            assert!(
                p.acf_strength < 0.5,
                "noise produced a strong period: {p:?}"
            );
        }
    }

    #[test]
    fn constant_series_errors() {
        let series = Series::new(0, 5, vec![3.0; 64]);
        assert!(matches!(
            PeriodDetector::default().detect(&series),
            Err(SeriesError::ZeroVariance)
        ));
        assert!(!PeriodDetector::default().has_period_near(&series, 60.0, 5.0));
    }

    #[test]
    fn short_series_errors() {
        let series = Series::new(0, 5, vec![1.0, 2.0, 3.0]);
        assert!(matches!(
            PeriodDetector::default().detect(&series),
            Err(SeriesError::TooShort(3))
        ));
    }

    #[test]
    fn two_superimposed_periods_both_found() {
        let values: Vec<f64> = (0..2016)
            .map(|i| {
                10.0 * (std::f64::consts::TAU * i as f64 / 288.0).sin()
                    + 6.0 * (std::f64::consts::TAU * i as f64 / 12.0).sin()
                    + 0.5 * noise(i)
            })
            .collect();
        let series = Series::new(0, 5, values);
        let detector = PeriodDetector::default();
        assert!(
            detector.has_period_near(&series, 1440.0, 150.0),
            "daily missing"
        );
        assert!(
            detector.has_period_near(&series, 60.0, 10.0),
            "hourly missing"
        );
    }

    #[test]
    fn gap_bearing_series_still_detects_daily_period() {
        let mut series = weekly_series(288, 10.0, 1.0);
        let values = series.values_mut();
        // 5% pseudo-random loss plus a 6-hour blackout (72 slots).
        for i in (0..values.len()).step_by(20) {
            values[i] = f64::NAN;
        }
        for v in &mut values[500..572] {
            *v = f64::NAN;
        }
        let detector = PeriodDetector::default();
        assert!(detector.has_period_near(&series, 1440.0, 150.0));
        assert!(!detector.has_period_near(&series, 60.0, 10.0));
    }

    #[test]
    fn gap_bearing_series_needs_sixteen_present() {
        let mut values = vec![f64::NAN; 64];
        for (i, v) in values.iter_mut().enumerate().take(10) {
            *v = i as f64;
        }
        let series = Series::new(0, 5, values);
        assert!(matches!(
            PeriodDetector::default().detect(&series),
            Err(SeriesError::TooShort(10))
        ));
    }

    #[test]
    fn results_sorted_by_strength() {
        let series = weekly_series(288, 10.0, 1.0);
        let periods = PeriodDetector::default().detect(&series).unwrap();
        for w in periods.windows(2) {
            assert!(w[0].acf_strength >= w[1].acf_strength);
        }
    }
}
