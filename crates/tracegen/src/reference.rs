//! The pre-optimization serial generation path, kept alive on purpose.
//!
//! [`generate_serial_reference`] reproduces the generator exactly as it
//! ran before the scale-out work: whole-cloud fleets whose allocators
//! answer from the O(nodes) linear scan
//! ([`cloudscope_cluster::ClusterAllocator::scan_reference_mode`]), one
//! global discrete-event drive on the binary-heap
//! [`cloudscope_sim::EventQueue`] (not the calendar queue), and a
//! single-worker telemetry sweep. Its output is byte-identical to
//! [`crate::generate`] — locked by `serial_reference_matches_parallel`
//! below and by the golden trace digests — which makes it serve two
//! jobs:
//!
//! - **Benchmark baseline**: `benches/tracegen.rs` measures the
//!   end-to-end speedup of the indexed/parallel path against this
//!   function, reconstructing the pre-PR cost model honestly instead of
//!   against a remembered number.
//! - **Oracle**: any divergence between the two paths is a determinism
//!   bug, caught as an equality failure rather than silent drift.

use crate::config::GeneratorConfig;
use crate::generate::{
    finish, fleet_index, make_record, prepare, spreading_rule, Event, FinishInputs, GeneratedTrace,
    SpecKind,
};
use cloudscope_cluster::{Fleet, PlacementPolicy, PlacementRequest};
use cloudscope_model::prelude::*;
use cloudscope_par::Parallelism;
use cloudscope_sim::rng::RngFactory;
use cloudscope_sim::EventQueue;

/// Generates a trace on the pre-optimization serial path: linear-scan
/// allocators, binary-heap event queue, single global drive, one-worker
/// telemetry. Byte-identical to [`crate::generate`], at the original
/// cost.
///
/// # Panics
/// Panics if the configuration is invalid, like [`crate::generate`].
#[must_use]
pub fn generate_serial_reference(config: &GeneratorConfig) -> GeneratedTrace {
    if let Err(e) = config.validate() {
        panic!("{e}");
    }
    let factory = RngFactory::new(config.seed);
    let gen_span = cloudscope_obs::span("tracegen.generate");
    let prep = prepare(config, &factory, &gen_span);
    let stage = gen_span.child("placement");

    // Whole-cloud fleets in scan-reference mode: node selection and the
    // cluster-ordering ratio run the original O(nodes) scans.
    let spreading = spreading_rule();
    let mut fleets = [
        Fleet::new(
            &prep.topology,
            CloudKind::Private,
            PlacementPolicy::BestFit,
            spreading,
        )
        .scan_reference_mode(),
        Fleet::new(
            &prep.topology,
            CloudKind::Public,
            PlacementPolicy::BestFit,
            spreading,
        )
        .scan_reference_mode(),
    ];

    let mut report = prep.report;
    let mut records: Vec<VmRecord> = Vec::with_capacity(prep.specs.len());

    // Standing VMs place first (outside the DES), then churn replays
    // through the heap queue so releases free capacity for later
    // creations — the original single-threaded drive.
    let mut queue: EventQueue<Event> = EventQueue::with_capacity(prep.specs.len());
    for (spec, &size) in prep.specs.iter().zip(&prep.sizes) {
        let plan = &prep.plans[spec.subscription];
        let fleet_idx = fleet_index(plan.cloud);
        let request = PlacementRequest {
            vm: VmId::new(records.len() as u64),
            size,
            service: ServiceId::new(prep.service_base[spec.subscription] + spec.group as u32),
            priority: spec.priority,
        };
        match spec.kind {
            SpecKind::Standing => match fleets[fleet_idx].place_in_region(spec.region, request) {
                Ok((cluster, node)) => {
                    if let Some(end) = spec.ended {
                        queue.schedule(end, Event::Release(request.vm));
                    }
                    records.push(make_record(request, spec, plan, cluster, Some(node)));
                }
                Err(_) => {
                    report.dropped_vms += 1;
                }
            },
            SpecKind::Churn | SpecKind::Burst => {
                records.push(make_record(
                    request,
                    spec,
                    plan,
                    ClusterId::new(u32::MAX),
                    None,
                ));
                queue.schedule(spec.created, Event::Create(records.len() - 1));
            }
        }
    }

    let week_end = SimTime::WEEK_END;
    while let Some(next) = queue.peek_time() {
        if next >= week_end {
            break;
        }
        let (time, event) = queue.pop().expect("peeked");
        match event {
            Event::Create(record_idx) => {
                let record = &mut records[record_idx];
                let plan = &prep.plans[record.subscription.as_usize()];
                let fleet_idx = fleet_index(plan.cloud);
                let request = PlacementRequest {
                    vm: record.id,
                    size: record.size,
                    service: record.service,
                    priority: record.priority,
                };
                match fleets[fleet_idx].place_in_region(record.region, request) {
                    Ok((cluster, node)) => {
                        record.cluster = cluster;
                        record.node = Some(node);
                        if let Some(end) = record.ended {
                            if end < week_end {
                                queue.schedule(end.max(time), Event::Release(record.id));
                            }
                        }
                    }
                    Err(_) => {
                        record.node = None;
                    }
                }
            }
            Event::Release(vm) => {
                let record = &records[vm.as_usize()];
                let plan = &prep.plans[record.subscription.as_usize()];
                let _ = fleets[fleet_index(plan.cloud)].release(vm);
            }
        }
    }

    report.private_alloc = fleets[0].stats();
    report.public_alloc = fleets[1].stats();
    stage.finish();

    finish(
        config,
        &factory,
        &gen_span,
        Parallelism::with_workers(1),
        FinishInputs {
            topology: prep.topology,
            tz_of: prep.tz_of,
            plans: prep.plans,
            service_base: prep.service_base,
            next_service: prep.next_service,
            standing_per_service: prep.standing_per_service,
            records,
            report,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate_with;

    /// The oracle property the whole PR rests on: the region-parallel
    /// indexed path and the pre-optimization serial path emit the same
    /// trace, record for record and sample for sample.
    #[test]
    fn serial_reference_matches_parallel() {
        for seed in [7, 42] {
            let cfg = GeneratorConfig::small(seed);
            let reference = generate_serial_reference(&cfg);
            let parallel = generate_with(&cfg, Parallelism::with_workers(4));
            assert_eq!(reference.report, parallel.report, "seed {seed}");
            assert_eq!(
                reference.trace.stats(),
                parallel.trace.stats(),
                "seed {seed}"
            );
            assert_eq!(reference.services, parallel.services, "seed {seed}");
            let vms = reference.trace.vms();
            assert_eq!(vms.len(), parallel.trace.vms().len());
            for (a, b) in vms.iter().zip(parallel.trace.vms()) {
                assert_eq!(a, b, "seed {seed}");
                assert_eq!(reference.trace.util(a.id), parallel.trace.util(b.id));
            }
        }
    }
}
