//! Deferrable-workload scheduling into valley hours (the Insight 3
//! implication for the diurnal-dominated private cloud): batch jobs that
//! tolerate delay are placed where the daily utilization profile is
//! lowest, flattening the peak.

use crate::error::MgmtError;
use serde::{Deserialize, Serialize};

/// A deferrable batch job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeferrableJob {
    /// Cores the job occupies while running.
    pub cores: f64,
    /// Run length in whole hours.
    pub duration_hours: usize,
    /// Latest hour-of-day (exclusive) by which the job must *finish*;
    /// `24` means any time today.
    pub deadline_hour: usize,
}

/// One job's placement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobPlacement {
    /// Index of the job in the input slice.
    pub job: usize,
    /// Start hour-of-day.
    pub start_hour: usize,
}

/// The scheduling result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeferralSchedule {
    /// Chosen placements (jobs that fit their deadlines).
    pub placements: Vec<JobPlacement>,
    /// Jobs that could not meet their deadline.
    pub rejected: Vec<usize>,
    /// Peak hourly load before scheduling (the base profile's max).
    pub base_peak: f64,
    /// Peak hourly load after adding the scheduled jobs.
    pub scheduled_peak: f64,
    /// Peak if every job had naively started at hour 9 (the business-day
    /// baseline the valley-scheduler is compared against).
    pub naive_peak: f64,
}

/// Greedy valley scheduler: jobs are placed longest/largest first, each
/// at the feasible start hour minimizing the resulting peak.
///
/// `base_profile` is the region's 24-hour core-demand profile (cores in
/// use per hour).
///
/// # Errors
/// Returns [`MgmtError::InvalidParameter`] if the profile is not 24
/// entries or a job is degenerate (zero duration, longer than a day, or
/// non-positive cores).
pub fn schedule_deferrable(
    base_profile: &[f64],
    jobs: &[DeferrableJob],
) -> Result<DeferralSchedule, MgmtError> {
    if base_profile.len() != 24 {
        return Err(MgmtError::InvalidParameter("profile must have 24 hours"));
    }
    for job in jobs {
        if job.duration_hours == 0 || job.duration_hours > 24 || job.cores <= 0.0 {
            return Err(MgmtError::InvalidParameter("degenerate job"));
        }
    }

    // Naive baseline: everything starts at 09:00 (wrapping).
    let mut naive = base_profile.to_vec();
    for job in jobs {
        for h in 0..job.duration_hours {
            naive[(9 + h) % 24] += job.cores;
        }
    }
    let naive_peak = naive.iter().cloned().fold(0.0, f64::max);

    // Greedy: biggest work first.
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by(|&a, &b| {
        let wa = jobs[a].cores * jobs[a].duration_hours as f64;
        let wb = jobs[b].cores * jobs[b].duration_hours as f64;
        wb.partial_cmp(&wa).expect("finite work").then(a.cmp(&b))
    });

    let mut load = base_profile.to_vec();
    let mut placements = Vec::new();
    let mut rejected = Vec::new();
    for idx in order {
        let job = &jobs[idx];
        // Feasible starts: job must finish by deadline_hour without
        // wrapping past it (deadline 24 = unconstrained, may wrap).
        let unconstrained = job.deadline_hour >= 24;
        let mut best: Option<(usize, f64)> = None;
        for start in 0..24 {
            if !unconstrained && start + job.duration_hours > job.deadline_hour {
                continue;
            }
            let peak_after = (0..job.duration_hours)
                .map(|h| load[(start + h) % 24] + job.cores)
                .fold(load.iter().cloned().fold(0.0, f64::max), f64::max);
            match best {
                Some((_, p)) if p <= peak_after => {}
                _ => best = Some((start, peak_after)),
            }
        }
        match best {
            Some((start, _)) => {
                for h in 0..job.duration_hours {
                    load[(start + h) % 24] += job.cores;
                }
                placements.push(JobPlacement {
                    job: idx,
                    start_hour: start,
                });
            }
            None => rejected.push(idx),
        }
    }
    Ok(DeferralSchedule {
        placements,
        rejected,
        base_peak: base_profile.iter().cloned().fold(0.0, f64::max),
        scheduled_peak: load.iter().cloned().fold(0.0, f64::max),
        naive_peak,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Diurnal profile: valley at night, peak 100 cores at 14:00.
    fn diurnal_profile() -> Vec<f64> {
        (0..24)
            .map(|h| {
                let d = (h as f64 - 14.0).abs().min(24.0 - (h as f64 - 14.0).abs());
                20.0 + 80.0 * (1.0 - d / 12.0)
            })
            .collect()
    }

    #[test]
    fn jobs_land_in_the_valley() {
        let jobs = vec![
            DeferrableJob {
                cores: 30.0,
                duration_hours: 3,
                deadline_hour: 24,
            },
            DeferrableJob {
                cores: 15.0,
                duration_hours: 2,
                deadline_hour: 24,
            },
        ];
        let schedule = schedule_deferrable(&diurnal_profile(), &jobs).unwrap();
        assert_eq!(schedule.placements.len(), 2);
        assert!(schedule.rejected.is_empty());
        // The peak must not grow: jobs fit into the valley.
        assert_eq!(schedule.scheduled_peak, schedule.base_peak);
        assert!(schedule.naive_peak > schedule.scheduled_peak);
        // Placements avoid the 10:00-18:00 peak block entirely.
        for p in &schedule.placements {
            let job = &jobs[p.job];
            for h in 0..job.duration_hours {
                let hour = (p.start_hour + h) % 24;
                assert!(!(10..18).contains(&hour), "job in peak hour {hour}");
            }
        }
    }

    #[test]
    fn deadlines_are_respected() {
        let jobs = vec![DeferrableJob {
            cores: 10.0,
            duration_hours: 4,
            deadline_hour: 8, // must finish by 08:00 -> start <= 4
        }];
        let schedule = schedule_deferrable(&diurnal_profile(), &jobs).unwrap();
        assert_eq!(schedule.placements.len(), 1);
        assert!(schedule.placements[0].start_hour + 4 <= 8);
    }

    #[test]
    fn impossible_deadline_rejects_job() {
        let jobs = vec![DeferrableJob {
            cores: 10.0,
            duration_hours: 10,
            deadline_hour: 5,
        }];
        let schedule = schedule_deferrable(&diurnal_profile(), &jobs).unwrap();
        assert!(schedule.placements.is_empty());
        assert_eq!(schedule.rejected, vec![0]);
    }

    #[test]
    fn flat_profile_still_schedules() {
        let flat = vec![50.0; 24];
        let jobs = vec![DeferrableJob {
            cores: 10.0,
            duration_hours: 2,
            deadline_hour: 24,
        }];
        let schedule = schedule_deferrable(&flat, &jobs).unwrap();
        assert_eq!(schedule.placements.len(), 1);
        assert_eq!(schedule.scheduled_peak, 60.0);
    }

    #[test]
    fn validation() {
        assert!(schedule_deferrable(&[1.0; 23], &[]).is_err());
        let bad = vec![DeferrableJob {
            cores: 0.0,
            duration_hours: 1,
            deadline_hour: 24,
        }];
        assert!(schedule_deferrable(&[1.0; 24], &bad).is_err());
        let too_long = vec![DeferrableJob {
            cores: 1.0,
            duration_hours: 25,
            deadline_hour: 24,
        }];
        assert!(schedule_deferrable(&[1.0; 24], &too_long).is_err());
    }
}
