//! Figure 3: temporal deployment — lifetime CDFs, VM counts and
//! creations per hour, and per-region creation CVs.

use cloudscope::analysis::temporal::TemporalAnalysis;
use cloudscope::model::ids::RegionId;
use cloudscope_repro::checks::fig3_checks;
use cloudscope_repro::{print_csv, print_ecdf, MetricsOpt, ShapeChecks};

fn main() {
    let metrics = MetricsOpt::from_args();
    let generated = metrics.load_trace();
    let a = TemporalAnalysis::run(&generated.trace, RegionId::new(0)).expect("analysis");

    print_ecdf(
        "Fig 3(a) private: VM lifetime (minutes)",
        &a.private_lifetimes,
    );
    print_ecdf(
        "Fig 3(a) public: VM lifetime (minutes)",
        &a.public_lifetimes,
    );

    let rows: Vec<[f64; 3]> = (0..168)
        .map(|h| {
            [
                h as f64,
                a.vm_counts.0.values()[h],
                a.vm_counts.1.values()[h],
            ]
        })
        .collect();
    print_csv(
        "Fig 3(b): VM counts per hour (region 0)",
        ["hour", "private", "public"],
        &rows,
    );

    let rows: Vec<[f64; 3]> = (0..168)
        .map(|h| {
            [
                h as f64,
                a.creations.0.values()[h],
                a.creations.1.values()[h],
            ]
        })
        .collect();
    print_csv(
        "Fig 3(c): VM creations per hour (region 0)",
        ["hour", "private", "public"],
        &rows,
    );

    for (label, b) in [("private", &a.creation_cv.0), ("public", &a.creation_cv.1)] {
        println!("## Fig 3(d) {label}: creation CV across regions");
        println!(
            "lower_whisker,q1,median,q3,upper_whisker\n{:.2},{:.2},{:.2},{:.2},{:.2}",
            b.lower_whisker, b.q1, b.median, b.q3, b.upper_whisker
        );
        println!();
    }

    let mut checks = ShapeChecks::new();
    fig3_checks(&a, &cloudscope_repro::active_profile(), &mut checks);
    let ok = checks.finish("fig3");
    metrics.write();
    std::process::exit(i32::from(!ok));
}
