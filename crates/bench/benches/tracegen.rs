//! Benchmarks for the scale-out trace generator: an allocator-level
//! place/release microbench (free-capacity index vs the linear-scan
//! reference) and end-to-end generation at 1/2/4/8 workers against
//! [`generate_serial_reference`] — the pre-optimization path preserved
//! in-tree, so the baseline is re-measured honestly on every run instead
//! of compared to a remembered number. Results merge into
//! `BENCH_tracegen.json` at the repo root.
//!
//! A `phases` pass re-runs generation under a scoped metrics registry
//! and publishes each phase's wall-clock (`tracegen_phase/<phase>/<w>`)
//! next to the end-to-end medians, so a flat 1→8 curve is diagnosable
//! from `BENCH_tracegen.json` alone: the phase that fails to shrink is
//! the ceiling.
//!
//! The final `verify` "benchmark" asserts the acceptance criteria: the
//! indexed path must beat the scan microbench ≥ 2x and the serial
//! reference ≥ 4x end to end; 8 workers must scale ≥ 2.5x over 1 worker
//! on the medium config when the host actually has ≥ 8 hardware threads
//! (on smaller hosts the gate degrades to a bounded-overhead check,
//! loudly); and the small config — which Auto now drives serially —
//! must not regress against the serial reference. Byte-identity of all
//! paths is locked elsewhere (golden trace digests,
//! `serial_reference_matches_parallel`, the `partition_oracle`
//! proptests); this file only has to prove the speed.

use cloudscope::cluster::{ClusterAllocator, PlacementPolicy, PlacementRequest, SpreadingRule};
use cloudscope::obs::{scoped, Registry};
use cloudscope::par::Parallelism;
use cloudscope::prelude::*;
use cloudscope::tracegen::{generate_serial_reference, generate_with};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;

// --- allocator microbench ----------------------------------------------

/// Cluster shape for the placement microbench: one medium-config cluster
/// (3 racks x 40 nodes), the scale at which the old per-placement scan
/// walks 120 nodes.
fn bench_allocator(policy: PlacementPolicy) -> ClusterAllocator {
    let mut b = Topology::builder();
    let r = b.add_region("bench", 0, "US");
    let d = b.add_datacenter(r);
    let c = b.add_cluster(d, CloudKind::Private, NodeSku::new(48, 384.0), 3, 40);
    let topo = b.build();
    let mut alloc = ClusterAllocator::new(
        topo.cluster(c).expect("cluster just added"),
        policy,
        SpreadingRule {
            max_same_service_per_rack: Some(64),
        },
    );
    // Prefill to ~70% so the steady-state churn below runs against a
    // realistically fragmented cluster, not an empty one.
    for i in 0..1000u64 {
        let placed = alloc.place(PlacementRequest {
            vm: VmId::new(i),
            size: VmSize::new(4, 32.0),
            service: ServiceId::new((i % 24) as u32),
            priority: if i.is_multiple_of(5) {
                Priority::Spot
            } else {
                Priority::OnDemand
            },
        });
        assert!(placed.is_ok(), "prefill must fit");
    }
    alloc
}

const CHURN_PER_ITER: u64 = 256;

/// One steady-state iteration: place a mixed batch, then release it, so
/// every iteration sees the same occupancy and the numbers compare.
fn churn_iter(alloc: &mut ClusterAllocator) {
    for i in 0..CHURN_PER_ITER {
        let cores = [2u32, 4, 8][(i % 3) as usize];
        let placed = alloc.place(PlacementRequest {
            vm: VmId::new(1_000_000 + i),
            size: VmSize::new(cores, f64::from(cores) * 8.0),
            service: ServiceId::new((i % 24) as u32),
            priority: Priority::OnDemand,
        });
        assert!(placed.is_ok(), "churn batch must fit");
    }
    for i in 0..CHURN_PER_ITER {
        alloc
            .release(VmId::new(1_000_000 + i))
            .expect("placed above");
    }
}

fn bench_place(c: &mut Criterion) {
    // First group to run: point the harness at the repo-root JSON file.
    c.json_output(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_tracegen.json"
    ));
    let smoke = std::env::var_os("CLOUDSCOPE_BENCH_SMOKE").is_some();

    let mut group = c.benchmark_group("tracegen_place");
    group.sample_size(if smoke { 3 } else { 20 });
    for policy in [
        PlacementPolicy::BestFit,
        PlacementPolicy::FirstFit,
        PlacementPolicy::WorstFit,
    ] {
        let mut indexed = bench_allocator(policy);
        let mut scan = bench_allocator(policy).scan_reference_mode();
        group.bench_function(&format!("indexed/{policy:?}"), |b| {
            b.iter(|| churn_iter(black_box(&mut indexed)));
        });
        group.bench_function(&format!("scan/{policy:?}"), |b| {
            b.iter(|| churn_iter(black_box(&mut scan)));
        });
    }
    group.finish();
}

// --- end-to-end generation ---------------------------------------------

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// The acceptance-criterion workload: the medium subscription load on
/// full-scale clusters (25 racks x 40 nodes = 1000 nodes per cluster,
/// the size the tentpole targets — the test preset's 120-node clusters
/// are deliberately small and under-exercise the per-placement node
/// scan this PR removes). Telemetry is off so the measured cost is
/// placement + simulation + assembly — the paths this PR rebuilt.
fn medium_deploy_config() -> GeneratorConfig {
    let mut cfg = GeneratorConfig::medium(7);
    cfg.topology.racks_per_cluster = 25;
    cfg.topology.nodes_per_rack = 40;
    cfg.telemetry = false;
    cfg
}

fn bench_e2e_medium(c: &mut Criterion) {
    let smoke = std::env::var_os("CLOUDSCOPE_BENCH_SMOKE").is_some();
    let cfg = medium_deploy_config();
    let mut group = c.benchmark_group("tracegen_e2e");
    group.sample_size(if smoke { 3 } else { 10 });
    group.bench_function("serial_reference/medium", |b| {
        b.iter(|| generate_serial_reference(black_box(&cfg)));
    });
    for workers in WORKER_COUNTS {
        group.bench_with_input(BenchmarkId::new("parallel", workers), &workers, |b, &w| {
            b.iter(|| generate_with(black_box(&cfg), Parallelism::with_workers(w)));
        });
    }
    group.finish();
}

fn bench_e2e_small(c: &mut Criterion) {
    let smoke = std::env::var_os("CLOUDSCOPE_BENCH_SMOKE").is_some();
    let cfg = GeneratorConfig::small(7);
    let mut group = c.benchmark_group("tracegen_small");
    group.sample_size(if smoke { 3 } else { 10 });
    group.bench_function("serial_reference/small", |b| {
        b.iter(|| generate_serial_reference(black_box(&cfg)));
    });
    for workers in WORKER_COUNTS {
        group.bench_with_input(BenchmarkId::new("parallel", workers), &workers, |b, &w| {
            b.iter(|| generate_with(black_box(&cfg), Parallelism::with_workers(w)));
        });
    }
    group.finish();
}

// --- per-phase breakdown -----------------------------------------------

/// The generation phases whose last-run wall-clock gauges the generator
/// exports (`tracegen.generate.phase_<name>_ns`).
const PHASES: [&str; 5] = ["prepare", "placement", "merge", "telemetry", "assemble"];

/// Publishes each phase's median wall-clock per worker count as
/// `tracegen_phase/<phase>/<workers>` — not a throughput benchmark but a
/// diagnosis channel: when the e2e curve above is flat, these rows name
/// the phase that refused to shrink (a serial residue, per Amdahl).
fn bench_phases(c: &mut Criterion) {
    let smoke = std::env::var_os("CLOUDSCOPE_BENCH_SMOKE").is_some();
    let runs = if smoke { 1 } else { 5 };
    let cfg = medium_deploy_config();
    for workers in WORKER_COUNTS {
        let mut samples: Vec<Vec<f64>> = vec![Vec::with_capacity(runs); PHASES.len()];
        for _ in 0..runs {
            let registry = Arc::new(Registry::new());
            let snapshot = scoped(&registry, || {
                black_box(generate_with(
                    black_box(&cfg),
                    Parallelism::with_workers(workers),
                ));
                cloudscope::obs::snapshot()
            });
            for (phase, into) in PHASES.iter().zip(&mut samples) {
                into.push(
                    snapshot
                        .gauge(&format!("tracegen.generate.phase_{phase}_ns"))
                        .unwrap_or_else(|| panic!("phase gauge {phase} missing")),
                );
            }
        }
        for (phase, mut values) in PHASES.iter().zip(samples) {
            values.sort_by(|a, b| a.partial_cmp(b).expect("finite gauge"));
            c.report_metric(
                format!("tracegen_phase/{phase}/{workers}"),
                values[values.len() / 2],
            );
        }
    }
}

/// Not a timing benchmark: checks the acceptance criteria against the
/// results measured above and fails the bench run (panics) on
/// regression.
fn verify_acceptance(c: &mut Criterion) {
    let median = |id: &str| {
        c.results()
            .iter()
            .find(|r| r.id == id)
            .unwrap_or_else(|| panic!("missing bench result {id}"))
            .median_ns
    };

    let place_speedup =
        median("tracegen_place/scan/BestFit") / median("tracegen_place/indexed/BestFit");
    println!("placement microbench indexed speedup over scan (BestFit): {place_speedup:.1}x");
    assert!(
        place_speedup >= 2.0,
        "indexed placement must beat the 120-node scan by >= 2x, got {place_speedup:.2}x"
    );

    let e2e = median("tracegen_e2e/serial_reference/medium") / median("tracegen_e2e/parallel/8");
    println!("end-to-end medium generation speedup at 8 workers over serial reference: {e2e:.1}x");
    assert!(
        e2e >= 4.0,
        "medium-scale generation at 8 workers must be >= 4x the serial reference, got {e2e:.2}x"
    );

    // The scaling gate this PR adds: 8 workers must actually scale over
    // 1 worker on the medium config. Wall-clock speedup needs hardware
    // to run on, so the assertion is conditioned on the host: with
    // fewer than 8 hardware threads the gate degrades — loudly — to a
    // bounded-overhead check (8 oversubscribed workers may not run
    // faster than 1, but the partition/merge machinery must not make
    // them meaningfully slower either).
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let scaling = median("tracegen_e2e/parallel/1") / median("tracegen_e2e/parallel/8");
    println!("medium generation scaling, 1 -> 8 workers: {scaling:.2}x (host has {cores} hardware threads)");
    if cores >= 8 {
        assert!(
            scaling >= 2.5,
            "8 workers must generate the medium trace >= 2.5x faster than 1 worker \
             on an >= 8-thread host, got {scaling:.2}x"
        );
    } else {
        println!(
            "SKIPPING the >= 2.5x scaling assertion: host exposes only {cores} hardware \
             thread(s), so parallel wall-clock speedup is physically unobservable here; \
             asserting bounded overhead instead"
        );
        assert!(
            scaling >= 0.75,
            "8 oversubscribed workers on a {cores}-thread host must stay within 33% of \
             the 1-worker wall clock, got {scaling:.2}x"
        );
    }

    // Small-scale regression gate: Auto short-circuits the small config
    // to the serial indexed drive, which must not lose to the scan-mode
    // serial reference (it used to, by ~6%, when it paid the partition
    // and merge machinery for a trace too small to amortize it).
    let small =
        median("tracegen_small/parallel/8") / median("tracegen_small/serial_reference/small");
    println!("small generation, parallel API over serial reference: {small:.2}x of reference");
    assert!(
        small <= 1.10,
        "small-config generation through the parallel API must stay within 10% of the \
         serial reference, got {small:.2}x"
    );
}

criterion_group!(
    tracegen,
    bench_place,
    bench_e2e_medium,
    bench_e2e_small,
    bench_phases,
    verify_acceptance
);
criterion_main!(tracegen);
