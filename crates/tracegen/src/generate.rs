//! End-to-end trace generation: builds the topology, synthesizes
//! subscription plans, drives standing deployments and week-long churn
//! through the allocation service on the discrete-event engine, and
//! attaches per-VM 5-minute telemetry.
//!
//! ## Cluster-granularity parallel drive
//!
//! Placement routes every request to the clusters of the VM's region
//! *and cloud* and nothing else — the private and public fleets are
//! disjoint objects whose operations commute even inside one region.
//! A cheap serial **routing pre-pass** ([`partition_specs`]) assigns
//! every spec its drive task from deterministic, placement-independent
//! inputs (the spec's region plus its subscription plan's cloud), so
//! the drive fans out over one task per *(region, cloud)* cluster
//! group — twice the task count of region granularity, and literal
//! cluster granularity on single-cluster-per-cloud topologies. The
//! coarser one-task-per-region partition is kept as an oracle
//! ([`PartitionMode::Region`]), and below
//! [`SERIAL_DRIVE_SPEC_THRESHOLD`] specs [`PartitionMode::Auto`]
//! short-circuits to a whole-trace serial drive
//! ([`PartitionMode::Serial`]) where fan-out overhead would dominate.
//! Determinism is preserved end to end:
//!
//! - **Sizes** are pre-drawn serially from the dedicated `"sizes"` RNG
//!   stream in global spec order, exactly the draws the serial loop made
//!   inline.
//! - **Event order within a cluster group** is the serial order
//!   restricted to that group: each worker schedules its group's events
//!   in the same relative sequence, and same-timestamp FIFO tie-breaks
//!   only matter within one fleet (events on other regions or the other
//!   cloud touch disjoint state). Cross-cluster placement fallback stays
//!   inside a group — [`cloudscope_cluster::Fleet::place_in_region`]
//!   only ever falls back across one region's clusters of one cloud —
//!   which is exactly why *(region, cloud)* is the finest safe
//!   granularity.
//! - **VM identities** used during a worker's drive are group-local and
//!   affect no output byte (they key hash maps); the merge re-assigns
//!   each record the id the serial loop would have used — its position
//!   among materialized records in global spec order (standing placement
//!   failures consume no id) — *before* telemetry derives per-VM RNG
//!   streams from those ids. The merge itself is parallel: a chunked
//!   prefix sum over materialized counts yields each chunk's id base,
//!   then workers emit final records concurrently ([`merge_outcomes`]).
//! - **Counters** ([`cloudscope_cluster::AllocatorStats`], drop counts)
//!   are commutative integer sums over per-group partials.
//!
//! The result is byte-identical to the serial reference at any worker
//! count and partition granularity; `tests/trace_digest.rs`, the
//! worker-invariance tests, and the `partition_oracle` proptests lock
//! this, and [`crate::reference::generate_serial_reference`] keeps the
//! pre-index serial path alive as the benchmark baseline and oracle.
//!
//! Each phase (prepare, placement, merge, telemetry, assemble) exports
//! its wall-clock both as a span histogram and as a last-run
//! `tracegen.generate.phase_*_ns` gauge, so flat scaling is diagnosable
//! straight from a metrics dump or the bench output.

use crate::arrivals::{sample_bursts_week, sample_nhpp_week};
use crate::config::GeneratorConfig;
use crate::lifetime::LifetimeSampler;
use crate::services::{synthesize_plans, SubscriptionPlan};
use crate::sizes::SizeSampler;
use crate::utilization::{generate_vm_series, PatternKind, ServiceUtilProfile};
use cloudscope_cluster::{AllocatorStats, Fleet, PlacementPolicy, PlacementRequest, SpreadingRule};
use cloudscope_model::prelude::*;
use cloudscope_model::time::{MINUTES_PER_WEEK, SAMPLE_INTERVAL_MINUTES};
use cloudscope_par::Parallelism;
use cloudscope_sim::engine::Simulation;
use cloudscope_sim::rng::RngFactory;
use cloudscope_stats::dist::{Categorical, LogNormal, Sample};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Per-rack cap on same-service VMs (the fault-domain spreading rule the
/// paper's Insight 1 discusses).
const MAX_SAME_SERVICE_PER_RACK: u32 = 80;
/// How far before the window standing VMs may have been created.
const MAX_STANDING_LEAD_MINUTES: i64 = 3 * MINUTES_PER_WEEK;

/// Ground truth about one service (= one subscription's workload), kept
/// alongside the trace for classifier evaluation and policy case studies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceInfo {
    /// The service's id (equals its subscription's index).
    pub service: ServiceId,
    /// Owning subscription.
    pub subscription: SubscriptionId,
    /// Cloud the service runs in.
    pub cloud: CloudKind,
    /// The utilization profile its VMs share.
    pub profile: ServiceUtilProfile,
    /// Regions it deploys into.
    pub regions: Vec<RegionId>,
    /// Standing VM count at generation time.
    pub standing_vms: usize,
}

/// Counters describing one generation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct GenerationReport {
    /// Allocation-service counters for the private fleet.
    pub private_alloc: AllocatorStats,
    /// Allocation-service counters for the public fleet.
    pub public_alloc: AllocatorStats,
    /// VMs dropped because placement failed.
    pub dropped_vms: u64,
    /// Standing VMs created.
    pub standing_vms: u64,
    /// Regular churn VMs created.
    pub churn_vms: u64,
    /// Burst-deployed VMs created.
    pub burst_vms: u64,
}

/// The output of [`generate`]: the trace plus ground truth and counters.
#[derive(Debug, Clone)]
pub struct GeneratedTrace {
    /// The synthetic one-week trace.
    pub trace: Trace,
    /// Ground-truth service directory, indexed by [`ServiceId`] index.
    pub services: Vec<ServiceInfo>,
    /// Generation counters.
    pub report: GenerationReport,
}

impl GeneratedTrace {
    /// The "ServiceX" of the paper's Figure 7(c): the largest
    /// region-agnostic multi-region private service, if any exists.
    #[must_use]
    pub fn flagship_service(&self) -> Option<&ServiceInfo> {
        self.services
            .iter()
            .filter(|s| {
                s.cloud == CloudKind::Private && s.profile.region_agnostic && s.regions.len() >= 3
            })
            .max_by_key(|s| s.standing_vms)
    }
}

/// One VM to be materialized, before placement.
#[derive(Debug, Clone, Copy)]
pub(crate) struct VmSpec {
    pub(crate) subscription: usize,
    pub(crate) group: usize,
    pub(crate) region: RegionId,
    pub(crate) created: SimTime,
    pub(crate) ended: Option<SimTime>,
    pub(crate) priority: Priority,
    pub(crate) kind: SpecKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SpecKind {
    Standing,
    Churn,
    Burst,
}

/// Discrete events driving placement in time order.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Event {
    Create(usize),
    Release(VmId),
}

/// Everything the placement drive consumes, produced identically by the
/// parallel and serial-reference paths: phases 1–3 (topology, plans,
/// specs) plus the serially pre-drawn VM sizes.
pub(crate) struct Prepared {
    pub(crate) topology: Topology,
    pub(crate) region_ids: Vec<RegionId>,
    pub(crate) tz_of: Vec<i32>,
    pub(crate) plans: Vec<SubscriptionPlan>,
    /// First global service id of each subscription.
    pub(crate) service_base: Vec<u32>,
    pub(crate) next_service: u32,
    pub(crate) standing_per_service: Vec<usize>,
    /// Sorted: standing first, then churn/burst by creation time.
    pub(crate) specs: Vec<VmSpec>,
    /// `sizes[i]` is the size drawn for `specs[i]` from the `"sizes"`
    /// stream, in spec order — the exact draws the serial loop made.
    pub(crate) sizes: Vec<VmSize>,
    pub(crate) report: GenerationReport,
}

/// The fault-domain spreading rule both fleets run under.
pub(crate) const fn spreading_rule() -> SpreadingRule {
    SpreadingRule {
        max_same_service_per_rack: Some(MAX_SAME_SERVICE_PER_RACK),
    }
}

/// Phases 1–3: physical plant, subscription plans, VM specs, sizes.
/// Entirely serial and shared by [`generate_with`] and
/// [`crate::reference::generate_serial_reference`].
pub(crate) fn prepare(
    config: &GeneratorConfig,
    factory: &RngFactory,
    gen_span: &cloudscope_obs::Span,
) -> Prepared {
    let stage = gen_span.child("topology");

    // 1. Physical plant.
    let mut tb = Topology::builder();
    let mut region_ids = Vec::new();
    for spec in &config.topology.regions {
        let region = tb.add_region(spec.name.clone(), spec.tz_offset_hours, spec.geo.clone());
        region_ids.push(region);
        let dc = tb.add_datacenter(region);
        for _ in 0..config.topology.private_clusters_per_region {
            tb.add_cluster(
                dc,
                CloudKind::Private,
                config.topology.node_sku,
                config.topology.racks_per_cluster,
                config.topology.nodes_per_rack,
            );
        }
        for _ in 0..config.topology.public_clusters_per_region {
            tb.add_cluster(
                dc,
                CloudKind::Public,
                config.topology.node_sku,
                config.topology.racks_per_cluster,
                config.topology.nodes_per_rack,
            );
        }
    }
    let topology = tb.build();
    let tz_of: Vec<i32> = topology
        .regions()
        .iter()
        .map(|r| r.tz_offset_hours)
        .collect();

    stage.finish();
    let stage = gen_span.child("plans");

    // 2. Subscription plans (private first: dense subscription ids).
    let mut plan_rng = factory.stream("plans/private");
    let mut plans = synthesize_plans(
        CloudKind::Private,
        &config.private,
        &region_ids,
        &mut plan_rng,
    );
    let mut plan_rng = factory.stream("plans/public");
    plans.extend(synthesize_plans(
        CloudKind::Public,
        &config.public,
        &region_ids,
        &mut plan_rng,
    ));

    // Global service ids: one service per (subscription, group).
    let mut service_base: Vec<u32> = Vec::with_capacity(plans.len());
    let mut next_service = 0u32;
    for plan in &plans {
        service_base.push(next_service);
        next_service += plan.groups.len() as u32;
    }
    let mut standing_per_service = vec![0usize; next_service as usize];

    stage.finish();
    let stage = gen_span.child("specs");

    // 3. Materialize VM specs.
    let mut report = GenerationReport::default();
    let mut specs: Vec<VmSpec> = Vec::new();
    let mut standing_rng = factory.stream("standing");
    for (idx, plan) in plans.iter().enumerate() {
        let profile = cloud_profile(config, plan.cloud);
        for (region, &count) in plan.regions.iter().zip(&plan.standing_per_region) {
            for _ in 0..count {
                let lead = standing_rng.random_range(1..=MAX_STANDING_LEAD_MINUTES);
                let survives = standing_rng.random::<f64>() < profile.standing_fraction;
                let ended = if survives {
                    None
                } else {
                    Some(SimTime::from_minutes(
                        standing_rng.random_range(0..MINUTES_PER_WEEK),
                    ))
                };
                let group = standing_rng.random_range(0..plan.groups.len());
                standing_per_service[(service_base[idx] + group as u32) as usize] += 1;
                specs.push(VmSpec {
                    subscription: idx,
                    group,
                    region: *region,
                    created: SimTime::from_minutes(-lead),
                    ended,
                    priority: Priority::OnDemand,
                    kind: SpecKind::Standing,
                });
                report.standing_vms += 1;
            }
        }
    }

    churn_specs(
        config,
        &plans,
        &region_ids,
        &tz_of,
        factory,
        &mut specs,
        &mut report,
    );

    // Sort churn after standing, by creation time, keeping standing
    // first (they are placed before the week starts).
    specs.sort_by_key(|s| (s.kind != SpecKind::Standing, s.created));

    // 3b. Pre-draw every VM's size from the dedicated stream, in spec
    // order. The serial loop drew these inline between placements; the
    // stream is placement-independent, so drawing up front consumes the
    // identical sequence while freeing the drive to run per region.
    let size_samplers = [
        SizeSampler::new(config.private.size),
        SizeSampler::new(config.public.size),
    ];
    let mut size_rng = factory.stream("sizes");
    let sizes: Vec<VmSize> = specs
        .iter()
        .map(|spec| {
            size_samplers[fleet_index(plans[spec.subscription].cloud)].sample(&mut size_rng)
        })
        .collect();

    stage.finish();

    Prepared {
        topology,
        region_ids,
        tz_of,
        plans,
        service_base,
        next_service,
        standing_per_service,
        specs,
        sizes,
        report,
    }
}

/// How [`generate_with_partition`] splits the placement drive into
/// parallel tasks. Every mode emits byte-identical traces — the modes
/// trade fan-out width against partition/merge overhead, nothing else —
/// so the non-default modes double as oracles for the default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionMode {
    /// Pick per run: [`PartitionMode::Serial`] at one worker or below
    /// [`SERIAL_DRIVE_SPEC_THRESHOLD`] specs, else
    /// [`PartitionMode::ClusterGroup`].
    #[default]
    Auto,
    /// One whole-trace serial drive on the indexed allocators and
    /// calendar queue — no partition, no merge. (Distinct from
    /// [`crate::reference::generate_serial_reference`], which also
    /// reverts to scan-mode allocators and the heap queue.)
    Serial,
    /// One task per region, both clouds driven together — the original
    /// scale-out granularity, kept as an oracle for
    /// [`PartitionMode::ClusterGroup`].
    Region,
    /// One task per *(region, cloud)* cluster group — the finest
    /// granularity at which placements stay independent, since
    /// cross-cluster fallback never leaves one region's clusters of one
    /// cloud. On single-cluster-per-cloud topologies this is literal
    /// cluster granularity.
    ClusterGroup,
}

/// Below this many specs [`PartitionMode::Auto`] drives the whole trace
/// serially: partitioning, per-task fleet construction, and the merge
/// cost more than they recover on traces this small (the small-config
/// parallel path used to lose ~6% to the serial reference end to end).
pub(crate) const SERIAL_DRIVE_SPEC_THRESHOLD: usize = 10_000;

/// The partition [`PartitionMode::Auto`] resolves to for a drive of
/// `spec_count` specs on `workers` workers.
pub(crate) const fn resolve_auto(spec_count: usize, workers: usize) -> PartitionMode {
    if workers <= 1 || spec_count < SERIAL_DRIVE_SPEC_THRESHOLD {
        PartitionMode::Serial
    } else {
        PartitionMode::ClusterGroup
    }
}

/// One drive task: a cluster group's (or, in region-oracle mode, a whole
/// region's) specs in global spec order, with their pre-drawn sizes.
struct DriveTask {
    region: RegionId,
    /// `Some(cloud)` drives that cloud's cluster group only;
    /// `None` drives both clouds' region fleets together
    /// ([`PartitionMode::Region`]).
    cloud: Option<CloudKind>,
    specs: Vec<(VmSpec, VmSize)>,
}

/// What one task's drive produced: for every spec of the task (in task
/// order), either a materialized record or `None` (standing placement
/// failure), plus allocator counters split by cloud.
struct TaskOutcome {
    outcomes: Vec<Option<VmRecord>>,
    dropped_standing: u64,
    stats: [AllocatorStats; 2],
}

/// The placement drive shared by every granularity: standing placements
/// in spec order, then the churn/release simulation over the calendar
/// queue. `slot_of` routes a cloud to its index in `fleets` — identity
/// for whole-trace and region drives, constant `0` for single-cloud
/// cluster-group drives.
///
/// Returns the materialized records (with provisional drive-local ids),
/// each spec's index into them (`None` for standing placement
/// failures), and the standing drop count. In a whole-trace drive the
/// provisional ids are already final: position among materialized
/// records in global spec order.
fn drive_specs(
    specs: &[(VmSpec, VmSize)],
    fleets: &mut [Fleet],
    slot_of: impl Fn(CloudKind) -> usize,
    prep: &Prepared,
) -> (Vec<VmRecord>, Vec<Option<u32>>, u64) {
    let mut records: Vec<VmRecord> = Vec::with_capacity(specs.len());
    let mut placed: Vec<Option<u32>> = Vec::with_capacity(specs.len());
    let mut dropped_standing = 0u64;
    let mut sim: Simulation<Event> = Simulation::with_capacity(specs.len());

    for (spec, size) in specs {
        let plan = &prep.plans[spec.subscription];
        let fleet_idx = slot_of(plan.cloud);
        let request = PlacementRequest {
            vm: VmId::new(records.len() as u64),
            size: *size,
            service: ServiceId::new(prep.service_base[spec.subscription] + spec.group as u32),
            priority: spec.priority,
        };
        match spec.kind {
            SpecKind::Standing => match fleets[fleet_idx].place_in_region(spec.region, request) {
                Ok((cluster, node)) => {
                    if let Some(end) = spec.ended {
                        sim.schedule(end, Event::Release(request.vm));
                    }
                    records.push(make_record(request, spec, plan, cluster, Some(node)));
                    placed.push(Some(records.len() as u32 - 1));
                }
                Err(_) => {
                    dropped_standing += 1;
                    placed.push(None);
                }
            },
            SpecKind::Churn | SpecKind::Burst => {
                // Materialize the record now; the DES will place it.
                records.push(make_record(
                    request,
                    spec,
                    plan,
                    ClusterId::new(u32::MAX),
                    None,
                ));
                sim.schedule(spec.created, Event::Create(records.len() - 1));
                placed.push(Some(records.len() as u32 - 1));
            }
        }
    }

    let week_end = SimTime::WEEK_END;
    {
        let records_ref = &mut records;
        let plans_ref = &prep.plans;
        sim.run(week_end, |scheduler, time, event| match event {
            Event::Create(record_idx) => {
                let record = &mut records_ref[record_idx];
                let plan = &plans_ref[record.subscription.as_usize()];
                let fleet_idx = slot_of(plan.cloud);
                let request = PlacementRequest {
                    vm: record.id,
                    size: record.size,
                    service: record.service,
                    priority: record.priority,
                };
                match fleets[fleet_idx].place_in_region(record.region, request) {
                    Ok((cluster, node)) => {
                        record.cluster = cluster;
                        record.node = Some(node);
                        if let Some(end) = record.ended {
                            if end < week_end {
                                scheduler.schedule(end.max(time), Event::Release(record.id));
                            }
                        }
                    }
                    Err(_) => {
                        // Placement failed: the VM never ran.
                        record.node = None;
                    }
                }
            }
            Event::Release(vm) => {
                let record = &records_ref[vm.as_usize()];
                let plan = &plans_ref[record.subscription.as_usize()];
                let _ = fleets[slot_of(plan.cloud)].release(vm);
            }
        });
    }

    (records, placed, dropped_standing)
}

/// Drives one partition task: builds the task's fleet(s) and replays its
/// specs — exactly the serial loop restricted to this task's specs and
/// clusters. Local record identities are provisional (they key the
/// fleet's hash maps and route Release events) and are re-assigned at
/// merge, so they carry no cross-task information.
fn drive_task(task: &DriveTask, prep: &Prepared) -> TaskOutcome {
    let spreading = spreading_rule();
    let mut fleets: Vec<Fleet> = match task.cloud {
        Some(cloud) => vec![Fleet::for_region(
            &prep.topology,
            cloud,
            task.region,
            PlacementPolicy::BestFit,
            spreading,
        )],
        None => [CloudKind::Private, CloudKind::Public]
            .into_iter()
            .map(|cloud| {
                Fleet::for_region(
                    &prep.topology,
                    cloud,
                    task.region,
                    PlacementPolicy::BestFit,
                    spreading,
                )
            })
            .collect(),
    };
    let single_cloud = task.cloud.is_some();
    let slot_of = |cloud: CloudKind| if single_cloud { 0 } else { fleet_index(cloud) };
    let (records, placed, dropped_standing) = drive_specs(&task.specs, &mut fleets, slot_of, prep);

    let mut stats = [AllocatorStats::default(), AllocatorStats::default()];
    for fleet in &fleets {
        stats[fleet_index(fleet.cloud())].absorb(&fleet.stats());
    }
    let mut slots: Vec<Option<VmRecord>> = records.into_iter().map(Some).collect();
    TaskOutcome {
        outcomes: placed
            .iter()
            .map(|local| {
                local.map(|i| slots[i as usize].take().expect("each record consumed once"))
            })
            .collect(),
        dropped_standing,
        stats,
    }
}

/// The routing pre-pass: assigns every spec its drive task from
/// deterministic, placement-independent inputs (the spec's region and,
/// at cluster-group granularity, its plan's cloud) — the part of the
/// old per-region drive that coupled partitioning to regions, hoisted
/// out so the drive can fan out wider.
///
/// Returns the tasks (ascending region, private before public) and, for
/// every global spec index, its `(task, position-within-task)` locator —
/// what the merge uses to reassemble outcomes in global spec order.
fn partition_specs(prep: &Prepared, mode: PartitionMode) -> (Vec<DriveTask>, Vec<(u32, u32)>) {
    let per_region = match mode {
        PartitionMode::Region => 1,
        PartitionMode::ClusterGroup => 2,
        PartitionMode::Auto | PartitionMode::Serial => {
            unreachable!("serial drives are not partitioned")
        }
    };
    let buckets_len = prep.region_ids.len() * per_region;
    let mut buckets: Vec<Vec<(VmSpec, VmSize)>> = vec![Vec::new(); buckets_len];
    let mut locator: Vec<(u32, u32)> = Vec::with_capacity(prep.specs.len());
    for (spec, &size) in prep.specs.iter().zip(&prep.sizes) {
        let cloud_slot = if per_region == 2 {
            fleet_index(prep.plans[spec.subscription].cloud)
        } else {
            0
        };
        let key = spec.region.as_usize() * per_region + cloud_slot;
        locator.push((key as u32, buckets[key].len() as u32));
        buckets[key].push((*spec, size));
    }

    // Compact away empty groups, remapping locator keys to task indices.
    let mut task_of_bucket = vec![u32::MAX; buckets_len];
    let mut tasks = Vec::new();
    for (key, specs) in buckets.into_iter().enumerate() {
        if specs.is_empty() {
            continue;
        }
        task_of_bucket[key] = tasks.len() as u32;
        tasks.push(DriveTask {
            region: prep.region_ids[key / per_region],
            cloud: (per_region == 2).then(|| {
                if key % per_region == 0 {
                    CloudKind::Private
                } else {
                    CloudKind::Public
                }
            }),
            specs,
        });
    }
    for loc in &mut locator {
        loc.0 = task_of_bucket[loc.0 as usize];
    }
    (tasks, locator)
}

/// The parallel merge: re-assembles per-task outcomes into the final
/// record list in global spec order, assigning each materialized record
/// the id the serial loop would have used (its rank among materialized
/// records; standing placement failures consume no id).
///
/// Two chunked passes over the global spec index replace the old serial
/// scatter-then-renumber: workers count materialized specs per chunk, a
/// (tiny) serial scan turns the counts into per-chunk id bases, then
/// workers emit each chunk's records concurrently with final ids and the
/// ordered chunks concatenate into an exactly-sized output.
fn merge_outcomes(
    locator: &[(u32, u32)],
    outcomes: &[TaskOutcome],
    par: Parallelism,
) -> Vec<VmRecord> {
    let record_of = |global: usize| -> Option<&VmRecord> {
        let (task, local) = locator[global];
        outcomes[task as usize].outcomes[local as usize].as_ref()
    };
    let chunk_size = locator
        .len()
        .div_ceil(par.workers().max(1) * MERGE_CHUNKS_PER_WORKER)
        .max(1);
    let ranges: Vec<std::ops::Range<usize>> = (0..locator.len().div_ceil(chunk_size))
        .map(|i| i * chunk_size..((i + 1) * chunk_size).min(locator.len()))
        .collect();

    let counts = par.par_map(&ranges, |range| {
        range.clone().filter(|&g| record_of(g).is_some()).count()
    });
    let mut total = 0usize;
    let chunks: Vec<(std::ops::Range<usize>, usize, usize)> = ranges
        .into_iter()
        .zip(counts)
        .map(|(range, count)| {
            let base = total;
            total += count;
            (range, base, count)
        })
        .collect();

    let parts = par.par_map(&chunks, |(range, base, count)| {
        let mut out = Vec::with_capacity(*count);
        let mut id = *base as u64;
        for global in range.clone() {
            if let Some(record) = record_of(global) {
                let mut record = record.clone();
                record.id = VmId::new(id);
                id += 1;
                out.push(record);
            }
        }
        out
    });
    let mut records = Vec::with_capacity(total);
    for part in parts {
        records.extend(part);
    }
    records
}

/// Merge chunking: a few chunks per worker so stragglers rebalance.
const MERGE_CHUNKS_PER_WORKER: usize = 4;

/// Generates a full synthetic trace from a configuration, using the
/// shared executor's auto-detected worker count (`CLOUDSCOPE_WORKERS`
/// overrides) for the region drive and the telemetry sweep.
///
/// Deterministic in `config.seed`: the same configuration always yields
/// the same trace, regardless of thread scheduling or worker count.
///
/// # Panics
/// Panics if the configuration is invalid; call
/// [`GeneratorConfig::validate`] first to get a typed
/// [`crate::ConfigError`] instead.
#[must_use]
pub fn generate(config: &GeneratorConfig) -> GeneratedTrace {
    generate_with(config, Parallelism::auto())
}

/// [`generate`] with an explicit parallelism configuration. Output is
/// byte-identical for every worker count.
///
/// # Panics
/// Panics if the configuration is invalid.
#[must_use]
pub fn generate_with(config: &GeneratorConfig, par: Parallelism) -> GeneratedTrace {
    generate_with_partition(config, par, PartitionMode::Auto)
}

/// [`generate_with`] with an explicit drive partition. Output is
/// byte-identical for every mode and worker count — the non-default
/// modes exist for the oracle tests and for profiling the partition
/// machinery itself.
///
/// # Panics
/// Panics if the configuration is invalid.
#[must_use]
pub fn generate_with_partition(
    config: &GeneratorConfig,
    par: Parallelism,
    mode: PartitionMode,
) -> GeneratedTrace {
    if let Err(e) = config.validate() {
        panic!("{e}");
    }
    let factory = RngFactory::new(config.seed);
    let gen_span = cloudscope_obs::span("tracegen.generate");
    let inputs = drive_all(config, &factory, &gen_span, par, mode);
    finish(config, &factory, &gen_span, par, inputs)
}

/// Phases 1–4b (prepare, placement, merge): everything up to — but
/// not including — telemetry and assembly. Shared by
/// [`generate_with_partition`] and the streaming
/// [`crate::store_io::generate_to_store`] path, which swaps the
/// in-memory assemble for a chunked write-out.
pub(crate) fn drive_all(
    config: &GeneratorConfig,
    factory: &RngFactory,
    gen_span: &cloudscope_obs::Span,
    par: Parallelism,
    mode: PartitionMode,
) -> FinishInputs {
    let phase_start = std::time::Instant::now();
    let prep = prepare(config, factory, gen_span);
    record_phase("tracegen.generate.phase_prepare_ns", phase_start);

    let mode = match mode {
        PartitionMode::Auto => resolve_auto(prep.specs.len(), par.workers()),
        forced => forced,
    };

    let stage = gen_span.child("placement");
    let phase_start = std::time::Instant::now();
    let mut region_seen = vec![false; prep.region_ids.len()];
    for spec in &prep.specs {
        region_seen[spec.region.as_usize()] = true;
    }
    cloudscope_obs::counter("tracegen.generate.regions_driven")
        .add(region_seen.iter().filter(|&&seen| seen).count() as u64);

    // 4. Placement. Either one whole-trace serial drive, or the routing
    // pre-pass followed by the parallel per-task drive.
    enum Driven {
        Serial {
            records: Vec<VmRecord>,
            dropped_standing: u64,
            stats: [AllocatorStats; 2],
        },
        Tasks {
            outcomes: Vec<TaskOutcome>,
            locator: Vec<(u32, u32)>,
        },
    }
    let driven = if mode == PartitionMode::Serial {
        let spreading = spreading_rule();
        let mut fleets: Vec<Fleet> = [CloudKind::Private, CloudKind::Public]
            .into_iter()
            .map(|cloud| Fleet::new(&prep.topology, cloud, PlacementPolicy::BestFit, spreading))
            .collect();
        let specs_sized: Vec<(VmSpec, VmSize)> = prep
            .specs
            .iter()
            .zip(&prep.sizes)
            .map(|(spec, &size)| (*spec, size))
            .collect();
        let (records, _placed, dropped_standing) =
            drive_specs(&specs_sized, &mut fleets, fleet_index, &prep);
        cloudscope_obs::counter("tracegen.generate.tasks_driven").add(1);
        cloudscope_obs::gauge("tracegen.generate.region_workers").set(1.0);
        Driven::Serial {
            records,
            dropped_standing,
            stats: [fleets[0].stats(), fleets[1].stats()],
        }
    } else {
        let (tasks, locator) = partition_specs(&prep, mode);
        cloudscope_obs::counter("tracegen.generate.tasks_driven").add(tasks.len() as u64);
        cloudscope_obs::gauge("tracegen.generate.region_workers").set(par.workers() as f64);
        let outcomes = par.par_map(&tasks, |task| drive_task(task, &prep));
        Driven::Tasks { outcomes, locator }
    };
    stage.finish();
    record_phase("tracegen.generate.phase_placement_ns", phase_start);

    let stage = gen_span.child("merge");
    let phase_start = std::time::Instant::now();
    let Prepared {
        topology,
        tz_of,
        plans,
        service_base,
        next_service,
        standing_per_service,
        mut report,
        ..
    } = prep;
    // 4b. Merge. A serial drive already produced final ids; the parallel
    // drive reassembles per-task outcomes over the global spec order.
    let records = match driven {
        Driven::Serial {
            records,
            dropped_standing,
            stats,
        } => {
            report.dropped_vms += dropped_standing;
            [report.private_alloc, report.public_alloc] = stats;
            records
        }
        Driven::Tasks { outcomes, locator } => {
            let mut stats = [AllocatorStats::default(), AllocatorStats::default()];
            for outcome in &outcomes {
                report.dropped_vms += outcome.dropped_standing;
                stats[0].absorb(&outcome.stats[0]);
                stats[1].absorb(&outcome.stats[1]);
            }
            [report.private_alloc, report.public_alloc] = stats;
            merge_outcomes(&locator, &outcomes, par)
        }
    };
    cloudscope_obs::counter("tracegen.generate.merged_records").add(records.len() as u64);
    stage.finish();
    record_phase("tracegen.generate.phase_merge_ns", phase_start);

    FinishInputs {
        topology,
        tz_of,
        plans,
        service_base,
        next_service,
        standing_per_service,
        records,
        report,
    }
}

/// Records one generation phase's wall-clock as a last-run gauge (in
/// nanoseconds) — the per-phase breakdown benches and profiling read
/// without histogram-bucket math.
fn record_phase(metric: &str, started: std::time::Instant) {
    cloudscope_obs::gauge(metric).set(started.elapsed().as_nanos() as f64);
}

/// Everything the shared telemetry + assemble phases consume.
pub(crate) struct FinishInputs {
    pub(crate) topology: Topology,
    pub(crate) tz_of: Vec<i32>,
    pub(crate) plans: Vec<SubscriptionPlan>,
    pub(crate) service_base: Vec<u32>,
    pub(crate) next_service: u32,
    pub(crate) standing_per_service: Vec<usize>,
    /// Placement outcomes with final pre-assemble ids (dense over
    /// materialized records in global spec order).
    pub(crate) records: Vec<VmRecord>,
    pub(crate) report: GenerationReport,
}

/// Phases 5–6: per-VM telemetry and trace assembly, shared by the
/// parallel and serial-reference paths.
pub(crate) fn finish(
    config: &GeneratorConfig,
    factory: &RngFactory,
    gen_span: &cloudscope_obs::Span,
    par: Parallelism,
    inputs: FinishInputs,
) -> GeneratedTrace {
    let FinishInputs {
        topology,
        tz_of,
        plans,
        service_base,
        next_service,
        standing_per_service,
        records,
        mut report,
    } = inputs;
    let stage = gen_span.child("telemetry");
    let phase_start = std::time::Instant::now();

    // 5. Telemetry (deterministic per-VM streams, so order is free).
    // Parallel sweep on the shared executor; per-VM RNG streams keep
    // results independent of the worker count.
    let telemetry: Vec<Option<UtilSeries>> = if config.telemetry {
        par.par_map(&records, |record| {
            vm_telemetry(record, &plans, &service_base, &tz_of, factory)
        })
    } else {
        vec![None; records.len()]
    };

    stage.finish();
    record_phase("tracegen.generate.phase_telemetry_ns", phase_start);
    let stage = gen_span.child("assemble");
    let phase_start = std::time::Instant::now();
    let samples_generated: u64 = telemetry.iter().flatten().map(|s| s.len() as u64).sum();

    // 6. Assemble the trace.
    let mut builder = Trace::builder(topology);
    for (idx, plan) in plans.iter().enumerate() {
        builder
            .add_subscription(Subscription::new(
                SubscriptionId::new(idx as u32),
                plan.cloud,
                plan.party,
            ))
            .expect("dense subscription ids");
    }
    // Unplaced churn VMs are dropped (the platform never ran them), and
    // the survivors renumbered so VmIds stay dense in the trace — a
    // cheap serial move pass. The builder then validates the batch and
    // builds its four secondary indices on the worker pool, with
    // serial-identical insertion order.
    let mut kept_records = Vec::with_capacity(records.len());
    let mut kept_util = Vec::with_capacity(records.len());
    for (mut record, util) in records.into_iter().zip(telemetry) {
        if record.node.is_none() && record.cluster.index() == u32::MAX {
            report.dropped_vms += 1;
            continue;
        }
        record.id = VmId::new(kept_records.len() as u64);
        kept_records.push(record);
        kept_util.push(util);
    }
    let next_id = kept_records.len() as u64;
    builder
        .add_vms_bulk(kept_records, kept_util, &par)
        .expect("consistent records");

    let services = build_services(&plans, &service_base, &standing_per_service, next_service);

    stage.finish();
    record_phase("tracegen.generate.phase_assemble_ns", phase_start);
    cloudscope_obs::counter("tracegen.generate.vms_generated").add(next_id);
    cloudscope_obs::counter("tracegen.generate.samples_generated").add(samples_generated);

    GeneratedTrace {
        trace: builder.build(),
        services,
        report,
    }
}

/// The telemetry series one placed record carries. The RNG stream is
/// keyed by the record's *pre-renumber* id — its position among
/// materialized records in global spec order — which is exactly the
/// stream the serial reference drew from, so the streamed and
/// in-memory paths produce identical samples.
pub(crate) fn vm_telemetry(
    record: &VmRecord,
    plans: &[SubscriptionPlan],
    service_base: &[u32],
    tz_of: &[i32],
    factory: &RngFactory,
) -> Option<UtilSeries> {
    record.node?;
    let plan = &plans[record.subscription.as_usize()];
    let group = (record.service.index() - service_base[record.subscription.as_usize()]) as usize;
    let first_sample =
        (record.created.minutes().max(0) + SAMPLE_INTERVAL_MINUTES - 1) / SAMPLE_INTERVAL_MINUTES;
    let end_minute = record
        .ended
        .map_or(MINUTES_PER_WEEK, |e| e.minutes().min(MINUTES_PER_WEEK));
    let end_sample = end_minute / SAMPLE_INTERVAL_MINUTES;
    let samples = end_sample - first_sample;
    if samples < 2 {
        return None;
    }
    let mut rng = factory.indexed_stream("telemetry", record.id.index());
    Some(generate_vm_series(
        &plan.groups[group],
        tz_of[record.region.as_usize()],
        SimTime::from_minutes(first_sample * SAMPLE_INTERVAL_MINUTES),
        samples as usize,
        &mut rng,
    ))
}

/// The ground-truth service directory, dense by [`ServiceId`] index.
pub(crate) fn build_services(
    plans: &[SubscriptionPlan],
    service_base: &[u32],
    standing_per_service: &[usize],
    next_service: u32,
) -> Vec<ServiceInfo> {
    let mut services = Vec::with_capacity(next_service as usize);
    for (idx, plan) in plans.iter().enumerate() {
        for (group, profile) in plan.groups.iter().enumerate() {
            let sid = service_base[idx] + group as u32;
            services.push(ServiceInfo {
                service: ServiceId::new(sid),
                subscription: SubscriptionId::new(idx as u32),
                cloud: plan.cloud,
                profile: *profile,
                regions: plan.regions.clone(),
                standing_vms: standing_per_service[sid as usize],
            });
        }
    }
    services
}

pub(crate) fn fleet_index(cloud: CloudKind) -> usize {
    match cloud {
        CloudKind::Private => 0,
        CloudKind::Public => 1,
    }
}

fn cloud_profile(config: &GeneratorConfig, cloud: CloudKind) -> &crate::config::CloudProfile {
    match cloud {
        CloudKind::Private => &config.private,
        CloudKind::Public => &config.public,
    }
}

pub(crate) fn make_record(
    request: PlacementRequest,
    spec: &VmSpec,
    plan: &SubscriptionPlan,
    cluster: ClusterId,
    node: Option<NodeId>,
) -> VmRecord {
    VmRecord {
        id: request.vm,
        subscription: SubscriptionId::new(spec.subscription as u32),
        service: request.service,
        size: request.size,
        priority: request.priority,
        service_model: service_model_for(&plan.groups[spec.group]),
        region: spec.region,
        cluster,
        node,
        created: spec.created,
        ended: spec.ended,
    }
}

/// Service model, derived deterministically from the group's profile:
/// SaaS for user-facing diurnal/hourly services, PaaS for stable
/// backends, IaaS otherwise.
fn service_model_for(profile: &ServiceUtilProfile) -> ServiceModel {
    match profile.kind {
        PatternKind::Diurnal | PatternKind::HourlyPeak => ServiceModel::Saas,
        PatternKind::Stable => ServiceModel::Paas,
        PatternKind::Irregular => ServiceModel::Iaas,
    }
}

/// Generates churn and burst VM specs for both clouds.
fn churn_specs(
    config: &GeneratorConfig,
    plans: &[SubscriptionPlan],
    region_ids: &[RegionId],
    tz_of: &[i32],
    factory: &RngFactory,
    specs: &mut Vec<VmSpec>,
    report: &mut GenerationReport,
) {
    for cloud in CloudKind::BOTH {
        let profile = cloud_profile(config, cloud);
        let lifetimes = LifetimeSampler::new(&profile.lifetime);
        let burst_lifetime = LogNormal::from_median(5.0 * 60.0, 0.6).expect("valid burst lifetime");
        let mut rng = factory.stream(&format!("churn/{cloud}"));

        // Subscriptions by region (indices into `plans`).
        let mut by_region: Vec<Vec<usize>> = vec![Vec::new(); region_ids.len()];
        for (idx, plan) in plans.iter().enumerate() {
            if plan.cloud == cloud {
                for r in &plan.regions {
                    by_region[r.as_usize()].push(idx);
                }
            }
        }

        for (region_idx, &region) in region_ids.iter().enumerate() {
            let members = &by_region[region_idx];
            if members.is_empty() {
                continue;
            }
            let tz = tz_of[region_idx];
            let churn_weights: Vec<f64> = members.iter().map(|&i| plans[i].churn_weight).collect();
            let churn_pick = Categorical::new(&churn_weights).expect("positive weights");

            // Regular (possibly diurnal) churn.
            for created in sample_nhpp_week(&mut rng, &profile.arrival, tz) {
                let sub = members[churn_pick.sample_index(&mut rng)];
                let group = rng.random_range(0..plans[sub].groups.len());
                let autoscale = rng.random::<f64>() < profile.autoscale_fraction;
                let ended = if autoscale {
                    Some(autoscale_end(created, tz, &mut rng))
                } else {
                    Some(created + lifetimes.sample(&mut rng))
                };
                let spot = rng.random::<f64>() < profile.spot_fraction;
                specs.push(VmSpec {
                    subscription: sub,
                    group,
                    region,
                    created,
                    ended,
                    priority: if spot {
                        Priority::Spot
                    } else {
                        Priority::OnDemand
                    },
                    kind: SpecKind::Churn,
                });
                report.churn_vms += 1;
            }

            // Deployment bursts (private-cloud spikes).
            let burst_weights: Vec<f64> = members
                .iter()
                .map(|&i| {
                    let s = plans[i].standing_total() as f64;
                    s * s
                })
                .collect();
            if burst_weights.iter().sum::<f64>() <= 0.0 {
                continue;
            }
            let burst_pick = Categorical::new(&burst_weights).expect("positive weights");
            for burst in sample_bursts_week(&mut rng, &profile.arrival, tz) {
                let sub = members[burst_pick.sample_index(&mut rng)];
                let group = rng.random_range(0..plans[sub].groups.len());
                for _ in 0..burst.size {
                    let life = burst_lifetime.sample(&mut rng).max(30.0) as i64;
                    specs.push(VmSpec {
                        subscription: sub,
                        group,
                        region,
                        created: burst.at,
                        ended: Some(burst.at + SimDuration::from_minutes(life)),
                        priority: Priority::OnDemand,
                        kind: SpecKind::Burst,
                    });
                    report.burst_vms += 1;
                }
            }
        }
    }
}

/// End time for an auto-scaled VM: around 19:00 local on its creation
/// day (or a short life if created in the evening).
fn autoscale_end<R: Rng + ?Sized>(created: SimTime, tz: i32, rng: &mut R) -> SimTime {
    let local = created.to_local(tz);
    let evening = i64::from(19 * 60) + rng.random_range(-45..45);
    let remaining = evening - i64::from(local.minute_of_day());
    if remaining > 30 {
        created + SimDuration::from_minutes(remaining)
    } else {
        created + SimDuration::from_minutes(rng.random_range(20..60))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GeneratorConfig;

    fn small_trace(seed: u64) -> GeneratedTrace {
        generate(&GeneratorConfig::small(seed))
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_trace(7);
        let b = small_trace(7);
        assert_eq!(a.trace.stats(), b.trace.stats());
        assert_eq!(a.report, b.report);
        let vm = VmId::new(3);
        assert_eq!(a.trace.vm(vm).unwrap(), b.trace.vm(vm).unwrap());
        assert_eq!(a.trace.util(vm), b.trace.util(vm));
    }

    #[test]
    fn different_seeds_differ() {
        let a = small_trace(1);
        let b = small_trace(2);
        assert_ne!(a.trace.stats(), b.trace.stats());
    }

    #[test]
    fn both_clouds_populated() {
        let g = small_trace(3);
        let stats = g.trace.stats();
        assert!(stats.private_vms > 100, "{stats:?}");
        assert!(stats.public_vms > 100, "{stats:?}");
        assert!(stats.private_subscriptions > 0);
        assert!(stats.public_subscriptions > stats.private_subscriptions);
        assert!(stats.vms_with_telemetry > 0);
    }

    #[test]
    fn records_reference_valid_entities() {
        let g = small_trace(4);
        for vm in g.trace.vms() {
            let cluster = g.trace.topology().cluster(vm.cluster).expect("cluster");
            assert_eq!(cluster.region, vm.region);
            let sub = g.trace.subscription(vm.subscription).expect("subscription");
            assert_eq!(sub.cloud, cluster.cloud);
            if let Some(node) = vm.node {
                assert_eq!(g.trace.topology().node(node).unwrap().cluster, vm.cluster);
            }
            if let Some(end) = vm.ended {
                assert!(end >= vm.created);
            }
        }
    }

    #[test]
    fn telemetry_spans_alive_window() {
        let g = small_trace(5);
        let mut checked = 0;
        for vm in g.trace.vms() {
            if let Some(series) = g.trace.util(vm.id) {
                assert!(series.start().minutes() >= 0);
                assert!(series.start() >= vm.created);
                let last = series.time_at(series.len() - 1);
                assert!(last < SimTime::WEEK_END);
                if let Some(end) = vm.ended {
                    assert!(last < end.max(SimTime::ZERO) || end > SimTime::WEEK_END);
                }
                checked += 1;
            }
        }
        assert!(checked > 100);
    }

    #[test]
    fn report_counts_are_consistent() {
        let g = small_trace(6);
        let total_specs = g.report.standing_vms + g.report.churn_vms + g.report.burst_vms;
        assert_eq!(
            g.trace.vms().len() as u64 + g.report.dropped_vms,
            total_specs
        );
        assert!(g.report.burst_vms > 0, "private bursts expected");
        assert!(
            g.report.private_alloc.successes + g.report.public_alloc.successes
                >= g.trace.vms().iter().filter(|v| v.node.is_some()).count() as u64
        );
    }

    #[test]
    fn flagship_service_exists_and_is_private_agnostic() {
        // Flagship needs >=3 regions; use a seed-stable small config.
        let g = small_trace(8);
        if let Some(svc) = g.flagship_service() {
            assert_eq!(svc.cloud, CloudKind::Private);
            assert!(svc.profile.region_agnostic);
            assert!(svc.regions.len() >= 3);
        }
    }

    #[test]
    fn telemetry_can_be_disabled() {
        let mut cfg = GeneratorConfig::small(9);
        cfg.telemetry = false;
        let g = generate(&cfg);
        assert_eq!(g.trace.stats().vms_with_telemetry, 0);
        assert!(!g.trace.vms().is_empty());
    }

    #[test]
    fn spot_vms_only_where_configured() {
        let g = small_trace(10);
        let spot_public = g
            .trace
            .vms_of(CloudKind::Public)
            .filter(|v| v.priority == Priority::Spot)
            .count();
        assert!(spot_public > 0, "public cloud should have spot VMs");
    }

    /// Worker-count and partition-granularity invariance at the unit
    /// level: every forced mode at every worker count must agree exactly
    /// with the serial drive (the integration digest test locks the same
    /// property against the golden bytes). Modes are forced because the
    /// small config would otherwise short-circuit to
    /// [`PartitionMode::Serial`] under Auto and test nothing.
    #[test]
    fn generate_with_is_worker_count_invariant() {
        let cfg = GeneratorConfig::small(11);
        let base =
            generate_with_partition(&cfg, Parallelism::with_workers(1), PartitionMode::Serial);
        for mode in [PartitionMode::Region, PartitionMode::ClusterGroup] {
            for workers in [1, 2, 4, 8] {
                let got = generate_with_partition(&cfg, Parallelism::with_workers(workers), mode);
                assert_eq!(
                    got.trace.stats(),
                    base.trace.stats(),
                    "{mode:?} workers={workers}"
                );
                assert_eq!(got.report, base.report, "{mode:?} workers={workers}");
            }
        }
    }

    /// Pins the Auto-mode heuristic: one worker or a small spec count
    /// short-circuits to the serial drive; everything else fans out at
    /// cluster-group granularity.
    #[test]
    fn auto_mode_resolution_pinned() {
        assert_eq!(resolve_auto(0, 8), PartitionMode::Serial);
        assert_eq!(
            resolve_auto(SERIAL_DRIVE_SPEC_THRESHOLD - 1, 8),
            PartitionMode::Serial
        );
        assert_eq!(
            resolve_auto(SERIAL_DRIVE_SPEC_THRESHOLD, 8),
            PartitionMode::ClusterGroup
        );
        assert_eq!(
            resolve_auto(SERIAL_DRIVE_SPEC_THRESHOLD * 10, 1),
            PartitionMode::Serial,
            "one worker never pays partition overhead"
        );
        assert_eq!(
            resolve_auto(SERIAL_DRIVE_SPEC_THRESHOLD, 2),
            PartitionMode::ClusterGroup
        );
    }

    /// Byte-identity across the serial-drive threshold: the small config
    /// sits below [`SERIAL_DRIVE_SPEC_THRESHOLD`] (asserted, so the test
    /// fails loudly if the config grows past it), meaning Auto takes the
    /// serial path — and the trace it emits must equal the forced
    /// parallel modes' output exactly.
    #[test]
    fn serial_short_circuit_is_byte_identical() {
        let cfg = GeneratorConfig::small(13);
        let par = Parallelism::with_workers(4);
        let auto = generate_with(&cfg, par);
        let spec_count = auto.report.standing_vms + auto.report.churn_vms + auto.report.burst_vms;
        assert!(
            (spec_count as usize) < SERIAL_DRIVE_SPEC_THRESHOLD,
            "small config grew past the serial threshold ({spec_count}); \
             this test no longer exercises the short-circuit"
        );
        for mode in [PartitionMode::Region, PartitionMode::ClusterGroup] {
            let forced = generate_with_partition(&cfg, par, mode);
            assert_eq!(auto.trace.stats(), forced.trace.stats(), "{mode:?}");
            assert_eq!(auto.report, forced.report, "{mode:?}");
            assert_eq!(auto.services, forced.services, "{mode:?}");
            assert_eq!(auto.trace.vms(), forced.trace.vms(), "{mode:?}");
        }
    }
}
