//! Value-generation strategies: ranges, tuples, mapping, `Just`, boxing,
//! and unions. Deterministic, shrink-free counterparts of proptest's.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Discards generated values that fail the predicate, retrying (up to
    /// an internal cap, then panicking).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Erases the strategy type, so differently shaped strategies of one
    /// value type can mix (e.g. in [`OneOf`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            generate: Box::new(move |rng| self.generate(rng)),
        }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates: {}", self.whence);
    }
}

/// A type-erased strategy; see [`Strategy::boxed`].
pub struct BoxedStrategy<V> {
    generate: Box<dyn Fn(&mut TestRng) -> V>,
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (self.generate)(rng)
    }
}

impl<V> std::fmt::Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// Uniform choice among boxed arms; built by `prop_oneof!`.
pub struct OneOf<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> OneOf<V> {
    /// Builds a union of arms.
    ///
    /// # Panics
    /// Panics if `arms` is empty.
    #[must_use]
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform `bool`; exposed as `prop::bool::ANY`.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = self.end.abs_diff(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = hi.abs_diff(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty strategy range");
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..2000 {
            let i = (3i32..7).generate(&mut rng);
            assert!((3..7).contains(&i));
            let f = (0.0f64..=1.0).generate(&mut rng);
            assert!((0.0..=1.0).contains(&f));
            let u = (0usize..=0).generate(&mut rng);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn map_just_and_oneof() {
        let mut rng = TestRng::for_test("combinators");
        let s = crate::prop_oneof![Just(None), (1u32..4).prop_map(Some)];
        let mut seen_none = false;
        let mut seen_some = false;
        for _ in 0..200 {
            match s.generate(&mut rng) {
                None => seen_none = true,
                Some(v) => {
                    assert!((1..4).contains(&v));
                    seen_some = true;
                }
            }
        }
        assert!(seen_none && seen_some);
    }

    #[test]
    fn filter_retries() {
        let mut rng = TestRng::for_test("filter");
        let s = (0u32..100).prop_filter("even", |v| v % 2 == 0);
        for _ in 0..100 {
            assert_eq!(s.generate(&mut rng) % 2, 0);
        }
    }
}
