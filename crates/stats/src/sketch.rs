//! Streaming quantile estimation with the P² algorithm (Jain & Chlamtac,
//! 1985): constant memory per tracked quantile, one pass — how production
//! telemetry pipelines track per-VM p95s without retaining samples.

use crate::error::StatsError;
use serde::{Deserialize, Serialize};

/// A P² estimator for one quantile.
///
/// Maintains five markers whose positions are nudged toward their ideal
/// (quantile-proportional) positions with parabolic interpolation.
///
/// # Examples
/// ```
/// # use cloudscope_stats::sketch::P2Quantile;
/// # fn main() -> Result<(), cloudscope_stats::error::StatsError> {
/// let mut sketch = P2Quantile::new(0.5)?;
/// for i in 0..1001 {
///     sketch.observe(f64::from(i));
/// }
/// let median = sketch.estimate().expect("enough samples");
/// assert!((median - 500.0).abs() < 25.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct P2Quantile {
    p: f64,
    // Marker heights.
    q: [f64; 5],
    // Marker positions (1-based counts).
    n: [f64; 5],
    // Desired positions.
    np: [f64; 5],
    // Desired-position increments.
    dn: [f64; 5],
    count: usize,
    initial: Vec<f64>,
}

impl P2Quantile {
    /// Creates an estimator for quantile `p` in `(0, 1)`.
    ///
    /// # Errors
    /// Returns [`StatsError::OutOfRange`] for `p` outside `(0, 1)`.
    pub fn new(p: f64) -> Result<Self, StatsError> {
        if !(0.0 < p && p < 1.0) {
            return Err(StatsError::OutOfRange("quantile must be in (0, 1)"));
        }
        Ok(Self {
            p,
            q: [0.0; 5],
            n: [1.0, 2.0, 3.0, 4.0, 5.0],
            np: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            dn: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            count: 0,
            initial: Vec::with_capacity(5),
        })
    }

    /// The tracked quantile level.
    #[must_use]
    pub const fn quantile_level(&self) -> f64 {
        self.p
    }

    /// Number of observations seen.
    #[must_use]
    pub const fn count(&self) -> usize {
        self.count
    }

    /// Feeds one observation. Non-finite values are ignored.
    pub fn observe(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        if self.initial.len() < 5 {
            self.initial.push(x);
            if self.initial.len() == 5 {
                self.initial
                    .sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                for (slot, &v) in self.q.iter_mut().zip(&self.initial) {
                    *slot = v;
                }
            }
            return;
        }

        // Locate the cell containing x and bump extreme markers.
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x >= self.q[4] {
            self.q[4] = x;
            3
        } else {
            let mut cell = 0;
            for i in 0..4 {
                if self.q[i] <= x && x < self.q[i + 1] {
                    cell = i;
                    break;
                }
            }
            cell
        };
        for i in (k + 1)..5 {
            self.n[i] += 1.0;
        }
        for i in 0..5 {
            self.np[i] += self.dn[i];
        }

        // Adjust interior markers toward their desired positions.
        for i in 1..4 {
            let d = self.np[i] - self.n[i];
            let step_up = self.n[i + 1] - self.n[i] > 1.0;
            let step_down = self.n[i - 1] - self.n[i] < -1.0;
            if (d >= 1.0 && step_up) || (d <= -1.0 && step_down) {
                let sign = d.signum();
                let parabolic = self.parabolic(i, sign);
                if self.q[i - 1] < parabolic && parabolic < self.q[i + 1] {
                    self.q[i] = parabolic;
                } else {
                    self.q[i] = self.linear(i, sign);
                }
                self.n[i] += sign;
            }
        }
    }

    fn parabolic(&self, i: usize, sign: f64) -> f64 {
        let (qm, qi, qp) = (self.q[i - 1], self.q[i], self.q[i + 1]);
        let (nm, ni, np_) = (self.n[i - 1], self.n[i], self.n[i + 1]);
        qi + sign / (np_ - nm)
            * ((ni - nm + sign) * (qp - qi) / (np_ - ni)
                + (np_ - ni - sign) * (qi - qm) / (ni - nm))
    }

    fn linear(&self, i: usize, sign: f64) -> f64 {
        let j = (i as f64 + sign) as usize;
        self.q[i] + sign * (self.q[j] - self.q[i]) / (self.n[j] - self.n[i])
    }

    /// Current estimate; `None` with fewer than 5 observations.
    #[must_use]
    pub fn estimate(&self) -> Option<f64> {
        match self.initial.len() {
            5 => Some(self.q[2]),
            0 => None,
            _ => {
                // Small-sample fallback: exact quantile of the buffer.
                let mut sorted = self.initial.clone();
                sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                let idx = ((sorted.len() as f64 - 1.0) * self.p).round() as usize;
                Some(sorted[idx])
            }
        }
    }
}

impl Extend<f64> for P2Quantile {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.observe(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{LogNormal, Sample, StdNormal};
    use crate::percentile::percentile;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn median_of_uniform_stream() {
        let mut sketch = P2Quantile::new(0.5).unwrap();
        // Deterministic shuffled-ish stream.
        for i in 0..10_000u64 {
            let v = (i.wrapping_mul(2654435761) % 10_000) as f64;
            sketch.observe(v);
        }
        let est = sketch.estimate().unwrap();
        assert!((est - 5000.0).abs() < 200.0, "median estimate {est}");
        assert_eq!(sketch.count(), 10_000);
    }

    #[test]
    fn p95_of_normal_stream() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut sketch = P2Quantile::new(0.95).unwrap();
        let data: Vec<f64> = (0..50_000).map(|_| StdNormal.sample(&mut rng)).collect();
        sketch.extend(data.iter().copied());
        let exact = percentile(&data, 95.0).unwrap();
        let est = sketch.estimate().unwrap();
        assert!((est - exact).abs() < 0.1, "est {est} vs exact {exact}");
    }

    #[test]
    fn heavy_tailed_stream() {
        let mut rng = StdRng::seed_from_u64(6);
        let dist = LogNormal::new(0.0, 1.0).unwrap();
        let mut sketch = P2Quantile::new(0.9).unwrap();
        let data: Vec<f64> = (0..50_000).map(|_| dist.sample(&mut rng)).collect();
        sketch.extend(data.iter().copied());
        let exact = percentile(&data, 90.0).unwrap();
        let est = sketch.estimate().unwrap();
        assert!(
            (est - exact).abs() / exact < 0.1,
            "est {est} vs exact {exact}"
        );
    }

    #[test]
    fn small_samples_fall_back_to_exact() {
        let mut sketch = P2Quantile::new(0.5).unwrap();
        assert!(sketch.estimate().is_none());
        sketch.observe(3.0);
        assert_eq!(sketch.estimate(), Some(3.0));
        sketch.observe(1.0);
        sketch.observe(2.0);
        let est = sketch.estimate().unwrap();
        assert!((1.0..=3.0).contains(&est));
    }

    #[test]
    fn non_finite_ignored() {
        let mut sketch = P2Quantile::new(0.5).unwrap();
        sketch.extend([1.0, f64::NAN, 2.0, f64::INFINITY, 3.0]);
        assert_eq!(sketch.count(), 3);
    }

    #[test]
    fn invalid_levels_rejected() {
        assert!(P2Quantile::new(0.0).is_err());
        assert!(P2Quantile::new(1.0).is_err());
        assert!(P2Quantile::new(-0.5).is_err());
    }

    #[test]
    fn estimate_stays_within_observed_range() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sketch = P2Quantile::new(0.75).unwrap();
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for _ in 0..5000 {
            let v = StdNormal.sample(&mut rng) * 10.0;
            lo = lo.min(v);
            hi = hi.max(v);
            sketch.observe(v);
        }
        let est = sketch.estimate().unwrap();
        assert!((lo..=hi).contains(&est));
    }
}
