//! The watermarked per-VM window state machine: offer → seal → close.

use cloudscope_analysis::{PatternClassifier, UtilizationPattern};
use cloudscope_faults::WireSample;
use cloudscope_model::prelude::*;
use cloudscope_model::telemetry::{quantize_percentage, MISSING_SAMPLE_BYTE};
use cloudscope_model::time::{
    MINUTES_PER_WEEK, SAMPLES_PER_DAY, SAMPLES_PER_WEEK, SAMPLE_INTERVAL_MINUTES,
};
use cloudscope_stats::sketch::P2Quantile;
use cloudscope_timeseries::acf::autocorrelation_masked;
use cloudscope_timeseries::Series;
use std::collections::{BTreeMap, BTreeSet};

/// Configuration of the ingestion service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestConfig {
    /// How far (in minutes) the low watermark trails the clock. A slot
    /// seals once the watermark has passed its entire 5-minute
    /// interval; samples arriving for a sealed slot are counted in
    /// `dropped_late`, never applied. 10 minutes absorbs the standard
    /// fault plan's worst case (±2 min clock skew plus one
    /// adjacent-swap reorder).
    pub watermark_delay_minutes: i64,
    /// Window length in minutes; classification re-runs every time the
    /// watermark crosses a multiple of it. Defaults to the trace week,
    /// so the final close sees exactly the batch classifier's input.
    pub window_minutes: i64,
}

impl Default for IngestConfig {
    fn default() -> Self {
        Self {
            watermark_delay_minutes: 2 * SAMPLE_INTERVAL_MINUTES,
            window_minutes: MINUTES_PER_WEEK,
        }
    }
}

/// Per-VM lane: the mutable buffer ahead of the watermark plus the
/// immutable sealed window state behind it.
#[derive(Debug)]
struct VmLane {
    /// Unsealed slots, quantized on arrival; last write wins.
    pending: BTreeMap<i64, u8>,
    /// Sealed (slot, quantized value) pairs, ascending. Sealing is
    /// monotone, so this vector only ever appends.
    sealed: Vec<(i64, u8)>,
    /// Rolling sums over sealed percent values (mean / std in O(1)).
    sum: f64,
    sumsq: f64,
    /// Streaming p95 over sealed samples, observed in slot order —
    /// deterministic for any arrival interleaving of the same stream.
    p95: P2Quantile,
    /// Samples that arrived for an already-sealed slot.
    dropped_late: u64,
    /// Latest classification (refreshed at every window close).
    pattern: Option<UtilizationPattern>,
}

impl VmLane {
    fn new() -> Self {
        Self {
            pending: BTreeMap::new(),
            sealed: Vec::new(),
            sum: 0.0,
            sumsq: 0.0,
            p95: P2Quantile::new(0.95).expect("0.95 is a valid level"),
            dropped_late: 0,
            pattern: None,
        }
    }

    /// Seals every pending slot below `floor`, folding the values into
    /// the rolling state in ascending slot order. Returns how many
    /// samples sealed.
    fn seal_upto(&mut self, floor: i64) -> usize {
        if self
            .pending
            .first_key_value()
            .is_none_or(|(&slot, _)| slot >= floor)
        {
            return 0;
        }
        let rest = self.pending.split_off(&floor);
        let ripe = std::mem::replace(&mut self.pending, rest);
        let sealed_now = ripe.len();
        for (slot, q) in ripe {
            let pct = f64::from(q) / 2.0;
            self.sum += pct;
            self.sumsq += pct * pct;
            self.p95.observe(pct);
            self.sealed.push((slot, q));
        }
        sealed_now
    }

    /// Reconstructs the sealed slots in `lo..hi` as a gap-preserving
    /// series — byte-identical to what the batch collector assembles
    /// from the same samples. `None` if the range holds no samples.
    fn reconstruct(&self, lo: i64, hi: i64) -> Option<UtilSeries> {
        let from = self.sealed.partition_point(|&(slot, _)| slot < lo);
        let to = self.sealed.partition_point(|&(slot, _)| slot < hi);
        let window = &self.sealed[from..to];
        let (first, _) = *window.first()?;
        let (last, _) = *window.last().expect("non-empty window has a last");
        let mut bytes = vec![MISSING_SAMPLE_BYTE; usize::try_from(last - first + 1).expect("span")];
        for &(slot, q) in window {
            bytes[usize::try_from(slot - first).expect("slot in span")] = q;
        }
        Some(UtilSeries::from_quantized(
            SimTime::from_minutes(first * SAMPLE_INTERVAL_MINUTES),
            bytes.into(),
        ))
    }
}

/// One VM's summary at a window close.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowClose {
    /// The VM.
    pub vm: VmId,
    /// End of the closed window (exclusive), in trace time.
    pub window_end: SimTime,
    /// Sealed samples inside the window.
    pub samples: usize,
    /// Fraction of the window's slots with a sealed sample.
    pub coverage: f64,
    /// Rolling mean utilization over all sealed samples, in percent.
    pub mean_util: f64,
    /// Streaming p95 estimate over all sealed samples, in percent.
    pub p95_util: f64,
    /// Masked autocorrelation of the window at the daily lag (computed
    /// on a half-hourly downsample); `None` if the window is too short.
    pub daily_acf: Option<f64>,
    /// Classification of the window, via the batch classifier.
    pub pattern: Option<UtilizationPattern>,
    /// Cumulative late-dropped samples of this VM.
    pub dropped_late: u64,
}

/// Aggregate counters of one ingestion run. Accumulated off the hot
/// path and flushed to the metrics registry once, by
/// [`IngestReport::flush_metrics`] — the same report-then-flush pattern
/// the fault injector uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IngestReport {
    /// Distinct VMs that ever offered a sample.
    pub vms: usize,
    /// Wire samples offered.
    pub samples_offered: u64,
    /// Samples accepted into a window (including duplicate overwrites).
    pub samples_applied: u64,
    /// Accepted samples that overwrote an already-buffered slot.
    pub duplicates_collapsed: u64,
    /// Samples rejected by validation (non-finite or negative).
    pub rejected_invalid: u64,
    /// Samples whose timestamp fell outside the trace week.
    pub out_of_week: u64,
    /// Samples that arrived after their slot sealed.
    pub dropped_late: u64,
    /// Window closes performed (one per lane per boundary).
    pub windows_closed: u64,
    /// Window classifications that produced a pattern.
    pub classifications: u64,
    /// VMs with at least one late-dropped sample.
    pub vms_with_drops: usize,
    /// Peak buffered (unsealed) samples across all lanes — the
    /// backpressure the watermark delay costs.
    pub peak_pending_samples: usize,
}

impl IngestReport {
    /// Flushes the counters into the current metrics registry under
    /// `ingest.*`, and the backpressure peak into a gauge.
    pub fn flush_metrics(&self) {
        use cloudscope_obs::{counter, gauge};
        counter("ingest.samples_offered").add(self.samples_offered);
        counter("ingest.samples_applied").add(self.samples_applied);
        counter("ingest.duplicates_collapsed").add(self.duplicates_collapsed);
        counter("ingest.rejected_invalid").add(self.rejected_invalid);
        counter("ingest.out_of_week").add(self.out_of_week);
        counter("ingest.dropped_late").add(self.dropped_late);
        counter("ingest.windows_closed").add(self.windows_closed);
        counter("ingest.classifications").add(self.classifications);
        gauge("ingest.backpressure.peak_pending_samples").set_max(self.peak_pending_samples as f64);
    }
}

/// The ingestion state machine: per-VM lanes behind a global watermark.
///
/// Memory is bounded by construction: ahead of the watermark each lane
/// buffers at most `watermark_delay / 5 + 1` live slots (older offers
/// drop, newer ones cannot exist yet), and behind it only the quantized
/// sealed bytes and O(1) rolling state remain.
#[derive(Debug)]
pub struct Ingestor {
    config: IngestConfig,
    classifier: PatternClassifier,
    lanes: BTreeMap<VmId, VmLane>,
    /// Slots strictly below this are sealed; lanes apply it lazily.
    seal_floor: i64,
    /// Next window boundary (minutes) the watermark has not crossed.
    next_window_close: i64,
    /// Live buffered samples across lanes (maintained incrementally).
    pending_samples: usize,
    /// True if any sample was applied since the last window close —
    /// whether [`Ingestor::finish`] owes a final catch-up close.
    dirty: bool,
    report: IngestReport,
    vms_with_drops: BTreeSet<VmId>,
}

impl Ingestor {
    /// Creates an idle ingestor.
    #[must_use]
    pub fn new(config: IngestConfig, classifier: PatternClassifier) -> Self {
        assert!(config.watermark_delay_minutes >= 0, "negative watermark");
        assert!(config.window_minutes > 0, "window must be positive");
        Self {
            next_window_close: config.window_minutes,
            config,
            classifier,
            lanes: BTreeMap::new(),
            seal_floor: 0,
            pending_samples: 0,
            dirty: false,
            report: IngestReport::default(),
            vms_with_drops: BTreeSet::new(),
        }
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &IngestConfig {
        &self.config
    }

    /// Counters so far (vms/peaks refreshed on read).
    #[must_use]
    pub fn report(&self) -> IngestReport {
        let mut report = self.report;
        report.vms = self.lanes.len();
        report.vms_with_drops = self.vms_with_drops.len();
        report
    }

    /// Offers one wire sample for `vm`, mirroring the batch collector's
    /// validation exactly: reject garbage, snap to the grid, discard
    /// out-of-week slots, last write wins on duplicates — plus the one
    /// rule batch ingestion cannot need: a sample for a sealed slot is
    /// counted in `dropped_late` and never applied.
    pub fn offer(&mut self, vm: VmId, sample: WireSample) {
        self.report.samples_offered += 1;
        if !sample.value.is_finite() || sample.value < 0.0 {
            self.report.rejected_invalid += 1;
            return;
        }
        let slot =
            (sample.minute + SAMPLE_INTERVAL_MINUTES / 2).div_euclid(SAMPLE_INTERVAL_MINUTES);
        if !(0..SAMPLES_PER_WEEK as i64).contains(&slot) {
            self.report.out_of_week += 1;
            return;
        }
        let lane = self.lanes.entry(vm).or_insert_with(VmLane::new);
        // Lazy sealing: fold this lane's ripe slots before judging the
        // new sample, so the drop decision always uses the global floor.
        self.pending_samples -= lane.seal_upto(self.seal_floor);
        if slot < self.seal_floor {
            lane.dropped_late += 1;
            self.report.dropped_late += 1;
            self.vms_with_drops.insert(vm);
            return;
        }
        self.report.samples_applied += 1;
        if lane
            .pending
            .insert(slot, quantize_percentage(sample.value))
            .is_some()
        {
            self.report.duplicates_collapsed += 1;
        } else {
            self.pending_samples += 1;
        }
        self.dirty = true;
        if self.pending_samples > self.report.peak_pending_samples {
            self.report.peak_pending_samples = self.pending_samples;
        }
    }

    /// Advances the clock to `now`, moving the watermark
    /// `watermark_delay_minutes` behind it. Slots wholly behind the new
    /// watermark become sealable (lanes seal them lazily on next
    /// touch); every window boundary the watermark crossed closes, and
    /// the per-VM summaries of the closed windows are returned in VM
    /// order, ready for [`crate::publish_closed_windows`].
    pub fn advance_watermark(&mut self, now: SimTime) -> Vec<WindowClose> {
        let watermark = now.minutes() - self.config.watermark_delay_minutes;
        let floor = watermark.div_euclid(SAMPLE_INTERVAL_MINUTES);
        if floor > self.seal_floor {
            self.seal_floor = floor;
        }
        let mut closes = Vec::new();
        while watermark >= self.next_window_close {
            let end = self.next_window_close;
            closes.extend(self.close_window(SimTime::from_minutes(end)));
            self.next_window_close = end + self.config.window_minutes;
        }
        closes
    }

    /// Closes the window ending at `end`: seals every lane up to the
    /// global floor, reconstructs each lane's window, recomputes the
    /// summary statistics, and re-runs the pattern classifier.
    fn close_window(&mut self, end: SimTime) -> Vec<WindowClose> {
        let _stage = cloudscope_obs::span("ingest.close");
        let lo = (end.minutes() - self.config.window_minutes).div_euclid(SAMPLE_INTERVAL_MINUTES);
        let hi = end.minutes().div_euclid(SAMPLE_INTERVAL_MINUTES);
        let mut closes = Vec::with_capacity(self.lanes.len());
        for (&vm, lane) in &mut self.lanes {
            self.pending_samples -= lane.seal_upto(self.seal_floor);
            let window = lane.reconstruct(lo, hi);
            let samples = window.as_ref().map_or(0, UtilSeries::present_count);
            let pattern = window.as_ref().and_then(|w| {
                let series =
                    Series::new(w.start().minutes(), SAMPLE_INTERVAL_MINUTES, w.to_f64_vec());
                self.classifier.classify_series(&series)
            });
            lane.pattern = pattern;
            self.report.windows_closed += 1;
            if pattern.is_some() {
                self.report.classifications += 1;
            }
            let sealed_total = lane.sealed.len();
            let mean = if sealed_total == 0 {
                0.0
            } else {
                lane.sum / sealed_total as f64
            };
            closes.push(WindowClose {
                vm,
                window_end: end,
                samples,
                coverage: samples as f64 / (hi - lo).max(1) as f64,
                mean_util: mean,
                p95_util: lane.p95.estimate().unwrap_or(0.0),
                daily_acf: window.as_ref().and_then(daily_masked_acf),
                pattern,
                dropped_late: lane.dropped_late,
            });
        }
        self.dirty = false;
        closes
    }

    /// Drains the stream at end of input: seals everything buffered and,
    /// if any sample arrived since the last boundary close, performs a
    /// final catch-up close at `now` and returns its summaries (publish
    /// them, then call [`Ingestor::finish`]).
    pub fn drain(&mut self, now: SimTime) -> Vec<WindowClose> {
        self.seal_floor = SAMPLES_PER_WEEK as i64;
        if self.dirty {
            self.close_window(now)
        } else {
            // Nothing new since the last boundary close, but lanes may
            // still hold unsealed slots (inside the watermark at the
            // last tick): seal them without re-classifying.
            for lane in self.lanes.values_mut() {
                self.pending_samples -= lane.seal_upto(self.seal_floor);
            }
            Vec::new()
        }
    }

    /// Freezes the (drained) state into an [`IngestSession`] and
    /// flushes the run's counters into the metrics registry.
    #[must_use]
    pub fn finish(mut self) -> crate::IngestSession {
        // Defensive: a caller that skipped `drain` still gets every
        // buffered sample sealed into the frozen series.
        self.seal_floor = SAMPLES_PER_WEEK as i64;
        for lane in self.lanes.values_mut() {
            self.pending_samples -= lane.seal_upto(self.seal_floor);
        }
        let report = self.report();
        report.flush_metrics();
        crate::IngestSession::freeze(
            self.lanes.into_iter().map(|(vm, lane)| {
                let series = lane.reconstruct(0, SAMPLES_PER_WEEK as i64);
                (vm, series, lane.pattern, lane.dropped_late)
            }),
            report,
        )
    }
}

/// The live view over *sealed* state: between a window close and the
/// next offer, the ingestor itself serves as a [`TelemetrySource`], so
/// knowledge re-extraction at publish time reads exactly the window
/// state the close just classified. Unsealed (still-mutable) slots are
/// invisible by design.
impl cloudscope_model::trace::TelemetrySource for Ingestor {
    fn load(&self, id: VmId) -> Option<UtilSeries> {
        self.lanes.get(&id)?.reconstruct(0, SAMPLES_PER_WEEK as i64)
    }

    fn has(&self, id: VmId) -> bool {
        self.lanes
            .get(&id)
            .is_some_and(|lane| !lane.sealed.is_empty())
    }
}

/// Masked autocorrelation at the daily lag, on a half-hourly downsample
/// (gap slots average out of each block; fully-missing blocks stay
/// masked). `None` when the window is shorter than a day.
fn daily_masked_acf(window: &UtilSeries) -> Option<f64> {
    const BLOCK: usize = 6; // 6 × 5 min = half-hourly
    let values = window.to_f64_vec();
    let coarse: Vec<f64> = values
        .chunks(BLOCK)
        .map(|block| {
            let (sum, n) = block
                .iter()
                .filter(|v| v.is_finite())
                .fold((0.0, 0usize), |(s, n), v| (s + v, n + 1));
            if n == 0 {
                f64::NAN
            } else {
                sum / n as f64
            }
        })
        .collect();
    let lag = SAMPLES_PER_DAY / BLOCK;
    if coarse.len() <= lag {
        return None;
    }
    autocorrelation_masked(&coarse, lag)
        .ok()
        .and_then(|acf| acf.get(lag).copied())
        .filter(|v| v.is_finite())
}
