//! VM arrival processes (Figure 3(b)/(c)).
//!
//! Regular churn follows a non-homogeneous Poisson process whose rate is
//! modulated by a diurnal curve in the region's local time and damped on
//! weekends. The private cloud additionally experiences *bursts*: rare
//! events that create a large batch of VMs at once — the spikes of
//! Figure 3's private-cloud curves.

use crate::config::ArrivalProfile;
use cloudscope_model::time::{SimTime, MINUTES_PER_WEEK};
use cloudscope_stats::dist::{Exponential, Poisson, Sample};
use rand::Rng;

/// The diurnal rate multiplier at a local time: a smooth curve peaking at
/// 14:00 local, scaled so it averages ~1 over the day, then damped by the
/// weekend factor on Saturday/Sunday.
#[must_use]
pub fn diurnal_rate_factor(local: SimTime, amplitude: f64, weekend_factor: f64) -> f64 {
    let hour = local.fractional_hour_of_day();
    // Cosine bump peaking at 14:00.
    let phase = (hour - 14.0) / 24.0 * std::f64::consts::TAU;
    let shape = 1.0 + amplitude * phase.cos();
    if local.is_weekend() {
        shape * weekend_factor
    } else {
        shape
    }
}

/// Samples event times of a non-homogeneous Poisson process over the
/// trace week by thinning: candidate events are drawn at the maximum rate
/// and accepted with probability `rate(t)/max_rate`.
///
/// `rate_per_hour` is the *base* rate; the instantaneous rate is
/// `base × diurnal_rate_factor(local time)`.
pub fn sample_nhpp_week<R: Rng + ?Sized>(
    rng: &mut R,
    profile: &ArrivalProfile,
    tz_offset_hours: i32,
) -> Vec<SimTime> {
    let base_per_min = profile.base_rate_per_hour / 60.0;
    if base_per_min <= 0.0 {
        return Vec::new();
    }
    let max_factor = (1.0 + profile.diurnal_amplitude).max(1e-9);
    let max_rate = base_per_min * max_factor;
    let exp = Exponential::new(max_rate).expect("positive rate");
    let mut events = Vec::new();
    let mut t = 0.0f64;
    loop {
        t += exp.sample(rng);
        if t >= MINUTES_PER_WEEK as f64 {
            break;
        }
        let time = SimTime::from_minutes(t as i64);
        let factor = diurnal_rate_factor(
            time.to_local(tz_offset_hours),
            profile.diurnal_amplitude,
            profile.weekend_factor,
        );
        if rng.random::<f64>() < factor / max_factor {
            events.push(time);
        }
    }
    events
}

/// A deployment burst: when it fires and how many VMs it creates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Burst {
    /// Fire time.
    pub at: SimTime,
    /// Number of VMs the burst deploys.
    pub size: usize,
}

/// Samples the week's bursts for one region: burst times uniform over
/// weekday working hours (large services deploy during business hours),
/// sizes Poisson around the configured mean.
pub fn sample_bursts_week<R: Rng + ?Sized>(
    rng: &mut R,
    profile: &ArrivalProfile,
    tz_offset_hours: i32,
) -> Vec<Burst> {
    if profile.bursts_per_region_week <= 0.0 || profile.burst_size_mean <= 0.0 {
        return Vec::new();
    }
    let count = Poisson::new(profile.bursts_per_region_week)
        .expect("non-negative burst rate")
        .sample_count(rng) as usize;
    let size_dist = Poisson::new(profile.burst_size_mean).expect("non-negative burst size");
    let mut bursts = Vec::with_capacity(count);
    for _ in 0..count {
        // Rejection-sample a weekday working-hour local time.
        let at = loop {
            let minute = rng.random_range(0..MINUTES_PER_WEEK);
            let t = SimTime::from_minutes(minute);
            let local = t.to_local(tz_offset_hours);
            if !local.is_weekend() && (8..20).contains(&local.hour_of_day()) {
                break t;
            }
        };
        let size = (size_dist.sample_count(rng) as usize).max(1);
        bursts.push(Burst { at, size });
    }
    bursts.sort_by_key(|b| b.at);
    bursts
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudscope_model::time::MINUTES_PER_DAY;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn profile(amplitude: f64, bursts: f64) -> ArrivalProfile {
        ArrivalProfile {
            base_rate_per_hour: 30.0,
            diurnal_amplitude: amplitude,
            weekend_factor: 0.5,
            bursts_per_region_week: bursts,
            burst_size_mean: 100.0,
        }
    }

    #[test]
    fn nhpp_hits_expected_total() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = profile(0.0, 0.0);
        // Flat rate, no weekend damping.
        let p_flat = ArrivalProfile {
            weekend_factor: 1.0,
            ..p
        };
        let events = sample_nhpp_week(&mut rng, &p_flat, 0);
        let expected = 30.0 * 24.0 * 7.0;
        let got = events.len() as f64;
        assert!(
            (got - expected).abs() < 0.1 * expected,
            "expected ~{expected}, got {got}"
        );
    }

    #[test]
    fn events_sorted_and_in_window() {
        let mut rng = StdRng::seed_from_u64(2);
        let events = sample_nhpp_week(&mut rng, &profile(0.8, 0.0), -8);
        assert!(events.windows(2).all(|w| w[0] <= w[1]));
        assert!(events.iter().all(|t| t.in_trace_week()));
    }

    #[test]
    fn diurnal_amplitude_shapes_hourly_counts() {
        let mut rng = StdRng::seed_from_u64(3);
        let events = sample_nhpp_week(&mut rng, &profile(0.9, 0.0), 0);
        // Bucket weekday events by local hour.
        let mut by_hour = [0u32; 24];
        for t in &events {
            if !t.is_weekend() {
                by_hour[t.hour_of_day() as usize] += 1;
            }
        }
        let afternoon: u32 = (12..17).map(|h| by_hour[h]).sum();
        let night: u32 = (0..5).map(|h| by_hour[h]).sum();
        assert!(
            afternoon as f64 > 2.0 * night as f64,
            "afternoon {afternoon} vs night {night}"
        );
    }

    #[test]
    fn weekend_damping() {
        let mut rng = StdRng::seed_from_u64(4);
        let events = sample_nhpp_week(&mut rng, &profile(0.0, 0.0), 0);
        let weekend = events.iter().filter(|t| t.is_weekend()).count() as f64 / 2.0;
        let weekday = events.iter().filter(|t| !t.is_weekend()).count() as f64 / 5.0;
        let ratio = weekend / weekday;
        assert!((ratio - 0.5).abs() < 0.12, "ratio {ratio}");
    }

    #[test]
    fn zero_rate_yields_no_events() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = ArrivalProfile {
            base_rate_per_hour: 0.0,
            ..profile(0.5, 0.0)
        };
        assert!(sample_nhpp_week(&mut rng, &p, 0).is_empty());
    }

    #[test]
    fn bursts_fire_in_working_hours() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut total = 0usize;
        for _ in 0..50 {
            for b in sample_bursts_week(&mut rng, &profile(0.3, 3.0), -8) {
                let local = b.at.to_local(-8);
                assert!(!local.is_weekend());
                assert!((8..20).contains(&local.hour_of_day()));
                assert!(b.size >= 1);
                total += 1;
            }
        }
        // ~3 bursts per week over 50 weeks.
        assert!((100..220).contains(&total), "burst count {total}");
    }

    #[test]
    fn no_bursts_when_disabled() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!(sample_bursts_week(&mut rng, &profile(0.3, 0.0), 0).is_empty());
    }

    #[test]
    fn rate_factor_peaks_afternoon_and_damps_weekend() {
        let weekday_peak = diurnal_rate_factor(SimTime::from_minutes(14 * 60), 0.8, 0.5);
        let weekday_night = diurnal_rate_factor(SimTime::from_minutes(2 * 60), 0.8, 0.5);
        assert!(weekday_peak > weekday_night);
        let saturday = SimTime::from_minutes(5 * MINUTES_PER_DAY + 14 * 60);
        let weekend_peak = diurnal_rate_factor(saturday, 0.8, 0.5);
        assert!((weekend_peak - weekday_peak * 0.5).abs() < 1e-12);
    }
}
