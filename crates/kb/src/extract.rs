//! Extraction of workload knowledge from trace telemetry.

use crate::knowledge::{LifetimeClass, WorkloadKnowledge};
use cloudscope_analysis::correlation::cross_region_correlations;
use cloudscope_analysis::{PatternClassifier, UtilizationPattern};
use cloudscope_model::prelude::*;
use cloudscope_model::time::{SAMPLES_PER_WEEK, SAMPLE_INTERVAL_MINUTES};
use cloudscope_stats::sketch::P2Quantile;
use cloudscope_stats::summary::Summary;
use std::collections::{HashMap, HashSet};

/// Threshold on the short-lifetime share above which churn counts as
/// mostly short (paper: public cloud ≈ 81% in the shortest bin).
const MOSTLY_SHORT_THRESHOLD: f64 = 0.6;
/// Threshold below which churn counts as mostly long.
const MOSTLY_LONG_THRESHOLD: f64 = 0.2;
/// Cross-region correlation above which a workload is region-agnostic.
const REGION_AGNOSTIC_THRESHOLD: f64 = 0.8;

/// Extracts knowledge for every subscription of `cloud` in the trace.
///
/// `max_classified_vms_per_sub` caps the pattern-classification work per
/// subscription (the dominant cost).
#[must_use]
pub fn extract_cloud_knowledge(
    trace: &Trace,
    cloud: CloudKind,
    classifier: &PatternClassifier,
    max_classified_vms_per_sub: usize,
) -> Vec<WorkloadKnowledge> {
    // Region-agnosticism comes from the cross-region study, computed
    // once for the whole cloud.
    let agnostic: HashMap<SubscriptionId, bool> = cross_region_correlations(trace, cloud, "US")
        .into_iter()
        .map(|c| {
            (
                c.subscription,
                c.min_correlation() >= REGION_AGNOSTIC_THRESHOLD,
            )
        })
        .collect();

    trace
        .subscriptions_of(cloud)
        .filter_map(|sub| {
            extract_subscription_knowledge(
                trace,
                sub.id,
                classifier,
                max_classified_vms_per_sub,
                agnostic.get(&sub.id).copied(),
            )
        })
        .collect()
}

/// Extracts knowledge for one subscription; `None` if it has no VMs.
///
/// `region_agnostic` is threaded in when the caller already ran the
/// cross-region study; pass `None` to leave it unmeasured.
#[must_use]
pub fn extract_subscription_knowledge(
    trace: &Trace,
    subscription: SubscriptionId,
    classifier: &PatternClassifier,
    max_classified_vms: usize,
    region_agnostic: Option<bool>,
) -> Option<WorkloadKnowledge> {
    extract_subscription_knowledge_from(
        trace,
        trace,
        subscription,
        classifier,
        max_classified_vms,
        region_agnostic,
        SimTime::WEEK_END,
    )
}

/// [`extract_subscription_knowledge`] with telemetry decoupled from VM
/// metadata: `trace` supplies the subscription's population, `source`
/// the samples, and `updated_at` stamps the entry — the batch path
/// passes week-end, a streaming producer passes its window-close time so
/// the KB's staleness gate orders refreshes correctly.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn extract_subscription_knowledge_from(
    trace: &Trace,
    source: &(impl TelemetrySource + ?Sized),
    subscription: SubscriptionId,
    classifier: &PatternClassifier,
    max_classified_vms: usize,
    region_agnostic: Option<bool>,
    updated_at: SimTime,
) -> Option<WorkloadKnowledge> {
    let vm_ids = trace.vms_of_subscription(subscription);
    if vm_ids.is_empty() {
        return None;
    }
    let cloud = trace.subscription(subscription).ok()?.cloud;

    let mut regions: HashSet<RegionId> = HashSet::new();
    let mut cores = 0u64;
    let mut bounded = 0usize;
    let mut bounded_short = 0usize;
    let mut aggregate = vec![0.0f64; SAMPLES_PER_WEEK];
    let mut aggregate_n = vec![0u32; SAMPLES_PER_WEEK];
    // Streaming p95 over every utilization sample: constant memory even
    // for subscriptions with thousands of VMs.
    let mut p95_sketch = P2Quantile::new(0.95).expect("0.95 is a valid level");

    for &vm_id in vm_ids {
        let vm = trace.vm(vm_id).ok()?;
        regions.insert(vm.region);
        cores += u64::from(vm.size.cores());
        if vm.bounded_by_trace_week() {
            bounded += 1;
            if vm.lifetime().is_some_and(|l| l.minutes() <= 60) {
                bounded_short += 1;
            }
        }
        if let Some(util) = source.load(vm_id) {
            let offset = (util.start().minutes() / SAMPLE_INTERVAL_MINUTES) as usize;
            for (i, v) in util.iter().enumerate() {
                let slot = offset + i;
                if slot < SAMPLES_PER_WEEK {
                    aggregate[slot] += f64::from(v);
                    aggregate_n[slot] += 1;
                }
                p95_sketch.observe(f64::from(v));
            }
        }
    }

    // Dominant pattern by majority vote over classified VMs; ties break
    // deterministically in Figure 5 order (diurnal first).
    let mut votes = [0usize; UtilizationPattern::ALL.len()];
    for &vm_id in vm_ids.iter().take(max_classified_vms) {
        if let Some(p) = classifier.classify_vm(source, vm_id) {
            let idx = UtilizationPattern::ALL
                .iter()
                .position(|&q| q == p)
                .expect("pattern in ALL");
            votes[idx] += 1;
        }
    }
    let pattern = votes
        .iter()
        .enumerate()
        .filter(|&(_, &n)| n > 0)
        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
        .map(|(idx, _)| UtilizationPattern::ALL[idx]);

    let lifetime = if bounded == 0 {
        LifetimeClass::MostlyLong
    } else {
        let short_share = bounded_short as f64 / bounded as f64;
        if short_share >= MOSTLY_SHORT_THRESHOLD {
            LifetimeClass::MostlyShort
        } else if short_share <= MOSTLY_LONG_THRESHOLD {
            LifetimeClass::MostlyLong
        } else {
            LifetimeClass::Mixed
        }
    };

    let mean_series: Vec<f64> = aggregate
        .iter()
        .zip(&aggregate_n)
        .filter(|&(_, &n)| n > 0)
        .map(|(&s, &n)| s / f64::from(n))
        .collect();
    let util_summary: Summary = mean_series.iter().copied().collect();
    let p95 = p95_sketch.estimate().unwrap_or(0.0);

    Some(WorkloadKnowledge {
        subscription,
        cloud,
        pattern,
        lifetime,
        mean_util: util_summary.mean(),
        p95_util: p95,
        util_cv: util_summary.coefficient_of_variation().unwrap_or(0.0),
        regions: regions.len(),
        region_agnostic,
        vm_count: vm_ids.len(),
        cores,
        updated_at,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudscope_tracegen::{generate, GeneratorConfig};

    #[test]
    fn extracts_knowledge_for_every_active_subscription() {
        let g = generate(&GeneratorConfig::small(21));
        let classifier = PatternClassifier::default();
        let private = extract_cloud_knowledge(&g.trace, CloudKind::Private, &classifier, 4);
        let public = extract_cloud_knowledge(&g.trace, CloudKind::Public, &classifier, 4);
        assert!(!private.is_empty());
        assert!(public.len() > private.len());
        for k in private.iter().chain(&public) {
            assert!(k.vm_count > 0);
            assert!(k.cores > 0);
            assert!(k.regions >= 1);
            assert!(k.mean_util >= 0.0 && k.p95_util <= 100.0);
        }
    }

    #[test]
    fn lifetime_classes_cover_population() {
        // The cloud-level short-vs-long contrast is a per-VM statement
        // (Fig 3(a)); at the subscription level we only require that the
        // classes are populated and spot candidacy follows the cloud.
        let g = generate(&GeneratorConfig::small(22));
        let classifier = PatternClassifier::default();
        let public = extract_cloud_knowledge(&g.trace, CloudKind::Public, &classifier, 2);
        let short = public
            .iter()
            .filter(|k| k.lifetime == LifetimeClass::MostlyShort)
            .count();
        let long = public
            .iter()
            .filter(|k| k.lifetime == LifetimeClass::MostlyLong)
            .count();
        assert!(short > 0, "public cloud has short-churn subscriptions");
        assert!(long > 0, "purely standing subscriptions classify long");
        let private = extract_cloud_knowledge(&g.trace, CloudKind::Private, &classifier, 2);
        assert!(private.iter().all(|k| !k.spot_candidate()));
        assert!(public.iter().any(WorkloadKnowledge::spot_candidate));
    }

    #[test]
    fn region_agnostic_flag_set_for_private_multi_region() {
        let g = generate(&GeneratorConfig::small(23));
        let classifier = PatternClassifier::default();
        let private = extract_cloud_knowledge(&g.trace, CloudKind::Private, &classifier, 2);
        let agnostic = private
            .iter()
            .filter(|k| k.region_agnostic == Some(true))
            .count();
        assert!(
            agnostic > 0,
            "some private workloads must be region-agnostic"
        );
        // Single-region subscriptions stay unmeasured.
        assert!(private
            .iter()
            .filter(|k| k.regions == 1)
            .all(|k| k.region_agnostic.is_none()));
    }

    #[test]
    fn empty_subscription_yields_none() {
        let g = generate(&GeneratorConfig::small(24));
        let classifier = PatternClassifier::default();
        assert!(extract_subscription_knowledge(
            &g.trace,
            SubscriptionId::new(9999),
            &classifier,
            2,
            None
        )
        .is_none());
    }
}
