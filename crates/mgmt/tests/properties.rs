//! Property tests over the management planners.

use cloudscope_mgmt::defer::{schedule_deferrable, DeferrableJob};
use cloudscope_mgmt::oversub::{inverse_normal_cdf, OversubMethod, OversubPlanner, VmDemand};
use cloudscope_mgmt::spot::{EvictionFeatures, EvictionPredictor, SpotMixPolicy};
use proptest::prelude::*;

fn pool_strategy() -> impl Strategy<Value = Vec<VmDemand>> {
    prop::collection::vec(
        (1u32..16, prop::collection::vec(0.0f64..100.0, 64..=64)),
        1..12,
    )
    .prop_map(|vms| {
        vms.into_iter()
            .map(|(cores, utilization)| VmDemand { cores, utilization })
            .collect()
    })
}

proptest! {
    #[test]
    fn oversub_plan_invariants(
        pool in pool_strategy(),
        eps in 0.005f64..0.4,
    ) {
        for method in [
            OversubMethod::PeakReservation,
            OversubMethod::GaussianBound,
            OversubMethod::EmpiricalQuantile,
        ] {
            let plan = OversubPlanner::new(eps, method).unwrap().plan(&pool).unwrap();
            // Never reserve more than requested nor less than the mean.
            prop_assert!(plan.reserved_cores <= plan.requested_cores + 1e-9);
            prop_assert!(plan.reserved_cores >= plan.mean_demand - 1e-9);
            prop_assert!(plan.utilization_improvement >= -1e-12);
            prop_assert!((0.0..=1.0).contains(&plan.violation_rate));
            if method == OversubMethod::PeakReservation {
                prop_assert_eq!(plan.violation_rate, 0.0);
            }
            if method == OversubMethod::EmpiricalQuantile {
                // The empirical quantile honours the budget up to grid
                // resolution (1/len).
                prop_assert!(plan.violation_rate <= eps + 1.0 / 64.0 + 1e-9);
            }
        }
    }

    #[test]
    fn inverse_normal_is_monotone_and_symmetric(p in 0.001f64..0.999) {
        let z = inverse_normal_cdf(p);
        let z2 = inverse_normal_cdf((p + 0.0005).min(0.9995));
        prop_assert!(z2 >= z - 1e-9);
        let sym = inverse_normal_cdf(1.0 - p);
        prop_assert!((z + sym).abs() < 1e-6, "quantiles mirror: {z} vs {sym}");
    }

    #[test]
    fn spot_mix_meets_target_and_never_overpays(
        total in 1usize..40,
        required_frac in 0.0f64..=1.0,
        survival in 0.0f64..=1.0,
        target in 0.5f64..0.999,
        price in 0.05f64..0.95,
    ) {
        let required = ((total as f64 * required_frac) as usize).min(total);
        let policy = SpotMixPolicy::new(price, target).unwrap();
        let plan = policy.plan(total, required, survival).unwrap();
        prop_assert_eq!(plan.spot_vms + plan.on_demand_vms, total);
        prop_assert!(plan.availability >= target || plan.spot_vms == 0);
        prop_assert!(plan.relative_cost <= 1.0 + 1e-12);
        prop_assert!(plan.relative_cost >= price - 1e-12);
        // All-on-demand is always feasible, so the planner never fails.
    }

    #[test]
    fn eviction_predictions_are_probabilities(
        alloc in 0.0f64..=1.0,
        size in 0.0f64..=1.0,
        demand in 0.0f64..=1.0,
        hours in 0.0f64..100.0,
    ) {
        let p = EvictionPredictor::default();
        let f = EvictionFeatures {
            cluster_allocation_ratio: alloc,
            relative_vm_size: size,
            demand_intensity: demand,
        };
        let rate = p.eviction_rate_per_hour(&f);
        prop_assert!((0.0..=1.0).contains(&rate));
        let survival = p.survival_probability(&f, hours);
        prop_assert!((0.0..=1.0).contains(&survival));
        // Survival decays with horizon.
        prop_assert!(p.survival_probability(&f, hours + 1.0) <= survival + 1e-12);
    }

    #[test]
    fn deferral_never_worsens_the_schedulable_peak(
        base in prop::collection::vec(0.0f64..100.0, 24..=24),
        jobs in prop::collection::vec(
            (1.0f64..50.0, 1usize..8).prop_map(|(cores, duration)| DeferrableJob {
                cores,
                duration_hours: duration,
                deadline_hour: 24,
            }),
            0..6,
        ),
    ) {
        let schedule = schedule_deferrable(&base, &jobs).unwrap();
        // With unconstrained deadlines every job places.
        prop_assert!(schedule.rejected.is_empty());
        prop_assert_eq!(schedule.placements.len(), jobs.len());
        // The greedy valley packer never beats the naive baseline by
        // being worse: scheduled peak <= naive peak.
        prop_assert!(schedule.scheduled_peak <= schedule.naive_peak + 1e-9);
        prop_assert!(schedule.scheduled_peak >= schedule.base_peak - 1e-9);
    }
}
