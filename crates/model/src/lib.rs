//! # cloudscope-model
//!
//! Domain model shared by every crate in the cloudscope suite: newtyped
//! identifiers, simulation time, the physical topology (regions →
//! datacenters → clusters → racks → nodes), subscriptions, VM records,
//! utilization telemetry, and the [`trace::Trace`] container the
//! characterization pipeline consumes.
//!
//! The model mirrors the entities of the DSN'23 study *"How Different are
//! the Cloud Workloads?"*: private and public cloud workloads run in
//! disjoint clusters of the same provider, subscriptions deploy VMs into
//! regions, an allocation service places VMs onto nodes stacked in racks
//! (fault domains), and the monitor reports average utilization every five
//! minutes.
//!
//! ## Example
//! ```
//! use cloudscope_model::prelude::*;
//!
//! # fn main() -> Result<(), cloudscope_model::error::ModelError> {
//! let mut b = Topology::builder();
//! let region = b.add_region("us-west", -8, "US");
//! let dc = b.add_datacenter(region);
//! let cluster = b.add_cluster(dc, CloudKind::Private, NodeSku::new(48, 384.0), 10, 20);
//! let topology = b.build();
//! assert_eq!(topology.cluster(cluster)?.total_cores(), 200 * 48);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod export;
pub mod fast_hash;
pub mod ids;
pub mod subscription;
pub mod telemetry;
pub mod time;
pub mod topology;
pub mod trace;
pub mod vm;

/// Convenient glob-import of the most commonly used model types.
pub mod prelude {
    pub use crate::error::ModelError;
    pub use crate::ids::{
        ClusterId, DatacenterId, NodeId, RackId, RegionId, ServiceId, SubscriptionId, VmId,
    };
    pub use crate::subscription::{CloudKind, PartyKind, Subscription};
    pub use crate::telemetry::UtilSeries;
    pub use crate::time::{SimDuration, SimTime, Weekday};
    pub use crate::topology::{Cluster, Node, NodeSku, Region, Topology};
    pub use crate::trace::{TelemetrySource, Trace, TraceBuilder, TraceStats};
    pub use crate::vm::{Priority, ServiceModel, VmRecord, VmSize};
}
