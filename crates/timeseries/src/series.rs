//! Fixed-interval time series over `f64` values.
//!
//! Unlike the model crate's quantized telemetry, this type is the
//! full-precision working representation the analyses transform.

use crate::error::SeriesError;
use serde::{Deserialize, Serialize};

/// A fixed-interval series: values sampled every `step_minutes`, starting
/// at minute `start_minute` of the trace.
///
/// # Examples
/// ```
/// # use cloudscope_timeseries::series::Series;
/// let s = Series::new(0, 60, vec![1.0, 2.0, 3.0]);
/// assert_eq!(s.len(), 3);
/// assert_eq!(s.time_of(2), 120);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Series {
    start_minute: i64,
    step_minutes: i64,
    values: Vec<f64>,
}

impl Series {
    /// Creates a series.
    ///
    /// # Panics
    /// Panics if `step_minutes <= 0`.
    #[must_use]
    pub fn new(start_minute: i64, step_minutes: i64, values: Vec<f64>) -> Self {
        assert!(step_minutes > 0, "step must be positive");
        Self {
            start_minute,
            step_minutes,
            values,
        }
    }

    /// First sample's time in minutes.
    #[must_use]
    pub const fn start_minute(&self) -> i64 {
        self.start_minute
    }

    /// Sampling step in minutes.
    #[must_use]
    pub const fn step_minutes(&self) -> i64 {
        self.step_minutes
    }

    /// The underlying values.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the underlying values (e.g. for detrending in
    /// place).
    #[must_use]
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Consumes the series, returning its values.
    #[must_use]
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if there are no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Time (minutes) of the sample at `index`.
    #[must_use]
    pub fn time_of(&self, index: usize) -> i64 {
        self.start_minute + index as i64 * self.step_minutes
    }

    /// Mean of the values (0 if empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Population standard deviation (0 if empty).
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let mean = self.mean();
        let var = self
            .values
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / self.values.len() as f64;
        var.sqrt()
    }

    /// Returns a mean-centred copy (common preprocessing for ACF/FFT).
    #[must_use]
    pub fn centered(&self) -> Series {
        let mean = self.mean();
        Series {
            start_minute: self.start_minute,
            step_minutes: self.step_minutes,
            values: self.values.iter().map(|v| v - mean).collect(),
        }
    }

    /// Aggregates consecutive samples into buckets of `factor` samples
    /// using the mean, producing a coarser series (e.g. 5-minute → hourly
    /// with `factor = 12`). A trailing partial bucket is averaged over the
    /// samples present. Non-finite values (gaps) are skipped per bucket; a
    /// bucket with no finite value stays NaN instead of poisoning the
    /// whole bucket mean.
    ///
    /// # Errors
    /// Returns [`SeriesError::BadResampleFactor`] if `factor == 0`.
    pub fn downsample_mean(&self, factor: usize) -> Result<Series, SeriesError> {
        if factor == 0 {
            return Err(SeriesError::BadResampleFactor);
        }
        let values = self
            .values
            .chunks(factor)
            .map(|c| {
                let mut sum = 0.0;
                let mut count = 0usize;
                for &v in c {
                    if v.is_finite() {
                        sum += v;
                        count += 1;
                    }
                }
                if count == 0 {
                    f64::NAN
                } else {
                    sum / count as f64
                }
            })
            .collect();
        Ok(Series {
            start_minute: self.start_minute,
            step_minutes: self.step_minutes * factor as i64,
            values,
        })
    }

    /// Like [`Series::downsample_mean`] but taking the bucket sum — the
    /// right aggregation for event counts (VM creations per hour).
    ///
    /// # Errors
    /// Returns [`SeriesError::BadResampleFactor`] if `factor == 0`.
    pub fn downsample_sum(&self, factor: usize) -> Result<Series, SeriesError> {
        if factor == 0 {
            return Err(SeriesError::BadResampleFactor);
        }
        let values = self
            .values
            .chunks(factor)
            .map(|c| c.iter().sum::<f64>())
            .collect();
        Ok(Series {
            start_minute: self.start_minute,
            step_minutes: self.step_minutes * factor as i64,
            values,
        })
    }

    /// Splits the series into consecutive windows of `len` samples,
    /// dropping a partial tail; useful for per-day folding.
    #[must_use]
    pub fn windows_of(&self, len: usize) -> Vec<&[f64]> {
        if len == 0 {
            return Vec::new();
        }
        self.values.chunks_exact(len).collect()
    }

    /// Element-wise difference `self - other`.
    ///
    /// # Errors
    /// Returns [`SeriesError::Misaligned`] unless both series share start,
    /// step, and length.
    pub fn sub(&self, other: &Series) -> Result<Series, SeriesError> {
        if self.start_minute != other.start_minute
            || self.step_minutes != other.step_minutes
            || self.values.len() != other.values.len()
        {
            return Err(SeriesError::Misaligned);
        }
        Ok(Series {
            start_minute: self.start_minute,
            step_minutes: self.step_minutes,
            values: self
                .values
                .iter()
                .zip(&other.values)
                .map(|(a, b)| a - b)
                .collect(),
        })
    }

    /// A moving-average smoothed copy with the given odd window (centered).
    /// Edges use the partial window that fits.
    ///
    /// # Errors
    /// Returns [`SeriesError::BadResampleFactor`] if `window` is even or 0.
    pub fn moving_average(&self, window: usize) -> Result<Series, SeriesError> {
        if window == 0 || window.is_multiple_of(2) {
            return Err(SeriesError::BadResampleFactor);
        }
        let half = window / 2;
        let n = self.values.len();
        let values = (0..n)
            .map(|i| {
                let lo = i.saturating_sub(half);
                let hi = (i + half + 1).min(n);
                self.values[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
            })
            .collect();
        Ok(Series {
            start_minute: self.start_minute,
            step_minutes: self.step_minutes,
            values,
        })
    }
}

impl FromIterator<f64> for Series {
    /// Collects values into a series starting at minute 0 with step 1.
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Series::new(0, 1, iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_timing() {
        let s = Series::new(30, 5, vec![1.0, 2.0, 3.0]);
        assert_eq!(s.time_of(0), 30);
        assert_eq!(s.time_of(2), 40);
        assert_eq!(s.step_minutes(), 5);
        assert!(!s.is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_step_rejected() {
        let _ = Series::new(0, 0, vec![]);
    }

    #[test]
    fn moments_and_centering() {
        let s = Series::new(0, 1, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean(), 2.5);
        let c = s.centered();
        assert!(c.mean().abs() < 1e-12);
        assert_eq!(c.values()[0], -1.5);
        assert!((s.std_dev() - (1.25f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn downsampling() {
        let s = Series::new(0, 5, vec![1.0, 3.0, 5.0, 7.0, 10.0]);
        let mean = s.downsample_mean(2).unwrap();
        assert_eq!(mean.values(), &[2.0, 6.0, 10.0]);
        assert_eq!(mean.step_minutes(), 10);
        let sum = s.downsample_sum(2).unwrap();
        assert_eq!(sum.values(), &[4.0, 12.0, 10.0]);
        assert!(s.downsample_mean(0).is_err());
    }

    #[test]
    fn downsample_mean_skips_gaps() {
        let s = Series::new(0, 5, vec![1.0, f64::NAN, f64::NAN, f64::NAN, 10.0, 20.0]);
        let out = s.downsample_mean(2).unwrap();
        assert_eq!(out.values()[0], 1.0);
        assert!(out.values()[1].is_nan());
        assert_eq!(out.values()[2], 15.0);
    }

    #[test]
    fn windows_drop_partial_tail() {
        let s = Series::new(0, 1, (0..10).map(f64::from).collect());
        let w = s.windows_of(4);
        assert_eq!(w.len(), 2);
        assert_eq!(w[1], &[4.0, 5.0, 6.0, 7.0]);
        assert!(s.windows_of(0).is_empty());
    }

    #[test]
    fn subtraction_alignment() {
        let a = Series::new(0, 1, vec![5.0, 7.0]);
        let b = Series::new(0, 1, vec![1.0, 2.0]);
        assert_eq!(a.sub(&b).unwrap().values(), &[4.0, 5.0]);
        let misaligned = Series::new(1, 1, vec![1.0, 2.0]);
        assert!(a.sub(&misaligned).is_err());
    }

    #[test]
    fn moving_average_smooths() {
        let s = Series::new(0, 1, vec![0.0, 10.0, 0.0, 10.0, 0.0]);
        let sm = s.moving_average(3).unwrap();
        assert_eq!(sm.values()[2], 20.0 / 3.0);
        // Edges use partial windows.
        assert_eq!(sm.values()[0], 5.0);
        assert!(s.moving_average(2).is_err());
        assert!(s.moving_average(0).is_err());
    }

    #[test]
    fn from_iterator_defaults() {
        let s: Series = [1.0, 2.0].into_iter().collect();
        assert_eq!(s.start_minute(), 0);
        assert_eq!(s.step_minutes(), 1);
    }
}
