//! Burst/spike detection on count series — the tool that locates the
//! private cloud's deployment spikes in Figure 3(b)/(c) programmatically
//! (the paper notes those spikes "are not due to data quality issues but
//! are mainly caused by the deployment behavior of some large services").

use crate::error::SeriesError;
use crate::series::Series;
use serde::{Deserialize, Serialize};

/// One detected burst.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Burst {
    /// Index of the bursting sample.
    pub index: usize,
    /// The sample's value.
    pub value: f64,
    /// Robust z-score of the sample against the local baseline.
    pub score: f64,
}

/// Detects bursts with a robust (median/MAD) z-score over a rolling
/// window of `window` samples centred on each point: a sample is a burst
/// if it exceeds the local median by more than `threshold` times the
/// local MAD-derived sigma (1.4826 × MAD).
///
/// Robust statistics matter here: a diurnal baseline would inflate a
/// plain standard deviation and hide real bursts.
///
/// # Errors
/// - [`SeriesError::BadResampleFactor`] if `window < 5` or even.
/// - [`SeriesError::TooShort`] if the series is shorter than `window`.
pub fn detect_bursts(
    series: &Series,
    window: usize,
    threshold: f64,
) -> Result<Vec<Burst>, SeriesError> {
    if window < 5 || window.is_multiple_of(2) {
        return Err(SeriesError::BadResampleFactor);
    }
    let n = series.len();
    if n < window {
        return Err(SeriesError::TooShort(n));
    }
    let values = series.values();
    let half = window / 2;
    let mut bursts = Vec::new();
    let mut buf = Vec::with_capacity(window);
    for i in 0..n {
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(n);
        buf.clear();
        buf.extend_from_slice(&values[lo..hi]);
        buf.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = buf[buf.len() / 2];
        // Median absolute deviation.
        let mut deviations: Vec<f64> = buf.iter().map(|v| (v - median).abs()).collect();
        deviations.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let mad = deviations[deviations.len() / 2];
        // Floor the scale so a perfectly flat window still admits a
        // meaningful score for a genuine jump.
        let sigma = (1.4826 * mad).max(1e-9).max(0.05 * median.abs().max(1.0));
        let score = (values[i] - median) / sigma;
        if score > threshold {
            bursts.push(Burst {
                index: i,
                value: values[i],
                score,
            });
        }
    }
    Ok(bursts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diurnal_with_spikes() -> Series {
        let values: Vec<f64> = (0..168)
            .map(|h| {
                let base = 50.0 + 20.0 * (std::f64::consts::TAU * (h % 24) as f64 / 24.0).sin();
                match h {
                    40 => base + 400.0,
                    111 => base + 300.0,
                    _ => base,
                }
            })
            .collect();
        Series::new(0, 60, values)
    }

    #[test]
    fn finds_planted_spikes_only() {
        let bursts = detect_bursts(&diurnal_with_spikes(), 25, 8.0).unwrap();
        let indices: Vec<usize> = bursts.iter().map(|b| b.index).collect();
        assert_eq!(indices, vec![40, 111]);
        assert!(bursts[0].score > 8.0);
    }

    #[test]
    fn smooth_diurnal_has_no_bursts() {
        let values: Vec<f64> = (0..168)
            .map(|h| 50.0 + 20.0 * (std::f64::consts::TAU * (h % 24) as f64 / 24.0).sin())
            .collect();
        let bursts = detect_bursts(&Series::new(0, 60, values), 25, 8.0).unwrap();
        assert!(bursts.is_empty(), "{bursts:?}");
    }

    #[test]
    fn flat_series_with_one_jump() {
        let mut values = vec![5.0; 100];
        values[50] = 100.0;
        let bursts = detect_bursts(&Series::new(0, 60, values), 11, 6.0).unwrap();
        assert_eq!(bursts.len(), 1);
        assert_eq!(bursts[0].index, 50);
    }

    #[test]
    fn threshold_controls_sensitivity() {
        let series = diurnal_with_spikes();
        let strict = detect_bursts(&series, 25, 50.0).unwrap();
        let loose = detect_bursts(&series, 25, 3.0).unwrap();
        assert!(strict.len() <= loose.len());
    }

    #[test]
    fn error_conditions() {
        let s = Series::new(0, 60, vec![1.0; 10]);
        assert!(matches!(
            detect_bursts(&s, 4, 3.0),
            Err(SeriesError::BadResampleFactor)
        ));
        assert!(matches!(
            detect_bursts(&s, 6, 3.0),
            Err(SeriesError::BadResampleFactor)
        ));
        assert!(matches!(
            detect_bursts(&s, 11, 3.0),
            Err(SeriesError::TooShort(10))
        ));
    }
}
