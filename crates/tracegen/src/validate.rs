//! Configuration validation: typed errors for out-of-range knobs, so a
//! bad config fails fast with a message instead of a deep panic.

use crate::config::{CloudProfile, GeneratorConfig};
use std::error::Error;
use std::fmt;

/// A configuration-validation error: which field and what rule it broke.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// Dotted path of the offending field (e.g. `private.geo_lb_fraction`).
    pub field: String,
    /// The violated rule.
    pub rule: &'static str,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid config: {} {}", self.field, self.rule)
    }
}

impl Error for ConfigError {}

fn err(field: impl Into<String>, rule: &'static str) -> ConfigError {
    ConfigError {
        field: field.into(),
        rule,
    }
}

fn check_fraction(value: f64, field: &str) -> Result<(), ConfigError> {
    if (0.0..=1.0).contains(&value) {
        Ok(())
    } else {
        Err(err(field, "must be in [0, 1]"))
    }
}

fn validate_cloud(profile: &CloudProfile, prefix: &str) -> Result<(), ConfigError> {
    if profile.subscriptions == 0 {
        return Err(err(format!("{prefix}.subscriptions"), "must be positive"));
    }
    if profile.deployment_median.is_nan() || profile.deployment_median <= 0.0 {
        return Err(err(
            format!("{prefix}.deployment_median"),
            "must be positive",
        ));
    }
    if profile.deployment_sigma.is_nan() || profile.deployment_sigma < 0.0 {
        return Err(err(
            format!("{prefix}.deployment_sigma"),
            "must be non-negative",
        ));
    }
    check_fraction(
        profile.single_region_fraction,
        &format!("{prefix}.single_region_fraction"),
    )?;
    if profile.max_regions < 1 {
        return Err(err(format!("{prefix}.max_regions"), "must be at least 1"));
    }
    check_fraction(
        profile.standing_fraction,
        &format!("{prefix}.standing_fraction"),
    )?;
    check_fraction(
        profile.geo_lb_fraction,
        &format!("{prefix}.geo_lb_fraction"),
    )?;
    check_fraction(
        profile.autoscale_fraction,
        &format!("{prefix}.autoscale_fraction"),
    )?;
    check_fraction(profile.spot_fraction, &format!("{prefix}.spot_fraction"))?;
    check_fraction(
        profile.size.corner_mass,
        &format!("{prefix}.size.corner_mass"),
    )?;
    if profile.arrival.base_rate_per_hour.is_nan() || profile.arrival.base_rate_per_hour < 0.0 {
        return Err(err(
            format!("{prefix}.arrival.base_rate_per_hour"),
            "must be non-negative",
        ));
    }
    check_fraction(
        profile.arrival.diurnal_amplitude,
        &format!("{prefix}.arrival.diurnal_amplitude"),
    )?;
    if profile.arrival.weekend_factor.is_nan() || profile.arrival.weekend_factor < 0.0 {
        return Err(err(
            format!("{prefix}.arrival.weekend_factor"),
            "must be non-negative",
        ));
    }
    let lt = &profile.lifetime;
    if !(0.0..=1.0).contains(&lt.short_fraction)
        || !(0.0..=1.0).contains(&lt.long_fraction)
        || lt.short_fraction + lt.long_fraction > 1.0
    {
        return Err(err(
            format!("{prefix}.lifetime"),
            "short+long fractions must form a sub-probability",
        ));
    }
    if [
        lt.short_mean_minutes,
        lt.medium_median_minutes,
        lt.long_median_minutes,
    ]
    .iter()
    .any(|&scale| scale.is_nan() || scale <= 0.0)
    {
        return Err(err(format!("{prefix}.lifetime"), "scales must be positive"));
    }
    let mix = profile.pattern_mix.weights();
    if mix.iter().any(|&w| w < 0.0 || !w.is_finite()) || mix.iter().sum::<f64>() <= 0.0 {
        return Err(err(
            format!("{prefix}.pattern_mix"),
            "weights must be non-negative with positive sum",
        ));
    }
    let (lo, hi) = profile.peak_hour_range;
    if !(0.0..=24.0).contains(&lo) || !(0.0..=24.0).contains(&hi) || lo > hi {
        return Err(err(
            format!("{prefix}.peak_hour_range"),
            "must be an ordered range within [0, 24]",
        ));
    }
    Ok(())
}

impl GeneratorConfig {
    /// Validates every knob; [`generate()`](crate::generate()) calls this first.
    ///
    /// # Errors
    /// Returns the first [`ConfigError`] found.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.topology.regions.is_empty() {
            return Err(err("topology.regions", "must not be empty"));
        }
        if self.topology.private_clusters_per_region == 0
            && self.topology.public_clusters_per_region == 0
        {
            return Err(err("topology", "needs clusters in at least one cloud"));
        }
        if self.topology.racks_per_cluster == 0 || self.topology.nodes_per_rack == 0 {
            return Err(err("topology", "clusters need racks and nodes"));
        }
        validate_cloud(&self.private, "private")?;
        validate_cloud(&self.public, "public")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        GeneratorConfig::default().validate().unwrap();
        GeneratorConfig::small(1).validate().unwrap();
        GeneratorConfig::medium(1).validate().unwrap();
    }

    #[test]
    fn bad_fields_are_named() {
        let mut cfg = GeneratorConfig::small(1);
        cfg.private.geo_lb_fraction = 1.5;
        let e = cfg.validate().unwrap_err();
        assert_eq!(e.field, "private.geo_lb_fraction");
        assert!(e.to_string().contains("[0, 1]"));
    }

    #[test]
    fn topology_rules() {
        let mut cfg = GeneratorConfig::small(1);
        cfg.topology.regions.clear();
        assert_eq!(cfg.validate().unwrap_err().field, "topology.regions");

        let mut cfg = GeneratorConfig::small(1);
        cfg.topology.nodes_per_rack = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn lifetime_sub_probability() {
        let mut cfg = GeneratorConfig::small(1);
        cfg.public.lifetime.short_fraction = 0.9;
        cfg.public.lifetime.long_fraction = 0.2;
        let e = cfg.validate().unwrap_err();
        assert_eq!(e.field, "public.lifetime");
    }

    #[test]
    fn pattern_mix_rules() {
        let mut cfg = GeneratorConfig::small(1);
        cfg.private.pattern_mix.diurnal = -1.0;
        assert_eq!(cfg.validate().unwrap_err().field, "private.pattern_mix");
        let mut cfg = GeneratorConfig::small(1);
        cfg.private.pattern_mix = crate::config::PatternMix {
            diurnal: 0.0,
            stable: 0.0,
            irregular: 0.0,
            hourly_peak: 0.0,
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn peak_hour_range_ordered() {
        let mut cfg = GeneratorConfig::small(1);
        cfg.public.peak_hour_range = (20.0, 8.0);
        assert_eq!(cfg.validate().unwrap_err().field, "public.peak_hour_range");
    }
}
