//! Utilization-pattern generators for the four archetypes of Figure 5:
//! diurnal, stable, irregular, and hourly-peak.
//!
//! All VMs of one *service* share a [`ServiceUtilProfile`] (same pattern,
//! base, amplitude, and phase) — this is what makes co-located
//! private-cloud VMs correlate with their host node (Figure 7(a)). Each VM
//! adds independent sampling noise and, for irregular services, its own
//! spike schedule.
//!
//! A region-agnostic (geo-load-balanced) service follows one *global*
//! clock in every region; a region-sensitive service follows the region's
//! local wall clock (Figure 7(c)).

use crate::config::PatternMix;
use cloudscope_model::telemetry::UtilSeries;
use cloudscope_model::time::{SimTime, SAMPLE_INTERVAL_MINUTES};
use cloudscope_stats::dist::{Categorical, Poisson, Sample, StdNormal};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The four utilization-pattern archetypes of the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PatternKind {
    /// Daily cycle tied to user activity; weekday peaks ≈ 3× weekend.
    Diurnal,
    /// Flat utilization with small noise.
    Stable,
    /// Low base with unpredictable short spikes.
    Irregular,
    /// Sharp peaks at hour/half-hour marks during working hours.
    HourlyPeak,
}

impl PatternKind {
    /// All four kinds in Figure 5 order.
    pub const ALL: [PatternKind; 4] = [
        PatternKind::Diurnal,
        PatternKind::Stable,
        PatternKind::Irregular,
        PatternKind::HourlyPeak,
    ];

    /// Draws a pattern kind from a cloud's mixture.
    pub fn sample_from_mix<R: Rng + ?Sized>(mix: &PatternMix, rng: &mut R) -> PatternKind {
        let picker = Categorical::new(&mix.weights()).expect("valid mixture weights");
        Self::ALL[picker.sample_index(rng)]
    }
}

impl std::fmt::Display for PatternKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PatternKind::Diurnal => "diurnal",
            PatternKind::Stable => "stable",
            PatternKind::Irregular => "irregular",
            PatternKind::HourlyPeak => "hourly-peak",
        })
    }
}

/// The utilization profile every VM of one service shares.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceUtilProfile {
    /// Pattern archetype.
    pub kind: PatternKind,
    /// Baseline utilization in percent.
    pub base: f64,
    /// Peak height above base in percent.
    pub amplitude: f64,
    /// Local (or global, if region-agnostic) hour of the diurnal peak.
    pub peak_hour: f64,
    /// Multiplier on the amplitude during weekends (the paper's Fig 5(a)
    /// shows weekday peaks ≈ 60% vs weekend ≈ 20%).
    pub weekend_damp: f64,
    /// If `true`, the activity clock is global (UTC): a geo-level load
    /// balancer routes demand, so peaks align across time zones.
    pub region_agnostic: bool,
    /// Std-dev of per-sample Gaussian noise each VM adds, in percent.
    pub noise_std: f64,
    /// Expected irregular spikes per day (irregular pattern only).
    pub spikes_per_day: f64,
    /// Duration of an irregular spike in minutes.
    pub spike_minutes: f64,
    /// Height of irregular/hourly spikes above base, in percent.
    pub spike_height: f64,
}

impl ServiceUtilProfile {
    /// Samples a profile for one service of the given archetype, with
    /// diurnal peak hours drawn from `peak_hour_range`.
    pub fn sample_in_range<R: Rng + ?Sized>(
        kind: PatternKind,
        region_agnostic: bool,
        peak_hour_range: (f64, f64),
        rng: &mut R,
    ) -> Self {
        let (peak_lo, peak_hi) = peak_hour_range;
        let peak = peak_lo + rng.random::<f64>() * (peak_hi - peak_lo).max(0.0);
        let base = 3.0 + rng.random::<f64>() * 10.0;
        match kind {
            PatternKind::Diurnal => Self {
                kind,
                base,
                // Some services peak near 50%, most lower -> p75 < 30%.
                amplitude: 8.0 + rng.random::<f64>() * 32.0,
                peak_hour: peak,
                weekend_damp: 0.25 + rng.random::<f64>() * 0.2,
                region_agnostic,
                noise_std: 1.5,
                spikes_per_day: 0.0,
                spike_minutes: 0.0,
                spike_height: 0.0,
            },
            PatternKind::Stable => Self {
                kind,
                base: 5.0 + rng.random::<f64>() * 25.0,
                amplitude: 0.0,
                peak_hour: 0.0,
                weekend_damp: 1.0,
                region_agnostic,
                noise_std: 0.8,
                spikes_per_day: 0.0,
                spike_minutes: 0.0,
                spike_height: 0.0,
            },
            PatternKind::Irregular => Self {
                kind,
                base: 2.0 + rng.random::<f64>() * 6.0,
                amplitude: 0.0,
                peak_hour: 0.0,
                weekend_damp: 1.0,
                region_agnostic,
                noise_std: 1.0,
                spikes_per_day: 0.5 + rng.random::<f64>() * 2.5,
                spike_minutes: 15.0 + rng.random::<f64>() * 45.0,
                spike_height: 40.0 + rng.random::<f64>() * 40.0,
            },
            PatternKind::HourlyPeak => Self {
                kind,
                base,
                amplitude: 6.0 + rng.random::<f64>() * 10.0,
                peak_hour: peak,
                weekend_damp: 0.3,
                region_agnostic,
                noise_std: 1.2,
                spikes_per_day: 0.0,
                spike_minutes: 10.0,
                spike_height: 25.0 + rng.random::<f64>() * 30.0,
            },
        }
    }

    /// Samples a profile with the default early-afternoon peak range.
    pub fn sample<R: Rng + ?Sized>(kind: PatternKind, region_agnostic: bool, rng: &mut R) -> Self {
        Self::sample_in_range(kind, region_agnostic, (13.0, 16.0), rng)
    }

    /// The deterministic (noise-free, spike-free) shape component at a UTC
    /// minute for a VM in a region with the given time-zone offset.
    #[must_use]
    pub fn shape_at(&self, utc_minute: i64, tz_offset_hours: i32) -> f64 {
        let clock = if self.region_agnostic {
            SimTime::from_minutes(utc_minute)
        } else {
            SimTime::from_minutes(utc_minute).to_local(tz_offset_hours)
        };
        match self.kind {
            PatternKind::Stable | PatternKind::Irregular => self.base,
            PatternKind::Diurnal => {
                let amp = if clock.is_weekend() {
                    self.amplitude * self.weekend_damp
                } else {
                    self.amplitude
                };
                self.base + amp * activity_bump(clock.fractional_hour_of_day(), self.peak_hour)
            }
            PatternKind::HourlyPeak => {
                let work_hours = !clock.is_weekend() && (8..18).contains(&clock.hour_of_day());
                let work_damp = if work_hours { 1.0 } else { self.weekend_damp };
                // Mild diurnal floor plus the on-the-hour/half-hour spike.
                let floor = self.base
                    + self.amplitude
                        * activity_bump(clock.fractional_hour_of_day(), self.peak_hour)
                        * work_damp;
                let minute_in_half_hour = f64::from(clock.minute_of_hour() % 30);
                let spike = if minute_in_half_hour < self.spike_minutes {
                    self.spike_height * (1.0 - minute_in_half_hour / self.spike_minutes) * work_damp
                } else {
                    0.0
                };
                floor + spike
            }
        }
    }
}

/// A smooth daily activity bump: raised cosine of half-width 7 hours
/// centred on `peak_hour`, in `[0, 1]`, wrapping across midnight.
#[must_use]
fn activity_bump(hour: f64, peak_hour: f64) -> f64 {
    let mut d = (hour - peak_hour).abs();
    if d > 12.0 {
        d = 24.0 - d;
    }
    const HALF_WIDTH: f64 = 7.0;
    if d >= HALF_WIDTH {
        0.0
    } else {
        0.5 * (1.0 + (std::f64::consts::PI * d / HALF_WIDTH).cos())
    }
}

/// Generates the telemetry for one VM: the service shape at each 5-minute
/// sample, plus this VM's own noise and (for irregular services) its own
/// spike schedule.
///
/// `start` is the first sample's time; `samples` the number of 5-minute
/// samples. The same `(profile, tz, rng-stream)` always produces the same
/// series.
pub fn generate_vm_series<R: Rng + ?Sized>(
    profile: &ServiceUtilProfile,
    tz_offset_hours: i32,
    start: SimTime,
    samples: usize,
    rng: &mut R,
) -> UtilSeries {
    // Pre-draw this VM's irregular spikes over the window.
    let spikes: Vec<(i64, i64, f64)> = if profile.kind == PatternKind::Irregular {
        let window_minutes = samples as i64 * SAMPLE_INTERVAL_MINUTES;
        let expected = profile.spikes_per_day * window_minutes as f64 / (24.0 * 60.0);
        let count = Poisson::new(expected.max(0.0))
            .expect("non-negative spike rate")
            .sample_count(rng);
        (0..count)
            .map(|_| {
                let at = start.minutes() + rng.random_range(0..window_minutes.max(1));
                let dur = (profile.spike_minutes * (0.5 + rng.random::<f64>())) as i64;
                let height = profile.spike_height * (0.6 + 0.4 * rng.random::<f64>());
                (at, at + dur.max(SAMPLE_INTERVAL_MINUTES), height)
            })
            .collect()
    } else {
        Vec::new()
    };

    let values = (0..samples).map(|i| {
        let minute = start.minutes() + i as i64 * SAMPLE_INTERVAL_MINUTES;
        let mut v = profile.shape_at(minute, tz_offset_hours);
        for &(s, e, h) in &spikes {
            if (s..e).contains(&minute) {
                v += h;
            }
        }
        v += profile.noise_std * StdNormal.sample(rng);
        v as f32
    });
    UtilSeries::from_percentages(start, values.collect::<Vec<_>>())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudscope_model::time::SAMPLES_PER_WEEK;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gen_week(
        kind: PatternKind,
        agnostic: bool,
        tz: i32,
        seed: u64,
    ) -> (ServiceUtilProfile, UtilSeries) {
        let mut rng = StdRng::seed_from_u64(seed);
        let profile = ServiceUtilProfile::sample(kind, agnostic, &mut rng);
        let series = generate_vm_series(&profile, tz, SimTime::ZERO, SAMPLES_PER_WEEK, &mut rng);
        (profile, series)
    }

    #[test]
    fn diurnal_has_daynight_contrast_and_weekend_dip() {
        let (profile, series) = gen_week(PatternKind::Diurnal, false, 0, 1);
        let vals = series.to_f64_vec();
        // Weekday (Tue) peak hour vs night.
        let day_idx = (24 + profile.peak_hour as usize) * 12;
        let night_idx = (24 + 3) * 12;
        assert!(vals[day_idx] > vals[night_idx] + profile.amplitude * 0.5);
        // Saturday same hour is damped.
        let sat_idx = (5 * 24 + profile.peak_hour as usize) * 12;
        assert!(vals[day_idx] > vals[sat_idx] + profile.amplitude * 0.3);
    }

    #[test]
    fn stable_is_flat() {
        let (profile, series) = gen_week(PatternKind::Stable, false, 0, 2);
        let vals = series.to_f64_vec();
        let summary: cloudscope_stats::Summary = vals.iter().copied().collect();
        assert!(summary.population_std_dev() < 3.0 * profile.noise_std + 0.5);
        assert!((summary.mean() - profile.base).abs() < 1.0);
    }

    #[test]
    fn irregular_spikes_rare_but_tall() {
        let (profile, series) = gen_week(PatternKind::Irregular, false, 0, 3);
        let vals = series.to_f64_vec();
        let above = vals.iter().filter(|&&v| v > profile.base + 20.0).count();
        let frac = above as f64 / vals.len() as f64;
        assert!(frac > 0.0, "no spikes generated");
        assert!(frac < 0.2, "spikes too frequent: {frac}");
        let max = vals.iter().cloned().fold(0.0f64, f64::max);
        assert!(max > 30.0, "spikes too small: {max}");
    }

    #[test]
    fn hourly_peak_spikes_on_the_half_hour() {
        let (_, series) = gen_week(PatternKind::HourlyPeak, false, 0, 4);
        let vals = series.to_f64_vec();
        // Tuesday 10:00-16:00: compare on-the-hour samples vs :20 samples.
        let mut on_mark = 0.0;
        let mut off_mark = 0.0;
        let mut n = 0.0;
        for hour in 10..16 {
            let base_idx = (24 + hour) * 12;
            on_mark += vals[base_idx];
            off_mark += vals[base_idx + 4]; // :20
            n += 1.0;
        }
        assert!(
            on_mark / n > off_mark / n + 10.0,
            "on {on_mark} vs off {off_mark}"
        );
    }

    #[test]
    fn region_agnostic_aligns_peaks_across_time_zones() {
        // Same service profile, two regions 8 hours apart.
        let mut rng = StdRng::seed_from_u64(5);
        let profile = ServiceUtilProfile::sample(PatternKind::Diurnal, true, &mut rng);
        let a: Vec<f64> = (0..SAMPLES_PER_WEEK as i64)
            .map(|i| profile.shape_at(i * 5, 0))
            .collect();
        let b: Vec<f64> = (0..SAMPLES_PER_WEEK as i64)
            .map(|i| profile.shape_at(i * 5, -8))
            .collect();
        assert_eq!(a, b, "geo-LB service must ignore the local clock");

        // The same service without geo-LB shifts with the zone.
        let local = ServiceUtilProfile {
            region_agnostic: false,
            ..profile
        };
        let c: Vec<f64> = (0..SAMPLES_PER_WEEK as i64)
            .map(|i| local.shape_at(i * 5, -8))
            .collect();
        assert_ne!(a, c);
        let r = cloudscope_stats::pearson(&a, &c).unwrap();
        assert!(r < 0.7, "8-hour shift should decorrelate: {r}");
    }

    #[test]
    fn same_service_vms_correlate() {
        let mut rng = StdRng::seed_from_u64(6);
        let profile = ServiceUtilProfile::sample(PatternKind::Diurnal, false, &mut rng);
        let v1 = generate_vm_series(&profile, -5, SimTime::ZERO, 2016, &mut rng).to_f64_vec();
        let v2 = generate_vm_series(&profile, -5, SimTime::ZERO, 2016, &mut rng).to_f64_vec();
        let r = cloudscope_stats::pearson(&v1, &v2).unwrap();
        assert!(r > 0.8, "same-service VMs should correlate: {r}");
    }

    #[test]
    fn different_phase_services_decorrelate() {
        let morning = ServiceUtilProfile {
            kind: PatternKind::Diurnal,
            base: 10.0,
            amplitude: 30.0,
            peak_hour: 6.0,
            weekend_damp: 1.0,
            region_agnostic: false,
            noise_std: 0.5,
            spikes_per_day: 0.0,
            spike_minutes: 0.0,
            spike_height: 0.0,
        };
        let evening = ServiceUtilProfile {
            peak_hour: 18.0,
            ..morning
        };
        let a: Vec<f64> = (0..2016i64).map(|i| morning.shape_at(i * 5, 0)).collect();
        let b: Vec<f64> = (0..2016i64).map(|i| evening.shape_at(i * 5, 0)).collect();
        let r = cloudscope_stats::pearson(&a, &b).unwrap();
        assert!(r < 0.2, "opposite phases should not correlate: {r}");
    }

    #[test]
    fn pattern_mix_sampling_respects_weights() {
        let mix = PatternMix {
            diurnal: 0.7,
            stable: 0.3,
            irregular: 0.0,
            hourly_peak: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(7);
        let mut diurnal = 0;
        for _ in 0..2000 {
            match PatternKind::sample_from_mix(&mix, &mut rng) {
                PatternKind::Diurnal => diurnal += 1,
                PatternKind::Stable => {}
                other => panic!("zero-weight pattern drawn: {other}"),
            }
        }
        let frac = f64::from(diurnal) / 2000.0;
        assert!((frac - 0.7).abs() < 0.05, "diurnal fraction {frac}");
    }

    #[test]
    fn utilization_stays_in_percent_range() {
        for (seed, kind) in PatternKind::ALL.iter().enumerate() {
            let (_, series) = gen_week(*kind, false, -8, seed as u64 + 10);
            for v in series.iter() {
                assert!((0.0..=100.0).contains(&v));
            }
        }
    }

    #[test]
    fn activity_bump_wraps_midnight() {
        // Peak at 23:00: 01:00 is 2h away, not 22h.
        assert!(activity_bump(1.0, 23.0) > 0.5);
        assert_eq!(activity_bump(11.0, 23.0), 0.0);
    }
}
