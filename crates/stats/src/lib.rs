//! # cloudscope-stats
//!
//! Statistics substrate for the cloudscope suite: the estimators every
//! figure of the DSN'23 study is built from (ECDFs, box-plots with 1.5-IQR
//! whiskers, 1-D/2-D histograms, Pearson/Spearman correlation, percentile
//! bands, the coefficient of variation) plus sampling distributions
//! (normal, log-normal, exponential, Pareto, Poisson, Zipf, alias-method
//! categorical) implemented from first principles on [`rand`].
//!
//! ## Example
//! ```
//! use cloudscope_stats::ecdf::Ecdf;
//! use cloudscope_stats::correlation::pearson;
//!
//! # fn main() -> Result<(), cloudscope_stats::error::StatsError> {
//! let cdf = Ecdf::new(vec![1.0, 4.0, 2.0, 8.0])?;
//! assert_eq!(cdf.median(), 2.0);
//! let r = pearson(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0])?;
//! assert!((r - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boxplot;
pub mod correlation;
pub mod dist;
pub mod ecdf;
pub mod error;
pub mod histogram;
pub mod percentile;
pub mod sketch;
pub mod summary;

pub use boxplot::BoxPlot;
pub use correlation::{pearson, pearson_or_zero, spearman};
pub use ecdf::Ecdf;
pub use error::StatsError;
pub use histogram::{Axis, Heatmap, Histogram};
pub use percentile::{percentile, percentiles};
pub use sketch::P2Quantile;
pub use summary::{coefficient_of_variation, Summary};
