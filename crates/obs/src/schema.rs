//! A metrics schema: the set of metric names a pipeline is expected to
//! emit and their kinds, without the values. `scripts/check.sh` commits
//! a schema and validates each run's snapshot against it, so renamed or
//! retyped metrics fail CI while value drift does not.

use crate::export::{parse_json_object, Json, ParseError};
use crate::snapshot::Snapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Metric name → kind (`counter` / `gauge` / `histogram`), ordered by
/// name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schema {
    /// Name → kind.
    pub metrics: BTreeMap<String, String>,
}

impl Schema {
    /// The schema a snapshot conforms to: its names and kinds.
    #[must_use]
    pub fn from_snapshot(snapshot: &Snapshot) -> Self {
        Self {
            metrics: snapshot
                .metrics
                .iter()
                .map(|(name, value)| (name.clone(), value.kind().to_owned()))
                .collect(),
        }
    }

    /// Serializes as a JSON object of name → kind, one line per metric,
    /// deterministically ordered.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let mut first = true;
        for (name, kind) in &self.metrics {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = write!(out, "  \"{name}\": \"{kind}\"");
        }
        out.push_str("\n}\n");
        out
    }

    /// Parses a document produced by [`Schema::to_json`].
    pub fn parse_json(text: &str) -> Result<Self, ParseError> {
        let mut metrics = BTreeMap::new();
        for (name, value) in parse_json_object(text)? {
            let Json::Str(kind) = value else {
                return Err(ParseError {
                    message: format!("schema entry {name}: kind must be a string"),
                    position: 0,
                });
            };
            if !matches!(kind.as_str(), "counter" | "gauge" | "histogram") {
                return Err(ParseError {
                    message: format!("schema entry {name}: unknown kind {kind}"),
                    position: 0,
                });
            }
            metrics.insert(name, kind);
        }
        Ok(Self { metrics })
    }

    /// Checks that every metric in `snapshot` is declared in this schema
    /// with a matching kind. Returns the list of violations (empty =
    /// valid). Metrics declared in the schema but absent from the
    /// snapshot are allowed — smaller runs exercise fewer code paths.
    #[must_use]
    pub fn validate(&self, snapshot: &Snapshot) -> Vec<String> {
        let mut violations = Vec::new();
        for (name, value) in &snapshot.metrics {
            match self.metrics.get(name) {
                None => violations.push(format!("metric {name} is not in the schema")),
                Some(kind) if kind != value.kind() => violations.push(format!(
                    "metric {name} is a {} but the schema says {kind}",
                    value.kind()
                )),
                Some(_) => {}
            }
        }
        violations
    }
}
