//! A knowledge-store wrapper that injects seeded transient write
//! failures, for exercising the extraction pipeline's retry path.

use cloudscope_kb::{FeedOutcome, KbStore, StoreError, WorkloadKnowledge};
use cloudscope_sim::rng::RngFactory;
use rand::rngs::StdRng;
use rand::Rng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// Wraps any [`KbStore`] and makes each write fail with a seeded
/// probability before it reaches the backend — the storage-side
/// counterpart of [`corrupt_trace`](crate::corrupt_trace). Failures are
/// always [`StoreError::Transient`], so a retrying caller eventually
/// lands every write (unless the probability is 1).
#[derive(Debug)]
pub struct FlakyStore<S> {
    inner: S,
    failure_probability: f64,
    rng: Mutex<StdRng>,
    attempts: AtomicUsize,
    injected: AtomicUsize,
}

impl<S> FlakyStore<S> {
    /// Wraps `inner`, failing each write with `failure_probability`
    /// (clamped to `[0, 1]`), drawing from a stream seeded by `seed`.
    #[must_use]
    pub fn new(inner: S, seed: u64, failure_probability: f64) -> Self {
        Self {
            inner,
            failure_probability: failure_probability.clamp(0.0, 1.0),
            rng: Mutex::new(RngFactory::new(seed).stream("flaky-store")),
            attempts: AtomicUsize::new(0),
            injected: AtomicUsize::new(0),
        }
    }

    /// The wrapped backend.
    #[must_use]
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwraps the backend.
    #[must_use]
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Writes attempted so far (including failed ones).
    #[must_use]
    pub fn attempts(&self) -> usize {
        self.attempts.load(Ordering::Relaxed)
    }

    /// Failures injected so far.
    #[must_use]
    pub fn injected_failures(&self) -> usize {
        self.injected.load(Ordering::Relaxed)
    }
}

impl<S: KbStore> KbStore for FlakyStore<S> {
    fn try_upsert(&self, knowledge: WorkloadKnowledge) -> Result<bool, StoreError> {
        self.attempts.fetch_add(1, Ordering::Relaxed);
        let fail = self
            .rng
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .random_bool(self.failure_probability);
        if fail {
            self.injected.fetch_add(1, Ordering::Relaxed);
            cloudscope_obs::counter("faults.flaky.injected_failures").inc();
            return Err(StoreError::Transient("injected write failure"));
        }
        self.inner.try_upsert(knowledge)
    }

    fn try_feed(&self, batch: &[WorkloadKnowledge]) -> FeedOutcome {
        // Inject per entry (each batched entry is one write attempt), so
        // the failure ledger is identical to feeding the batch through
        // `try_upsert` one entry at a time. Survivors reach the backend
        // as one batch, preserving its batched-write semantics.
        self.attempts.fetch_add(batch.len(), Ordering::Relaxed);
        let mut outcome = FeedOutcome::default();
        let mut survivors: Vec<usize> = Vec::with_capacity(batch.len());
        {
            let mut rng = self.rng.lock().unwrap_or_else(PoisonError::into_inner);
            for index in 0..batch.len() {
                if rng.random_bool(self.failure_probability) {
                    self.injected.fetch_add(1, Ordering::Relaxed);
                    cloudscope_obs::counter("faults.flaky.injected_failures").inc();
                    outcome
                        .failures
                        .push((index, StoreError::Transient("injected write failure")));
                } else {
                    survivors.push(index);
                }
            }
        }
        if !survivors.is_empty() {
            let surviving: Vec<WorkloadKnowledge> =
                survivors.iter().map(|&i| batch[i].clone()).collect();
            let inner_outcome = self.inner.try_feed(&surviving);
            outcome.stored = inner_outcome.stored;
            outcome.stale = inner_outcome.stale;
            // Remap the backend's failure indices (positions within the
            // surviving sub-batch) back to positions in the caller's batch.
            for (sub_index, error) in inner_outcome.failures {
                outcome.failures.push((survivors[sub_index], error));
            }
        }
        outcome.failures.sort_by_key(|&(index, _)| index);
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudscope_analysis::PatternClassifier;
    use cloudscope_kb::{run_extraction_pipeline_with, KnowledgeBase, RetryPolicy};
    use cloudscope_tracegen::{generate, GeneratorConfig};
    use std::time::Duration;

    #[test]
    fn zero_probability_delegates_cleanly() {
        let g = generate(&GeneratorConfig::small(31));
        let store = FlakyStore::new(KnowledgeBase::new(), 31, 0.0);
        let stats = run_extraction_pipeline_with(
            &g.trace,
            &store,
            &PatternClassifier::default(),
            2,
            2,
            &RetryPolicy::default(),
        );
        assert_eq!(stats.retries, 0);
        assert_eq!(stats.failed, 0);
        assert_eq!(store.injected_failures(), 0);
        assert_eq!(store.inner().len(), stats.stored);
    }

    #[test]
    fn retries_ride_out_a_30_percent_failure_rate() {
        let g = generate(&GeneratorConfig::small(32));
        let store = FlakyStore::new(KnowledgeBase::new(), 32, 0.3);
        let retry = RetryPolicy {
            max_attempts: 10,
            base_backoff: Duration::ZERO,
        };
        let stats = run_extraction_pipeline_with(
            &g.trace,
            &store,
            &PatternClassifier::default(),
            2,
            2,
            &retry,
        );
        // With 10 attempts per entry a 0.3 failure rate is survivable:
        // everything lands, and the KB matches a clean run exactly.
        assert_eq!(stats.failed, 0);
        assert!(stats.retries > 0, "a 30% failure rate must trigger retries");
        assert_eq!(store.injected_failures(), stats.retries);
        let clean = KnowledgeBase::new();
        let clean_stats = run_extraction_pipeline_with(
            &g.trace,
            &clean,
            &PatternClassifier::default(),
            2,
            2,
            &RetryPolicy::default(),
        );
        assert_eq!(stats.stored, clean_stats.stored);
        for sub in g.trace.subscriptions() {
            assert_eq!(store.inner().get(sub.id), clean.get(sub.id));
        }
    }

    #[test]
    fn batched_feed_matches_per_entry_injection() {
        use cloudscope_kb::WorkloadKnowledge;
        use cloudscope_model::ids::SubscriptionId;
        use cloudscope_model::prelude::{CloudKind, SimTime};

        let entry = |id: u32| WorkloadKnowledge {
            subscription: SubscriptionId::new(id),
            cloud: CloudKind::Public,
            pattern: None,
            lifetime: cloudscope_kb::LifetimeClass::Mixed,
            mean_util: 10.0,
            p95_util: 20.0,
            util_cv: 0.1,
            regions: 1,
            region_agnostic: None,
            vm_count: 1,
            cores: 4,
            updated_at: SimTime::ZERO,
        };
        let batch: Vec<WorkloadKnowledge> = (0..64).map(entry).collect();

        // Same seed, same probability: the batched path must draw the
        // same injection stream as entry-at-a-time writes.
        let batched = FlakyStore::new(KnowledgeBase::new(), 77, 0.4);
        let outcome = batched.try_feed(&batch);
        assert_eq!(
            outcome.stored + outcome.stale + outcome.failures.len(),
            batch.len()
        );
        assert_eq!(batched.attempts(), batch.len());
        assert_eq!(batched.injected_failures(), outcome.failures.len());
        assert!(
            outcome.failures.windows(2).all(|w| w[0].0 < w[1].0),
            "failure indices ascend"
        );

        let sequential = FlakyStore::new(KnowledgeBase::new(), 77, 0.4);
        let mut seq_failures = Vec::new();
        for (index, k) in batch.iter().enumerate() {
            if sequential.try_upsert(k.clone()).is_err() {
                seq_failures.push(index);
            }
        }
        let batch_failures: Vec<usize> = outcome.failures.iter().map(|&(i, _)| i).collect();
        assert_eq!(batch_failures, seq_failures);
        for k in &batch {
            assert_eq!(
                batched.inner().get(k.subscription),
                sequential.inner().get(k.subscription)
            );
        }
    }

    #[test]
    fn total_outage_is_reported_not_hung() {
        let g = generate(&GeneratorConfig::small(33));
        let store = FlakyStore::new(KnowledgeBase::new(), 33, 1.0);
        let retry = RetryPolicy {
            max_attempts: 2,
            base_backoff: Duration::ZERO,
        };
        let stats = run_extraction_pipeline_with(
            &g.trace,
            &store,
            &PatternClassifier::default(),
            2,
            2,
            &retry,
        );
        assert_eq!(stats.stored, 0);
        assert!(stats.failed > 0);
        assert!(store.inner().is_empty());
        assert_eq!(store.attempts(), stats.failed * 2);
    }
}
