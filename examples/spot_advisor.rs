//! Spot advisor: build the workload knowledge base, select spot-VM
//! candidates (short-lived public workloads), predict eviction rates, and
//! plan cost-minimal spot/on-demand mixtures.
//!
//! ```sh
//! cargo run --release --example spot_advisor
//! ```

use cloudscope::mgmt::spot::{spot_candidates, EvictionFeatures, EvictionPredictor, SpotMixPolicy};
use cloudscope::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let generated = generate(&GeneratorConfig::small(13));

    // Feed the knowledge base from telemetry.
    let kb = KnowledgeBase::new();
    let classifier = PatternClassifier::default();
    for cloud in CloudKind::BOTH {
        kb.feed(extract_cloud_knowledge(
            &generated.trace,
            cloud,
            &classifier,
            4,
        ));
    }
    println!("knowledge base: {} subscriptions", kb.len());

    let candidates = spot_candidates(&kb);
    println!(
        "{} spot-adoption candidates ({} VMs total)",
        candidates.len(),
        candidates.iter().map(|k| k.vm_count).sum::<usize>()
    );

    // Eviction risk across cluster load levels.
    let predictor = EvictionPredictor::default();
    println!("\npredicted eviction rate per hour:");
    for load in [0.3, 0.6, 0.9] {
        let rate = predictor.eviction_rate_per_hour(&EvictionFeatures {
            cluster_allocation_ratio: load,
            relative_vm_size: 0.1,
            demand_intensity: 0.7,
        });
        println!(
            "  cluster {:.0}% allocated -> {:.1}%/h",
            100.0 * load,
            100.0 * rate
        );
    }

    // Plan a mixture for a 20-VM batch needing 16 survivors over 6 hours.
    let policy = SpotMixPolicy::new(0.3, 0.95)?;
    println!("\nspot/on-demand mixtures for 20 VMs, 16 required, 6 hours:");
    for load in [0.3, 0.6, 0.9] {
        let survival = predictor.survival_probability(
            &EvictionFeatures {
                cluster_allocation_ratio: load,
                relative_vm_size: 0.1,
                demand_intensity: 0.7,
            },
            6.0,
        );
        let plan = policy.plan(20, 16, survival)?;
        println!(
            "  load {:.0}%: {} spot + {} on-demand (availability {:.3}, cost {:.0}% of on-demand)",
            100.0 * load,
            plan.spot_vms,
            plan.on_demand_vms,
            plan.availability,
            100.0 * plan.relative_cost
        );
    }
    Ok(())
}
