//! Error type for the time-series substrate.

use std::error::Error;
use std::fmt;

/// Errors returned by time-series transforms and detectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SeriesError {
    /// The series is too short for the requested operation; carries its
    /// length.
    TooShort(usize),
    /// An FFT buffer length was not a power of two; carries the length.
    NotPowerOfTwo(usize),
    /// The series is constant, so variance-normalized analysis is
    /// undefined.
    ZeroVariance,
    /// Two series that must share start/step/length do not.
    Misaligned,
    /// A resampling factor or window was invalid.
    BadResampleFactor,
}

impl fmt::Display for SeriesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeriesError::TooShort(n) => write!(f, "series too short: {n} samples"),
            SeriesError::NotPowerOfTwo(n) => {
                write!(f, "fft length {n} is not a power of two")
            }
            SeriesError::ZeroVariance => f.write_str("series has zero variance"),
            SeriesError::Misaligned => f.write_str("series are misaligned"),
            SeriesError::BadResampleFactor => f.write_str("invalid resample factor"),
        }
    }
}

impl Error for SeriesError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        assert!(SeriesError::TooShort(3).to_string().contains("3"));
        assert!(SeriesError::NotPowerOfTwo(6)
            .to_string()
            .contains("power of two"));
        assert!(SeriesError::ZeroVariance.to_string().contains("variance"));
    }

    #[test]
    fn trait_bounds() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<SeriesError>();
    }
}
