//! Newtyped identifiers for every entity in the cloud model.
//!
//! Using distinct types (rather than bare `u32`/`u64`) statically prevents
//! mixing up, say, a [`NodeId`] and a [`ClusterId`] when wiring the
//! allocation service to the telemetry pipeline (C-NEWTYPE).

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        pub struct $name(u32);

        impl $name {
            /// Creates an identifier from its raw index.
            ///
            /// # Examples
            /// ```
            /// # use cloudscope_model::ids::*;
            #[doc = concat!("let id = ", stringify!($name), "::new(7);")]
            /// assert_eq!(id.index(), 7);
            /// ```
            #[must_use]
            pub const fn new(index: u32) -> Self {
                Self(index)
            }

            /// Returns the raw index backing this identifier.
            #[must_use]
            pub const fn index(self) -> u32 {
                self.0
            }

            /// Returns the raw index as a `usize`, convenient for vector
            /// indexing in dense per-entity tables.
            #[must_use]
            pub const fn as_usize(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "-{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(index: u32) -> Self {
                Self(index)
            }
        }

        impl From<$name> for u32 {
            fn from(id: $name) -> u32 {
                id.0
            }
        }
    };
}

define_id!(
    /// Identifies a geographic region (one or more datacenters).
    RegionId,
    "region"
);
define_id!(
    /// Identifies a datacenter within a region.
    DatacenterId,
    "dc"
);
define_id!(
    /// Identifies a cluster: thousands of nodes with identical SKUs.
    ClusterId,
    "cluster"
);
define_id!(
    /// Identifies a rack within a cluster; racks serve as fault domains.
    RackId,
    "rack"
);
define_id!(
    /// Identifies a physical node (server) within a cluster.
    NodeId,
    "node"
);
define_id!(
    /// Identifies a customer subscription (internal or external user).
    SubscriptionId,
    "sub"
);
define_id!(
    /// Identifies a logical service; large first-party services span many
    /// VMs and possibly many regions.
    ServiceId,
    "svc"
);

/// Identifies a virtual machine. VM populations reach the millions, so this
/// is the one identifier backed by `u64`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct VmId(u64);

impl VmId {
    /// Creates a VM identifier from its raw index.
    ///
    /// # Examples
    /// ```
    /// # use cloudscope_model::ids::VmId;
    /// assert_eq!(VmId::new(3).index(), 3);
    /// ```
    #[must_use]
    pub const fn new(index: u64) -> Self {
        Self(index)
    }

    /// Returns the raw index backing this identifier.
    #[must_use]
    pub const fn index(self) -> u64 {
        self.0
    }

    /// Returns the raw index as a `usize` for dense table indexing.
    #[must_use]
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vm-{}", self.0)
    }
}

impl From<u64> for VmId {
    fn from(index: u64) -> Self {
        Self(index)
    }
}

impl From<VmId> for u64 {
    fn from(id: VmId) -> u64 {
        id.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_roundtrip_and_display() {
        let node = NodeId::new(42);
        assert_eq!(node.index(), 42);
        assert_eq!(node.to_string(), "node-42");
        assert_eq!(u32::from(node), 42);
        assert_eq!(NodeId::from(42), node);
    }

    #[test]
    fn vm_id_is_u64_backed() {
        let id = VmId::new(u64::MAX);
        assert_eq!(id.index(), u64::MAX);
        assert_eq!(VmId::from(7u64).to_string(), "vm-7");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        let mut set = HashSet::new();
        set.insert(ClusterId::new(1));
        set.insert(ClusterId::new(1));
        set.insert(ClusterId::new(2));
        assert_eq!(set.len(), 2);
        assert!(ClusterId::new(1) < ClusterId::new(2));
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(RegionId::default().index(), 0);
        assert_eq!(VmId::default().index(), 0);
    }

    #[test]
    fn distinct_id_types_do_not_compare() {
        // Purely a compile-shape check: as_usize lets dense tables index.
        assert_eq!(RackId::new(9).as_usize(), 9usize);
        assert_eq!(SubscriptionId::new(3).as_usize(), 3usize);
        assert_eq!(ServiceId::new(3).as_usize(), 3usize);
        assert_eq!(DatacenterId::new(5).to_string(), "dc-5");
    }
}
