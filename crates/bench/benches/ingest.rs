//! Benchmarks for the online ingestion service: the medium trace's
//! telemetry replayed as hourly wire-sample batches through partitioned
//! `Ingestor`s at 1/2/4/8 workers, with an offer-path latency audit.
//! Results merge into `BENCH_ingest.json` at the repo root.
//!
//! The final `verify` "benchmark" derives the sustained samples/sec
//! headline from the measured medians and gates the redesign's
//! acceptance criteria: a sustained-throughput floor at the best worker
//! count, and a p99 per-offer latency bound measured on a live replay.

use cloudscope::analysis::PatternClassifier;
use cloudscope::faults::WireSample;
use cloudscope::ingest::{IngestConfig, Ingestor};
use cloudscope::model::time::{MINUTES_PER_HOUR, MINUTES_PER_WEEK};
use cloudscope::par::Parallelism;
use cloudscope::prelude::*;
use cloudscope::tracegen::generate_with;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::OnceLock;
use std::time::Instant;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn generated() -> &'static GeneratedTrace {
    static TRACE: OnceLock<GeneratedTrace> = OnceLock::new();
    TRACE.get_or_init(|| generate_with(&GeneratorConfig::medium(7171), Parallelism::default()))
}

/// One worker's stream, pre-bucketed by delivery hour: the monitor
/// cadence delivers a slot's sample inside its own hour, so replaying
/// bucket `h` then advancing the watermark to the end of hour `h`
/// reproduces live arrival order without simulator overhead.
type HourBuckets = Vec<Vec<(VmId, WireSample)>>;

/// Hours a replay spans: the trace week plus enough slack for the
/// default watermark delay to seal the final slots.
fn replay_hours() -> usize {
    let delay = IngestConfig::default().watermark_delay_minutes;
    ((MINUTES_PER_WEEK + delay) / MINUTES_PER_HOUR) as usize + 1
}

/// Splits the trace's clean wire streams across `workers` partitions,
/// VM-round-robin, each pre-bucketed by delivery hour.
fn partitions(workers: usize) -> Vec<HourBuckets> {
    let g = generated();
    let hours = replay_hours();
    let mut parts: Vec<HourBuckets> = vec![vec![Vec::new(); hours]; workers];
    let mut with_util = 0usize;
    for vm in g.trace.vms() {
        let Some(util) = g.trace.util(vm.id) else {
            continue;
        };
        let buckets = &mut parts[with_util % workers];
        with_util += 1;
        for i in 0..util.len() {
            let Some(value) = util.get(i) else { continue };
            let minute = util.time_at(i).minutes();
            let hour = (minute / MINUTES_PER_HOUR) as usize;
            buckets[hour].push((vm.id, WireSample { minute, value }));
        }
    }
    parts
}

/// Total wire samples across every partition (constant per trace).
fn total_samples() -> u64 {
    static TOTAL: OnceLock<u64> = OnceLock::new();
    *TOTAL.get_or_init(|| {
        let g = generated();
        g.trace
            .vms()
            .iter()
            .filter_map(|vm| g.trace.util(vm.id))
            .map(|u| u.present_count() as u64)
            .sum()
    })
}

/// Replays one partition through a fresh `Ingestor`: offer every sample
/// of each hour, then advance the watermark past it — sealing ripe
/// slots and re-running Figure 5 classification when the week window
/// closes. Returns (applied, closes) for the sanity audit.
fn replay(buckets: &HourBuckets) -> (u64, usize) {
    let mut ingestor = Ingestor::new(IngestConfig::default(), PatternClassifier::default());
    let mut closes = 0usize;
    for (hour, bucket) in buckets.iter().enumerate() {
        for &(vm, sample) in bucket {
            ingestor.offer(vm, sample);
        }
        let now = SimTime::from_minutes((hour as i64 + 1) * MINUTES_PER_HOUR);
        closes += ingestor.advance_watermark(now).len();
    }
    let end = SimTime::from_minutes(replay_hours() as i64 * MINUTES_PER_HOUR);
    closes += ingestor.drain(end).len();
    let report = ingestor.report();
    assert_eq!(report.dropped_late, 0, "clean in-order replay never drops");
    (report.samples_applied, closes)
}

/// Runs every partition on its own thread; returns when all drain.
fn run_workers(parts: &[HourBuckets]) {
    std::thread::scope(|scope| {
        for part in parts {
            scope.spawn(move || black_box(replay(part)));
        }
    });
}

// --- benchmarks --------------------------------------------------------

fn bench_ingest_stream(c: &mut Criterion) {
    // First group to run: point the harness at the repo-root JSON file.
    c.json_output(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_ingest.json"
    ));
    let smoke = std::env::var_os("CLOUDSCOPE_BENCH_SMOKE").is_some();
    let samples = if smoke { 3 } else { 10 };

    let mut group = c.benchmark_group("ingest_stream");
    group.sample_size(samples);
    for workers in WORKER_COUNTS {
        let parts = partitions(workers);
        // One audited replay before timing: the full stream must apply
        // and every worker must close its week window.
        let (applied, closes): (u64, usize) = parts
            .iter()
            .map(replay)
            .fold((0, 0), |(a, c), (pa, pc)| (a + pa, c + pc));
        assert_eq!(applied, total_samples(), "every clean sample applies");
        assert!(closes >= workers, "each worker closes its week window");
        group.bench_with_input(BenchmarkId::new("workers", workers), &workers, |b, _| {
            b.iter(|| run_workers(&parts))
        });
    }
    group.finish();
}

/// Not a timing benchmark: derives the sustained samples/sec headline
/// for every worker count from the medians above, measures the p99
/// per-offer latency on a live single-worker replay, and panics if the
/// throughput floor or the latency bound regresses.
fn verify_acceptance(c: &mut Criterion) {
    let median = |id: &str| {
        c.results()
            .iter()
            .find(|r| r.id == id)
            .unwrap_or_else(|| panic!("missing bench result {id}"))
            .median_ns
    };

    let medians: Vec<(usize, f64)> = WORKER_COUNTS
        .iter()
        .map(|&w| (w, median(&format!("ingest_stream/workers/{w}"))))
        .collect();

    let total = total_samples() as f64;
    c.report_metric("ingest/samples_total", total);
    let mut best = 0.0f64;
    for &(workers, ns) in &medians {
        let per_sec = total / (ns / 1e9);
        c.report_metric(format!("ingest/samples_per_sec/{workers}"), per_sec);
        println!("ingest sustained throughput at {workers} workers: {per_sec:.0} samples/s");
        best = best.max(per_sec);
    }
    assert!(
        best >= 200_000.0,
        "sustained ingest throughput floor is 200k samples/s, best was {best:.0}"
    );

    // Scaling sanity, hardware-aware: partitioned ingestors share
    // nothing, so on a machine with the threads to show it, 8 workers
    // must beat 1. Hosts without 8 threads cannot, so the gate skips.
    let speedup = medians[0].1 / medians[medians.len() - 1].1;
    c.report_metric("ingest/speedup_1_to_8", speedup);
    println!("ingest 1 -> 8 worker speedup: {speedup:.2}x");
    if std::thread::available_parallelism().map_or(0, |p| p.get()) >= 8 {
        assert!(
            speedup >= 1.2,
            "share-nothing partitions must scale: 1->8 workers gave {speedup:.2}x"
        );
    }

    // p99 offer latency, measured on a live replay of worker 0's
    // single-partition stream: every offer individually timed. The
    // bound is generous (1 ms) because the claim is about tail
    // behavior — one slow offer stalls a delivery thread — not mean
    // throughput, which the floor above already gates.
    let parts = partitions(1);
    let mut ingestor = Ingestor::new(IngestConfig::default(), PatternClassifier::default());
    let mut latencies_ns: Vec<u64> = Vec::with_capacity(total as usize);
    for (hour, bucket) in parts[0].iter().enumerate() {
        for &(vm, sample) in bucket {
            let t0 = Instant::now();
            ingestor.offer(vm, sample);
            latencies_ns.push(t0.elapsed().as_nanos() as u64);
        }
        let now = SimTime::from_minutes((hour as i64 + 1) * MINUTES_PER_HOUR);
        black_box(ingestor.advance_watermark(now).len());
    }
    black_box(ingestor.drain(SimTime::from_minutes(
        replay_hours() as i64 * MINUTES_PER_HOUR,
    )));
    assert!(!latencies_ns.is_empty());
    latencies_ns.sort_unstable();
    let p99 = latencies_ns[latencies_ns.len() * 99 / 100];
    let p50 = latencies_ns[latencies_ns.len() / 2];
    c.report_metric("ingest/p50_offer_ns", p50 as f64);
    c.report_metric("ingest/p99_offer_ns", p99 as f64);
    println!(
        "ingest offer latency over {} offers: p50 {p50} ns, p99 {p99} ns",
        latencies_ns.len()
    );
    assert!(
        p99 < 1_000_000,
        "p99 offer latency must stay under 1 ms, got {p99} ns"
    );
}

criterion_group!(ingest, bench_ingest_stream, verify_acceptance);
criterion_main!(ingest);
