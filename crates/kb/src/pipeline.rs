//! The continuous extraction pipeline of Section V: worker threads sweep
//! the subscriptions, extract their workload knowledge from telemetry,
//! and feed the knowledge base — the shape a production deployment would
//! have, with the trace standing in for the telemetry stream.

use crate::extract::extract_subscription_knowledge;
use crate::store::KnowledgeBase;
use cloudscope_analysis::PatternClassifier;
use cloudscope_model::ids::SubscriptionId;
use cloudscope_model::trace::Trace;
use cloudscope_par::Parallelism;

/// Extraction batch size per worker: large enough that each batch keeps
/// every worker busy across several steal chunks, small enough that the
/// buffered [`WorkloadKnowledge`](crate::knowledge::WorkloadKnowledge)
/// values between upserts
/// stay bounded regardless of trace size.
const EXTRACTION_BATCH_PER_WORKER: usize = 64;

/// Statistics of one pipeline run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PipelineStats {
    /// Subscriptions processed.
    pub processed: usize,
    /// Entries stored (subscriptions with at least one VM).
    pub stored: usize,
    /// Subscriptions skipped (no VMs).
    pub skipped: usize,
}

/// Runs the extraction pipeline over every subscription in the trace
/// with `workers` threads, feeding `kb`. Per-subscription extraction is
/// independent, so results are identical to a sequential sweep.
///
/// # Panics
/// Panics if `workers == 0`.
#[must_use]
pub fn run_extraction_pipeline(
    trace: &Trace,
    kb: &KnowledgeBase,
    classifier: &PatternClassifier,
    max_classified_vms_per_sub: usize,
    workers: usize,
) -> PipelineStats {
    let subscriptions: Vec<SubscriptionId> =
        trace.subscriptions().iter().map(|sub| sub.id).collect();
    // Extraction (the expensive part) runs on the shared executor; the
    // upserts happen on this thread in subscription order, so the KB sees
    // the same feed sequence for any worker count. Subscriptions are
    // processed in bounded batches so peak memory holds O(batch) extracted
    // knowledge values, not O(subscriptions), no matter the trace size.
    let parallelism = Parallelism::with_workers(workers);
    let batch = (workers * EXTRACTION_BATCH_PER_WORKER).max(1);
    let mut stats = PipelineStats::default();
    for chunk in subscriptions.chunks(batch) {
        let extracted = parallelism.par_map(chunk, |&sub| {
            extract_subscription_knowledge(trace, sub, classifier, max_classified_vms_per_sub, None)
        });
        for knowledge in extracted {
            stats.processed += 1;
            match knowledge {
                Some(knowledge) => {
                    if kb.upsert(knowledge) {
                        stats.stored += 1;
                    }
                }
                None => stats.skipped += 1,
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudscope_tracegen::{generate, GeneratorConfig};

    #[test]
    fn pipeline_matches_sequential_extraction() {
        let g = generate(&GeneratorConfig::small(61));
        let classifier = PatternClassifier::default();

        let parallel_kb = KnowledgeBase::new();
        let stats = run_extraction_pipeline(&g.trace, &parallel_kb, &classifier, 2, 4);
        assert_eq!(stats.processed, g.trace.subscriptions().len());
        assert_eq!(stats.stored + stats.skipped, stats.processed);
        assert_eq!(parallel_kb.len(), stats.stored);

        let sequential_kb = KnowledgeBase::new();
        let seq_stats = run_extraction_pipeline(&g.trace, &sequential_kb, &classifier, 2, 1);
        assert_eq!(seq_stats.stored, stats.stored);
        // Entry-by-entry equality (region_agnostic is None in both).
        for sub in g.trace.subscriptions() {
            assert_eq!(parallel_kb.get(sub.id), sequential_kb.get(sub.id));
        }
    }

    #[test]
    fn repeated_runs_are_idempotent() {
        let g = generate(&GeneratorConfig::small(62));
        let classifier = PatternClassifier::default();
        let kb = KnowledgeBase::new();
        let first = run_extraction_pipeline(&g.trace, &kb, &classifier, 2, 2);
        let size = kb.len();
        // Same-timestamp refresh: entries overwrite, count stays.
        let second = run_extraction_pipeline(&g.trace, &kb, &classifier, 2, 2);
        assert_eq!(kb.len(), size);
        assert_eq!(first.processed, second.processed);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let g = generate(&GeneratorConfig::small(63));
        let kb = KnowledgeBase::new();
        let _ = run_extraction_pipeline(&g.trace, &kb, &PatternClassifier::default(), 2, 0);
    }
}
