//! The unit of workload knowledge: everything the optimization policies
//! need to know about one subscription's workload, extracted from
//! telemetry.

use cloudscope_analysis::UtilizationPattern;
use cloudscope_model::prelude::*;
use serde::{Deserialize, Serialize};

/// Coarse lifetime behaviour of a subscription's churn.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LifetimeClass {
    /// Most churn VMs live under an hour (spot candidates).
    MostlyShort,
    /// Mixed lifetimes.
    Mixed,
    /// Predominantly long-running VMs.
    MostlyLong,
}

/// Workload knowledge for one subscription, as stored in the knowledge
/// base (the paper's Section V proposes exactly this: a store that
/// "continuously extracts workload knowledge from telemetry signals
/// (e.g., CPU utilization, VM lifetime)").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadKnowledge {
    /// The subscription this knowledge describes.
    pub subscription: SubscriptionId,
    /// Which cloud it runs in.
    pub cloud: CloudKind,
    /// Dominant utilization pattern across its VMs, if classifiable.
    pub pattern: Option<UtilizationPattern>,
    /// Churn lifetime class.
    pub lifetime: LifetimeClass,
    /// Mean CPU utilization (percent) across telemetry VMs.
    pub mean_util: f64,
    /// 95th-percentile CPU utilization (percent).
    pub p95_util: f64,
    /// Coefficient of variation of the subscription's aggregate
    /// utilization over time (burstiness).
    pub util_cv: f64,
    /// Number of distinct deployed regions.
    pub regions: usize,
    /// `true` if cross-region utilization correlation marks it
    /// region-agnostic; `None` when single-region / not measurable.
    pub region_agnostic: Option<bool>,
    /// VMs observed.
    pub vm_count: usize,
    /// Allocated cores across observed VMs.
    pub cores: u64,
    /// When the knowledge was last refreshed.
    pub updated_at: SimTime,
}

impl WorkloadKnowledge {
    /// `true` if this workload is a good *spot VM* candidate: public
    /// cloud, short-lived churn (the paper's Insight 2 implication).
    #[must_use]
    pub fn spot_candidate(&self) -> bool {
        self.cloud == CloudKind::Public && self.lifetime == LifetimeClass::MostlyShort
    }

    /// `true` if this workload tolerates over-subscription: stable
    /// pattern with modest peaks (Insight 3 implication).
    #[must_use]
    pub fn oversubscription_candidate(&self) -> bool {
        self.pattern == Some(UtilizationPattern::Stable) && self.p95_util < 60.0
    }

    /// `true` if this workload can be shifted across regions for
    /// capacity balancing (Insight 4 implication).
    #[must_use]
    pub fn shiftable(&self) -> bool {
        self.region_agnostic == Some(true)
    }

    /// `true` if this workload needs predictive pre-provisioning /
    /// overclocking headroom for hour-mark peaks (Insight 3 implication).
    #[must_use]
    pub fn needs_peak_headroom(&self) -> bool {
        self.pattern == Some(UtilizationPattern::HourlyPeak)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn knowledge() -> WorkloadKnowledge {
        WorkloadKnowledge {
            subscription: SubscriptionId::new(0),
            cloud: CloudKind::Public,
            pattern: Some(UtilizationPattern::Stable),
            lifetime: LifetimeClass::MostlyShort,
            mean_util: 12.0,
            p95_util: 22.0,
            util_cv: 0.2,
            regions: 1,
            region_agnostic: None,
            vm_count: 10,
            cores: 40,
            updated_at: SimTime::ZERO,
        }
    }

    #[test]
    fn spot_candidates_are_public_short_lived() {
        let k = knowledge();
        assert!(k.spot_candidate());
        let mut private = k.clone();
        private.cloud = CloudKind::Private;
        assert!(!private.spot_candidate());
        let mut long = k;
        long.lifetime = LifetimeClass::MostlyLong;
        assert!(!long.spot_candidate());
    }

    #[test]
    fn oversubscription_needs_stable_low_peak() {
        let k = knowledge();
        assert!(k.oversubscription_candidate());
        let mut hot = k.clone();
        hot.p95_util = 80.0;
        assert!(!hot.oversubscription_candidate());
        let mut diurnal = k;
        diurnal.pattern = Some(UtilizationPattern::Diurnal);
        assert!(!diurnal.oversubscription_candidate());
    }

    #[test]
    fn shiftable_requires_measured_agnosticism() {
        let mut k = knowledge();
        assert!(!k.shiftable());
        k.region_agnostic = Some(true);
        assert!(k.shiftable());
        k.region_agnostic = Some(false);
        assert!(!k.shiftable());
    }

    #[test]
    fn hourly_peak_flags_headroom() {
        let mut k = knowledge();
        assert!(!k.needs_peak_headroom());
        k.pattern = Some(UtilizationPattern::HourlyPeak);
        assert!(k.needs_peak_headroom());
    }
}
