//! Ablation studies for the design choices DESIGN.md §5 calls out:
//! placement policy, fault-domain spreading, geo-load-balancing, the
//! over-subscription rule, and the period-detection method.

use cloudscope::analysis::correlation::region_agnostic_candidates;
use cloudscope::cluster::{ClusterAllocator, PlacementPolicy, PlacementRequest, SpreadingRule};
use cloudscope::mgmt::oversub::{OversubMethod, OversubPlanner, VmDemand};
use cloudscope::prelude::*;
use cloudscope::timeseries::acf::{autocorrelation, refine_on_acf};
use cloudscope::timeseries::{PeriodDetector, Series};
use cloudscope_repro::ShapeChecks;
use rand_free_noise::noise;

/// Deterministic hash noise without pulling `rand` into the binary.
mod rand_free_noise {
    pub fn noise(i: u64, salt: u64) -> f64 {
        let mut z = i.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(salt);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = z ^ (z >> 27);
        (z % 10_000) as f64 / 5_000.0 - 1.0
    }
}

fn build_allocator(policy: PlacementPolicy, spreading: SpreadingRule) -> ClusterAllocator {
    let mut b = Topology::builder();
    let r = b.add_region("abl", 0, "US");
    let d = b.add_datacenter(r);
    let c = b.add_cluster(d, CloudKind::Private, NodeSku::new(64, 640.0), 5, 20);
    let topo = b.build();
    ClusterAllocator::new(topo.cluster(c).unwrap(), policy, spreading)
}

/// Ablation 1: placement policy vs. fragmentation — fill half the
/// cluster with small VMs, then count how many whole-node (64-core)
/// requests still fit. Best-fit concentrates small VMs and preserves
/// empty nodes; worst-fit smears them across every node.
fn allocator_policy_ablation(checks: &mut ShapeChecks) {
    println!("## Ablation: placement policy vs whole-node requests after 50% small-VM fill");
    println!("policy,whole_node_placements");
    let mut results = Vec::new();
    for policy in [
        PlacementPolicy::FirstFit,
        PlacementPolicy::BestFit,
        PlacementPolicy::WorstFit,
    ] {
        let mut alloc = build_allocator(policy, SpreadingRule::default());
        // 100 nodes x 64 cores; 800 four-core VMs = 50% of capacity.
        for i in 0..800u64 {
            alloc
                .place(PlacementRequest {
                    vm: VmId::new(i),
                    size: VmSize::new(4, 32.0),
                    service: ServiceId::new((i % 40) as u32),
                    priority: Priority::OnDemand,
                })
                .expect("small VM fits at 50% fill");
        }
        let mut whole_nodes = 0u32;
        for i in 0..100u64 {
            if alloc
                .place(PlacementRequest {
                    vm: VmId::new(10_000 + i),
                    size: VmSize::new(64, 512.0),
                    service: ServiceId::new(999),
                    priority: Priority::OnDemand,
                })
                .is_ok()
            {
                whole_nodes += 1;
            }
        }
        println!("{policy:?},{whole_nodes}");
        results.push((policy, whole_nodes));
    }
    println!();
    let best = results
        .iter()
        .find(|(p, _)| *p == PlacementPolicy::BestFit)
        .expect("ran");
    let worst = results
        .iter()
        .find(|(p, _)| *p == PlacementPolicy::WorstFit)
        .expect("ran");
    checks.check(
        "best-fit preserves whole nodes for large requests; worst-fit fragments",
        best.1 > worst.1,
        format!("{} vs {} whole-node placements", best.1, worst.1),
    );
}

/// Ablation 2: spreading rule on/off for a same-service batch — the
/// Insight 1 fault-domain tension.
fn spreading_ablation(checks: &mut ShapeChecks) {
    println!("## Ablation: fault-domain spreading (one service, large batch)");
    println!("max_per_rack,placed,spreading_failures");
    let mut outcomes = Vec::new();
    for cap in [None, Some(40u32), Some(10)] {
        let mut alloc = build_allocator(
            PlacementPolicy::BestFit,
            SpreadingRule {
                max_same_service_per_rack: cap,
            },
        );
        for i in 0..400u64 {
            let _ = alloc.place(PlacementRequest {
                vm: VmId::new(i),
                size: VmSize::new(8, 64.0),
                service: ServiceId::new(0),
                priority: Priority::OnDemand,
            });
        }
        println!(
            "{},{},{}",
            cap.map_or("off".to_owned(), |c| c.to_string()),
            alloc.placed_count(),
            alloc.stats().spreading_failures
        );
        outcomes.push((cap, alloc.placed_count(), alloc.stats().spreading_failures));
    }
    println!();
    checks.check(
        "tighter spreading caps strictly reduce same-service placements",
        outcomes[0].1 >= outcomes[1].1 && outcomes[1].1 > outcomes[2].1,
        format!(
            "placed {} (off) vs {} (40/rack) vs {} (10/rack)",
            outcomes[0].1, outcomes[1].1, outcomes[2].1
        ),
    );
}

/// Ablation 3: geo-LB on/off — the mechanism behind region-agnosticism.
fn geo_lb_ablation(checks: &mut ShapeChecks) {
    println!("## Ablation: geo-load-balancer fraction vs detected region-agnostic subscriptions");
    println!("geo_lb_fraction,detected");
    let mut detected = Vec::new();
    for fraction in [0.0, 0.7] {
        let mut config = GeneratorConfig::small(4242);
        // Regions far apart in time zones, so local-clock services
        // genuinely decorrelate and only geo-LB ones align.
        for (spec, tz) in config.topology.regions.iter_mut().zip([-5, -8, 9]) {
            spec.tz_offset_hours = tz;
        }
        config.private.geo_lb_fraction = fraction;
        let generated = generate(&config);
        let found =
            region_agnostic_candidates(&generated.trace, CloudKind::Private, "US", 0.8).len();
        println!("{fraction},{found}");
        detected.push(found);
    }
    println!();
    checks.check(
        "geo-LB services are what the region-agnostic detector finds",
        detected[1] > detected[0],
        format!(
            "{} detected with geo-LB vs {} without",
            detected[1], detected[0]
        ),
    );
}

/// Ablation 4: over-subscription rule comparison on one pool.
fn oversub_ablation(checks: &mut ShapeChecks) {
    println!("## Ablation: over-subscription rule (epsilon = 0.02)");
    println!("method,reserved,violation_rate,improvement_pct");
    let pool: Vec<VmDemand> = (0..60)
        .map(|v| VmDemand {
            cores: 8,
            utilization: (0..2016)
                .map(|i| {
                    18.0 + 6.0
                        * (std::f64::consts::TAU * (i as f64 + v as f64 * 37.0) / 288.0).sin()
                        + 2.0 * noise(i as u64, v as u64)
                })
                .collect(),
        })
        .collect();
    let mut rows = Vec::new();
    for method in [
        OversubMethod::PeakReservation,
        OversubMethod::GaussianBound,
        OversubMethod::EmpiricalQuantile,
    ] {
        let plan = OversubPlanner::new(0.02, method)
            .expect("planner")
            .plan(&pool)
            .expect("plan");
        println!(
            "{method:?},{:.0},{:.4},{:.0}",
            plan.reserved_cores,
            plan.violation_rate,
            100.0 * plan.utilization_improvement
        );
        rows.push((method, plan));
    }
    println!();
    checks.check(
        "both chance-constrained rules beat peak reservation within budget",
        rows[1].1.utilization_improvement > 0.2
            && rows[2].1.utilization_improvement > 0.2
            && rows[0].1.utilization_improvement == 0.0
            && rows[2].1.violation_rate <= 0.025,
        format!(
            "gaussian +{:.0}%, empirical +{:.0}% (violations {:.3})",
            100.0 * rows[1].1.utilization_improvement,
            100.0 * rows[2].1.utilization_improvement,
            rows[2].1.violation_rate
        ),
    );
}

/// Ablation 5: periodogram+ACF vs ACF-only period detection on labelled
/// synthetic diurnal signals across noise levels.
fn period_detection_ablation(checks: &mut ShapeChecks) {
    println!("## Ablation: period detection method (daily signal, rising noise)");
    println!("noise_amp,acf_only_hits,two_stage_hits,trials");
    let detector = PeriodDetector::default();
    let trials = 30;
    let mut two_stage_total = 0;
    let mut acf_only_total = 0;
    for noise_amp in [0.5, 2.0, 6.0] {
        let mut acf_hits = 0;
        let mut two_stage_hits = 0;
        for t in 0..trials {
            let values: Vec<f64> = (0..2016)
                .map(|i| {
                    10.0 + 8.0 * (std::f64::consts::TAU * i as f64 / 288.0).sin()
                        + noise_amp * noise(i as u64, t as u64)
                })
                .collect();
            let series = Series::new(0, 5, values);
            // Two-stage (ours).
            if detector.has_period_near(&series, 1440.0, 180.0) {
                two_stage_hits += 1;
            }
            // ACF-only baseline: strongest hill anywhere near the lag.
            if let Ok(acf) = autocorrelation(series.values(), 1008) {
                if let Some((lag, _)) = refine_on_acf(&acf, 288, 58, 0.3) {
                    if (lag as f64 * 5.0 - 1440.0).abs() <= 180.0 {
                        acf_hits += 1;
                    }
                }
            }
        }
        println!("{noise_amp},{acf_hits},{two_stage_hits},{trials}");
        two_stage_total += two_stage_hits;
        acf_only_total += acf_hits;
    }
    println!();
    checks.check(
        "two-stage detection at least matches the ACF-only baseline",
        two_stage_total >= acf_only_total && two_stage_total > 2 * trials,
        format!(
            "{two_stage_total} vs {acf_only_total} hits over {} trials",
            3 * trials
        ),
    );
}

fn main() {
    let metrics = cloudscope_repro::MetricsOpt::from_args();
    let mut checks = ShapeChecks::new();
    allocator_policy_ablation(&mut checks);
    spreading_ablation(&mut checks);
    geo_lb_ablation(&mut checks);
    oversub_ablation(&mut checks);
    period_detection_ablation(&mut checks);
    let ok = checks.finish("ablation");
    metrics.write();
    std::process::exit(i32::from(!ok));
}
