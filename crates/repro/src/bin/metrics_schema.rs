//! Validates a metrics snapshot (as written by `--metrics <path>`)
//! against a committed metrics schema: every metric in the snapshot
//! must appear in the schema with the same instrument kind. Metrics in
//! the schema but absent from the snapshot are fine — smaller runs
//! exercise fewer code paths.
//!
//! ```sh
//! cargo run -p cloudscope-repro --bin metrics_schema -- snapshot.json schema.json
//! ```
//!
//! Exits 0 when the snapshot validates, 1 on violations, 2 on usage or
//! parse errors.

use cloudscope::obs::{parse_json, Schema};

fn read(path: &str, what: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: reading {what} {path}: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [snapshot_path, schema_path] = args.as_slice() else {
        eprintln!("usage: metrics_schema <snapshot.json> <schema.json>");
        std::process::exit(2);
    };

    let snapshot = parse_json(&read(snapshot_path, "snapshot")).unwrap_or_else(|e| {
        eprintln!("error: parsing snapshot {snapshot_path}: {e}");
        std::process::exit(2);
    });
    let schema = Schema::parse_json(&read(schema_path, "schema")).unwrap_or_else(|e| {
        eprintln!("error: parsing schema {schema_path}: {e}");
        std::process::exit(2);
    });

    let violations = schema.validate(&snapshot);
    if violations.is_empty() {
        println!(
            "ok: {} metrics validate against {} schema entries",
            snapshot.metrics.len(),
            schema.metrics.len()
        );
    } else {
        for v in &violations {
            eprintln!("violation: {v}");
        }
        eprintln!("{} violation(s)", violations.len());
        std::process::exit(1);
    }
}
