//! The chunk file: one `(kind, region, day, seq)` cell of the columnar
//! layout, columns compressed independently so a projected read only
//! decompresses what it asks for.
//!
//! ```text
//! "CSCHUNK1"                                  8-byte file magic
//! header   version, kind, level, region, day, seq, rows,
//!          min_vm, max_vm, column count
//! directory per column: id, raw_len, comp_len, raw_crc
//! blocks   column blocks, concatenated in directory order
//! footer   crc32 over everything above · "CSCKEND1"
//! ```
//!
//! The footer CRC covers every preceding byte, so any single-bit flip
//! anywhere in the file — header, directory, blocks, even inside the
//! CRC field itself — fails validation. Per-column raw CRCs re-check
//! the *decompressed* bytes, catching faults the file CRC cannot see
//! (a decompressor bug, a partially cached block).

use crate::crc::crc32;
use crate::error::StoreError;
use crate::layout::{Dec, Enc};
use cloudscope_par::Parallelism;
use std::path::Path;

/// 8-byte magic opening every chunk file.
pub(crate) const CHUNK_MAGIC: &[u8; 8] = b"CSCHUNK1";
/// 8-byte magic closing every chunk file.
pub(crate) const CHUNK_END_MAGIC: &[u8; 8] = b"CSCKEND1";
/// Chunk format version. v2 splits each column into independently
/// compressed sub-blocks so decompression can fan out within a single
/// chunk.
const CHUNK_VERSION: u16 = 2;
/// Footer size: file CRC + end magic.
const FOOTER_LEN: usize = 4 + 8;
/// Raw bytes per compression sub-block. Large enough that the codec's
/// 64 KiB window still sees long matches, small enough that a default
/// 1 MiB column fans out over several decompression tasks.
pub(crate) const SUB_BLOCK_RAW: usize = 128 << 10;

/// What a chunk stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkKind {
    /// VM deployment-record columns.
    VmMeta,
    /// Telemetry run columns (per-day slices of utilization series).
    Telemetry,
}

impl ChunkKind {
    pub(crate) const fn tag(self) -> u8 {
        match self {
            ChunkKind::VmMeta => 0,
            ChunkKind::Telemetry => 1,
        }
    }

    pub(crate) fn from_tag(tag: u8) -> Result<Self, String> {
        match tag {
            0 => Ok(ChunkKind::VmMeta),
            1 => Ok(ChunkKind::Telemetry),
            other => Err(format!("unknown chunk kind {other}")),
        }
    }

    /// The kind's segment in chunk file names.
    pub(crate) const fn name(self) -> &'static str {
        match self {
            ChunkKind::VmMeta => "vmmeta",
            ChunkKind::Telemetry => "telemetry",
        }
    }
}

/// A chunk's identity and row statistics — shared by the in-file
/// header and the manifest's chunk table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkMeta {
    /// What the chunk stores.
    pub kind: ChunkKind,
    /// Region of every row in the chunk.
    pub region: u32,
    /// Trace-week day (0 = Monday … 6 = Sunday) of every row.
    pub day: u8,
    /// Split ordinal within the `(kind, region, day)` cell.
    pub seq: u32,
    /// Rows in the chunk.
    pub rows: u32,
    /// Smallest VM id referenced (rows are sorted by VM id).
    pub min_vm: u64,
    /// Largest VM id referenced.
    pub max_vm: u64,
}

impl ChunkMeta {
    /// The chunk's manifest name, also its file stem:
    /// `vmmeta-r3-d0-0`.
    #[must_use]
    pub fn name(&self) -> String {
        format!(
            "{}-r{}-d{}-{}",
            self.kind.name(),
            self.region,
            self.day,
            self.seq
        )
    }

    /// The chunk's file name: `<name>.chunk`.
    #[must_use]
    pub fn file_name(&self) -> String {
        format!("{}.chunk", self.name())
    }
}

/// One raw (uncompressed) column heading into a chunk file.
#[derive(Debug)]
pub(crate) struct RawColumn {
    /// Physical column id (see `columns`).
    pub(crate) id: u16,
    /// The column's raw bytes.
    pub(crate) bytes: Vec<u8>,
}

/// A decoded chunk: its identity plus the requested columns' raw bytes
/// in file order.
#[derive(Debug)]
pub(crate) struct DecodedChunk {
    pub(crate) meta: ChunkMeta,
    /// `(column id, raw bytes)` for every column that was both present
    /// and requested.
    pub(crate) columns: Vec<(u16, Vec<u8>)>,
}

impl DecodedChunk {
    /// The raw bytes of column `id`, if decoded.
    pub(crate) fn column(&self, id: u16) -> Option<&[u8]> {
        self.columns
            .iter()
            .find(|(cid, _)| *cid == id)
            .map(|(_, b)| b.as_slice())
    }
}

/// One column compressed into its sub-block series, ready for
/// assembly into a chunk file. Produced by [`compress_column`] — a pure
/// function of the column and the level, so the writer can fan
/// compression out over `(chunk, column)` tasks without changing a
/// byte of the output.
#[derive(Debug)]
pub(crate) struct CompressedColumn {
    pub(crate) id: u16,
    pub(crate) raw_len: usize,
    pub(crate) raw_crc: u32,
    /// Compressed sub-blocks, each covering [`SUB_BLOCK_RAW`] raw bytes
    /// (the last one covers the remainder).
    pub(crate) blocks: Vec<Vec<u8>>,
}

/// Compresses one raw column into its deterministic sub-block series.
pub(crate) fn compress_column(col: &RawColumn, level: u8) -> CompressedColumn {
    let blocks = if col.bytes.is_empty() {
        Vec::new()
    } else {
        col.bytes
            .chunks(SUB_BLOCK_RAW)
            .map(|raw| crate::codec::compress(raw, level))
            .collect()
    };
    CompressedColumn {
        id: col.id,
        raw_len: col.bytes.len(),
        raw_crc: crc32(&col.bytes),
        blocks,
    }
}

/// Assembles pre-compressed columns into a complete chunk file.
/// Returns the file bytes and the raw payload size (for the
/// compression-ratio metrics).
pub(crate) fn assemble_chunk_file(
    meta: &ChunkMeta,
    columns: &[CompressedColumn],
    level: u8,
) -> (Vec<u8>, u64) {
    let raw_total: u64 = columns.iter().map(|c| c.raw_len as u64).sum();
    let blocks_len: usize = columns
        .iter()
        .flat_map(|c| c.blocks.iter())
        .map(Vec::len)
        .sum();
    let mut e = Enc::with_capacity(blocks_len + 256);
    e.put_slice(CHUNK_MAGIC);
    e.put_u16(CHUNK_VERSION);
    e.put_u8(meta.kind.tag());
    e.put_u8(level);
    e.put_u32(meta.region);
    e.put_u8(meta.day);
    e.put_u32(meta.seq);
    e.put_u32(meta.rows);
    e.put_u64(meta.min_vm);
    e.put_u64(meta.max_vm);
    e.put_u16(columns.len() as u16);
    for col in columns {
        e.put_u16(col.id);
        e.put_u32(col.raw_len as u32);
        e.put_u32(col.raw_crc);
        e.put_u16(col.blocks.len() as u16);
        for block in &col.blocks {
            e.put_u32(block.len() as u32);
        }
    }
    for block in columns.iter().flat_map(|c| c.blocks.iter()) {
        e.put_slice(block);
    }
    let crc = crc32(e.as_slice());
    e.put_u32(crc);
    e.put_slice(CHUNK_END_MAGIC);
    (e.into_vec(), raw_total)
}

/// Encodes a complete chunk file, compressing each column at `level` —
/// the serial reference the fanned-out writer must match byte for byte.
#[cfg(test)]
pub(crate) fn encode_chunk_file(
    meta: &ChunkMeta,
    columns: &[RawColumn],
    level: u8,
) -> (Vec<u8>, u64) {
    let compressed: Vec<CompressedColumn> =
        columns.iter().map(|c| compress_column(c, level)).collect();
    assemble_chunk_file(meta, &compressed, level)
}

/// One column's directory entry: identity, raw extent, and the
/// compressed length of each of its sub-blocks.
#[derive(Debug)]
struct DirEntry {
    id: u16,
    raw_len: usize,
    raw_crc: u32,
    comp_lens: Vec<usize>,
}

/// Decodes a chunk file, validating magic, footer CRC, structure, and
/// per-column raw CRCs. `wanted` limits which columns are
/// decompressed (`None` = all). When `par` is given, the wanted
/// sub-blocks decompress as parallel tasks — results are stitched back
/// in file order, so the output is identical for any worker count.
///
/// `verify_file_crc: false` skips the footer-CRC pass for callers that
/// already validated the exact file bytes against the manifest's
/// whole-file CRC (one pass covers every flip the footer pass would).
///
/// # Errors
/// [`StoreError::Corrupt`] (naming `path` and `name`) on any
/// validation failure.
pub(crate) fn decode_chunk_file(
    path: &Path,
    name: &str,
    bytes: &[u8],
    wanted: Option<&[u16]>,
    par: Option<&Parallelism>,
    verify_file_crc: bool,
) -> Result<DecodedChunk, StoreError> {
    let fail = |reason: String| StoreError::corrupt(path, name, reason);

    if bytes.len() < CHUNK_MAGIC.len() + FOOTER_LEN {
        return Err(fail(format!("file is only {} bytes", bytes.len())));
    }
    if &bytes[..CHUNK_MAGIC.len()] != CHUNK_MAGIC {
        return Err(fail("bad chunk magic".to_owned()));
    }
    let (body, footer) = bytes.split_at(bytes.len() - FOOTER_LEN);
    if &footer[4..] != CHUNK_END_MAGIC {
        return Err(fail("bad end-of-chunk magic (truncated file?)".to_owned()));
    }
    if verify_file_crc {
        let stored_crc = u32::from_le_bytes([footer[0], footer[1], footer[2], footer[3]]);
        let actual_crc = crc32(body);
        if stored_crc != actual_crc {
            return Err(fail(format!(
                "file crc mismatch: stored {stored_crc:#010x}, computed {actual_crc:#010x}"
            )));
        }
    }

    let mut d = Dec::new(&body[CHUNK_MAGIC.len()..]);
    let take = |what: &str, r: Result<u64, String>| -> Result<u64, StoreError> {
        r.map_err(|e| StoreError::corrupt(path, name, format!("{what}: {e}")))
    };
    let version = take("version", d.take_u16().map(u64::from))?;
    if version != u64::from(CHUNK_VERSION) {
        return Err(fail(format!("unsupported chunk version {version}")));
    }
    let kind_tag = take("kind", d.take_u8().map(u64::from))? as u8;
    let kind = ChunkKind::from_tag(kind_tag).map_err(&fail)?;
    let _level = take("level", d.take_u8().map(u64::from))?;
    let region = take("region", d.take_u32().map(u64::from))? as u32;
    let day = take("day", d.take_u8().map(u64::from))? as u8;
    let seq = take("seq", d.take_u32().map(u64::from))? as u32;
    let rows = take("rows", d.take_u32().map(u64::from))? as u32;
    let min_vm = take("min_vm", d.take_u64())?;
    let max_vm = take("max_vm", d.take_u64())?;
    let col_count = take("column count", d.take_u16().map(u64::from))? as usize;
    if day > 6 {
        return Err(fail(format!("day {day} out of the trace week")));
    }

    let mut dir: Vec<DirEntry> = Vec::with_capacity(col_count);
    for i in 0..col_count {
        let ctx = |what: &str, e: String| {
            StoreError::corrupt(path, name, format!("column {i} {what}: {e}"))
        };
        let id = d.take_u16().map_err(|e| ctx("id", e))?;
        let raw_len = d.take_u32().map_err(|e| ctx("raw length", e))? as usize;
        let raw_crc = d.take_u32().map_err(|e| ctx("crc", e))?;
        let block_count = d.take_u16().map_err(|e| ctx("block count", e))? as usize;
        if block_count != raw_len.div_ceil(SUB_BLOCK_RAW) {
            return Err(fail(format!(
                "column {i} declares {block_count} sub-blocks for {raw_len} raw bytes"
            )));
        }
        let mut comp_lens = Vec::with_capacity(block_count);
        for b in 0..block_count {
            let len = d
                .take_u32()
                .map_err(|e| ctx(&format!("sub-block {b} length"), e))?;
            comp_lens.push(len as usize);
        }
        dir.push(DirEntry {
            id,
            raw_len,
            raw_crc,
            comp_lens,
        });
    }
    let blocks_len: usize = dir.iter().flat_map(|e| e.comp_lens.iter()).sum();
    if blocks_len != d.remaining() {
        return Err(fail(format!(
            "directory promises {blocks_len} block bytes but {} remain",
            d.remaining()
        )));
    }

    // One decompression unit per wanted sub-block: the compressed
    // slice, its expected raw length, and which column it belongs to.
    struct Unit<'a> {
        col: usize,
        block: &'a [u8],
        raw_len: usize,
    }
    let mut units: Vec<Unit<'_>> = Vec::new();
    let mut decode_cols: Vec<usize> = Vec::new();
    for (col_idx, entry) in dir.iter().enumerate() {
        let col_blocks_len: usize = entry.comp_lens.iter().sum();
        if wanted.is_some_and(|w| !w.contains(&entry.id)) {
            d.take_slice(col_blocks_len).map_err(|e| {
                StoreError::corrupt(path, name, format!("column {} block: {e}", entry.id))
            })?;
            continue;
        }
        decode_cols.push(col_idx);
        for (b, &comp_len) in entry.comp_lens.iter().enumerate() {
            let block = d.take_slice(comp_len).map_err(|e| {
                StoreError::corrupt(path, name, format!("column {} block: {e}", entry.id))
            })?;
            let raw_len = if b + 1 == entry.comp_lens.len() {
                entry.raw_len - b * SUB_BLOCK_RAW
            } else {
                SUB_BLOCK_RAW
            };
            units.push(Unit {
                col: col_idx,
                block,
                raw_len,
            });
        }
    }

    // Decompress every unit — fanned out when a `Parallelism` is given
    // (and worth spawning for), serial otherwise. Results come back in
    // unit order either way, so assembly below is order-identical.
    let decompress_unit = |u: &Unit<'_>| crate::codec::decompress(u.block, u.raw_len);
    let decoded_blocks: Vec<Result<Vec<u8>, String>> = match par {
        Some(par) if par.workers() > 1 && units.len() > 1 => par.par_map(&units, decompress_unit),
        _ => units.iter().map(decompress_unit).collect(),
    };

    let mut columns = Vec::with_capacity(decode_cols.len());
    for &col_idx in &decode_cols {
        let entry = &dir[col_idx];
        let mut raw = Vec::with_capacity(entry.raw_len);
        for (unit, block) in units.iter().zip(&decoded_blocks) {
            if unit.col != col_idx {
                continue;
            }
            let block = block.as_ref().map_err(|e| {
                StoreError::corrupt(path, name, format!("column {}: {e}", entry.id))
            })?;
            if raw.is_empty() && block.len() == entry.raw_len {
                // Single-block column: adopt the buffer, skip the copy.
                raw = block.clone();
            } else {
                raw.extend_from_slice(block);
            }
        }
        let crc = crc32(&raw);
        if crc != entry.raw_crc {
            return Err(fail(format!(
                "column {} raw crc mismatch: stored {:#010x}, computed {crc:#010x}",
                entry.id, entry.raw_crc
            )));
        }
        columns.push((entry.id, raw));
    }

    let meta = ChunkMeta {
        kind,
        region,
        day,
        seq,
        rows,
        min_vm,
        max_vm,
    };
    cloudscope_obs::counter("store.read.chunks").inc();
    Ok(DecodedChunk { meta, columns })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_meta() -> ChunkMeta {
        ChunkMeta {
            kind: ChunkKind::Telemetry,
            region: 2,
            day: 3,
            seq: 1,
            rows: 4,
            min_vm: 10,
            max_vm: 40,
        }
    }

    fn sample_columns() -> Vec<RawColumn> {
        vec![
            RawColumn {
                id: 0,
                bytes: (0u8..100).collect(),
            },
            RawColumn {
                id: 3,
                bytes: vec![42; 5000],
            },
        ]
    }

    #[test]
    fn roundtrip_all_and_projected() {
        let meta = sample_meta();
        let (file, raw_total) = encode_chunk_file(&meta, &sample_columns(), 2);
        assert_eq!(raw_total, 5100);
        let p = Path::new("test.chunk");
        let all = decode_chunk_file(p, "test", &file, None, None, true).unwrap();
        assert_eq!(all.meta, meta);
        assert_eq!(all.column(0).unwrap().len(), 100);
        assert_eq!(all.column(3).unwrap(), &[42u8; 5000][..]);
        let proj = decode_chunk_file(p, "test", &file, Some(&[3]), None, true).unwrap();
        assert!(proj.column(0).is_none());
        assert!(proj.column(3).is_some());
        assert_eq!(proj.meta.rows, 4);
    }

    #[test]
    fn multi_block_columns_roundtrip_serial_and_parallel() {
        let meta = sample_meta();
        // Two and a half sub-blocks of patterned, compressible data.
        let big: Vec<u8> = (0..SUB_BLOCK_RAW * 2 + SUB_BLOCK_RAW / 2)
            .map(|i| (i / 97) as u8)
            .collect();
        let columns = vec![
            RawColumn {
                id: 0,
                bytes: (0u8..200).collect(),
            },
            RawColumn {
                id: 3,
                bytes: big.clone(),
            },
        ];
        let (file, raw_total) = encode_chunk_file(&meta, &columns, 2);
        assert_eq!(raw_total as usize, 200 + big.len());
        let p = Path::new("test.chunk");
        let serial = decode_chunk_file(p, "test", &file, None, None, true).unwrap();
        assert_eq!(serial.column(3).unwrap(), &big[..]);
        for workers in [1, 2, 7] {
            let par = Parallelism::with_workers(workers);
            let fanned = decode_chunk_file(p, "test", &file, None, Some(&par), true).unwrap();
            assert_eq!(fanned.column(0), serial.column(0));
            assert_eq!(fanned.column(3), serial.column(3));
        }
    }

    #[test]
    fn empty_column_roundtrips() {
        let meta = sample_meta();
        let columns = vec![RawColumn {
            id: 5,
            bytes: Vec::new(),
        }];
        let (file, raw_total) = encode_chunk_file(&meta, &columns, 1);
        assert_eq!(raw_total, 0);
        let p = Path::new("test.chunk");
        let decoded = decode_chunk_file(p, "test", &file, None, None, true).unwrap();
        assert_eq!(decoded.column(5).unwrap(), &[] as &[u8]);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(sample_meta().name(), "telemetry-r2-d3-1");
        assert_eq!(sample_meta().file_name(), "telemetry-r2-d3-1.chunk");
    }

    #[test]
    fn every_bit_flip_is_detected() {
        let (file, _) = encode_chunk_file(&sample_meta(), &sample_columns(), 1);
        let p = Path::new("test.chunk");
        for byte in 0..file.len() {
            let mut bad = file.clone();
            bad[byte] ^= 1;
            assert!(
                decode_chunk_file(p, "test", &bad, None, None, true).is_err(),
                "flip at byte {byte} went undetected"
            );
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let (file, _) = encode_chunk_file(&sample_meta(), &sample_columns(), 1);
        let p = Path::new("test.chunk");
        for cut in 0..file.len() {
            assert!(
                decode_chunk_file(p, "test", &file[..cut], None, None, true).is_err(),
                "truncation to {cut} bytes went undetected"
            );
        }
    }
}
