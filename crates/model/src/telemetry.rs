//! Utilization telemetry: fixed-interval (5-minute) average CPU
//! utilization per VM, as reported by the platform monitor.
//!
//! Series are stored quantized to half-percent steps in a shared
//! [`bytes::Bytes`] buffer: one byte per sample bounds a week of telemetry
//! for a million VMs at ~2 GiB, mirroring how production telemetry stores
//! compress utilization counters. Quantization error (≤0.25 pp) is far
//! below the noise floor of the signals being analyzed.

use crate::error::ModelError;
use crate::time::{SimTime, SAMPLE_INTERVAL_MINUTES};
use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// Quantization: stored byte = round(percent * 2), so 0..=200 spans 0–100%.
const QUANT_STEPS_PER_PERCENT: f32 = 2.0;
/// Maximum representable utilization in percent.
pub const MAX_UTILIZATION_PCT: f32 = 100.0;

/// A fixed-interval CPU-utilization series for one VM (or one node).
///
/// Samples are average utilization in percent over each 5-minute interval,
/// starting at [`UtilSeries::start`].
///
/// # Examples
/// ```
/// # use cloudscope_model::telemetry::UtilSeries;
/// # use cloudscope_model::time::SimTime;
/// let s = UtilSeries::from_percentages(SimTime::ZERO, [10.0, 20.0, 30.0]);
/// assert_eq!(s.len(), 3);
/// assert!((s.mean() - 20.0).abs() < 0.3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UtilSeries {
    start: SimTime,
    samples: Bytes,
}

impl UtilSeries {
    /// Builds a series from utilization percentages. Values are clamped to
    /// `[0, 100]` and quantized to 0.5-percent steps.
    #[must_use]
    pub fn from_percentages<I>(start: SimTime, values: I) -> Self
    where
        I: IntoIterator<Item = f32>,
    {
        let samples: Vec<u8> = values
            .into_iter()
            .map(|v| {
                let clamped = v.clamp(0.0, MAX_UTILIZATION_PCT);
                (clamped * QUANT_STEPS_PER_PERCENT).round() as u8
            })
            .collect();
        Self {
            start,
            samples: Bytes::from(samples),
        }
    }

    /// Time of the first sample.
    #[must_use]
    pub const fn start(&self) -> SimTime {
        self.start
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` if the series holds no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Time of the sample at `index`.
    #[must_use]
    pub fn time_at(&self, index: usize) -> SimTime {
        self.start + crate::time::SimDuration::from_minutes(index as i64 * SAMPLE_INTERVAL_MINUTES)
    }

    /// Utilization (percent) of the sample at `index`, if in bounds.
    #[must_use]
    pub fn get(&self, index: usize) -> Option<f32> {
        self.samples
            .get(index)
            .map(|&q| f32::from(q) / QUANT_STEPS_PER_PERCENT)
    }

    /// Utilization (percent) at simulated time `t`, if the series covers it.
    #[must_use]
    pub fn at_time(&self, t: SimTime) -> Option<f32> {
        let offset = t.minutes() - self.start.minutes();
        if offset < 0 {
            return None;
        }
        self.get((offset / SAMPLE_INTERVAL_MINUTES) as usize)
    }

    /// Iterates over utilization percentages.
    pub fn iter(&self) -> impl Iterator<Item = f32> + '_ {
        self.samples
            .iter()
            .map(|&q| f32::from(q) / QUANT_STEPS_PER_PERCENT)
    }

    /// Collects the series into an `f64` vector, the numeric type the
    /// statistics substrate operates on.
    #[must_use]
    pub fn to_f64_vec(&self) -> Vec<f64> {
        self.iter().map(f64::from).collect()
    }

    /// Mean utilization in percent (0 for an empty series).
    #[must_use]
    pub fn mean(&self) -> f32 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let sum: f64 = self.iter().map(f64::from).sum();
        (sum / self.samples.len() as f64) as f32
    }

    /// Averages consecutive samples into buckets of `samples_per_bucket`
    /// (e.g. 12 to go from 5-minute to hourly resolution). The trailing
    /// partial bucket, if any, is averaged over the samples it has.
    ///
    /// # Errors
    /// Returns [`ModelError::InvalidArgument`] if `samples_per_bucket` is 0.
    pub fn downsample(&self, samples_per_bucket: usize) -> Result<Vec<f32>, ModelError> {
        if samples_per_bucket == 0 {
            return Err(ModelError::InvalidArgument(
                "samples_per_bucket must be positive",
            ));
        }
        Ok(self
            .samples
            .chunks(samples_per_bucket)
            .map(|chunk| {
                let sum: f64 = chunk
                    .iter()
                    .map(|&q| f64::from(q) / f64::from(QUANT_STEPS_PER_PERCENT))
                    .sum();
                (sum / chunk.len() as f64) as f32
            })
            .collect())
    }

    /// Cheaply clones a sub-range `[from, to)` of samples as a new series
    /// sharing the underlying buffer.
    ///
    /// # Panics
    /// Panics if `from > to` or `to > len`.
    #[must_use]
    pub fn slice(&self, from: usize, to: usize) -> UtilSeries {
        UtilSeries {
            start: self.time_at(from),
            samples: self.samples.slice(from..to),
        }
    }
}

/// Element-wise average of several equally-long, equally-aligned series —
/// used e.g. for region-level average utilization of a service.
///
/// # Errors
/// Returns [`ModelError::InvalidArgument`] if `series` is empty or lengths
/// or starts differ.
pub fn average_series(series: &[&UtilSeries]) -> Result<UtilSeries, ModelError> {
    let first = series
        .first()
        .ok_or(ModelError::InvalidArgument("no series to average"))?;
    if series
        .iter()
        .any(|s| s.len() != first.len() || s.start() != first.start())
    {
        return Err(ModelError::InvalidArgument(
            "series must share start and length",
        ));
    }
    let n = series.len() as f64;
    let mut acc = vec![0.0f64; first.len()];
    for s in series {
        for (a, v) in acc.iter_mut().zip(s.iter()) {
            *a += f64::from(v);
        }
    }
    Ok(UtilSeries::from_percentages(
        first.start(),
        acc.into_iter().map(|a| (a / n) as f32),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn quantization_roundtrip_within_half_step() {
        let vals = [0.0, 0.3, 12.34, 50.0, 99.9, 100.0];
        let s = UtilSeries::from_percentages(SimTime::ZERO, vals);
        for (i, &v) in vals.iter().enumerate() {
            let got = s.get(i).unwrap();
            assert!((got - v).abs() <= 0.25, "sample {i}: {v} -> {got}");
        }
    }

    #[test]
    fn values_clamped_to_range() {
        let s = UtilSeries::from_percentages(SimTime::ZERO, [-5.0, 250.0]);
        assert_eq!(s.get(0), Some(0.0));
        assert_eq!(s.get(1), Some(100.0));
    }

    #[test]
    fn time_indexing() {
        let s = UtilSeries::from_percentages(SimTime::from_hours(1), [1.0, 2.0, 3.0]);
        assert_eq!(s.time_at(2).minutes(), 70);
        assert_eq!(s.at_time(SimTime::from_minutes(64)), Some(1.0));
        assert_eq!(s.at_time(SimTime::from_minutes(70)), Some(3.0));
        assert_eq!(s.at_time(SimTime::from_minutes(59)), None);
        assert_eq!(s.at_time(SimTime::from_minutes(200)), None);
    }

    #[test]
    fn downsample_to_hourly() {
        // 24 five-minute samples = 2 hours; first hour all 10%, second 30%.
        let vals: Vec<f32> = std::iter::repeat_n(10.0, 12)
            .chain(std::iter::repeat_n(30.0, 12))
            .collect();
        let s = UtilSeries::from_percentages(SimTime::ZERO, vals);
        let hourly = s.downsample(12).unwrap();
        assert_eq!(hourly, vec![10.0, 30.0]);
        assert!(s.downsample(0).is_err());
    }

    #[test]
    fn downsample_partial_tail() {
        let s = UtilSeries::from_percentages(SimTime::ZERO, [10.0, 20.0, 40.0]);
        let out = s.downsample(2).unwrap();
        assert_eq!(out, vec![15.0, 40.0]);
    }

    #[test]
    fn slicing_shares_alignment() {
        let s = UtilSeries::from_percentages(SimTime::ZERO, [1.0, 2.0, 3.0, 4.0]);
        let sub = s.slice(1, 3);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.start(), SimTime::ZERO + SimDuration::SAMPLE);
        assert_eq!(sub.get(0), Some(2.0));
    }

    #[test]
    fn averaging_series() {
        let a = UtilSeries::from_percentages(SimTime::ZERO, [10.0, 20.0]);
        let b = UtilSeries::from_percentages(SimTime::ZERO, [30.0, 40.0]);
        let avg = average_series(&[&a, &b]).unwrap();
        assert_eq!(avg.get(0), Some(20.0));
        assert_eq!(avg.get(1), Some(30.0));
    }

    #[test]
    fn averaging_rejects_misaligned() {
        let a = UtilSeries::from_percentages(SimTime::ZERO, [10.0]);
        let b = UtilSeries::from_percentages(SimTime::from_hours(1), [30.0]);
        assert!(average_series(&[&a, &b]).is_err());
        assert!(average_series(&[]).is_err());
    }

    #[test]
    fn mean_of_empty_is_zero() {
        let s = UtilSeries::from_percentages(SimTime::ZERO, std::iter::empty());
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
    }
}
