//! Simulation time.
//!
//! The study covers one ordinary week; all timestamps are minutes relative
//! to the trace start, which is defined to be **Monday 00:00 UTC**. Keeping
//! time as an integer minute count makes 5-minute telemetry alignment exact
//! and avoids floating-point drift in hour/day bucketing.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Minutes per hour.
pub const MINUTES_PER_HOUR: i64 = 60;
/// Minutes per day.
pub const MINUTES_PER_DAY: i64 = 24 * MINUTES_PER_HOUR;
/// Minutes per week — the span of the studied trace.
pub const MINUTES_PER_WEEK: i64 = 7 * MINUTES_PER_DAY;
/// Telemetry reporting interval: average utilization every 5 minutes.
pub const SAMPLE_INTERVAL_MINUTES: i64 = 5;
/// Number of 5-minute telemetry samples in one day.
pub const SAMPLES_PER_DAY: usize = (MINUTES_PER_DAY / SAMPLE_INTERVAL_MINUTES) as usize;
/// Number of 5-minute telemetry samples in one week.
pub const SAMPLES_PER_WEEK: usize = (MINUTES_PER_WEEK / SAMPLE_INTERVAL_MINUTES) as usize;

/// Days of the week; the trace starts on Monday.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Weekday {
    /// Monday — day 0 of the trace.
    Monday,
    /// Tuesday.
    Tuesday,
    /// Wednesday.
    Wednesday,
    /// Thursday.
    Thursday,
    /// Friday.
    Friday,
    /// Saturday (weekend).
    Saturday,
    /// Sunday (weekend).
    Sunday,
}

impl Weekday {
    /// All weekdays in trace order, Monday first.
    pub const ALL: [Weekday; 7] = [
        Weekday::Monday,
        Weekday::Tuesday,
        Weekday::Wednesday,
        Weekday::Thursday,
        Weekday::Friday,
        Weekday::Saturday,
        Weekday::Sunday,
    ];

    /// Returns the day index (Monday = 0 … Sunday = 6).
    ///
    /// # Examples
    /// ```
    /// # use cloudscope_model::time::Weekday;
    /// assert_eq!(Weekday::Sunday.index(), 6);
    /// ```
    #[must_use]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Returns `true` on Saturday and Sunday.
    #[must_use]
    pub const fn is_weekend(self) -> bool {
        matches!(self, Weekday::Saturday | Weekday::Sunday)
    }

    /// Maps a day index (0 = Monday) to a weekday, wrapping modulo 7.
    #[must_use]
    pub const fn from_index(index: usize) -> Self {
        Self::ALL[index % 7]
    }
}

impl fmt::Display for Weekday {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Weekday::Monday => "Mon",
            Weekday::Tuesday => "Tue",
            Weekday::Wednesday => "Wed",
            Weekday::Thursday => "Thu",
            Weekday::Friday => "Fri",
            Weekday::Saturday => "Sat",
            Weekday::Sunday => "Sun",
        };
        f.write_str(name)
    }
}

/// A point in simulated time: whole minutes since Monday 00:00 UTC of the
/// trace week. Negative values are permitted (VMs created before the trace
/// window), mirroring how the paper only counts VMs started *and* ended
/// within the week for lifetime analysis.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(i64);

impl SimTime {
    /// The trace origin: Monday 00:00 UTC.
    pub const ZERO: SimTime = SimTime(0);
    /// End of the one-week trace window.
    pub const WEEK_END: SimTime = SimTime(MINUTES_PER_WEEK);

    /// Creates a time from minutes since the trace origin.
    #[must_use]
    pub const fn from_minutes(minutes: i64) -> Self {
        Self(minutes)
    }

    /// Creates a time from whole hours since the trace origin.
    ///
    /// # Examples
    /// ```
    /// # use cloudscope_model::time::SimTime;
    /// assert_eq!(SimTime::from_hours(2).minutes(), 120);
    /// ```
    #[must_use]
    pub const fn from_hours(hours: i64) -> Self {
        Self(hours * MINUTES_PER_HOUR)
    }

    /// Creates a time from whole days since the trace origin.
    #[must_use]
    pub const fn from_days(days: i64) -> Self {
        Self(days * MINUTES_PER_DAY)
    }

    /// Minutes since the trace origin.
    #[must_use]
    pub const fn minutes(self) -> i64 {
        self.0
    }

    /// Whole hours since the trace origin (floor division).
    #[must_use]
    pub const fn hours(self) -> i64 {
        self.0.div_euclid(MINUTES_PER_HOUR)
    }

    /// Whole days since the trace origin (floor division).
    #[must_use]
    pub const fn days(self) -> i64 {
        self.0.div_euclid(MINUTES_PER_DAY)
    }

    /// Hour of day in `0..24` (UTC).
    #[must_use]
    pub const fn hour_of_day(self) -> u32 {
        (self.0.rem_euclid(MINUTES_PER_DAY) / MINUTES_PER_HOUR) as u32
    }

    /// Minute within the hour in `0..60`.
    #[must_use]
    pub const fn minute_of_hour(self) -> u32 {
        self.0.rem_euclid(MINUTES_PER_HOUR) as u32
    }

    /// Minute within the day in `0..1440`.
    #[must_use]
    pub const fn minute_of_day(self) -> u32 {
        self.0.rem_euclid(MINUTES_PER_DAY) as u32
    }

    /// Fractional hour of day in `[0, 24)`, useful for smooth diurnal rate
    /// functions.
    #[must_use]
    pub fn fractional_hour_of_day(self) -> f64 {
        self.minute_of_day() as f64 / MINUTES_PER_HOUR as f64
    }

    /// The weekday this time falls on (trace starts Monday).
    #[must_use]
    pub const fn weekday(self) -> Weekday {
        Weekday::ALL[(self.0.div_euclid(MINUTES_PER_DAY)).rem_euclid(7) as usize]
    }

    /// Returns `true` on Saturday or Sunday.
    #[must_use]
    pub const fn is_weekend(self) -> bool {
        self.weekday().is_weekend()
    }

    /// Shifts this UTC time into a region's local wall clock given its
    /// time-zone offset in hours (may be negative).
    #[must_use]
    pub const fn to_local(self, tz_offset_hours: i32) -> SimTime {
        SimTime(self.0 + tz_offset_hours as i64 * MINUTES_PER_HOUR)
    }

    /// Returns `true` if the time lies within the studied week
    /// `[ZERO, WEEK_END)`.
    #[must_use]
    pub const fn in_trace_week(self) -> bool {
        self.0 >= 0 && self.0 < MINUTES_PER_WEEK
    }

    /// Index of the 5-minute telemetry sample containing this time,
    /// relative to the trace origin (may be negative before the window).
    #[must_use]
    pub const fn sample_index(self) -> i64 {
        self.0.div_euclid(SAMPLE_INTERVAL_MINUTES)
    }

    /// Saturating duration since `earlier`; zero if `earlier` is later.
    #[must_use]
    pub const fn saturating_since(self, earlier: SimTime) -> SimDuration {
        let d = self.0 - earlier.0;
        SimDuration(if d < 0 { 0 } else { d })
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {:02}:{:02}",
            self.weekday(),
            self.hour_of_day(),
            self.minute_of_hour()
        )
    }
}

/// A span of simulated time in whole minutes. Always non-negative.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(i64);

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// One telemetry interval (5 minutes).
    pub const SAMPLE: SimDuration = SimDuration(SAMPLE_INTERVAL_MINUTES);
    /// One hour.
    pub const HOUR: SimDuration = SimDuration(MINUTES_PER_HOUR);
    /// One day.
    pub const DAY: SimDuration = SimDuration(MINUTES_PER_DAY);
    /// One week.
    pub const WEEK: SimDuration = SimDuration(MINUTES_PER_WEEK);

    /// Creates a duration from minutes.
    ///
    /// # Panics
    /// Panics if `minutes` is negative; durations are spans, not offsets.
    #[must_use]
    pub fn from_minutes(minutes: i64) -> Self {
        assert!(minutes >= 0, "durations must be non-negative: {minutes}");
        Self(minutes)
    }

    /// Creates a duration from whole hours.
    ///
    /// # Panics
    /// Panics if `hours` is negative.
    #[must_use]
    pub fn from_hours(hours: i64) -> Self {
        Self::from_minutes(hours * MINUTES_PER_HOUR)
    }

    /// Length in minutes.
    #[must_use]
    pub const fn minutes(self) -> i64 {
        self.0
    }

    /// Length in fractional hours.
    #[must_use]
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / MINUTES_PER_HOUR as f64
    }

    /// Number of whole 5-minute samples the duration covers.
    #[must_use]
    pub const fn samples(self) -> usize {
        (self.0 / SAMPLE_INTERVAL_MINUTES) as usize
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}m", self.0)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Difference between two times.
    ///
    /// # Panics
    /// Panics (in debug) if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when order is unknown.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "negative duration: {self:?} - {rhs:?}");
        SimDuration((self.0 - rhs.0).max(0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_starts_monday_midnight() {
        assert_eq!(SimTime::ZERO.weekday(), Weekday::Monday);
        assert_eq!(SimTime::ZERO.hour_of_day(), 0);
        assert!(!SimTime::ZERO.is_weekend());
    }

    #[test]
    fn weekday_progression_and_weekend() {
        assert_eq!(SimTime::from_days(5).weekday(), Weekday::Saturday);
        assert!(SimTime::from_days(5).is_weekend());
        assert_eq!(SimTime::from_days(6).weekday(), Weekday::Sunday);
        assert_eq!(SimTime::from_days(7).weekday(), Weekday::Monday);
        assert_eq!(SimTime::from_minutes(-1).weekday(), Weekday::Sunday);
    }

    #[test]
    fn hour_and_minute_extraction() {
        let t = SimTime::from_minutes(MINUTES_PER_DAY + 13 * 60 + 37);
        assert_eq!(t.weekday(), Weekday::Tuesday);
        assert_eq!(t.hour_of_day(), 13);
        assert_eq!(t.minute_of_hour(), 37);
        assert_eq!(t.minute_of_day(), 13 * 60 + 37);
        assert_eq!(t.to_string(), "Tue 13:37");
    }

    #[test]
    fn negative_times_bucket_correctly() {
        let t = SimTime::from_minutes(-30);
        assert_eq!(t.hour_of_day(), 23);
        assert_eq!(t.minute_of_hour(), 30);
        assert_eq!(t.hours(), -1);
        assert!(!t.in_trace_week());
        assert_eq!(t.sample_index(), -6);
    }

    #[test]
    fn local_time_shift() {
        // 02:00 UTC Monday at UTC-8 is 18:00 Sunday.
        let t = SimTime::from_hours(2).to_local(-8);
        assert_eq!(t.hour_of_day(), 18);
        assert_eq!(t.weekday(), Weekday::Sunday);
    }

    #[test]
    fn arithmetic_and_durations() {
        let t = SimTime::ZERO + SimDuration::HOUR + SimDuration::SAMPLE;
        assert_eq!(t.minutes(), 65);
        assert_eq!((t - SimTime::ZERO).minutes(), 65);
        assert_eq!(SimDuration::DAY.samples(), 288);
        assert_eq!(SimDuration::WEEK.as_hours_f64(), 168.0);
        assert_eq!(
            SimTime::ZERO.saturating_since(SimTime::from_hours(1)),
            SimDuration::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_duration_rejected() {
        let _ = SimDuration::from_minutes(-5);
    }

    #[test]
    fn constants_are_consistent() {
        assert_eq!(SAMPLES_PER_DAY, 288);
        assert_eq!(SAMPLES_PER_WEEK, 2016);
        assert_eq!(SimTime::WEEK_END.minutes(), 7 * 24 * 60);
    }

    #[test]
    fn weekday_from_index_wraps() {
        assert_eq!(Weekday::from_index(0), Weekday::Monday);
        assert_eq!(Weekday::from_index(8), Weekday::Tuesday);
    }
}
