//! Figure 5: utilization-pattern samples and class shares.

use cloudscope::analysis::patterns::{pattern_shares, PatternClassifier};
use cloudscope::prelude::*;
use cloudscope_repro::checks::fig5_checks;
use cloudscope_repro::{MetricsOpt, ShapeChecks};

fn main() {
    let metrics = MetricsOpt::from_args();
    let generated = metrics.load_trace();
    let classifier = PatternClassifier::default();

    // Fig 5(a-c): one sample series per pattern, from ground truth.
    for pattern in UtilizationPattern::ALL {
        let sample = generated.trace.vms().iter().find(|vm| {
            generated.trace.util(vm.id).is_some_and(|u| u.len() > 1500)
                && classifier.classify_vm(&generated.trace, vm.id) == Some(pattern)
        });
        if let Some(vm) = sample {
            let util = generated.trace.util(vm.id).expect("has telemetry");
            println!("## Fig 5 sample: {pattern} ({})", vm.id);
            println!("hour,util_pct");
            for (i, v) in util.iter().enumerate().step_by(12).take(48) {
                println!("{:.1},{v:.1}", i as f64 / 12.0);
            }
            println!();
        }
    }

    let private = pattern_shares(&generated.trace, CloudKind::Private, &classifier, 4000)
        .expect("private shares");
    let public = pattern_shares(&generated.trace, CloudKind::Public, &classifier, 4000)
        .expect("public shares");
    println!("## Fig 5(d): pattern shares");
    println!("pattern,private,public");
    for p in UtilizationPattern::ALL {
        println!("{p},{:.3},{:.3}", private.fraction(p), public.fraction(p));
    }
    println!();

    let mut checks = ShapeChecks::new();
    fig5_checks(
        &private,
        &public,
        &cloudscope_repro::active_profile(),
        &mut checks,
    );
    let ok = checks.finish("fig5");
    metrics.write();
    std::process::exit(i32::from(!ok));
}
