//! # cloudscope-repro
//!
//! The figure-regeneration harness: one binary per evaluation artifact of
//! the paper (`fig1` … `fig7`, `pilot`, `oversub`), each printing the
//! plotted series as CSV plus a `SHAPE-CHECK` section comparing the
//! measured shape against the paper's reported values.
//!
//! Run e.g. `cargo run --release -p cloudscope-repro --bin fig3`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checks;

use cloudscope::prelude::*;
use cloudscope::stats::Ecdf;

/// Generates the default full-scale trace, timing it.
#[must_use]
pub fn default_trace() -> GeneratedTrace {
    let t0 = std::time::Instant::now();
    let generated = generate(&GeneratorConfig::default());
    let stats = generated.trace.stats();
    eprintln!(
        "# generated trace in {:?}: {} private vms, {} public vms, {} subscriptions",
        t0.elapsed(),
        stats.private_vms,
        stats.public_vms,
        stats.private_subscriptions + stats.public_subscriptions
    );
    generated
}

/// Prints a CSV header followed by rows.
pub fn print_csv<const N: usize>(title: &str, header: [&str; N], rows: &[[f64; N]]) {
    println!("## {title}");
    println!("{}", header.join(","));
    for row in rows {
        let cells: Vec<String> = row.iter().map(|v| format!("{v:.4}")).collect();
        println!("{}", cells.join(","));
    }
    println!();
}

/// Prints an ECDF as `(x, F)` rows on a quantile grid.
pub fn print_ecdf(title: &str, cdf: &Ecdf) {
    println!("## {title}");
    println!("x,cdf");
    for i in 0..=20 {
        let p = f64::from(i) / 20.0;
        let x = cdf.quantile(p);
        println!("{x:.4},{p:.2}");
    }
    println!();
}

/// Accumulates shape checks and renders a verdict table.
#[derive(Debug, Default)]
pub struct ShapeChecks {
    results: Vec<(bool, String)>,
}

impl ShapeChecks {
    /// Creates an empty check set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one check: `label` describes the paper's expectation,
    /// `detail` the measured values.
    pub fn check(&mut self, label: &str, holds: bool, detail: String) {
        self.results.push((holds, format!("{label}: {detail}")));
    }

    /// Number of checks recorded so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// `true` if no check has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// `true` if every recorded check holds.
    #[must_use]
    pub fn all_hold(&self) -> bool {
        self.results.iter().all(|(h, _)| *h)
    }

    /// The rendered lines of checks that failed (empty if all hold).
    #[must_use]
    pub fn failures(&self) -> Vec<&str> {
        self.results
            .iter()
            .filter(|(h, _)| !h)
            .map(|(_, line)| line.as_str())
            .collect()
    }

    /// Every rendered check line with its verdict, in insertion order.
    pub fn lines(&self) -> impl Iterator<Item = (bool, &str)> {
        self.results.iter().map(|(h, line)| (*h, line.as_str()))
    }

    /// Prints the verdicts and returns `true` if all hold.
    pub fn finish(self, figure: &str) -> bool {
        println!("## SHAPE-CHECK {figure}");
        let mut all = true;
        for (holds, line) in &self.results {
            println!("[{}] {line}", if *holds { "ok" } else { "MISS" });
            all &= holds;
        }
        println!(
            "{}: {}/{} shape checks hold",
            figure,
            self.results.iter().filter(|(h, _)| *h).count(),
            self.results.len()
        );
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_checks_tally() {
        let mut checks = ShapeChecks::new();
        checks.check("a", true, "1 > 0".into());
        checks.check("b", false, "boom".into());
        assert!(!checks.finish("test"));
        let mut ok = ShapeChecks::new();
        ok.check("a", true, "fine".into());
        assert!(ok.finish("test"));
    }
}
