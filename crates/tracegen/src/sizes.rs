//! The SKU catalog and VM-size sampling (Figure 2).
//!
//! Sizes live on a discrete grid: cores in powers of two, memory at a few
//! GiB-per-core ratios. Private-cloud sampling concentrates on the middle
//! of the grid; public-cloud sampling adds mass at the extreme corners
//! (tiny and huge VMs), reproducing the paper's heatmap observation.

use crate::config::SizeProfile;
use cloudscope_model::vm::VmSize;
use cloudscope_stats::dist::Categorical;
use rand::Rng;

/// Core counts offered by the platform.
pub const CORE_OPTIONS: [u32; 7] = [1, 2, 4, 8, 16, 32, 64];
/// Memory-per-core ratios offered (GiB per core).
pub const MEMORY_PER_CORE_OPTIONS: [f64; 4] = [1.0, 2.0, 4.0, 8.0];

/// Samples VM sizes from the catalog according to a [`SizeProfile`].
#[derive(Debug, Clone)]
pub struct SizeSampler {
    catalog: Vec<VmSize>,
    picker: Categorical,
}

impl SizeSampler {
    /// Builds the weighted catalog for one cloud profile.
    ///
    /// Central sizes get Gaussian weight around the 8-core / 4-GiB-per-
    /// core middle with width `1/concentration`; `corner_mass` spreads
    /// extra weight onto the two extreme corners of the grid.
    #[must_use]
    pub fn new(profile: SizeProfile) -> Self {
        let mut catalog = Vec::new();
        let mut weights = Vec::new();
        let core_mid = 3.0; // index of 8 cores
        let mem_mid = 2.0; // index of 4 GiB/core
        for (ci, &cores) in CORE_OPTIONS.iter().enumerate() {
            for (mi, &ratio) in MEMORY_PER_CORE_OPTIONS.iter().enumerate() {
                catalog.push(VmSize::new(cores, f64::from(cores) * ratio));
                let dc = (ci as f64 - core_mid) * profile.concentration / 2.0;
                let dm = (mi as f64 - mem_mid) * profile.concentration / 1.5;
                weights.push((-0.5 * (dc * dc + dm * dm)).exp());
            }
        }
        // Normalize the gaussian part, then mix in the corner mass.
        let total: f64 = weights.iter().sum();
        for w in &mut weights {
            *w = *w / total * (1.0 - profile.corner_mass);
        }
        let n_mem = MEMORY_PER_CORE_OPTIONS.len();
        let low_corner = 0; // 1 core, 1 GiB/core
        let high_corner = catalog.len() - 1; // 64 cores, 8 GiB/core
        weights[low_corner] += profile.corner_mass * 0.6;
        weights[high_corner] += profile.corner_mass * 0.4;
        debug_assert_eq!(catalog.len(), CORE_OPTIONS.len() * n_mem);
        Self {
            picker: Categorical::new(&weights).expect("weights are valid"),
            catalog,
        }
    }

    /// Draws one VM size.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> VmSize {
        self.catalog[self.picker.sample_index(rng)]
    }

    /// The full catalog (grid order: memory ratio fastest).
    #[must_use]
    pub fn catalog(&self) -> &[VmSize] {
        &self.catalog
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fraction_at_corners(profile: SizeProfile, n: usize) -> f64 {
        let sampler = SizeSampler::new(profile);
        let mut rng = StdRng::seed_from_u64(11);
        let mut corners = 0usize;
        for _ in 0..n {
            let s = sampler.sample(&mut rng);
            let tiny = s.cores() == 1 && s.memory_gb() <= 1.0;
            let huge = s.cores() == 64 && s.memory_gb() >= 512.0;
            if tiny || huge {
                corners += 1;
            }
        }
        corners as f64 / n as f64
    }

    #[test]
    fn catalog_covers_grid() {
        let sampler = SizeSampler::new(SizeProfile {
            corner_mass: 0.0,
            concentration: 1.0,
        });
        assert_eq!(sampler.catalog().len(), 28);
        assert!(sampler
            .catalog()
            .iter()
            .any(|s| s.cores() == 64 && s.memory_gb() == 512.0));
    }

    #[test]
    fn public_profile_has_more_corner_mass() {
        let private = fraction_at_corners(
            SizeProfile {
                corner_mass: 0.01,
                concentration: 2.2,
            },
            20_000,
        );
        let public = fraction_at_corners(
            SizeProfile {
                corner_mass: 0.10,
                concentration: 1.0,
            },
            20_000,
        );
        assert!(
            public > 4.0 * private,
            "public {public} vs private {private}"
        );
        assert!(public > 0.08);
    }

    #[test]
    fn concentration_narrows_distribution() {
        let spread = |conc: f64| {
            let sampler = SizeSampler::new(SizeProfile {
                corner_mass: 0.0,
                concentration: conc,
            });
            let mut rng = StdRng::seed_from_u64(5);
            let cores: Vec<f64> = (0..20_000)
                .map(|_| f64::from(sampler.sample(&mut rng).cores()).log2())
                .collect();
            cloudscope_stats::summary::Summary::from_iter(cores).population_std_dev()
        };
        assert!(spread(2.5) < spread(0.8));
    }

    #[test]
    fn middle_of_grid_dominates() {
        let sampler = SizeSampler::new(SizeProfile {
            corner_mass: 0.0,
            concentration: 2.0,
        });
        let mut rng = StdRng::seed_from_u64(5);
        let mut mid = 0;
        const N: usize = 10_000;
        for _ in 0..N {
            let s = sampler.sample(&mut rng);
            if (4..=16).contains(&s.cores()) {
                mid += 1;
            }
        }
        assert!(mid as f64 / N as f64 > 0.7);
    }
}
