//! Micro-benchmarks of the substrates: the allocation service, the
//! statistics kernels, the FFT/period detector, and trace generation —
//! the ablation knobs DESIGN.md §5 calls out.

use cloudscope::cluster::{ClusterAllocator, PlacementPolicy, PlacementRequest, SpreadingRule};
use cloudscope::prelude::*;
use cloudscope::stats::{pearson, Ecdf};
use cloudscope::timeseries::{PeriodDetector, Series};
use cloudscope::tracegen::{generate_vm_series, PatternKind, ServiceUtilProfile};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn build_allocator(policy: PlacementPolicy) -> ClusterAllocator {
    let mut b = Topology::builder();
    let r = b.add_region("bench", 0, "US");
    let d = b.add_datacenter(r);
    let c = b.add_cluster(d, CloudKind::Public, NodeSku::new(64, 640.0), 5, 40);
    let topo = b.build();
    ClusterAllocator::new(
        topo.cluster(c).unwrap(),
        policy,
        SpreadingRule {
            max_same_service_per_rack: Some(80),
        },
    )
}

/// Ablation: placement policy throughput (DESIGN.md §5, allocator).
fn bench_allocator(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocator_place_release_1000");
    for policy in [
        PlacementPolicy::FirstFit,
        PlacementPolicy::BestFit,
        PlacementPolicy::WorstFit,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{policy:?}")),
            &policy,
            |b, &policy| {
                b.iter(|| {
                    let mut alloc = build_allocator(policy);
                    let mut rng = StdRng::seed_from_u64(1);
                    for i in 0..1000u64 {
                        let cores = 1 << rng.random_range(0..5);
                        let _ = alloc.place(PlacementRequest {
                            vm: VmId::new(i),
                            size: VmSize::new(cores, f64::from(cores) * 4.0),
                            service: ServiceId::new(rng.random_range(0..20)),
                            priority: Priority::OnDemand,
                        });
                        if i % 3 == 0 {
                            let _ = alloc.release(VmId::new(i / 2));
                        }
                    }
                    black_box(alloc.placed_count())
                });
            },
        );
    }
    group.finish();
}

fn bench_stats_kernels(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let series_a: Vec<f64> = (0..2016).map(|_| rng.random::<f64>() * 100.0).collect();
    let series_b: Vec<f64> = (0..2016).map(|_| rng.random::<f64>() * 100.0).collect();
    c.bench_function("pearson_2016_samples", |b| {
        b.iter(|| pearson(black_box(&series_a), black_box(&series_b)).unwrap());
    });
    let sample: Vec<f64> = (0..10_000).map(|_| rng.random::<f64>()).collect();
    c.bench_function("ecdf_build_10k", |b| {
        b.iter(|| Ecdf::new(black_box(sample.clone())).unwrap());
    });
}

fn bench_period_detection(c: &mut Criterion) {
    let values: Vec<f64> = (0..2016)
        .map(|i| 30.0 + 20.0 * (std::f64::consts::TAU * i as f64 / 288.0).sin())
        .collect();
    let series = Series::new(0, 5, values);
    let detector = PeriodDetector::default();
    c.bench_function("period_detect_one_week_5min", |b| {
        b.iter(|| detector.detect(black_box(&series)).unwrap());
    });
}

/// Ablation: telemetry synthesis cost per pattern kind.
fn bench_telemetry_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_week_per_pattern");
    for kind in PatternKind::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{kind}")),
            &kind,
            |b, &kind| {
                let mut rng = StdRng::seed_from_u64(3);
                let profile = ServiceUtilProfile::sample(kind, false, &mut rng);
                b.iter(|| {
                    generate_vm_series(black_box(&profile), -8, SimTime::ZERO, 2016, &mut rng)
                });
            },
        );
    }
    group.finish();
}

fn bench_kb_pipeline(c: &mut Criterion) {
    use cloudscope::analysis::PatternClassifier;
    use cloudscope::kb::{run_extraction_pipeline, KnowledgeBase};
    let generated = generate(&GeneratorConfig::small(99));
    let classifier = PatternClassifier::default();
    let mut group = c.benchmark_group("kb_extraction_pipeline");
    group.sample_size(10);
    for workers in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let kb = KnowledgeBase::new();
                    run_extraction_pipeline(
                        black_box(&generated.trace),
                        &kb,
                        &classifier,
                        2,
                        workers,
                    )
                });
            },
        );
    }
    group.finish();
}

fn bench_node_drain(c: &mut Criterion) {
    c.bench_function("drain_node_500_vms", |b| {
        b.iter(|| {
            let mut alloc = build_allocator(PlacementPolicy::BestFit);
            let mut rng = StdRng::seed_from_u64(11);
            let mut first_node = None;
            for i in 0..500u64 {
                let cores = 1 << rng.random_range(0..4);
                if let Ok(node) = alloc.place(PlacementRequest {
                    vm: VmId::new(i),
                    size: VmSize::new(cores, f64::from(cores) * 4.0),
                    service: ServiceId::new(0),
                    priority: Priority::OnDemand,
                }) {
                    first_node.get_or_insert(node);
                }
            }
            let node = first_node.expect("placed");
            black_box(alloc.drain_node(node).expect("drain"))
        });
    });
}

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_generation");
    group.sample_size(10);
    group.bench_function("small_config", |b| {
        b.iter(|| generate(black_box(&GeneratorConfig::small(1234))));
    });
    group.finish();
}

criterion_group!(
    engine,
    bench_allocator,
    bench_stats_kernels,
    bench_period_detection,
    bench_telemetry_generation,
    bench_kb_pipeline,
    bench_node_drain,
    bench_generation
);
criterion_main!(engine);
