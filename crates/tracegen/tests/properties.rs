//! Property tests over the trace generator: whatever the configuration,
//! the emitted trace obeys the model's invariants.

use cloudscope_model::time::SAMPLES_PER_WEEK;
use cloudscope_tracegen::{generate, GeneratorConfig};
use proptest::prelude::*;

/// Small random configurations that still generate in tens of
/// milliseconds.
fn config_strategy() -> impl Strategy<Value = GeneratorConfig> {
    (
        any::<u64>(),
        2usize..4,       // regions
        4usize..16,      // private subscriptions
        20usize..80,     // public subscriptions
        1.0f64..20.0,    // private deployment median
        0.0f64..1.0,     // geo-lb fraction
        prop::bool::ANY, // telemetry
    )
        .prop_map(
            |(seed, regions, private_subs, public_subs, median, geo, telemetry)| {
                let mut cfg = GeneratorConfig::small(seed);
                cfg.topology.regions.truncate(regions);
                cfg.private.subscriptions = private_subs;
                cfg.private.deployment_median = median;
                cfg.public.subscriptions = public_subs;
                cfg.private.geo_lb_fraction = geo;
                cfg.private.arrival.base_rate_per_hour = 0.5;
                cfg.public.arrival.base_rate_per_hour = 2.0;
                cfg.telemetry = telemetry;
                cfg
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn generated_traces_are_internally_consistent(config in config_strategy()) {
        let g = generate(&config);
        let trace = &g.trace;

        // Dense, ordered VM ids.
        for (i, vm) in trace.vms().iter().enumerate() {
            prop_assert_eq!(vm.id.as_usize(), i);
        }

        for vm in trace.vms() {
            // Placement consistency.
            let cluster = trace.topology().cluster(vm.cluster).expect("cluster exists");
            prop_assert_eq!(cluster.region, vm.region);
            let sub = trace.subscription(vm.subscription).expect("subscription exists");
            prop_assert_eq!(sub.cloud, cluster.cloud);
            if let Some(node) = vm.node {
                prop_assert_eq!(trace.topology().node(node).expect("node").cluster, vm.cluster);
            }
            // Temporal sanity.
            if let Some(end) = vm.ended {
                prop_assert!(end >= vm.created);
            }
            // Telemetry stays inside the window and percent range.
            if let Some(util) = trace.util(vm.id) {
                prop_assert!(config.telemetry);
                prop_assert!(util.start().minutes() >= 0);
                prop_assert!(util.len() <= SAMPLES_PER_WEEK);
                for v in util.iter() {
                    prop_assert!((0.0..=100.0).contains(&v));
                }
            }
        }

        // Counters reconcile.
        let total = g.report.standing_vms + g.report.churn_vms + g.report.burst_vms;
        prop_assert_eq!(trace.vms().len() as u64 + g.report.dropped_vms, total);

        // Every subscription the plans created exists in the trace.
        prop_assert_eq!(
            trace.subscriptions().len(),
            config.private.subscriptions + config.public.subscriptions
        );

        // Service directory covers all services referenced by VMs.
        for vm in trace.vms() {
            prop_assert!(vm.service.as_usize() < g.services.len());
            let svc = &g.services[vm.service.as_usize()];
            prop_assert_eq!(svc.subscription, vm.subscription);
        }
    }

    #[test]
    fn generation_is_a_pure_function_of_config(seed in any::<u64>()) {
        let mut cfg = GeneratorConfig::small(seed);
        cfg.topology.regions.truncate(2);
        cfg.private.subscriptions = 5;
        cfg.public.subscriptions = 20;
        cfg.private.arrival.base_rate_per_hour = 0.5;
        cfg.public.arrival.base_rate_per_hour = 1.0;
        let a = generate(&cfg);
        let b = generate(&cfg);
        prop_assert_eq!(a.trace.stats(), b.trace.stats());
        prop_assert_eq!(a.report, b.report);
    }
}
