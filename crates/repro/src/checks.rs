//! The paper's shape checks as library functions.
//!
//! Every `SHAPE-CHECK` the `fig1` … `fig7`, `pilot`, and `oversub`
//! binaries print lives here, so tests can run the exact same criteria
//! without spawning a binary — in particular the robustness gate, which
//! re-runs all of them over a fault-corrupted trace. A [`CheckProfile`]
//! carries the thresholds: [`CheckProfile::full`] matches the paper
//! numbers on the default full-scale trace, [`CheckProfile::medium`]
//! relaxes the scale-sensitive ones for the `medium`-sized test traces.

use crate::ShapeChecks;
use cloudscope::analysis::correlation::service_region_alignment;
use cloudscope::analysis::coverage::filled_week_series;
use cloudscope::analysis::deployment::DeploymentSizeAnalysis;
use cloudscope::analysis::spatial::SpatialAnalysis;
use cloudscope::analysis::temporal::TemporalAnalysis;
use cloudscope::analysis::utilization::{UtilizationDistribution, MIN_VM_WEEK_COVERAGE};
use cloudscope::analysis::vmsize::VmSizeAnalysis;
use cloudscope::analysis::{AnalysisError, PatternShares};
use cloudscope::mgmt::rebalance::{region_capacity_stats, simulate_shift, ShiftOutcome};
use cloudscope::mgmt::{MgmtError, OversubMethod, OversubPlanner, VmDemand};
use cloudscope::prelude::*;
use cloudscope::stats::Ecdf;
use cloudscope::tracegen::ServiceInfo;

/// Thresholds for one trace scale. The checks' *shapes* (which side is
/// bigger, what is monotone) never change between profiles — only how
/// much margin the smaller population is granted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckProfile {
    /// Profile name, for report headers.
    pub name: &'static str,
    /// Fig 1: private median VMs/subscription must exceed this multiple
    /// of the public median.
    pub fig1_median_ratio: f64,
    /// Fig 1: minimum public/private subscriptions-per-cluster ratio.
    pub fig1_cluster_ratio: f64,
    /// Fig 2: minimum size-distribution overlap coefficient.
    pub fig2_overlap_min: f64,
    /// Fig 2: public corner mass must exceed this multiple of private.
    pub fig2_corner_ratio: f64,
    /// Fig 3: tolerance around the paper's 49% / 81% shortest-bin
    /// fractions.
    pub fig3_short_tolerance: f64,
    /// Fig 3: whether the private-creation-CV check also requires
    /// quartile separation (q1 above the public q3), not just medians.
    pub fig3_cv_quartile_strict: bool,
    /// Fig 5: private diurnal share must exceed this multiple of public.
    pub fig5_diurnal_ratio: f64,
    /// Fig 5: private hourly-peak share must exceed this multiple of
    /// public.
    pub fig5_hourly_ratio: f64,
    /// Fig 6: ceiling on the p75 weekly band peak, both clouds.
    pub fig6_p75_max: f64,
    /// Fig 6: private daily-median variability must exceed this multiple
    /// of public.
    pub fig6_daily_var_ratio: f64,
    /// Fig 7: floor on the private node-correlation median.
    pub fig7_node_median_min: f64,
    /// Fig 7: private node-correlation median must beat public by this.
    pub fig7_node_margin: f64,
    /// Fig 7: private region-correlation median must beat public by this.
    pub fig7_region_margin: f64,
    /// Fig 7(c): floor on the flagship service's mean pairwise profile
    /// correlation.
    pub fig7_alignment_min: f64,
    /// Oversub: cap on the demand-pool size.
    pub oversub_pool: usize,
    /// Oversub: floor on the strictest-epsilon improvement.
    pub oversub_min_improvement: f64,
    /// Oversub: violation-rate budget at epsilon = 0.01.
    pub oversub_violation_budget: f64,
}

impl CheckProfile {
    /// Thresholds for the default full-scale trace — these are exactly
    /// the numbers the repro binaries have always enforced.
    #[must_use]
    pub fn full() -> Self {
        Self {
            name: "full",
            fig1_median_ratio: 5.0,
            fig1_cluster_ratio: 5.0,
            fig2_overlap_min: 0.5,
            fig2_corner_ratio: 3.0,
            fig3_short_tolerance: 0.15,
            fig3_cv_quartile_strict: true,
            fig5_diurnal_ratio: 1.3,
            fig5_hourly_ratio: 2.0,
            fig6_p75_max: 32.0,
            fig6_daily_var_ratio: 1.5,
            fig7_node_median_min: 0.4,
            fig7_node_margin: 0.2,
            fig7_region_margin: 0.3,
            fig7_alignment_min: 0.9,
            oversub_pool: 400,
            oversub_min_improvement: 0.2,
            oversub_violation_budget: 0.015,
        }
    }

    /// Thresholds for `GeneratorConfig::medium` traces: the same shapes
    /// with margins widened where the smaller population is noisier
    /// (cluster ratio, band peaks, correlation medians, CV quartiles).
    #[must_use]
    pub fn medium() -> Self {
        Self {
            name: "medium",
            fig1_cluster_ratio: 4.0,
            fig3_cv_quartile_strict: false,
            fig5_hourly_ratio: 1.5,
            fig6_p75_max: 35.0,
            fig6_daily_var_ratio: 1.0,
            fig7_node_median_min: 0.3,
            fig7_node_margin: 0.2,
            fig7_region_margin: 0.05,
            ..Self::full()
        }
    }
}

/// Fig 1 (2 checks): deployment sizes.
pub fn fig1_checks(a: &DeploymentSizeAnalysis, p: &CheckProfile, checks: &mut ShapeChecks) {
    checks.check(
        "private deployments larger (Fig 1a)",
        a.private_vms_per_subscription.median()
            > p.fig1_median_ratio * a.public_vms_per_subscription.median(),
        format!(
            "median {} vs {}",
            a.private_vms_per_subscription.median(),
            a.public_vms_per_subscription.median()
        ),
    );
    checks.check(
        "public cluster hosts many times more subscriptions (paper ~20x)",
        a.subscriptions_per_cluster_ratio > p.fig1_cluster_ratio,
        format!("ratio {:.1}x", a.subscriptions_per_cluster_ratio),
    );
}

/// Overlap coefficient between the two size heatmaps: sum of
/// `min(p, q)` over cells; 1 means identical distributions.
#[must_use]
pub fn size_distribution_overlap(v: &VmSizeAnalysis) -> f64 {
    let mut overlap = 0.0;
    for x in 0..v.private.x_axis().bins() {
        for y in 0..v.private.y_axis().bins() {
            overlap += v.private.fraction(x, y).min(v.public.fraction(x, y));
        }
    }
    overlap
}

/// Fig 2 (2 checks): VM size heatmaps.
pub fn fig2_checks(v: &VmSizeAnalysis, p: &CheckProfile, checks: &mut ShapeChecks) {
    let overlap = size_distribution_overlap(v);
    checks.check(
        "distributions largely similar (mass overlap)",
        overlap > p.fig2_overlap_min,
        format!("overlap coefficient {overlap:.2}"),
    );
    checks.check(
        "public mass extends to tiny+huge corners (Fig 2b)",
        v.public_corner_mass > p.fig2_corner_ratio * v.private_corner_mass,
        format!(
            "corner mass {:.3} vs {:.3}",
            v.public_corner_mass, v.private_corner_mass
        ),
    );
}

/// Fig 3 (3 checks): lifetimes, creation burstiness, weekend dip.
pub fn fig3_checks(t: &TemporalAnalysis, p: &CheckProfile, checks: &mut ShapeChecks) {
    checks.check(
        "shortest bin: paper 49% private vs 81% public",
        (t.private_short_fraction - 0.49).abs() < p.fig3_short_tolerance
            && (t.public_short_fraction - 0.81).abs() < p.fig3_short_tolerance
            && t.public_short_fraction > t.private_short_fraction,
        format!(
            "measured {:.0}% vs {:.0}%",
            100.0 * t.private_short_fraction,
            100.0 * t.public_short_fraction
        ),
    );
    let cv_holds = t.creation_cv.0.median > t.creation_cv.1.median
        && (!p.fig3_cv_quartile_strict || t.creation_cv.0.q1 > t.creation_cv.1.q3);
    checks.check(
        "private creations bursty: higher CV (Fig 3d)",
        cv_holds,
        format!(
            "median CV {:.2} vs {:.2}",
            t.creation_cv.0.median, t.creation_cv.1.median
        ),
    );
    let wk: f64 = t.vm_counts.1.values()[..120].iter().sum::<f64>() / 120.0;
    let we: f64 = t.vm_counts.1.values()[120..].iter().sum::<f64>() / 48.0;
    checks.check(
        "public VM counts dip on weekends (Fig 3b)",
        we < wk,
        format!("weekend mean {we:.0} vs weekday mean {wk:.0}"),
    );
}

/// Fig 4 (3 checks): spatial deployment.
pub fn fig4_checks(s: &SpatialAnalysis, _p: &CheckProfile, checks: &mut ShapeChecks) {
    checks.check(
        ">50% of subscriptions single-region in both clouds (Fig 4a)",
        s.private_regions.eval(1.0) > 0.5 && s.public_regions.eval(1.0) > 0.5,
        format!(
            "single-region {:.0}% / {:.0}%",
            100.0 * s.private_regions.eval(1.0),
            100.0 * s.public_regions.eval(1.0)
        ),
    );
    checks.check(
        "private multi-region tail heavier (Fig 4a)",
        s.private_regions.eval(1.0) < s.public_regions.eval(1.0),
        "private single-region share lower".into(),
    );
    checks.check(
        "cores: private mostly multi-region, public mostly single (paper 40%/70%)",
        s.private_single_region_core_share < 0.5 && s.public_single_region_core_share > 0.5,
        format!(
            "single-region core share {:.0}% vs {:.0}%",
            100.0 * s.private_single_region_core_share,
            100.0 * s.public_single_region_core_share
        ),
    );
}

/// Fig 5 (4 checks): utilization-pattern shares.
pub fn fig5_checks(
    private: &PatternShares,
    public: &PatternShares,
    p: &CheckProfile,
    checks: &mut ShapeChecks,
) {
    let d = UtilizationPattern::Diurnal;
    checks.check(
        "diurnal most common in both clouds",
        UtilizationPattern::ALL
            .iter()
            .all(|&q| private.fraction(d) >= private.fraction(q))
            && UtilizationPattern::ALL
                .iter()
                .all(|&q| public.fraction(d) >= public.fraction(q)),
        format!(
            "diurnal {:.2} / {:.2}",
            private.fraction(d),
            public.fraction(d)
        ),
    );
    checks.check(
        "private has roughly double the diurnal share",
        private.fraction(d) > p.fig5_diurnal_ratio * public.fraction(d),
        format!("ratio {:.2}", private.fraction(d) / public.fraction(d)),
    );
    checks.check(
        "stable share higher in public",
        public.fraction(UtilizationPattern::Stable) > private.fraction(UtilizationPattern::Stable),
        format!(
            "stable {:.2} vs {:.2}",
            private.fraction(UtilizationPattern::Stable),
            public.fraction(UtilizationPattern::Stable)
        ),
    );
    checks.check(
        "hourly-peak mostly private",
        private.fraction(UtilizationPattern::HourlyPeak)
            > p.fig5_hourly_ratio * public.fraction(UtilizationPattern::HourlyPeak),
        format!(
            "hourly {:.2} vs {:.2}",
            private.fraction(UtilizationPattern::HourlyPeak),
            public.fraction(UtilizationPattern::HourlyPeak)
        ),
    );
}

/// Fig 6 (3 checks): utilization percentile bands.
pub fn fig6_checks(
    private: &UtilizationDistribution,
    public: &UtilizationDistribution,
    p: &CheckProfile,
    checks: &mut ShapeChecks,
) {
    checks.check(
        "p75 utilization stays below ~30% in both clouds",
        private.p75_peak() < p.fig6_p75_max && public.p75_peak() < p.fig6_p75_max,
        format!(
            "p75 peaks {:.1} / {:.1}",
            private.p75_peak(),
            public.p75_peak()
        ),
    );
    checks.check(
        "private daily profile follows working hours; public flatter",
        private.daily_median_variability()
            > p.fig6_daily_var_ratio * public.daily_median_variability(),
        format!(
            "daily median std {:.2} vs {:.2}",
            private.daily_median_variability(),
            public.daily_median_variability()
        ),
    );
    let median = private.weekly.band(50.0).expect("p50 band exists");
    let weekday: f64 = median[..120].iter().sum::<f64>() / 120.0;
    let weekend: f64 = median[120..].iter().sum::<f64>() / 48.0;
    checks.check(
        "private utilization drops on weekends",
        weekend < weekday,
        format!("weekend median {weekend:.1} vs weekday {weekday:.1}"),
    );
}

/// Fig 7 (3 checks): correlation structure, plus the flagship-service
/// region alignment.
pub fn fig7_checks(
    node: &(Ecdf, Ecdf),
    region: &(Ecdf, Ecdf),
    alignment: f64,
    p: &CheckProfile,
    checks: &mut ShapeChecks,
) {
    checks.check(
        "node-level correlation higher in private (paper medians 0.55 vs 0.02)",
        node.0.median() > p.fig7_node_median_min
            && node.0.median() > node.1.median() + p.fig7_node_margin,
        format!("medians {:.2} vs {:.2}", node.0.median(), node.1.median()),
    );
    checks.check(
        "cross-region correlation higher in private (Fig 7b)",
        region.0.median() > region.1.median() + p.fig7_region_margin,
        format!(
            "medians {:.2} vs {:.2}",
            region.0.median(),
            region.1.median()
        ),
    );
    checks.check(
        "ServiceX peaks align across time zones (Fig 7c)",
        alignment > p.fig7_alignment_min,
        format!("mean pairwise profile correlation {alignment:.2}"),
    );
}

/// One pilot run: the selected service, the hot source and cold
/// destination regions, and the shift outcome.
#[derive(Debug, Clone)]
pub struct PilotRun {
    /// The shifted service.
    pub service: ServiceId,
    /// Overloaded source region.
    pub hot: RegionId,
    /// Underloaded destination region.
    pub cold: RegionId,
    /// Capacity stats before/after on both sides.
    pub outcome: ShiftOutcome,
}

/// Replays the Canada pilot: picks the private region-agnostic service
/// with the most cores on underutilized VMs in some region, shifts it
/// to the coldest other region at time `at`, and reports the outcome.
/// Returns `None` if the trace holds no shiftable underutilized
/// service.
///
/// # Errors
/// Propagates [`MgmtError`] from the shift simulation itself.
pub fn run_pilot(generated: &GeneratedTrace, at: SimTime) -> Result<Option<PilotRun>, MgmtError> {
    let mut best: Option<(&ServiceInfo, RegionId, u64)> = None;
    for svc in generated.services.iter().filter(|s| {
        s.cloud == CloudKind::Private && s.profile.region_agnostic && s.regions.len() >= 2
    }) {
        for &region in &svc.regions {
            let mut under = 0u64;
            for &vm_id in generated.trace.vms_of_service(svc.service) {
                let vm = generated.trace.vm(vm_id).expect("indexed vm");
                if vm.region == region
                    && vm.node.is_some()
                    && vm.alive_at(at)
                    && generated.trace.util(vm_id).is_some_and(|u| u.mean() < 10.0)
                {
                    under += u64::from(vm.size.cores());
                }
            }
            if best.is_none_or(|(_, _, b)| under > b) {
                best = Some((svc, region, under));
            }
        }
    }
    let Some((flagship, hot, _)) = best else {
        return Ok(None);
    };
    let Some(cold) = generated
        .trace
        .topology()
        .regions()
        .iter()
        .filter(|r| r.id != hot)
        .filter_map(|r| {
            region_capacity_stats(&generated.trace, CloudKind::Private, r.id, at)
                .ok()
                .map(|s| (r.id, s.core_utilization_rate()))
        })
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite rates"))
        .map(|(id, _)| id)
    else {
        return Ok(None);
    };
    let outcome = simulate_shift(
        &generated.trace,
        CloudKind::Private,
        flagship.service,
        hot,
        cold,
        at,
    )?;
    Ok(Some(PilotRun {
        service: flagship.service,
        hot,
        cold,
        outcome,
    }))
}

/// Pilot (3 checks): the region-shift outcome.
pub fn pilot_checks(outcome: &ShiftOutcome, _p: &CheckProfile, checks: &mut ShapeChecks) {
    checks.check(
        "source underutilized-core pct decreases (paper 23% -> 16%)",
        outcome.source_after.underutilized_pct() < outcome.source_before.underutilized_pct(),
        format!(
            "{:.1}% -> {:.1}%",
            100.0 * outcome.source_before.underutilized_pct(),
            100.0 * outcome.source_after.underutilized_pct()
        ),
    );
    checks.check(
        "source core-utilization rate decreases (paper 42% -> 37%)",
        outcome.source_after.core_utilization_rate()
            < outcome.source_before.core_utilization_rate(),
        format!(
            "{:.1}% -> {:.1}%",
            100.0 * outcome.source_before.core_utilization_rate(),
            100.0 * outcome.source_after.core_utilization_rate()
        ),
    );
    checks.check(
        "destination absorbs the shift with capacity to spare",
        outcome.destination_after.core_utilization_rate() < 0.9,
        format!(
            "destination rate {:.1}% -> {:.1}%",
            100.0 * outcome.destination_before.core_utilization_rate(),
            100.0 * outcome.destination_after.core_utilization_rate()
        ),
    );
}

/// The epsilon grid the over-subscription sweep walks.
pub const OVERSUB_EPSILONS: [f64; 6] = [0.001, 0.005, 0.01, 0.05, 0.1, 0.2];

/// Builds the over-subscription demand pool: public-cloud VMs whose
/// telemetry covers (almost all of) the week, gaps repaired — so a
/// corrupted trace yields (nearly) the same pool a pristine one does.
#[must_use]
pub fn oversub_pool(trace: &Trace, cap: usize) -> Vec<VmDemand> {
    oversub_pool_from(trace, trace, cap)
}

/// [`oversub_pool`] with telemetry decoupled from VM metadata: `trace`
/// enumerates the public-cloud population, `source` serves the samples
/// (resident, out-of-core, or streamed).
#[must_use]
pub fn oversub_pool_from(
    trace: &Trace,
    source: &(impl TelemetrySource + ?Sized),
    cap: usize,
) -> Vec<VmDemand> {
    trace
        .vms_of(CloudKind::Public)
        .filter_map(|vm| {
            let util = source.load(vm.id)?;
            let (utilization, _) = filled_week_series(&util, MIN_VM_WEEK_COVERAGE)?;
            Some(VmDemand {
                cores: vm.size.cores(),
                utilization,
            })
        })
        .take(cap)
        .collect()
}

/// One over-subscription sweep over [`OVERSUB_EPSILONS`].
#[derive(Debug, Clone)]
pub struct OversubSweep {
    /// Demand-pool size.
    pub pool_vms: usize,
    /// Planner outputs per epsilon, in grid order.
    pub plans: Vec<cloudscope::mgmt::OversubPlan>,
    /// Utilization improvements per epsilon, in grid order.
    pub improvements: Vec<f64>,
}

/// Runs the empirical-quantile planner across the epsilon grid.
///
/// # Errors
/// Propagates [`MgmtError`] (e.g. an empty pool).
pub fn run_oversub_sweep(pool: &[VmDemand]) -> Result<OversubSweep, MgmtError> {
    let mut plans = Vec::with_capacity(OVERSUB_EPSILONS.len());
    let mut improvements = Vec::with_capacity(OVERSUB_EPSILONS.len());
    for eps in OVERSUB_EPSILONS {
        let plan = OversubPlanner::new(eps, OversubMethod::EmpiricalQuantile)?.plan(pool)?;
        improvements.push(plan.utilization_improvement);
        plans.push(plan);
    }
    Ok(OversubSweep {
        pool_vms: pool.len(),
        plans,
        improvements,
    })
}

/// Oversub (3 checks): the sweep's shape.
pub fn oversub_checks(sweep: &OversubSweep, p: &CheckProfile, checks: &mut ShapeChecks) {
    let improvements = &sweep.improvements;
    checks.check(
        "improvement grows with looser safety (monotone sweep)",
        improvements.windows(2).all(|w| w[0] <= w[1] + 1e-9),
        format!("{improvements:.2?}"),
    );
    checks.check(
        "improvements span a wide range incl. >20% (paper 20%-86%)",
        improvements[0] > p.oversub_min_improvement
            && *improvements.last().expect("non-empty grid") > improvements[0] * 1.2,
        format!(
            "{:.0}% at eps={} up to {:.0}% at eps={}",
            100.0 * improvements[0],
            OVERSUB_EPSILONS[0],
            100.0 * improvements.last().expect("non-empty grid"),
            OVERSUB_EPSILONS[OVERSUB_EPSILONS.len() - 1],
        ),
    );
    // Epsilon 0.01 sits at index 2 of the grid.
    let strict = &sweep.plans[2];
    checks.check(
        "violations stay within budget",
        strict.violation_rate <= p.oversub_violation_budget,
        format!(
            "violation rate {:.4} at eps={}",
            strict.violation_rate, OVERSUB_EPSILONS[2]
        ),
    );
}

/// Runs every figure's analysis plus the pilot and over-subscription
/// experiments and evaluates all 26 shape checks — the complete
/// `SHAPE-CHECK` surface of the repro binaries, as one call.
///
/// # Errors
/// Returns the first [`AnalysisError`] from the characterization
/// pipeline; pilot or oversub failures surface as failed checks rather
/// than errors, so a degraded trace still produces a full verdict list.
pub fn all_figure_checks(
    generated: &GeneratedTrace,
    profile: &CheckProfile,
) -> Result<ShapeChecks, AnalysisError> {
    let config = ReportConfig::default();
    let report = CharacterizationReport::analyze(&generated.trace, &config)?;
    let mut checks = ShapeChecks::new();
    fig1_checks(&report.deployment, profile, &mut checks);
    fig2_checks(&report.vm_size, profile, &mut checks);
    fig3_checks(&report.temporal, profile, &mut checks);
    fig4_checks(&report.spatial, profile, &mut checks);
    fig5_checks(
        &report.private_patterns,
        &report.public_patterns,
        profile,
        &mut checks,
    );
    fig6_checks(
        &report.private_utilization,
        &report.public_utilization,
        profile,
        &mut checks,
    );
    let alignment = generated
        .flagship_service()
        .and_then(|svc| service_region_alignment(&generated.trace, svc.service).ok())
        .unwrap_or(0.0);
    fig7_checks(
        &report.node_correlation,
        &report.region_correlation,
        alignment,
        profile,
        &mut checks,
    );
    match run_pilot(generated, config.snapshot) {
        Ok(Some(pilot)) => pilot_checks(&pilot.outcome, profile, &mut checks),
        Ok(None) | Err(_) => checks.check(
            "pilot: a shiftable underutilized service exists",
            false,
            "pilot could not run on this trace".into(),
        ),
    }
    let pool = oversub_pool(&generated.trace, profile.oversub_pool);
    match run_oversub_sweep(&pool) {
        Ok(sweep) => oversub_checks(&sweep, profile, &mut checks),
        Err(e) => checks.check(
            "oversub: sweep runs on the demand pool",
            false,
            format!("sweep failed: {e}"),
        ),
    }
    Ok(checks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_share_shapes_but_not_margins() {
        let full = CheckProfile::full();
        let medium = CheckProfile::medium();
        assert!(full.fig1_cluster_ratio > medium.fig1_cluster_ratio);
        assert!(full.fig6_p75_max < medium.fig6_p75_max);
        assert_eq!(full.fig1_median_ratio, medium.fig1_median_ratio);
        assert_eq!(full.oversub_pool, medium.oversub_pool);
    }

    #[test]
    fn epsilon_grid_has_the_strict_point_at_index_two() {
        assert_eq!(OVERSUB_EPSILONS[2], 0.01);
        assert!(OVERSUB_EPSILONS.windows(2).all(|w| w[0] < w[1]));
    }
}
