//! Little-endian byte-level encode/decode helpers shared by the chunk
//! and manifest formats. The decoder side validates every length
//! before consuming bytes, so truncated or bit-flipped files surface
//! as typed errors rather than panics or silent misreads.

/// Append-only little-endian encoder over a `Vec<u8>`.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_f64(&mut self, v: f64) {
        // IEEE-754 bit pattern: exact round trip, no formatting loss.
        self.put_u64(v.to_bits());
    }

    pub fn put_slice(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Length-prefixed (u16) UTF-8 string.
    ///
    /// # Panics
    /// Panics if the string exceeds 64 KiB — format names never do.
    pub fn put_str(&mut self, s: &str) {
        let len = u16::try_from(s.len()).expect("store strings fit in u16");
        self.put_u16(len);
        self.put_slice(s.as_bytes());
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

/// Checked little-endian decoder over a byte slice. Every `take_*`
/// verifies the bytes exist first; errors are reason strings the
/// caller wraps with file/chunk context.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn position(&self) -> usize {
        self.pos
    }

    pub fn take_slice(&mut self, len: usize) -> Result<&'a [u8], String> {
        if len > self.remaining() {
            return Err(format!(
                "need {len} bytes at offset {} but only {} remain",
                self.pos,
                self.remaining()
            ));
        }
        let s = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(s)
    }

    pub fn take_u8(&mut self) -> Result<u8, String> {
        Ok(self.take_slice(1)?[0])
    }

    pub fn take_u16(&mut self) -> Result<u16, String> {
        let s = self.take_slice(2)?;
        Ok(u16::from_le_bytes([s[0], s[1]]))
    }

    pub fn take_u32(&mut self) -> Result<u32, String> {
        let s = self.take_slice(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    pub fn take_u64(&mut self) -> Result<u64, String> {
        let s = self.take_slice(8)?;
        Ok(u64::from_le_bytes([
            s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7],
        ]))
    }

    pub fn take_i64(&mut self) -> Result<i64, String> {
        Ok(self.take_u64()? as i64)
    }

    pub fn take_f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    pub fn take_str(&mut self) -> Result<String, String> {
        let len = self.take_u16()? as usize;
        let bytes = self.take_slice(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "string is not UTF-8".to_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut e = Enc::with_capacity(64);
        e.put_u8(7);
        e.put_u16(300);
        e.put_u32(70_000);
        e.put_u64(1 << 40);
        e.put_i64(-5);
        e.put_f64(-0.125);
        e.put_str("hello");
        let bytes = e.into_vec();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.take_u8().unwrap(), 7);
        assert_eq!(d.take_u16().unwrap(), 300);
        assert_eq!(d.take_u32().unwrap(), 70_000);
        assert_eq!(d.take_u64().unwrap(), 1 << 40);
        assert_eq!(d.take_i64().unwrap(), -5);
        assert_eq!(d.take_f64().unwrap(), -0.125);
        assert_eq!(d.take_str().unwrap(), "hello");
        assert_eq!(d.remaining(), 0);
    }

    #[test]
    fn truncated_reads_error_instead_of_panicking() {
        let mut d = Dec::new(&[1, 2]);
        assert!(d.take_u32().is_err());
        assert_eq!(d.take_u16().unwrap(), 0x0201);
        assert!(d.take_u8().is_err());
        // A length prefix larger than the buffer must not allocate.
        let mut d = Dec::new(&[0xFF, 0xFF, b'x']);
        assert!(d.take_str().is_err());
    }
}
