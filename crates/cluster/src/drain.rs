//! Node draining: evacuating every VM from a node (hardware maintenance,
//! unhealthy-host signals) using live migration within the cluster.

use crate::allocator::ClusterAllocator;
use crate::error::AllocationError;
use cloudscope_model::ids::{NodeId, VmId};
use serde::{Deserialize, Serialize};

/// The result of draining a node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DrainOutcome {
    /// Successfully migrated VMs and their new nodes.
    pub moved: Vec<(VmId, NodeId)>,
    /// VMs that could not be placed anywhere else in the cluster.
    pub stuck: Vec<VmId>,
}

impl DrainOutcome {
    /// `true` if the node is fully evacuated.
    #[must_use]
    pub fn complete(&self) -> bool {
        self.stuck.is_empty()
    }
}

impl ClusterAllocator {
    /// Migrates every VM off `node` onto other nodes of the cluster,
    /// largest VMs first (hardest to place). VMs with no feasible target
    /// are reported as stuck and remain in place.
    ///
    /// # Errors
    /// Returns [`AllocationError::UnknownNode`] if `node` is not managed
    /// by this allocator.
    pub fn drain_node(&mut self, node: NodeId) -> Result<DrainOutcome, AllocationError> {
        // Snapshot the node's VMs, largest (hardest to re-place) first.
        let mut sized: Vec<(VmId, u32)> = self
            .node_state(node)?
            .vms()
            .iter()
            .map(|&vm| (vm, self.placed_size(vm).map_or(0, |s| s.cores())))
            .collect();
        sized.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

        let mut outcome = DrainOutcome {
            moved: Vec::new(),
            stuck: Vec::new(),
        };
        for (vm, _) in sized {
            // Find the best-fit target among other nodes.
            let target = self
                .nodes()
                .filter(|&(id, _)| id != node)
                .filter(|(_, state)| self.placed_size(vm).is_some_and(|size| state.fits(size)))
                .min_by_key(|(_, state)| state.cores_free())
                .map(|(id, _)| id);
            match target {
                Some(target) => {
                    self.migrate(vm, target)?;
                    outcome.moved.push((vm, target));
                }
                None => outcome.stuck.push(vm),
            }
        }
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocator::{PlacementPolicy, PlacementRequest, SpreadingRule};
    use cloudscope_model::ids::ServiceId;
    use cloudscope_model::subscription::CloudKind;
    use cloudscope_model::topology::{NodeSku, Topology};
    use cloudscope_model::vm::{Priority, VmSize};

    fn allocator(nodes: usize) -> ClusterAllocator {
        let mut b = Topology::builder();
        let r = b.add_region("d", 0, "US");
        let d = b.add_datacenter(r);
        let c = b.add_cluster(d, CloudKind::Private, NodeSku::new(16, 128.0), 1, nodes);
        let topo = b.build();
        ClusterAllocator::new(
            topo.cluster(c).unwrap(),
            PlacementPolicy::FirstFit,
            SpreadingRule::default(),
        )
    }

    fn req(vm: u64, cores: u32) -> PlacementRequest {
        PlacementRequest {
            vm: VmId::new(vm),
            size: VmSize::new(cores, f64::from(cores) * 4.0),
            service: ServiceId::new(0),
            priority: Priority::OnDemand,
        }
    }

    #[test]
    fn drains_fully_when_capacity_exists() {
        let mut a = allocator(3);
        // First-fit fills node 0.
        let n0 = a.place(req(0, 8)).unwrap();
        a.place(req(1, 4)).unwrap();
        a.place(req(2, 4)).unwrap();
        let outcome = a.drain_node(n0).unwrap();
        assert!(outcome.complete());
        assert_eq!(outcome.moved.len(), 3);
        assert_eq!(a.node_state(n0).unwrap().cores_used(), 0);
        for (vm, target) in &outcome.moved {
            assert_eq!(a.placement_of(*vm), Some(*target));
            assert_ne!(*target, n0);
        }
    }

    #[test]
    fn reports_stuck_vms_when_cluster_full() {
        let mut a = allocator(2);
        // Fill both nodes completely.
        let n0 = a.place(req(0, 16)).unwrap();
        a.place(req(1, 16)).unwrap();
        let outcome = a.drain_node(n0).unwrap();
        assert!(!outcome.complete());
        assert_eq!(outcome.stuck, vec![VmId::new(0)]);
        // The stuck VM stays placed on the original node.
        assert_eq!(a.placement_of(VmId::new(0)), Some(n0));
    }

    #[test]
    fn drain_empty_node_is_noop() {
        let mut a = allocator(2);
        let node = a.nodes().next().unwrap().0;
        let outcome = a.drain_node(node).unwrap();
        assert!(outcome.complete());
        assert!(outcome.moved.is_empty());
    }

    #[test]
    fn unknown_node_errors() {
        let mut a = allocator(2);
        assert!(matches!(
            a.drain_node(NodeId::new(999)),
            Err(AllocationError::UnknownNode(_))
        ));
    }

    #[test]
    fn partial_drain_moves_what_fits() {
        let mut a = allocator(2);
        let n0 = a.place(req(0, 12)).unwrap();
        a.place(req(1, 2)).unwrap(); // also node 0 (first fit)
        a.place(req(2, 10)).unwrap(); // node 1
                                      // Node 1 has 6 free: only the 2-core VM fits there.
        let outcome = a.drain_node(n0).unwrap();
        assert_eq!(outcome.moved.len(), 1);
        assert_eq!(outcome.moved[0].0, VmId::new(1));
        assert_eq!(outcome.stuck, vec![VmId::new(0)]);
    }
}
