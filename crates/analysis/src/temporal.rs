//! Temporal deployment analyses (Figure 3): lifetime CDFs, VM counts and
//! creations per hour, and the cross-region coefficient of variation.

use crate::deployment::record_in_cloud;
use crate::error::AnalysisError;
use cloudscope_model::prelude::*;
use cloudscope_model::time::MINUTES_PER_HOUR;
use cloudscope_stats::{coefficient_of_variation, BoxPlot, Ecdf};
use cloudscope_timeseries::Series;
use std::collections::BTreeSet;

/// Hours in the trace week.
const HOURS_PER_WEEK: usize = 168;

/// ECDF of lifetimes (in minutes) of VMs that both started and ended
/// within the trace week — the paper's Figure 3(a) filter.
///
/// # Errors
/// Returns [`AnalysisError::NoData`] if no bounded VM exists.
pub fn lifetime_cdf(trace: &Trace, cloud: CloudKind) -> Result<Ecdf, AnalysisError> {
    lifetime_cdf_from(trace.vms(), trace.subscriptions(), cloud)
}

/// [`lifetime_cdf`] over a bare record slice.
///
/// # Errors
/// Returns [`AnalysisError::NoData`] if no bounded VM exists.
pub fn lifetime_cdf_from(
    records: &[VmRecord],
    subscriptions: &[Subscription],
    cloud: CloudKind,
) -> Result<Ecdf, AnalysisError> {
    let lifetimes: Vec<f64> = records
        .iter()
        .filter(|vm| record_in_cloud(vm, subscriptions, cloud))
        .filter(|vm| vm.bounded_by_trace_week())
        .filter_map(|vm| vm.lifetime())
        .map(|d| d.minutes() as f64)
        .collect();
    if lifetimes.is_empty() {
        return Err(AnalysisError::NoData("bounded vm lifetimes"));
    }
    Ecdf::new(lifetimes).map_err(AnalysisError::from)
}

/// Fraction of bounded VMs whose lifetime falls in the shortest bin
/// (`<= bin_minutes`). The paper reports 49% (private) vs 81% (public)
/// for the shortest bin.
///
/// # Errors
/// Returns [`AnalysisError::NoData`] if no bounded VM exists.
pub fn shortest_bin_fraction(
    trace: &Trace,
    cloud: CloudKind,
    bin_minutes: i64,
) -> Result<f64, AnalysisError> {
    let cdf = lifetime_cdf(trace, cloud)?;
    Ok(cdf.eval(bin_minutes as f64))
}

/// Hourly series of alive VM counts in one region over the trace week
/// (Figure 3(b)): sample `t = 0h, 1h, …, 167h`, counting VMs alive at
/// each boundary.
#[must_use]
pub fn vm_counts_per_hour(trace: &Trace, cloud: CloudKind, region: RegionId) -> Series {
    vm_counts_per_hour_from(trace.vms(), trace.subscriptions(), cloud, region)
}

/// [`vm_counts_per_hour`] over a bare record slice — `records` may
/// already be sliced to `region` (a pushed-down store read); any
/// other-region record is still filtered out.
#[must_use]
pub fn vm_counts_per_hour_from(
    records: &[VmRecord],
    subscriptions: &[Subscription],
    cloud: CloudKind,
    region: RegionId,
) -> Series {
    let mut counts = vec![0.0f64; HOURS_PER_WEEK];
    for vm in records {
        if vm.region != region || vm.node.is_none() || !record_in_cloud(vm, subscriptions, cloud) {
            continue;
        }
        let Some((start, end)) = vm.overlap_with(SimTime::ZERO, SimTime::WEEK_END) else {
            continue;
        };
        // Hour boundaries h with start <= h < end.
        let first = (start.minutes() + MINUTES_PER_HOUR - 1) / MINUTES_PER_HOUR;
        let last = (end.minutes() - 1) / MINUTES_PER_HOUR;
        for h in first..=last.min(HOURS_PER_WEEK as i64 - 1) {
            counts[h as usize] += 1.0;
        }
    }
    Series::new(0, MINUTES_PER_HOUR, counts)
}

/// Hourly series of VM creations in one region over the trace week
/// (Figure 3(c)).
#[must_use]
pub fn creations_per_hour(trace: &Trace, cloud: CloudKind, region: RegionId) -> Series {
    creations_per_hour_from(trace.vms(), trace.subscriptions(), cloud, region)
}

/// [`creations_per_hour`] over a bare record slice.
#[must_use]
pub fn creations_per_hour_from(
    records: &[VmRecord],
    subscriptions: &[Subscription],
    cloud: CloudKind,
    region: RegionId,
) -> Series {
    events_per_hour(records, subscriptions, cloud, region, |vm| Some(vm.created))
}

/// Hourly series of VM removals in one region over the trace week (the
/// paper studies removals alongside creations and finds the same shape).
#[must_use]
pub fn removals_per_hour(trace: &Trace, cloud: CloudKind, region: RegionId) -> Series {
    events_per_hour(trace.vms(), trace.subscriptions(), cloud, region, |vm| {
        vm.ended
    })
}

fn events_per_hour(
    records: &[VmRecord],
    subscriptions: &[Subscription],
    cloud: CloudKind,
    region: RegionId,
    event_time: impl Fn(&VmRecord) -> Option<SimTime>,
) -> Series {
    let mut counts = vec![0.0f64; HOURS_PER_WEEK];
    for vm in records {
        if vm.region != region || !record_in_cloud(vm, subscriptions, cloud) {
            continue;
        }
        if let Some(t) = event_time(vm) {
            if t.in_trace_week() {
                counts[t.hours() as usize] += 1.0;
            }
        }
    }
    Series::new(0, MINUTES_PER_HOUR, counts)
}

/// Hours where VM creations burst in one region: robust-z-score spikes
/// of the hourly creation series — the mechanism the paper attributes to
/// "the deployment behavior of some large services" (Fig 3(b)/(c)).
/// Returns the bursting hour indices; an empty vector when the series is
/// too short or smooth.
#[must_use]
pub fn burst_hours(trace: &Trace, cloud: CloudKind, region: RegionId) -> Vec<usize> {
    let series = creations_per_hour(trace, cloud, region);
    cloudscope_timeseries::detect_bursts(&series, 25, 8.0)
        .map(|bursts| bursts.into_iter().map(|b| b.index).collect())
        .unwrap_or_default()
}

/// Coefficient of variation of hourly creations, per region (Figure
/// 3(d)); regions with no creations are skipped.
#[must_use]
pub fn creation_cv_by_region(trace: &Trace, cloud: CloudKind) -> Vec<f64> {
    trace
        .topology()
        .regions()
        .iter()
        .filter_map(|r| {
            let series = creations_per_hour(trace, cloud, r.id);
            coefficient_of_variation(series.values())
        })
        .collect()
}

/// [`creation_cv_by_region`] over a bare record slice. The regions are
/// the distinct ones appearing in `records` (in id order) rather than
/// the topology's — identical output, since a region absent from the
/// records has no creations and would be skipped anyway.
#[must_use]
pub fn creation_cv_by_region_from(
    records: &[VmRecord],
    subscriptions: &[Subscription],
    cloud: CloudKind,
) -> Vec<f64> {
    let regions: BTreeSet<RegionId> = records
        .iter()
        .filter(|vm| record_in_cloud(vm, subscriptions, cloud))
        .map(|vm| vm.region)
        .collect();
    regions
        .into_iter()
        .filter_map(|region| {
            let series = creations_per_hour_from(records, subscriptions, cloud, region);
            coefficient_of_variation(series.values())
        })
        .collect()
}

/// The Figure 3 bundle for both clouds.
#[derive(Debug, Clone, PartialEq)]
pub struct TemporalAnalysis {
    /// Fig 3(a): lifetime CDF, private.
    pub private_lifetimes: Ecdf,
    /// Fig 3(a): lifetime CDF, public.
    pub public_lifetimes: Ecdf,
    /// Shortest-bin (≤ 1 h) fraction, private — paper: 0.49.
    pub private_short_fraction: f64,
    /// Shortest-bin (≤ 1 h) fraction, public — paper: 0.81.
    pub public_short_fraction: f64,
    /// Fig 3(b): hourly VM counts in the sample region (private, public).
    pub vm_counts: (Series, Series),
    /// Fig 3(c): hourly creations in the sample region (private, public).
    pub creations: (Series, Series),
    /// Fig 3(d): per-region creation CV box-plots (private, public).
    pub creation_cv: (BoxPlot, BoxPlot),
}

impl TemporalAnalysis {
    /// Runs the Figure 3 analyses, using `sample_region` for the 3(b)/(c)
    /// curves.
    ///
    /// # Errors
    /// Returns [`AnalysisError::NoData`] if either cloud lacks bounded
    /// VMs or creations.
    pub fn run(trace: &Trace, sample_region: RegionId) -> Result<Self, AnalysisError> {
        Self::run_from_records(
            trace.vms(),
            trace.vms(),
            trace.subscriptions(),
            sample_region,
        )
    }

    /// Runs the Figure 3 analyses over bare record slices: `records`
    /// feeds the global curves (lifetimes, per-region CVs) and
    /// `region_records` the `sample_region`-sliced 3(b)/(c) series —
    /// the split lets a store-backed run push the region predicate
    /// down to the chunk scan instead of sweeping every VM.
    /// `region_records` may be any superset of the region's records
    /// (the region filter still applies), so passing the full set
    /// reproduces [`TemporalAnalysis::run`] exactly.
    ///
    /// # Errors
    /// Returns [`AnalysisError::NoData`] if either cloud lacks bounded
    /// VMs or creations.
    pub fn run_from_records(
        records: &[VmRecord],
        region_records: &[VmRecord],
        subscriptions: &[Subscription],
        sample_region: RegionId,
    ) -> Result<Self, AnalysisError> {
        let private_lifetimes = lifetime_cdf_from(records, subscriptions, CloudKind::Private)?;
        let public_lifetimes = lifetime_cdf_from(records, subscriptions, CloudKind::Public)?;
        let private_short_fraction = private_lifetimes.eval(60.0);
        let public_short_fraction = public_lifetimes.eval(60.0);
        let cv_private = creation_cv_by_region_from(records, subscriptions, CloudKind::Private);
        let cv_public = creation_cv_by_region_from(records, subscriptions, CloudKind::Public);
        if cv_private.is_empty() || cv_public.is_empty() {
            return Err(AnalysisError::NoData("per-region creation CVs"));
        }
        Ok(Self {
            private_lifetimes,
            public_lifetimes,
            private_short_fraction,
            public_short_fraction,
            vm_counts: (
                vm_counts_per_hour_from(
                    region_records,
                    subscriptions,
                    CloudKind::Private,
                    sample_region,
                ),
                vm_counts_per_hour_from(
                    region_records,
                    subscriptions,
                    CloudKind::Public,
                    sample_region,
                ),
            ),
            creations: (
                creations_per_hour_from(
                    region_records,
                    subscriptions,
                    CloudKind::Private,
                    sample_region,
                ),
                creations_per_hour_from(
                    region_records,
                    subscriptions,
                    CloudKind::Public,
                    sample_region,
                ),
            ),
            creation_cv: (BoxPlot::new(cv_private)?, BoxPlot::new(cv_public)?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::tiny_trace;

    #[test]
    fn lifetime_cdf_only_counts_bounded_vms() {
        let trace = tiny_trace();
        let private = lifetime_cdf(&trace, CloudKind::Private).unwrap();
        // Only sub1's VM is bounded: 30 minutes.
        assert_eq!(private.len(), 1);
        assert_eq!(private.max(), 30.0);
        let public = lifetime_cdf(&trace, CloudKind::Public).unwrap();
        // Only sub3's VM: 600 minutes.
        assert_eq!(public.len(), 1);
        assert_eq!(public.max(), 600.0);
    }

    #[test]
    fn shortest_bin_fraction_uses_one_hour_bin() {
        let trace = tiny_trace();
        assert_eq!(
            shortest_bin_fraction(&trace, CloudKind::Private, 60).unwrap(),
            1.0
        );
        assert_eq!(
            shortest_bin_fraction(&trace, CloudKind::Public, 60).unwrap(),
            0.0
        );
    }

    #[test]
    fn vm_counts_track_alive_population() {
        let trace = tiny_trace();
        let counts = vm_counts_per_hour(&trace, CloudKind::Private, RegionId::new(0));
        assert_eq!(counts.len(), 168);
        // 4 standing VMs always; the short-lived VM only exists between
        // 10:00 and 10:30, so it never crosses an hour boundary after 10.
        assert_eq!(counts.values()[9], 4.0);
        assert_eq!(counts.values()[10], 5.0, "alive at the 10:00 boundary");
        assert_eq!(counts.values()[11], 4.0);
    }

    #[test]
    fn creations_and_removals_bucket_by_hour() {
        let trace = tiny_trace();
        let created = creations_per_hour(&trace, CloudKind::Private, RegionId::new(0));
        assert_eq!(created.values().iter().sum::<f64>(), 1.0);
        assert_eq!(created.values()[10], 1.0);
        let removed = removals_per_hour(&trace, CloudKind::Private, RegionId::new(0));
        assert_eq!(removed.values()[10], 1.0);
        let public_created = creations_per_hour(&trace, CloudKind::Public, RegionId::new(0));
        assert_eq!(public_created.values()[20], 1.0);
    }

    #[test]
    fn cv_by_region_skips_empty_regions() {
        let trace = tiny_trace();
        // Private creations only happen in region 0; region 1 has none
        // (its mean is 0 so CV is undefined and skipped).
        let cvs = creation_cv_by_region(&trace, CloudKind::Private);
        assert_eq!(cvs.len(), 1);
        assert!(cvs[0] > 5.0, "a single spike hour has a huge CV");
    }

    #[test]
    fn full_temporal_analysis() {
        let trace = tiny_trace();
        let analysis = TemporalAnalysis::run(&trace, RegionId::new(0)).unwrap();
        assert!(analysis.private_short_fraction > analysis.public_short_fraction - 1.5);
        assert_eq!(analysis.vm_counts.0.len(), 168);
        assert_eq!(analysis.creations.1.len(), 168);
    }
}
