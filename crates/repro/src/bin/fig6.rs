//! Figure 6: CPU-utilization percentile bands over the week and the day.

use cloudscope::analysis::utilization::UtilizationDistribution;
use cloudscope::prelude::*;
use cloudscope_repro::ShapeChecks;

fn main() {
    let generated = cloudscope_repro::default_trace();
    let private =
        UtilizationDistribution::run(&generated.trace, CloudKind::Private, 3000).expect("private");
    let public =
        UtilizationDistribution::run(&generated.trace, CloudKind::Public, 3000).expect("public");

    for (label, d) in [("private", &private), ("public", &public)] {
        println!("## Fig 6 {label}: weekly percentile bands (hourly)");
        println!("hour,p5,p25,p50,p75,p95");
        for h in 0..168 {
            let row: Vec<String> = d
                .weekly
                .bands
                .iter()
                .map(|b| format!("{:.1}", b[h]))
                .collect();
            println!("{h},{}", row.join(","));
        }
        println!();
        println!("## Fig 6 {label}: daily percentile bands (hourly)");
        println!("hour,p5,p25,p50,p75,p95");
        for h in 0..24 {
            let row: Vec<String> = d
                .daily
                .bands
                .iter()
                .map(|b| format!("{:.1}", b[h]))
                .collect();
            println!("{h},{}", row.join(","));
        }
        println!();
    }

    let mut checks = ShapeChecks::new();
    checks.check(
        "p75 utilization stays below ~30% in both clouds",
        private.p75_peak() < 32.0 && public.p75_peak() < 32.0,
        format!(
            "p75 peaks {:.1} / {:.1}",
            private.p75_peak(),
            public.p75_peak()
        ),
    );
    checks.check(
        "private daily profile follows working hours; public flatter",
        private.daily_median_variability() > 1.5 * public.daily_median_variability(),
        format!(
            "daily median std {:.2} vs {:.2}",
            private.daily_median_variability(),
            public.daily_median_variability()
        ),
    );
    let weekend_drop = {
        let median = private.weekly.band(50.0).expect("p50");
        let weekday: f64 = median[..120].iter().sum::<f64>() / 120.0;
        let weekend: f64 = median[120..].iter().sum::<f64>() / 48.0;
        weekend < weekday
    };
    checks.check(
        "private utilization drops on weekends",
        weekend_drop,
        "weekend median below weekday median".into(),
    );
    std::process::exit(i32::from(!checks.finish("fig6")));
}
