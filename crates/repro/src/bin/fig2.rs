//! Figure 2: heatmaps of core and memory sizes per VM.

use cloudscope::analysis::vmsize::VmSizeAnalysis;
use cloudscope_repro::ShapeChecks;

fn main() {
    let generated = cloudscope_repro::default_trace();
    let a = VmSizeAnalysis::run(&generated.trace).expect("analysis");

    for (label, hm) in [("private", &a.private), ("public", &a.public)] {
        println!("## Fig 2 {label}: cores x memory heatmap (fractions)");
        println!("core_bin,memory_bin,fraction");
        for x in 0..hm.x_axis().bins() {
            for y in 0..hm.y_axis().bins() {
                let f = hm.fraction(x, y);
                if f > 0.0 {
                    println!("{x},{y},{f:.4}");
                }
            }
        }
        println!();
    }

    let mut checks = ShapeChecks::new();
    // Overlap coefficient: sum of min(p, q) over cells; 1 = identical.
    let mut overlap = 0.0;
    for x in 0..a.private.x_axis().bins() {
        for y in 0..a.private.y_axis().bins() {
            overlap += a.private.fraction(x, y).min(a.public.fraction(x, y));
        }
    }
    checks.check(
        "distributions largely similar (mass overlap)",
        overlap > 0.5,
        format!("overlap coefficient {overlap:.2}"),
    );
    checks.check(
        "public mass extends to tiny+huge corners (Fig 2b)",
        a.public_corner_mass > 3.0 * a.private_corner_mass,
        format!(
            "corner mass {:.3} vs {:.3}",
            a.public_corner_mass, a.private_corner_mass
        ),
    );
    std::process::exit(i32::from(!checks.finish("fig2")));
}
