//! Partition-granularity oracle: the cluster-group drive must be
//! byte-identical to the region-granularity drive (kept as
//! [`PartitionMode::Region`] exactly for this comparison) and to the
//! whole-trace serial drive, over randomized configurations.
//!
//! The strategy deliberately includes the configurations where the
//! granularities could plausibly diverge:
//!
//! - **Multiple clusters per region per cloud**, so
//!   `Fleet::place_in_region` exercises the coupled
//!   least-allocated-first ordering and cross-cluster fallback that make
//!   clusters within one (region, cloud) non-independent — the reason
//!   the partition stops at cluster *groups* rather than clusters.
//! - **Capacity pressure** (small nodes, few racks, many standing VMs),
//!   so placements fail, fall back across clusters, and drop — the
//!   generator's equivalent of eviction-heavy churn (the drive places
//!   without eviction, so contention shows up as fallback and drops).
//! - **High spot fractions**, so priority-dependent placement paths run.

use cloudscope_par::Parallelism;
use cloudscope_tracegen::{
    generate_with_partition, GeneratedTrace, GeneratorConfig, PartitionMode,
};
use proptest::prelude::*;

/// Small configurations biased toward placement contention.
fn contended_config_strategy() -> impl Strategy<Value = GeneratorConfig> {
    (
        (
            any::<u64>(),
            2usize..4, // regions
            1usize..4, // private clusters per region (>1 exercises fallback)
            1usize..4, // public clusters per region
            1usize..3, // racks per cluster
        ),
        (
            3usize..8,       // nodes per rack (small: capacity pressure)
            4usize..12,      // private subscriptions
            20usize..60,     // public subscriptions
            0.0f64..0.9,     // public spot fraction
            prop::bool::ANY, // telemetry
        ),
    )
        .prop_map(
            |(
                (seed, regions, private_clusters, public_clusters, racks),
                (nodes, private_subs, public_subs, spot, telemetry),
            )| {
                let mut cfg = GeneratorConfig::small(seed);
                cfg.topology.regions.truncate(regions);
                cfg.topology.private_clusters_per_region = private_clusters;
                cfg.topology.public_clusters_per_region = public_clusters;
                cfg.topology.racks_per_cluster = racks;
                cfg.topology.nodes_per_rack = nodes;
                cfg.private.subscriptions = private_subs;
                cfg.public.subscriptions = public_subs;
                cfg.public.spot_fraction = spot;
                cfg.private.arrival.base_rate_per_hour = 1.0;
                cfg.public.arrival.base_rate_per_hour = 3.0;
                cfg.telemetry = telemetry;
                cfg
            },
        )
}

/// Full-output equality: stats, report, service directory, every record,
/// every telemetry series.
fn assert_identical(a: &GeneratedTrace, b: &GeneratedTrace, label: &str) {
    assert_eq!(a.report, b.report, "{label}: report");
    assert_eq!(a.trace.stats(), b.trace.stats(), "{label}: stats");
    assert_eq!(a.services, b.services, "{label}: services");
    assert_eq!(a.trace.vms(), b.trace.vms(), "{label}: records");
    for vm in a.trace.vms() {
        assert_eq!(
            a.trace.util(vm.id),
            b.trace.util(vm.id),
            "{label}: telemetry of {}",
            vm.id
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn cluster_group_drive_matches_region_and_serial(config in contended_config_strategy()) {
        let serial =
            generate_with_partition(&config, Parallelism::with_workers(1), PartitionMode::Serial);
        for workers in [1usize, 3, 8] {
            let par = Parallelism::with_workers(workers);
            let region = generate_with_partition(&config, par, PartitionMode::Region);
            let group = generate_with_partition(&config, par, PartitionMode::ClusterGroup);
            assert_identical(&serial, &region, &format!("region mode, {workers} workers"));
            assert_identical(&serial, &group, &format!("cluster-group mode, {workers} workers"));
        }
    }
}
