//! # cloudscope
//!
//! A full reproduction of the DSN'23 study *"How Different are the Cloud
//! Workloads? Characterizing Large-Scale Private and Public Cloud
//! Workloads"* as a Rust library suite:
//!
//! - [`model`]: the domain model (topology, subscriptions, VMs, 5-minute
//!   telemetry, the trace container).
//! - [`stats`] / [`timeseries`] / [`sim`]: the numeric and simulation
//!   substrates (ECDFs, box-plots, Pearson, FFT/ACF period detection, a
//!   discrete-event engine).
//! - [`cluster`]: the allocation-service substrate (placement policies,
//!   fault-domain spreading, spot eviction, migration).
//! - [`tracegen`]: the calibrated synthetic stand-in for the proprietary
//!   Azure trace.
//! - [`analysis`]: the paper's characterization pipeline — one module per
//!   figure, plus the four insight verdicts.
//! - [`kb`]: the centralized workload knowledge base of Section V.
//! - [`par`]: the shared deterministic fork-join executor.
//! - [`store`]: the out-of-core columnar trace store — compressed
//!   column chunks, atomic manifest commits, streamed reads in
//!   bounded memory.
//! - [`faults`]: deterministic telemetry fault injection — the seeded
//!   corruption plans and flaky stores the robustness tests run under.
//! - [`ingest`]: the online ingestion service — watermarked per-VM
//!   windows over a live wire-sample stream, streaming Figure 5
//!   classification at window close, publication into the KB.
//! - [`mgmt`]: the management policies the insights motivate (spot,
//!   over-subscription, regional rebalancing, pre-provisioning,
//!   deferral, allocation-failure prediction).
//!
//! ## Quickstart
//!
//! Characterize a trace, feed the knowledge base, and run a typed policy
//! query end-to-end:
//!
//! ```no_run
//! use cloudscope::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let generated = generate(&GeneratorConfig::default());
//! let report = CharacterizationReport::analyze(&generated.trace, &ReportConfig::default())?;
//! for (holds, verdict) in report.insight_verdicts() {
//!     println!("[{}] {verdict}", if holds { "ok" } else { "MISS" });
//! }
//!
//! // Section V: extract per-subscription knowledge into the sharded KB…
//! let kb = KnowledgeBase::new();
//! let classifier = PatternClassifier::default();
//! for cloud in CloudKind::BOTH {
//!     kb.feed(extract_cloud_knowledge(&generated.trace, cloud, &classifier, 8));
//! }
//! // …and serve the policies from its secondary indexes: counting spot
//! // candidates walks an index (no entry visited), and the filtered
//! // collect clones exactly the matching entries.
//! println!("{} spot candidates", KbQuery::spot_candidates().count(&kb));
//! let big_shiftable = KbQuery::shiftable().filter(|k| k.cores >= 64).collect(&kb);
//! println!("{} shiftable workloads with 64+ cores", big_shiftable.len());
//! for (policy, recommendations) in PolicyEngine::standard().run(&kb) {
//!     println!("{policy}: {} recommendations", recommendations.len());
//! }
//! # Ok(())
//! # }
//! ```
//!
//! ## One classifier, three telemetry sources
//!
//! Every analysis that reads samples goes through the
//! [`TelemetrySource`] trait, so the *same* classifier code runs over a
//! resident trace, the out-of-core store, and a live ingestion session:
//!
//! ```no_run
//! use cloudscope::prelude::*;
//! use cloudscope::analysis::pattern_shares_from;
//! use cloudscope::faults::FaultPlan;
//! use cloudscope::ingest::{drive_ingest, IngestConfig};
//! use cloudscope::par::Parallelism;
//! use cloudscope::store::{write_trace, StoreTelemetry, WriteOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let generated = generate(&GeneratorConfig::default());
//! let classifier = PatternClassifier::default();
//!
//! // Batch: samples resident in the trace.
//! let batch = pattern_shares_from(
//!     &generated.trace, &generated.trace, CloudKind::Public, &classifier, 64)?;
//!
//! // Out-of-core: samples streamed from compressed column chunks.
//! write_trace(&generated.trace, "trace-dir", WriteOptions::default(), &Parallelism::auto())?;
//! let store = StoreTelemetry::open("trace-dir", 0)?;
//! let cold = pattern_shares_from(
//!     &generated.trace, &store, CloudKind::Public, &classifier, 64)?;
//!
//! // Streaming: samples consumed one wire sample at a time.
//! let kb = KnowledgeBase::new();
//! let outcome = drive_ingest(
//!     &generated.trace, &FaultPlan::clean(1), &IngestConfig::default(),
//!     &classifier, &kb);
//! let live = pattern_shares_from(
//!     &generated.trace, &outcome.session, CloudKind::Public, &classifier, 64)?;
//!
//! // All three saw identical samples, so the shares agree exactly.
//! assert_eq!(batch, cold);
//! assert_eq!(batch, live);
//! # Ok(())
//! # }
//! ```
//!
//! [`TelemetrySource`]: model::trace::TelemetrySource

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cloudscope_analysis as analysis;
pub use cloudscope_cluster as cluster;
pub use cloudscope_faults as faults;
pub use cloudscope_ingest as ingest;
pub use cloudscope_kb as kb;
pub use cloudscope_mgmt as mgmt;
pub use cloudscope_model as model;
pub use cloudscope_obs as obs;
pub use cloudscope_par as par;
pub use cloudscope_sim as sim;
pub use cloudscope_stats as stats;
pub use cloudscope_store as store;
pub use cloudscope_timeseries as timeseries;
pub use cloudscope_tracegen as tracegen;

/// Takes a point-in-time snapshot of the current metrics registry
/// (scoped if one is installed, global otherwise), counting the
/// snapshot itself under `facade.obs.snapshots_taken`.
#[must_use]
pub fn obs_snapshot() -> obs::Snapshot {
    obs::counter("facade.obs.snapshots_taken").inc();
    obs::current().snapshot()
}

/// The most common imports in one place.
pub mod prelude {
    pub use crate::analysis::report::{CharacterizationReport, ReportConfig};
    pub use crate::analysis::{PatternClassifier, UtilizationPattern};
    pub use crate::ingest::{IngestConfig, IngestSession, Ingestor};
    pub use crate::kb::{
        extract_cloud_knowledge, DurableKb, KbQuery, KbSelector, KnowledgeBase, WorkloadKnowledge,
    };
    pub use crate::mgmt::{PolicyEngine, Recommendation};
    pub use crate::model::prelude::*;
    pub use crate::tracegen::{generate, GeneratedTrace, GeneratorConfig};
}
