//! Generator ↔ store integration: the streamed [`generate_to_store`]
//! path must produce byte-identical stores to persisting the in-memory
//! generation result, and a store must restore the full
//! [`GeneratedTrace`] — trace, service ground truth, and report — in
//! both telemetry modes.

use cloudscope_par::Parallelism;
use cloudscope_store::{TelemetryMode, WriteOptions};
use cloudscope_tracegen::store_io::{
    decode_report, decode_services, encode_report, encode_services,
};
use cloudscope_tracegen::{
    generate_to_store, generate_with, read_generated, read_trace_only, write_generated,
    GeneratorConfig,
};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let path = std::env::temp_dir().join(format!(
            "cloudscope-tracegen-store-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).unwrap();
        Self(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A shrunk `small` configuration that still exercises multiple
/// regions, both clouds, and several chunks per store, but generates
/// in well under a second even in debug builds.
fn tiny(seed: u64) -> GeneratorConfig {
    let mut cfg = GeneratorConfig::small(seed);
    cfg.topology.regions.truncate(2);
    cfg.private.subscriptions = 8;
    cfg.public.subscriptions = 60;
    cfg.private.arrival.base_rate_per_hour = 0.5;
    cfg.public.arrival.base_rate_per_hour = 2.0;
    cfg
}

fn dir_snapshot(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| {
            let e = e.unwrap();
            (
                e.file_name().to_string_lossy().into_owned(),
                std::fs::read(e.path()).unwrap(),
            )
        })
        .collect();
    files.sort_by(|a, b| a.0.cmp(&b.0));
    files
}

#[test]
fn streamed_generation_matches_in_memory_write_byte_for_byte() {
    let config = tiny(4242);
    let par = Parallelism::with_workers(4);
    let opts = WriteOptions {
        target_chunk_rows: 128,
        target_chunk_bytes: 32 * 1024,
        level: 2,
    };

    let generated = generate_with(&config, par);
    let via_memory = TempDir::new("via-memory");
    write_generated(&generated, via_memory.path(), opts, &par).unwrap();

    let streamed = TempDir::new("streamed");
    let report = generate_to_store(&config, streamed.path(), opts, par).unwrap();
    assert_eq!(report, generated.report, "streamed report");

    assert_eq!(
        dir_snapshot(streamed.path()),
        dir_snapshot(via_memory.path()),
        "streamed store bytes differ from the in-memory write"
    );
}

#[test]
fn read_generated_restores_everything_in_both_modes() {
    let config = tiny(77);
    let par = Parallelism::with_workers(2);
    let generated = generate_with(&config, par);
    let dir = TempDir::new("restore");
    write_generated(&generated, dir.path(), WriteOptions::default(), &par).unwrap();

    for mode in [
        TelemetryMode::Resident,
        TelemetryMode::OutOfCore { cache_chunks: 2 },
    ] {
        let back = read_generated(dir.path(), mode, &par).unwrap();
        assert_eq!(back.services, generated.services, "{mode:?} services");
        assert_eq!(back.report, generated.report, "{mode:?} report");
        assert_eq!(back.trace.vms(), generated.trace.vms(), "{mode:?} records");
        assert_eq!(
            back.trace.stats(),
            generated.trace.stats(),
            "{mode:?} stats"
        );
        for vm in generated.trace.vms() {
            assert_eq!(
                back.trace.util(vm.id),
                generated.trace.util(vm.id),
                "{mode:?} telemetry of {}",
                vm.id
            );
        }
    }

    let trace_only = read_trace_only(
        dir.path(),
        TelemetryMode::OutOfCore { cache_chunks: 2 },
        &par,
    )
    .unwrap();
    assert!(trace_only.telemetry_is_lazy());
    assert_eq!(trace_only.stats(), generated.trace.stats());
}

#[test]
fn sidecar_blobs_roundtrip_and_reject_damage() {
    let config = tiny(5);
    let generated = generate_with(&config, Parallelism::with_workers(2));
    let path = Path::new("manifest.csm");

    let svc_bytes = encode_services(&generated.services);
    assert_eq!(
        decode_services(path, &svc_bytes).unwrap(),
        generated.services
    );
    let rep_bytes = encode_report(&generated.report);
    assert_eq!(decode_report(path, &rep_bytes).unwrap(), generated.report);

    // Truncations at every offset must error, never panic or misread.
    for cut in 0..svc_bytes.len() {
        assert!(
            decode_services(path, &svc_bytes[..cut]).is_err(),
            "services blob truncated to {cut} decoded"
        );
    }
    for cut in 0..rep_bytes.len() {
        assert!(
            decode_report(path, &rep_bytes[..cut]).is_err(),
            "report blob truncated to {cut} decoded"
        );
    }
    // Trailing garbage is loud too.
    let mut long = rep_bytes.clone();
    long.push(9);
    assert!(decode_report(path, &long).is_err());
}
