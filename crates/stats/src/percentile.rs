//! Percentile computation with linear interpolation (the "type 7"
//! definition used by most plotting stacks), plus a multi-percentile
//! helper for the utilization-band figures (Figure 6).
//!
//! The single-percentile path uses quickselect
//! (`select_nth_unstable_by`, expected O(n)) instead of a full sort; the
//! multi-percentile path sorts once and additionally offers
//! [`percentiles_into`], which reuses caller-owned buffers so tight loops
//! (the Figure 6 band sweep calls it once per time index) allocate
//! nothing.

use crate::error::StatsError;

/// Percentile of an **already sorted** slice using linear interpolation
/// between closest ranks.
///
/// # Panics
/// Panics if the slice is empty or `p` is outside `[0, 100]`; use
/// [`percentile`] for fallible input.
#[must_use]
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (n - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Percentile of an unsorted sample.
///
/// # Errors
/// Returns [`StatsError::EmptyInput`] on an empty sample,
/// [`StatsError::NonFinite`] if any value is NaN/∞, and
/// [`StatsError::OutOfRange`] if `p` is outside `[0, 100]`.
///
/// # Examples
/// ```
/// # use cloudscope_stats::percentile::percentile;
/// # fn main() -> Result<(), cloudscope_stats::error::StatsError> {
/// assert_eq!(percentile(&[4.0, 1.0, 3.0, 2.0], 50.0)?, 2.5);
/// # Ok(())
/// # }
/// ```
pub fn percentile(sample: &[f64], p: f64) -> Result<f64, StatsError> {
    if sample.is_empty() {
        return Err(StatsError::EmptyInput("percentile sample"));
    }
    if sample.iter().any(|v| !v.is_finite()) {
        return Err(StatsError::NonFinite("percentile sample"));
    }
    if !(0.0..=100.0).contains(&p) {
        return Err(StatsError::OutOfRange("percentile level"));
    }
    let mut scratch = sample.to_vec();
    cloudscope_obs::counter("stats.percentile.selections").inc();
    Ok(percentile_select(&mut scratch, p))
}

/// Type-7 percentile by quickselect, expected O(n): partition at the
/// floor rank, and when the rank interpolates, take the ceil-rank order
/// statistic as the minimum of the right partition (every element there
/// is ≥ the pivot). Reorders `scratch`.
///
/// Values must be finite and `p` in `[0, 100]` (callers validate).
fn percentile_select(scratch: &mut [f64], p: f64) -> f64 {
    let n = scratch.len();
    if n == 1 {
        return scratch[0];
    }
    let rank = p / 100.0 * (n - 1) as f64;
    let lo = rank.floor() as usize;
    let frac = rank - lo as f64;
    let (_, &mut lo_val, right) =
        scratch.select_nth_unstable_by(lo, |a, b| a.partial_cmp(b).expect("finite values compare"));
    if frac == 0.0 {
        return lo_val;
    }
    // frac > 0 implies lo < n - 1, so the right partition is non-empty.
    let hi_val = right.iter().copied().fold(f64::INFINITY, f64::min);
    lo_val + (hi_val - lo_val) * frac
}

/// Computes several percentiles of one sample with a single sort.
///
/// # Errors
/// Same conditions as [`percentile`], applied to each level.
pub fn percentiles(sample: &[f64], levels: &[f64]) -> Result<Vec<f64>, StatsError> {
    let mut scratch = Vec::new();
    let mut out = Vec::new();
    percentiles_into(sample, levels, &mut scratch, &mut out)?;
    Ok(out)
}

/// [`percentiles`] with caller-owned buffers: `scratch` holds the sorted
/// copy of the sample and `out` receives the results (cleared first).
/// Both retain their capacity, so a loop calling this per column reuses
/// the same two allocations throughout.
///
/// # Errors
/// Same conditions as [`percentiles`].
pub fn percentiles_into(
    sample: &[f64],
    levels: &[f64],
    scratch: &mut Vec<f64>,
    out: &mut Vec<f64>,
) -> Result<(), StatsError> {
    if sample.is_empty() {
        return Err(StatsError::EmptyInput("percentile sample"));
    }
    if sample.iter().any(|v| !v.is_finite()) {
        return Err(StatsError::NonFinite("percentile sample"));
    }
    if levels.iter().any(|p| !(0.0..=100.0).contains(p)) {
        return Err(StatsError::OutOfRange("percentile level"));
    }
    scratch.clear();
    scratch.extend_from_slice(sample);
    scratch.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
    out.clear();
    out.extend(levels.iter().map(|&p| percentile_sorted(scratch, p)));
    Ok(())
}

/// The percentile levels Figure 6 of the paper plots as bands.
pub const FIGURE6_LEVELS: [f64; 5] = [5.0, 25.0, 50.0, 75.0, 95.0];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolated_median() {
        assert_eq!(percentile(&[1.0, 2.0, 3.0, 4.0], 50.0).unwrap(), 2.5);
        assert_eq!(percentile(&[1.0, 2.0, 3.0], 50.0).unwrap(), 2.0);
    }

    #[test]
    fn extremes() {
        let data = [3.0, 1.0, 2.0];
        assert_eq!(percentile(&data, 0.0).unwrap(), 1.0);
        assert_eq!(percentile(&data, 100.0).unwrap(), 3.0);
    }

    #[test]
    fn interpolation_between_ranks() {
        // 10 values 0..9: p90 -> rank 8.1 -> 8.1
        let data: Vec<f64> = (0..10).map(f64::from).collect();
        assert!((percentile(&data, 90.0).unwrap() - 8.1).abs() < 1e-12);
    }

    #[test]
    fn error_conditions() {
        assert!(matches!(
            percentile(&[], 50.0),
            Err(StatsError::EmptyInput(_))
        ));
        assert!(matches!(
            percentile(&[f64::NAN], 50.0),
            Err(StatsError::NonFinite(_))
        ));
        assert!(matches!(
            percentile(&[1.0], 101.0),
            Err(StatsError::OutOfRange(_))
        ));
    }

    #[test]
    fn multi_percentiles_consistent_with_single() {
        let data: Vec<f64> = (0..50).map(|i| ((i * 13) % 50) as f64).collect();
        let levels = [5.0, 25.0, 50.0, 75.0, 95.0];
        let many = percentiles(&data, &levels).unwrap();
        for (&p, &v) in levels.iter().zip(&many) {
            assert_eq!(v, percentile(&data, p).unwrap());
        }
        // Monotone in the level.
        assert!(many.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn single_element_slice() {
        assert_eq!(percentile_sorted(&[42.0], 75.0), 42.0);
    }

    #[test]
    fn selection_matches_sorted_at_every_level() {
        // Duplicates, negatives, and an awkward length to stress the
        // partition boundaries.
        let data: Vec<f64> = (0..97).map(|i| (((i * 31) % 17) as f64) - 8.0).collect();
        let mut sorted = data.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for p in 0..=100 {
            let p = f64::from(p);
            assert_eq!(
                percentile(&data, p).unwrap(),
                percentile_sorted(&sorted, p),
                "level {p}"
            );
        }
    }

    #[test]
    fn percentiles_into_reuses_buffers() {
        let mut scratch = Vec::new();
        let mut out = Vec::new();
        percentiles_into(&[3.0, 1.0, 2.0], &FIGURE6_LEVELS, &mut scratch, &mut out).unwrap();
        assert_eq!(out.len(), 5);
        assert_eq!(out[2], 2.0);
        let cap = (scratch.capacity(), out.capacity());
        percentiles_into(&[9.0, 7.0], &[50.0], &mut scratch, &mut out).unwrap();
        assert_eq!(out, vec![8.0]);
        assert_eq!((scratch.capacity(), out.capacity()), cap, "no reallocation");
        assert!(matches!(
            percentiles_into(&[], &[50.0], &mut scratch, &mut out),
            Err(StatsError::EmptyInput(_))
        ));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn sorted_variant_panics_on_empty() {
        let _ = percentile_sorted(&[], 50.0);
    }
}
