//! Error type for the characterization pipeline.

use cloudscope_stats::StatsError;
use cloudscope_timeseries::SeriesError;
use std::error::Error;
use std::fmt;

/// Errors returned by the analysis pipeline.
// `Eq` is deliberately absent: `InsufficientData` carries coverage ratios.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AnalysisError {
    /// The trace holds no data for the requested analysis; carries what
    /// was being computed.
    NoData(&'static str),
    /// Telemetry exists but covers too little of the requested window to
    /// trust the figure — the gap-aware degradation path.
    InsufficientData {
        /// What was being computed.
        what: &'static str,
        /// Achieved coverage, in `[0, 1]`.
        coverage: f64,
        /// The coverage floor the analysis requires.
        required: f64,
    },
    /// A statistics kernel rejected its input.
    Stats(StatsError),
    /// A time-series transform rejected its input.
    Series(SeriesError),
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::NoData(what) => write!(f, "no data for {what}"),
            AnalysisError::InsufficientData {
                what,
                coverage,
                required,
            } => write!(
                f,
                "insufficient data for {what}: coverage {coverage:.3} below required {required:.3}"
            ),
            AnalysisError::Stats(e) => write!(f, "statistics error: {e}"),
            AnalysisError::Series(e) => write!(f, "time-series error: {e}"),
        }
    }
}

impl Error for AnalysisError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AnalysisError::NoData(_) | AnalysisError::InsufficientData { .. } => None,
            AnalysisError::Stats(e) => Some(e),
            AnalysisError::Series(e) => Some(e),
        }
    }
}

impl From<StatsError> for AnalysisError {
    fn from(e: StatsError) -> Self {
        AnalysisError::Stats(e)
    }
}

impl From<SeriesError> for AnalysisError {
    fn from(e: SeriesError) -> Self {
        AnalysisError::Series(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_and_sources() {
        let e = AnalysisError::NoData("lifetimes");
        assert_eq!(e.to_string(), "no data for lifetimes");
        assert!(e.source().is_none());
        let e = AnalysisError::InsufficientData {
            what: "figure 6 bands",
            coverage: 0.41,
            required: 0.75,
        };
        assert!(e.to_string().contains("figure 6 bands"));
        assert!(e.to_string().contains("0.410"));
        assert!(e.source().is_none());
        let e: AnalysisError = StatsError::EmptyInput("x").into();
        assert!(e.source().is_some());
        let e: AnalysisError = SeriesError::ZeroVariance.into();
        assert!(e.to_string().contains("time-series"));
    }

    #[test]
    fn trait_bounds() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<AnalysisError>();
    }
}
