//! # cloudscope-bench
//!
//! Criterion benchmarks: `figures` regenerates every evaluation artifact
//! of the paper (one group per figure plus the pilot and the
//! over-subscription sweep); `engine` micro-benchmarks the substrates
//! (allocator, statistics kernels, FFT, generation).
//!
//! Run with `cargo bench -p cloudscope-bench`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
