//! Histograms: 1-D binned counts and the 2-D heatmap grid behind the VM
//! core×memory size figure (Figure 2).

use crate::error::StatsError;
use serde::{Deserialize, Serialize};

/// Axis binning: `bins` equal-width bins spanning `[lo, hi)`, with an
/// optional logarithmic scale (VM sizes span orders of magnitude).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Axis {
    lo: f64,
    hi: f64,
    bins: usize,
    log: bool,
}

impl Axis {
    /// Linear axis over `[lo, hi)` with `bins` bins.
    ///
    /// # Errors
    /// Returns [`StatsError::OutOfRange`] if `lo >= hi` or `bins == 0`.
    pub fn linear(lo: f64, hi: f64, bins: usize) -> Result<Self, StatsError> {
        if lo >= hi || bins == 0 || !lo.is_finite() || !hi.is_finite() {
            return Err(StatsError::OutOfRange("axis definition"));
        }
        Ok(Self {
            lo,
            hi,
            bins,
            log: false,
        })
    }

    /// Logarithmic axis over `[lo, hi)` with `bins` bins; `lo` must be > 0.
    ///
    /// # Errors
    /// Returns [`StatsError::OutOfRange`] for a degenerate range.
    pub fn logarithmic(lo: f64, hi: f64, bins: usize) -> Result<Self, StatsError> {
        if !(0.0 < lo && lo < hi) || bins == 0 || !hi.is_finite() {
            return Err(StatsError::OutOfRange("axis definition"));
        }
        Ok(Self {
            lo,
            hi,
            bins,
            log: true,
        })
    }

    /// Number of bins.
    #[must_use]
    pub const fn bins(&self) -> usize {
        self.bins
    }

    /// Bin index for a value, or `None` if it falls outside `[lo, hi)`.
    #[must_use]
    pub fn bin_of(&self, value: f64) -> Option<usize> {
        if !value.is_finite() || value < self.lo || value >= self.hi {
            return None;
        }
        let frac = if self.log {
            (value.ln() - self.lo.ln()) / (self.hi.ln() - self.lo.ln())
        } else {
            (value - self.lo) / (self.hi - self.lo)
        };
        // The epsilon keeps exact grid points (e.g. powers of two on a
        // log axis) in their nominal bin despite ln() rounding.
        Some(((frac * self.bins as f64 + 1e-9) as usize).min(self.bins - 1))
    }

    /// `(lower, upper)` edges of bin `i`.
    ///
    /// # Panics
    /// Panics if `i >= bins`.
    #[must_use]
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        assert!(i < self.bins, "bin {i} out of {}", self.bins);
        let t0 = i as f64 / self.bins as f64;
        let t1 = (i + 1) as f64 / self.bins as f64;
        if self.log {
            let (ll, lh) = (self.lo.ln(), self.hi.ln());
            ((ll + t0 * (lh - ll)).exp(), (ll + t1 * (lh - ll)).exp())
        } else {
            (
                self.lo + t0 * (self.hi - self.lo),
                self.lo + t1 * (self.hi - self.lo),
            )
        }
    }
}

/// A 1-D histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    axis: Axis,
    counts: Vec<u64>,
    overflow: u64,
}

impl Histogram {
    /// Creates an empty histogram over `axis`.
    #[must_use]
    pub fn new(axis: Axis) -> Self {
        Self {
            counts: vec![0; axis.bins()],
            axis,
            overflow: 0,
        }
    }

    /// Adds one observation; out-of-range values count as overflow.
    pub fn push(&mut self, value: f64) {
        match self.axis.bin_of(value) {
            Some(i) => self.counts[i] += 1,
            None => self.overflow += 1,
        }
    }

    /// Per-bin counts.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations that fell outside the axis range.
    #[must_use]
    pub const fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total in-range observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Per-bin fractions of in-range observations (all zeros when empty).
    #[must_use]
    pub fn fractions(&self) -> Vec<f64> {
        let total = self.total();
        if total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / total as f64)
            .collect()
    }

    /// The axis this histogram bins over.
    #[must_use]
    pub const fn axis(&self) -> &Axis {
        &self.axis
    }
}

impl Extend<f64> for Histogram {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for v in iter {
            self.push(v);
        }
    }
}

/// A 2-D histogram (heatmap grid), e.g. cores × memory per VM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Heatmap {
    x_axis: Axis,
    y_axis: Axis,
    counts: Vec<u64>,
    overflow: u64,
}

impl Heatmap {
    /// Creates an empty heatmap over the two axes.
    #[must_use]
    pub fn new(x_axis: Axis, y_axis: Axis) -> Self {
        Self {
            counts: vec![0; x_axis.bins() * y_axis.bins()],
            x_axis,
            y_axis,
            overflow: 0,
        }
    }

    /// Adds one `(x, y)` observation; out-of-range points count as
    /// overflow.
    pub fn push(&mut self, x: f64, y: f64) {
        match (self.x_axis.bin_of(x), self.y_axis.bin_of(y)) {
            (Some(i), Some(j)) => self.counts[j * self.x_axis.bins() + i] += 1,
            _ => self.overflow += 1,
        }
    }

    /// Count in cell `(x_bin, y_bin)`.
    ///
    /// # Panics
    /// Panics if either index is out of range.
    #[must_use]
    pub fn cell(&self, x_bin: usize, y_bin: usize) -> u64 {
        assert!(x_bin < self.x_axis.bins() && y_bin < self.y_axis.bins());
        self.counts[y_bin * self.x_axis.bins() + x_bin]
    }

    /// Total in-range observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Observations outside either axis.
    #[must_use]
    pub const fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Cell fraction of in-range mass; 0 when empty.
    #[must_use]
    pub fn fraction(&self, x_bin: usize, y_bin: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.cell(x_bin, y_bin) as f64 / total as f64
        }
    }

    /// X axis.
    #[must_use]
    pub const fn x_axis(&self) -> &Axis {
        &self.x_axis
    }

    /// Y axis.
    #[must_use]
    pub const fn y_axis(&self) -> &Axis {
        &self.y_axis
    }

    /// Fraction of mass in the cells at the extreme corners of the grid —
    /// the discriminator for Figure 2's observation that public-cloud VM
    /// sizes extend to both the bottom-left (tiny) and top-right (huge)
    /// corners. `margin` is how many bins from each edge count as a
    /// "corner" (1 means the single corner cell).
    #[must_use]
    pub fn corner_mass(&self, margin: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let (nx, ny) = (self.x_axis.bins(), self.y_axis.bins());
        let m = margin.max(1);
        let mut corner = 0u64;
        for j in 0..ny {
            for i in 0..nx {
                let low_corner = i < m && j < m;
                let high_corner = i >= nx - m && j >= ny - m;
                if low_corner || high_corner {
                    corner += self.counts[j * nx + i];
                }
            }
        }
        corner as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_axis_binning() {
        let ax = Axis::linear(0.0, 10.0, 5).unwrap();
        assert_eq!(ax.bin_of(0.0), Some(0));
        assert_eq!(ax.bin_of(1.99), Some(0));
        assert_eq!(ax.bin_of(2.0), Some(1));
        assert_eq!(ax.bin_of(9.99), Some(4));
        assert_eq!(ax.bin_of(10.0), None);
        assert_eq!(ax.bin_of(-0.1), None);
        assert_eq!(ax.bin_edges(1), (2.0, 4.0));
    }

    #[test]
    fn log_axis_binning() {
        let ax = Axis::logarithmic(1.0, 64.0, 6).unwrap();
        assert_eq!(ax.bin_of(1.0), Some(0));
        assert_eq!(ax.bin_of(2.0), Some(1));
        assert_eq!(ax.bin_of(32.0), Some(5));
        assert_eq!(ax.bin_of(64.0), None);
        let (lo, hi) = ax.bin_edges(3);
        assert!((lo - 8.0).abs() < 1e-9 && (hi - 16.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_axes_rejected() {
        assert!(Axis::linear(5.0, 5.0, 3).is_err());
        assert!(Axis::linear(0.0, 1.0, 0).is_err());
        assert!(Axis::logarithmic(0.0, 10.0, 3).is_err());
    }

    #[test]
    fn histogram_counts_and_fractions() {
        let mut h = Histogram::new(Axis::linear(0.0, 4.0, 4).unwrap());
        h.extend([0.5, 1.5, 1.6, 3.0, 99.0]);
        assert_eq!(h.counts(), &[1, 2, 0, 1]);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 4);
        assert_eq!(h.fractions(), vec![0.25, 0.5, 0.0, 0.25]);
    }

    #[test]
    fn empty_histogram_fractions() {
        let h = Histogram::new(Axis::linear(0.0, 1.0, 2).unwrap());
        assert_eq!(h.fractions(), vec![0.0, 0.0]);
    }

    #[test]
    fn heatmap_cells() {
        let ax = Axis::linear(0.0, 2.0, 2).unwrap();
        let mut hm = Heatmap::new(ax, ax);
        hm.push(0.5, 0.5);
        hm.push(1.5, 0.5);
        hm.push(1.5, 1.5);
        hm.push(1.5, 1.5);
        hm.push(5.0, 0.5);
        assert_eq!(hm.cell(0, 0), 1);
        assert_eq!(hm.cell(1, 0), 1);
        assert_eq!(hm.cell(1, 1), 2);
        assert_eq!(hm.cell(0, 1), 0);
        assert_eq!(hm.overflow(), 1);
        assert_eq!(hm.fraction(1, 1), 0.5);
    }

    #[test]
    fn corner_mass_discriminates_spread_grids() {
        let ax = Axis::linear(0.0, 4.0, 4).unwrap();
        // Concentrated in the middle.
        let mut center = Heatmap::new(ax, ax);
        for _ in 0..10 {
            center.push(1.5, 1.5);
        }
        // Spread to tiny and huge corners.
        let mut corners = Heatmap::new(ax, ax);
        for _ in 0..5 {
            corners.push(0.1, 0.1);
            corners.push(3.9, 3.9);
        }
        assert_eq!(center.corner_mass(1), 0.0);
        assert_eq!(corners.corner_mass(1), 1.0);
    }
}
