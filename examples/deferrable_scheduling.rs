//! Deferrable scheduling: extract a private-cloud region's daily demand
//! profile from telemetry and pack deferrable batch jobs into its valley
//! hours (the Insight 3 implication).
//!
//! ```sh
//! cargo run --release --example deferrable_scheduling
//! ```

use cloudscope::analysis::utilization::UtilizationDistribution;
use cloudscope::mgmt::defer::{schedule_deferrable, DeferrableJob};
use cloudscope::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let generated = generate(&GeneratorConfig::small(17));

    // The private cloud's daily median utilization, scaled to cores.
    let distribution = UtilizationDistribution::run(&generated.trace, CloudKind::Private, 2000)?;
    let median = distribution.daily.band(50.0).expect("median band");
    let total_cores = 10_000.0;
    let profile: Vec<f64> = median.iter().map(|pct| pct / 100.0 * total_cores).collect();

    println!("daily demand profile (cores in use):");
    for (h, cores) in profile.iter().enumerate() {
        println!(
            "  {h:02}:00  {:>6.0} {}",
            cores,
            "#".repeat((cores / 40.0) as usize)
        );
    }

    let jobs = vec![
        DeferrableJob {
            cores: 600.0,
            duration_hours: 4,
            deadline_hour: 24,
        },
        DeferrableJob {
            cores: 400.0,
            duration_hours: 6,
            deadline_hour: 24,
        },
        DeferrableJob {
            cores: 300.0,
            duration_hours: 2,
            deadline_hour: 9,
        },
        DeferrableJob {
            cores: 200.0,
            duration_hours: 3,
            deadline_hour: 24,
        },
    ];
    let schedule = schedule_deferrable(&profile, &jobs)?;

    println!(
        "\nschedule ({} placed, {} rejected):",
        schedule.placements.len(),
        schedule.rejected.len()
    );
    for p in &schedule.placements {
        let job = &jobs[p.job];
        println!(
            "  job {} ({} cores, {}h) starts {:02}:00",
            p.job, job.cores, job.duration_hours, p.start_hour
        );
    }
    println!(
        "\npeak load: base {:.0}, valley-scheduled {:.0}, naive-9am {:.0} cores",
        schedule.base_peak, schedule.scheduled_peak, schedule.naive_peak
    );
    println!(
        "peak reduction vs naive: {:.0}%",
        100.0 * (1.0 - schedule.scheduled_peak / schedule.naive_peak)
    );
    Ok(())
}
