//! Assertion helpers for metrics-driven tests.

use crate::registry::Registry;
use crate::snapshot::Snapshot;
use std::sync::Arc;

/// Asserts that `snapshot` holds a counter `name` whose value is
/// exactly `expected`.
///
/// # Panics
/// Panics with the metric name, expected, and actual value on mismatch,
/// and lists the available names when the counter is absent.
pub fn assert_counter_eq(snapshot: &Snapshot, name: &str, expected: u64) {
    match snapshot.counter(name) {
        Some(actual) => assert_eq!(
            actual, expected,
            "counter {name}: expected {expected}, got {actual}"
        ),
        None => panic!(
            "counter {name} not in snapshot; present: {:?}",
            snapshot.metrics.keys().collect::<Vec<_>>()
        ),
    }
}

/// Asserts `|actual - expected| <= tolerance`.
///
/// # Panics
/// Panics with all three values on violation.
pub fn assert_within(actual: f64, expected: f64, tolerance: f64) {
    assert!(
        (actual - expected).abs() <= tolerance,
        "expected {expected} ± {tolerance}, got {actual}"
    );
}

/// Runs `work` with `registry` installed as the current scoped registry
/// and returns the closure's result alongside a snapshot of exactly
/// what it recorded (after minus before).
pub fn snapshot_diff<R>(registry: &Arc<Registry>, work: impl FnOnce() -> R) -> (R, Snapshot) {
    let before = registry.snapshot();
    let result = crate::scoped(registry, work);
    let diff = registry.snapshot().diff(&before);
    (result, diff)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_diff_isolates_the_closure_work() {
        let reg = Arc::new(Registry::new());
        reg.counter("c").add(100);
        let ((), d) = snapshot_diff(&reg, || crate::counter("c").add(7));
        assert_counter_eq(&d, "c", 7);
    }

    #[test]
    #[should_panic(expected = "counter missing not in snapshot")]
    fn absent_counter_panics_with_context() {
        assert_counter_eq(&Snapshot::new(), "missing", 1);
    }

    #[test]
    #[should_panic(expected = "expected 1 ± 0.1, got 2")]
    fn assert_within_reports_all_values() {
        assert_within(2.0, 1.0, 0.1);
    }
}
