//! Per-shard snapshot files and the manifest that commits a generation.
//!
//! A snapshot of generation `g` over `S` shards is the file set
//! `snap-<g>-<shard>.snap` for `shard` in `0..S`, plus the `MANIFEST`
//! that names `g`, `S`, and the WAL byte offset the snapshot captured.
//! Each shard file is written to a `.tmp` sibling, fsynced, and
//! atomically renamed; the manifest rename is the commit point — until
//! it lands, recovery keeps using the previous generation (or the bare
//! WAL), so a crash anywhere mid-snapshot is harmless.
//!
//! Shard files are containers of entries, nothing more: recovery feeds
//! every entry of every file into the new store, so the shard count of
//! the *writing* process never constrains the shard count of the
//! *recovering* one.

use super::codec::{self, FrameOutcome};
use super::PersistError;
use crate::knowledge::WorkloadKnowledge;

/// Magic prefix of a shard snapshot file.
pub(crate) const SNAP_MAGIC: &[u8; 8] = b"CSKBSNP1";

/// Magic prefix of the manifest.
pub(crate) const MANIFEST_MAGIC: &[u8; 8] = b"CSKBMAN2";

/// The manifest's file name inside a durable KB directory.
pub(crate) const MANIFEST_FILE: &str = "MANIFEST";

/// The file name of shard `shard` in generation `generation`.
pub(crate) fn shard_file_name(generation: u64, shard: usize) -> String {
    format!("snap-{generation}-{shard}.snap")
}

/// The committed durable state: which snapshot generation is live and
/// where its WAL cut sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Manifest {
    /// Snapshot generation the manifest commits (starts at 1).
    pub generation: u64,
    /// Number of shard files in that generation.
    pub shard_files: u32,
    /// Segment sequence of the WAL the cut was taken in: `wal_offset`
    /// is only meaningful inside that segment. A log whose header
    /// carries `generation` instead was rotated after this manifest
    /// committed and replays from its own start.
    pub wal_seq: u64,
    /// WAL byte offset the snapshot captured: replay starts here.
    pub wal_offset: u64,
}

/// Byte length of the manifest's framed payload.
const MANIFEST_PAYLOAD: usize = 28;

/// Serializes a manifest (magic + one framed payload).
pub(crate) fn encode_manifest(m: &Manifest) -> Vec<u8> {
    let mut payload = Vec::with_capacity(MANIFEST_PAYLOAD);
    payload.extend_from_slice(&m.generation.to_le_bytes());
    payload.extend_from_slice(&m.shard_files.to_le_bytes());
    payload.extend_from_slice(&m.wal_seq.to_le_bytes());
    payload.extend_from_slice(&m.wal_offset.to_le_bytes());
    let mut buf = MANIFEST_MAGIC.to_vec();
    codec::append_frame(&mut buf, &payload);
    buf
}

/// Parses a manifest file's bytes. The manifest is renamed into place
/// whole, so *any* defect — bad magic, torn frame, bad checksum — is
/// corruption, never tolerated truncation.
pub(crate) fn decode_manifest(buf: &[u8], file: &str) -> Result<Manifest, PersistError> {
    let malformed = |reason: String| PersistError::Malformed {
        file: file.to_owned(),
        reason,
    };
    if buf.len() < MANIFEST_MAGIC.len() || &buf[..MANIFEST_MAGIC.len()] != MANIFEST_MAGIC {
        return Err(malformed(
            "bad magic (not a cloudscope KB manifest)".to_owned(),
        ));
    }
    let payload = match codec::next_frame(buf, MANIFEST_MAGIC.len(), file, 1)? {
        FrameOutcome::Frame(payload, next) => {
            if next != buf.len() {
                return Err(malformed(format!(
                    "{} trailing bytes after the manifest record",
                    buf.len() - next
                )));
            }
            payload
        }
        FrameOutcome::TornTail | FrameOutcome::End => {
            return Err(malformed("truncated manifest record".to_owned()));
        }
    };
    if payload.len() != MANIFEST_PAYLOAD {
        return Err(malformed(format!(
            "manifest payload is {} bytes, expected {MANIFEST_PAYLOAD}",
            payload.len()
        )));
    }
    Ok(Manifest {
        generation: u64::from_le_bytes(payload[0..8].try_into().expect("8 bytes")),
        shard_files: u32::from_le_bytes(payload[8..12].try_into().expect("4 bytes")),
        wal_seq: u64::from_le_bytes(payload[12..20].try_into().expect("8 bytes")),
        wal_offset: u64::from_le_bytes(payload[20..28].try_into().expect("8 bytes")),
    })
}

/// Serializes one shard's snapshot: magic, a framed header
/// (generation, shard index, entry count), then one frame per entry.
pub(crate) fn encode_shard_snapshot(
    generation: u64,
    shard: usize,
    entries: &[WorkloadKnowledge],
) -> Vec<u8> {
    let mut buf = SNAP_MAGIC.to_vec();
    let mut header = Vec::with_capacity(16);
    header.extend_from_slice(&generation.to_le_bytes());
    header.extend_from_slice(&(shard as u32).to_le_bytes());
    header.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    codec::append_frame(&mut buf, &header);
    let mut entry_buf = Vec::with_capacity(codec::ENTRY_BYTES);
    for k in entries {
        entry_buf.clear();
        codec::encode_entry(k, &mut entry_buf);
        codec::append_frame(&mut buf, &entry_buf);
    }
    buf
}

/// Parses one shard snapshot file, validating generation and shard
/// index against what the manifest led us to expect. Snapshot files are
/// renamed into place whole, so torn frames are corruption here.
pub(crate) fn decode_shard_snapshot(
    buf: &[u8],
    file: &str,
    expect_generation: u64,
    expect_shard: usize,
) -> Result<Vec<WorkloadKnowledge>, PersistError> {
    let malformed = |reason: String| PersistError::Malformed {
        file: file.to_owned(),
        reason,
    };
    if buf.len() < SNAP_MAGIC.len() || &buf[..SNAP_MAGIC.len()] != SNAP_MAGIC {
        return Err(malformed(
            "bad magic (not a cloudscope KB snapshot)".to_owned(),
        ));
    }
    let read_frame = |pos: usize, record: u64| -> Result<(&[u8], usize), PersistError> {
        match codec::next_frame(buf, pos, file, record)? {
            FrameOutcome::Frame(payload, next) => Ok((payload, next)),
            FrameOutcome::TornTail | FrameOutcome::End => Err(PersistError::Corrupt {
                file: file.to_owned(),
                record,
                reason: "truncated record (snapshot files must be whole)".to_owned(),
            }),
        }
    };
    let (header, mut pos) = read_frame(SNAP_MAGIC.len(), 1)?;
    if header.len() != 16 {
        return Err(malformed(format!(
            "snapshot header is {} bytes, expected 16",
            header.len()
        )));
    }
    let generation = u64::from_le_bytes(header[0..8].try_into().expect("8 bytes"));
    let shard = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes")) as usize;
    let count = u32::from_le_bytes(header[12..16].try_into().expect("4 bytes")) as usize;
    if generation != expect_generation || shard != expect_shard {
        return Err(malformed(format!(
            "snapshot header names generation {generation} shard {shard}, \
             manifest expects generation {expect_generation} shard {expect_shard}"
        )));
    }
    let mut entries = Vec::with_capacity(count);
    for i in 0..count {
        // Record 1 is the header; entry i (0-based) is record i + 2.
        let record = i as u64 + 2;
        let (payload, next) = read_frame(pos, record)?;
        if payload.len() != codec::ENTRY_BYTES {
            return Err(PersistError::Corrupt {
                file: file.to_owned(),
                record,
                reason: format!(
                    "entry record is {} bytes, expected {}",
                    payload.len(),
                    codec::ENTRY_BYTES
                ),
            });
        }
        entries.push(
            codec::decode_entry(payload).map_err(|reason| PersistError::Corrupt {
                file: file.to_owned(),
                record,
                reason,
            })?,
        );
        pos = next;
    }
    if pos != buf.len() {
        return Err(malformed(format!(
            "{} trailing bytes after the declared {count} entries",
            buf.len() - pos
        )));
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knowledge::LifetimeClass;
    use cloudscope_model::ids::SubscriptionId;
    use cloudscope_model::prelude::{CloudKind, SimTime};

    fn entry(id: u32) -> WorkloadKnowledge {
        WorkloadKnowledge {
            subscription: SubscriptionId::new(id),
            cloud: CloudKind::Private,
            pattern: None,
            lifetime: LifetimeClass::MostlyLong,
            mean_util: 1.0 / 3.0,
            p95_util: 2.0 / 3.0,
            util_cv: 0.1,
            regions: 2,
            region_agnostic: Some(true),
            vm_count: 5,
            cores: 20,
            updated_at: SimTime::from_minutes(100),
        }
    }

    #[test]
    fn manifest_roundtrip_and_corruption() {
        let m = Manifest {
            generation: 3,
            shard_files: 8,
            wal_seq: 2,
            wal_offset: 4096,
        };
        let buf = encode_manifest(&m);
        assert_eq!(decode_manifest(&buf, MANIFEST_FILE).unwrap(), m);
        // Every single-byte flip must fail loudly.
        for at in 0..buf.len() {
            let mut bad = buf.clone();
            bad[at] ^= 0x10;
            assert!(
                decode_manifest(&bad, MANIFEST_FILE).is_err(),
                "flip at byte {at} accepted"
            );
        }
        // Truncation too: a manifest is atomic or absent, never partial.
        for cut in 0..buf.len() {
            assert!(decode_manifest(&buf[..cut], MANIFEST_FILE).is_err());
        }
    }

    #[test]
    fn shard_snapshot_roundtrip() {
        let entries: Vec<WorkloadKnowledge> = (0..17).map(entry).collect();
        let buf = encode_shard_snapshot(2, 5, &entries);
        let back = decode_shard_snapshot(&buf, "snap-2-5.snap", 2, 5).unwrap();
        assert_eq!(back, entries);
        // Empty shards are legitimate.
        let empty = encode_shard_snapshot(2, 6, &[]);
        assert_eq!(decode_shard_snapshot(&empty, "s", 2, 6).unwrap(), vec![]);
    }

    #[test]
    fn shard_snapshot_rejects_every_byte_flip() {
        let entries: Vec<WorkloadKnowledge> = (0..4).map(entry).collect();
        let buf = encode_shard_snapshot(1, 0, &entries);
        for at in 0..buf.len() {
            let mut bad = buf.clone();
            bad[at] ^= 0x04;
            assert!(
                decode_shard_snapshot(&bad, "snap-1-0.snap", 1, 0).is_err(),
                "flip at byte {at} accepted"
            );
        }
    }

    #[test]
    fn corrupt_entry_errors_name_the_record() {
        let entries: Vec<WorkloadKnowledge> = (0..5).map(entry).collect();
        let buf = encode_shard_snapshot(1, 0, &entries);
        // Locate the third entry's frame: magic + header frame + 2 entry
        // frames, then its own header.
        let header_frame = codec::FRAME_HEADER + 16;
        let entry_frame = codec::FRAME_HEADER + codec::ENTRY_BYTES;
        let third = SNAP_MAGIC.len() + header_frame + 2 * entry_frame + codec::FRAME_HEADER;
        let mut bad = buf.clone();
        bad[third + 10] ^= 0x80;
        let err = decode_shard_snapshot(&bad, "snap-1-0.snap", 1, 0).unwrap_err();
        let msg = err.to_string();
        // Header is record 1, so the third entry is record 4.
        assert!(msg.contains("record 4"), "{msg}");
        assert!(msg.contains("snap-1-0.snap"), "{msg}");
    }

    #[test]
    fn generation_and_shard_mismatches_are_rejected() {
        let buf = encode_shard_snapshot(7, 3, &[entry(1)]);
        assert!(decode_shard_snapshot(&buf, "s", 8, 3).is_err());
        assert!(decode_shard_snapshot(&buf, "s", 7, 2).is_err());
        assert!(decode_shard_snapshot(&buf, "s", 7, 3).is_ok());
    }
}
