//! Figure 4: spatial deployment — regions per subscription, plain and
//! core-weighted.

use cloudscope::analysis::spatial::SpatialAnalysis;
use cloudscope_repro::checks::fig4_checks;
use cloudscope_repro::{print_csv, MetricsOpt, ShapeChecks};

fn main() {
    let metrics = MetricsOpt::from_args();
    let generated = metrics.load_trace();
    let a = SpatialAnalysis::run(&generated.trace).expect("analysis");

    for (label, cdf) in [
        ("private", &a.private_regions),
        ("public", &a.public_regions),
    ] {
        let rows: Vec<[f64; 2]> = (1..=10).map(|k| [k as f64, cdf.eval(k as f64)]).collect();
        print_csv(
            &format!("Fig 4(a) {label}: regions per subscription CDF"),
            ["regions", "cdf"],
            &rows,
        );
    }
    for (label, curve) in [
        ("private", &a.private_core_weighted),
        ("public", &a.public_core_weighted),
    ] {
        let rows: Vec<[f64; 2]> = curve.iter().map(|&(k, f)| [k as f64, f]).collect();
        print_csv(
            &format!("Fig 4(b) {label}: core-weighted regions CDF"),
            ["regions", "core_fraction"],
            &rows,
        );
    }

    let mut checks = ShapeChecks::new();
    fig4_checks(&a, &cloudscope_repro::active_profile(), &mut checks);
    let ok = checks.finish("fig4");
    metrics.write();
    std::process::exit(i32::from(!ok));
}
