//! Figure 2: heatmaps of core and memory sizes per VM.

use cloudscope::analysis::vmsize::VmSizeAnalysis;
use cloudscope::par::Parallelism;
use cloudscope::store::{ScanFilter, TraceReader};
use cloudscope_repro::checks::fig2_checks;
use cloudscope_repro::{MetricsOpt, ShapeChecks};

fn main() {
    let metrics = MetricsOpt::from_args();
    // Figure 2 only looks at VM shapes, so a store-backed run reads the
    // metadata chunks alone and never decodes a telemetry chunk. (With
    // --trace-out the full trace is still needed for the copy, so the
    // pushdown path is skipped.)
    let a = match (metrics.trace_dir(), metrics.trace_out()) {
        (Some(dir), None) => {
            let fail = |what: &str, e: cloudscope::store::StoreError| -> ! {
                eprintln!("error: {what}: {e}");
                std::process::exit(2);
            };
            let reader = TraceReader::open(dir)
                .unwrap_or_else(|e| fail(&format!("opening trace store {}", dir.display()), e));
            let subscriptions = reader
                .read_subscriptions()
                .unwrap_or_else(|e| fail("reading subscription table", e));
            let records = reader
                .read_vm_records(ScanFilter::all(), &Parallelism::auto())
                .unwrap_or_else(|e| fail("reading metadata chunks", e));
            eprintln!(
                "# pushdown: read {} records (metadata only) from {}",
                records.len(),
                dir.display()
            );
            VmSizeAnalysis::run_from_records(&records, &subscriptions)
        }
        _ => {
            let generated = metrics.load_trace();
            VmSizeAnalysis::run(&generated.trace)
        }
    }
    .expect("analysis");

    for (label, hm) in [("private", &a.private), ("public", &a.public)] {
        println!("## Fig 2 {label}: cores x memory heatmap (fractions)");
        println!("core_bin,memory_bin,fraction");
        for x in 0..hm.x_axis().bins() {
            for y in 0..hm.y_axis().bins() {
                let f = hm.fraction(x, y);
                if f > 0.0 {
                    println!("{x},{y},{f:.4}");
                }
            }
        }
        println!();
    }

    let mut checks = ShapeChecks::new();
    fig2_checks(&a, &cloudscope_repro::active_profile(), &mut checks);
    let ok = checks.finish("fig2");
    metrics.write();
    std::process::exit(i32::from(!ok));
}
