//! Index-vs-scan oracle: the free-capacity index must reproduce the
//! linear-scan node selection byte-for-byte.
//!
//! Debug builds already cross-check every `choose_node` against the scan
//! via `debug_assert_eq!`; these proptests drive an indexed allocator and
//! a `scan_reference_mode` twin through identical operation sequences in
//! *release* mode (scripts/check.sh runs them there), covering every
//! `PlacementPolicy` × `SpreadingRule`, plus eviction and the running
//! `core_allocation_ratio` counters.

use cloudscope_cluster::{
    AllocationError, ClusterAllocator, PlacementPolicy, PlacementRequest, SpreadingRule,
};
use cloudscope_model::ids::{NodeId, ServiceId, VmId};
use cloudscope_model::subscription::CloudKind;
use cloudscope_model::topology::{NodeSku, Topology};
use cloudscope_model::vm::{Priority, VmSize};
use proptest::prelude::*;

fn build_allocator(policy: PlacementPolicy, spread: Option<u32>) -> ClusterAllocator {
    let mut b = Topology::builder();
    let r = b.add_region("oracle", 0, "US");
    let d = b.add_datacenter(r);
    let c = b.add_cluster(d, CloudKind::Public, NodeSku::new(16, 128.0), 3, 4);
    let topo = b.build();
    ClusterAllocator::new(
        topo.cluster(c).unwrap(),
        policy,
        SpreadingRule {
            max_same_service_per_rack: spread,
        },
    )
}

#[derive(Debug, Clone)]
enum Op {
    Place {
        cores: u32,
        service: u32,
        spot: bool,
    },
    PlaceEvict {
        cores: u32,
        service: u32,
    },
    Release {
        slot: usize,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u32..=16, 0u32..4, any::<bool>()).prop_map(|(cores, service, spot)| Op::Place {
            cores,
            service,
            spot
        }),
        (1u32..=16, 0u32..4).prop_map(|(cores, service)| Op::PlaceEvict { cores, service }),
        (0usize..64).prop_map(|slot| Op::Release { slot }),
    ]
}

fn policy_strategy() -> impl Strategy<Value = PlacementPolicy> {
    prop_oneof![
        Just(PlacementPolicy::FirstFit),
        Just(PlacementPolicy::BestFit),
        Just(PlacementPolicy::WorstFit),
    ]
}

/// Fresh O(nodes) recomputation of the allocation ratio, the oracle for
/// the running counters behind `core_allocation_ratio`.
fn scanned_ratio(alloc: &ClusterAllocator) -> f64 {
    let mut used = 0u64;
    let mut total = 0u64;
    for (_, state) in alloc.nodes() {
        used += u64::from(state.cores_used());
        total += u64::from(state.cores_total());
    }
    if total == 0 {
        0.0
    } else {
        used as f64 / total as f64
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Drive an indexed allocator and its scan-reference twin through the
    /// same random sequence of placements, evicting placements, and
    /// releases: every returned node, error variant, victim list, stat
    /// counter, and the running allocation ratio must agree exactly.
    #[test]
    fn index_matches_scan_oracle(
        ops in prop::collection::vec(op_strategy(), 1..150),
        policy in policy_strategy(),
        spread in prop_oneof![Just(None), (1u32..4).prop_map(Some)],
    ) {
        let mut indexed = build_allocator(policy, spread);
        let mut scan = build_allocator(policy, spread).scan_reference_mode();
        let mut placed: Vec<VmId> = Vec::new();
        let mut next_vm = 0u64;

        for op in ops {
            match op {
                Op::Place { cores, service, spot } => {
                    let request = PlacementRequest {
                        vm: VmId::new(next_vm),
                        size: VmSize::new(cores, f64::from(cores) * 4.0),
                        service: ServiceId::new(service),
                        priority: if spot { Priority::Spot } else { Priority::OnDemand },
                    };
                    next_vm += 1;
                    // Non-mutating probes first: the index path and the
                    // scan path must agree on the same live state.
                    prop_assert_eq!(indexed.probe(&request), indexed.probe_scan(&request));
                    let a = indexed.place(request);
                    let b = scan.place(request);
                    prop_assert_eq!(a, b, "place diverged");
                    if a.is_ok() {
                        placed.push(request.vm);
                    }
                }
                Op::PlaceEvict { cores, service } => {
                    let request = PlacementRequest {
                        vm: VmId::new(next_vm),
                        size: VmSize::new(cores, f64::from(cores) * 4.0),
                        service: ServiceId::new(service),
                        priority: Priority::OnDemand,
                    };
                    next_vm += 1;
                    let a = indexed.place_with_eviction(request);
                    let b = scan.place_with_eviction(request);
                    prop_assert_eq!(&a, &b, "place_with_eviction diverged");
                    if let Ok((_, victims)) = a {
                        placed.retain(|vm| !victims.contains(vm));
                        placed.push(request.vm);
                    }
                }
                Op::Release { slot } => {
                    if !placed.is_empty() {
                        let vm = placed.swap_remove(slot % placed.len());
                        let a = indexed.release(vm);
                        let b = scan.release(vm);
                        prop_assert_eq!(a, b, "release diverged");
                    }
                }
            }

            prop_assert_eq!(indexed.stats(), scan.stats());
            prop_assert_eq!(indexed.placed_count(), scan.placed_count());
            // Running-counter ratio is bit-identical to a fresh scan.
            prop_assert_eq!(
                indexed.core_allocation_ratio().to_bits(),
                scanned_ratio(&indexed).to_bits(),
                "running core counters drifted from node state"
            );
            prop_assert_eq!(
                indexed.core_allocation_ratio().to_bits(),
                scan.core_allocation_ratio().to_bits()
            );
        }
    }
}

// ---------------------------------------------------------------------
// Eviction / migration edge cases
// ---------------------------------------------------------------------

/// 2 racks × 2 nodes of 8 cores / 64 GiB each.
fn small_allocator(policy: PlacementPolicy, spread: Option<u32>) -> ClusterAllocator {
    let mut b = Topology::builder();
    let r = b.add_region("edge", 0, "US");
    let d = b.add_datacenter(r);
    let c = b.add_cluster(d, CloudKind::Private, NodeSku::new(8, 64.0), 2, 2);
    let topo = b.build();
    ClusterAllocator::new(
        topo.cluster(c).unwrap(),
        policy,
        SpreadingRule {
            max_same_service_per_rack: spread,
        },
    )
}

fn node_ids(alloc: &ClusterAllocator) -> Vec<NodeId> {
    alloc.nodes().map(|(id, _)| id).collect()
}

fn req(vm: u64, cores: u32, service: u32, priority: Priority) -> PlacementRequest {
    PlacementRequest {
        vm: VmId::new(vm),
        size: VmSize::new(cores, f64::from(cores) * 4.0),
        service: ServiceId::new(service),
        priority,
    }
}

/// Evicting the node's spot VMs frees *exactly* the requested size: the
/// boundary where `free_cores >= needed` first holds with equality.
#[test]
fn eviction_exactly_fills_the_gap() {
    let mut a = small_allocator(PlacementPolicy::BestFit, None);
    let ids = node_ids(&a);
    // Fill every node to 8/8 so plain placement cannot succeed anywhere:
    // node 0 gets on-demand 4 + spot 4, the rest are fully on-demand.
    a.place(req(0, 4, 0, Priority::OnDemand)).unwrap();
    a.place(req(1, 4, 0, Priority::Spot)).unwrap();
    for (i, vm) in (2..=4).enumerate() {
        a.place(req(vm, 8, 0, Priority::OnDemand)).unwrap();
        let _ = i;
    }
    assert!((a.core_allocation_ratio() - 1.0).abs() < 1e-12);

    // 4 on-demand cores: only node 0 can help, and evicting its single
    // 4-core spot VM frees exactly 4 cores — no slack on either side.
    let (node, victims) = a
        .place_with_eviction(req(9, 4, 0, Priority::OnDemand))
        .unwrap();
    assert_eq!(node, ids[0]);
    assert_eq!(victims, vec![VmId::new(1)]);
    assert_eq!(a.stats().evictions, 1);
    assert_eq!(a.placement_of(VmId::new(1)), None);
    // The cluster is full again: exactly filled, nothing over-freed.
    assert!((a.core_allocation_ratio() - 1.0).abs() < 1e-12);
}

/// When no node's spot mix can free enough cores, eviction must refuse
/// and leave every placement untouched.
#[test]
fn eviction_refuses_when_spot_mix_insufficient() {
    let mut a = small_allocator(PlacementPolicy::BestFit, None);
    // Each node: 5 on-demand + 2 spot = 7/8 used, 1 free. Evicting all
    // spot frees at most 1 + 2 = 3 cores per node.
    for n in 0..4u64 {
        a.place(req(n * 2, 5, 0, Priority::OnDemand)).unwrap();
        a.place(req(n * 2 + 1, 2, 0, Priority::Spot)).unwrap();
    }
    let before_placed = a.placed_count();
    let before_stats = *a.stats();

    let err = a.place_with_eviction(req(100, 6, 0, Priority::OnDemand));
    assert!(matches!(err, Err(AllocationError::InsufficientCapacity(_))));
    assert_eq!(a.placed_count(), before_placed, "no VM may be disturbed");
    assert_eq!(a.stats().evictions, 0);
    assert_eq!(a.stats().successes, before_stats.successes);
    // Every spot VM is still where it was.
    for n in 0..4u64 {
        assert!(a.placement_of(VmId::new(n * 2 + 1)).is_some());
    }
}

/// Migration deliberately skips the spreading re-check (evacuations take
/// priority), but the inflated rack counts must still steer *subsequent*
/// placements away from the over-packed rack.
#[test]
fn migrate_may_violate_spreading_but_counts_stick() {
    let mut a = small_allocator(PlacementPolicy::BestFit, Some(1));
    let ids = node_ids(&a);
    // Nodes 0,1 are rack 0; nodes 2,3 are rack 1 (cap: 1 per rack).
    let n0 = a.place(req(0, 2, 7, Priority::OnDemand)).unwrap();
    assert_eq!(n0, ids[0]);
    let n1 = a.place(req(1, 2, 7, Priority::OnDemand)).unwrap();
    assert_eq!(n1, ids[2], "spreading must push the second VM to rack 1");

    // Evacuate vm1 into rack 0 — now rack 0 holds two service-7 VMs,
    // exceeding the cap. The migration itself must succeed.
    a.migrate(VmId::new(1), ids[1]).unwrap();
    assert_eq!(a.placement_of(VmId::new(1)), Some(ids[1]));
    assert_eq!(a.stats().migrations, 1);

    // A third service-7 placement must avoid rack 0 (count 2 >= cap 1)
    // and land in the now-empty rack 1.
    let n2 = a.place(req(2, 2, 7, Priority::OnDemand)).unwrap();
    assert_eq!(n2, ids[2]);

    // With rack 1 also at its cap, the next one fails on spreading, not
    // capacity — plenty of cores remain.
    let err = a.place(req(3, 2, 7, Priority::OnDemand));
    assert!(matches!(err, Err(AllocationError::SpreadingViolation(_))));
}

/// Release after migrate must settle accounts against the *destination*
/// node and fully unwind rack/spreading/core counters.
#[test]
fn release_after_migrate_accounting() {
    let mut a = small_allocator(PlacementPolicy::BestFit, Some(1));
    let ids = node_ids(&a);
    a.place(req(0, 4, 3, Priority::OnDemand)).unwrap();
    a.migrate(VmId::new(0), ids[2]).unwrap();

    let released_from = a.release(VmId::new(0)).unwrap();
    assert_eq!(
        released_from, ids[2],
        "release must hit the migrated-to node"
    );
    assert_eq!(a.placed_count(), 0);
    assert!(a.core_allocation_ratio() < 1e-12);
    for (_, state) in a.nodes() {
        assert_eq!(state.cores_used(), 0);
        assert!(state.vms().is_empty());
    }

    // Both racks' service counts must be back to zero: a fresh placement
    // of the same service is free to take rack 0 again.
    let n = a.place(req(1, 4, 3, Priority::OnDemand)).unwrap();
    assert_eq!(n, ids[0]);
    let stats = a.stats();
    assert_eq!(
        (stats.attempts, stats.successes, stats.migrations),
        (3, 3, 1),
        "place + migrate + place, all successful"
    );
}
