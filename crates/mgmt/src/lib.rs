//! # cloudscope-mgmt
//!
//! The workload-aware management policies motivated by the DSN'23
//! study's implications, fed from the workload knowledge base:
//!
//! | Module | Paper implication |
//! |---|---|
//! | [`spot`] | Insight 2 (public): spot-VM candidates, eviction prediction, spot/on-demand mixtures |
//! | [`oversub`] | Insights 2/3: chance-constrained over-subscription (20–86% utilization gains) |
//! | [`rebalance`] | Insight 4: region-agnostic workload shifting (the Canada pilot replay) |
//! | [`preprovision`] | Insight 3: headroom for hour-mark peaks |
//! | [`defer`] | Insight 3: deferrable jobs into valley hours |
//! | [`allocfail`] | Insight 2 (private): allocation-failure risk prediction |
//! | [`maintenance`] | Intro example: lifetime-aware migration off unhealthy nodes |
//! | [`policy`] | Section V: the policy engine over the knowledge base |
//!
//! ## Example
//! ```
//! use cloudscope_mgmt::oversub::{OversubMethod, OversubPlanner, VmDemand};
//!
//! # fn main() -> Result<(), cloudscope_mgmt::MgmtError> {
//! let pool: Vec<VmDemand> = (0..8)
//!     .map(|i| VmDemand {
//!         cores: 4,
//!         utilization: (0..288).map(|t| 20.0 + ((t + i) % 7) as f64).collect(),
//!     })
//!     .collect();
//! let plan = OversubPlanner::new(0.05, OversubMethod::EmpiricalQuantile)?.plan(&pool)?;
//! assert!(plan.reserved_cores < plan.requested_cores);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allocfail;
pub mod defer;
pub mod error;
pub mod maintenance;
pub mod overclock;
pub mod oversub;
pub mod policy;
pub mod preprovision;
pub mod rebalance;
pub mod spot;

pub use allocfail::{AllocFailureFeatures, AllocFailurePredictor};
pub use defer::{schedule_deferrable, DeferrableJob, DeferralSchedule};
pub use error::MgmtError;
pub use maintenance::{
    evaluate_plan, plan_node_maintenance, MaintenanceAction, MaintenancePlan,
    RemainingLifetimePredictor,
};
pub use overclock::{simulate_day, OverclockOutcome, OverclockPolicy};
pub use oversub::{OversubMethod, OversubPlan, OversubPlanner, VmDemand};
pub use policy::{Policy, PolicyEngine, Recommendation};
pub use preprovision::{evaluate_preprovision, plan_preprovision, PreProvisionPlan};
pub use rebalance::{
    recommend_shifts, region_capacity_stats, simulate_shift, RegionCapacityStats, ShiftOutcome,
};
pub use spot::{EvictionFeatures, EvictionPredictor, SpotMixPlan, SpotMixPolicy};
