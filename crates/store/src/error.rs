//! The store's failure vocabulary. Every decode path funnels into
//! [`StoreError`], and every corruption variant names the file (and,
//! where one exists, the chunk) it blames — a truncated or bit-flipped
//! store must fail loudly, never yield silently wrong records.

use std::path::Path;

/// Why a trace-store operation failed.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying I/O failure on `file`.
    Io {
        /// The file (or directory) being read or written.
        file: String,
        /// The OS error.
        source: std::io::Error,
    },
    /// `file` is structurally wrong before any chunk can be blamed: a
    /// bad magic, a truncated manifest, an unknown format version.
    Malformed {
        /// The offending file.
        file: String,
        /// What is structurally wrong.
        reason: String,
    },
    /// A chunk's bytes fail validation: a checksum mismatch, an
    /// implausible length, a decompression fault, a broken column run.
    /// Nothing decoded from the chunk is ever returned.
    Corrupt {
        /// The file holding the bad bytes.
        file: String,
        /// The chunk being decoded (its manifest name).
        chunk: String,
        /// What failed to validate.
        reason: String,
    },
    /// The manifest references a chunk that is not on disk (or whose
    /// size disagrees) — a stale manifest or a half-deleted store.
    Missing {
        /// The file the manifest promised.
        file: String,
        /// The chunk entry that promised it.
        chunk: String,
    },
    /// The decoded records do not assemble into a consistent trace
    /// (dangling ids, non-dense numbering, misaligned telemetry).
    Inconsistent(String),
}

impl StoreError {
    /// Wraps an I/O error with the path it happened on.
    pub(crate) fn io(path: &Path, source: std::io::Error) -> Self {
        StoreError::Io {
            file: path.display().to_string(),
            source,
        }
    }

    /// A corruption report for `chunk` stored in `path`. Also bumps the
    /// `store.corruption_detected` counter — corrupt stores are an
    /// operational event, not just an error value.
    pub(crate) fn corrupt(path: &Path, chunk: &str, reason: impl Into<String>) -> Self {
        cloudscope_obs::counter("store.corruption_detected").inc();
        StoreError::Corrupt {
            file: path.display().to_string(),
            chunk: chunk.to_owned(),
            reason: reason.into(),
        }
    }

    /// A structural-damage report for `path`. Bumps
    /// `store.corruption_detected` like [`StoreError::corrupt`].
    pub fn malformed(path: &Path, reason: impl Into<String>) -> Self {
        cloudscope_obs::counter("store.corruption_detected").inc();
        StoreError::Malformed {
            file: path.display().to_string(),
            reason: reason.into(),
        }
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { file, source } => write!(f, "{file}: io error: {source}"),
            StoreError::Malformed { file, reason } => write!(f, "{file}: {reason}"),
            StoreError::Corrupt {
                file,
                chunk,
                reason,
            } => write!(f, "{file}: chunk {chunk}: {reason}"),
            StoreError::Missing { file, chunk } => {
                write!(f, "{file}: chunk {chunk} referenced by manifest is missing")
            }
            StoreError::Inconsistent(reason) => write!(f, "inconsistent store: {reason}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_file_and_chunk() {
        let e = StoreError::corrupt(
            Path::new("/traces/telemetry-r0-d1-0.chunk"),
            "telemetry-r0-d1-0",
            "crc mismatch",
        );
        let msg = e.to_string();
        assert!(msg.contains("telemetry-r0-d1-0.chunk"), "{msg}");
        assert!(msg.contains("crc mismatch"), "{msg}");

        let m = StoreError::Missing {
            file: "x.chunk".into(),
            chunk: "x".into(),
        };
        assert!(m.to_string().contains("missing"));
    }
}
