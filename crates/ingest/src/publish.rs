//! Publication of closed-window state into the knowledge base, through
//! the extraction pipeline's own batched write path.

use crate::ingestor::WindowClose;
use cloudscope_analysis::PatternClassifier;
use cloudscope_kb::{
    extract_subscription_knowledge_from, publish_batch, KbStore, PipelineStats, RetryPolicy,
    WorkloadKnowledge,
};
use cloudscope_model::prelude::*;
use cloudscope_model::trace::TelemetrySource;
use std::collections::BTreeSet;

/// Re-extracts [`WorkloadKnowledge`] for every subscription touched by
/// `closes` — reading telemetry from `source`, the live window state —
/// and publishes it as one batch through [`cloudscope_kb::publish_batch`]
/// (a single `try_feed` plus the bounded retry ledger), so a durable
/// store's WAL semantics apply to streamed refreshes exactly as they do
/// to batch extraction sweeps. Entries are stamped with each window's
/// close time, letting the KB's staleness gate order refreshes.
///
/// `trace` supplies only the metadata (ownership, sizes, lifetimes);
/// all samples come from `source`.
#[allow(clippy::too_many_arguments)]
pub fn publish_closed_windows<S: KbStore + ?Sized>(
    trace: &Trace,
    source: &(impl TelemetrySource + ?Sized),
    closes: &[WindowClose],
    store: &S,
    classifier: &PatternClassifier,
    max_classified_vms_per_sub: usize,
    retry: &RetryPolicy,
    stats: &mut PipelineStats,
) {
    if closes.is_empty() {
        return;
    }
    let _stage = cloudscope_obs::span("ingest.publish");
    let updated_at = closes
        .iter()
        .map(|c| c.window_end)
        .max()
        .expect("non-empty closes");
    let subscriptions: BTreeSet<SubscriptionId> = closes
        .iter()
        .filter_map(|c| trace.vm(c.vm).ok().map(|vm| vm.subscription))
        .collect();
    let mut entries: Vec<WorkloadKnowledge> = Vec::with_capacity(subscriptions.len());
    for sub in subscriptions {
        stats.processed += 1;
        match extract_subscription_knowledge_from(
            trace,
            source,
            sub,
            classifier,
            max_classified_vms_per_sub,
            None,
            updated_at,
        ) {
            Some(knowledge) => entries.push(knowledge),
            None => stats.skipped += 1,
        }
    }
    publish_batch(store, &entries, retry, stats);
}
