//! End-to-end trace generation: builds the topology, synthesizes
//! subscription plans, drives standing deployments and week-long churn
//! through the allocation service on the discrete-event engine, and
//! attaches per-VM 5-minute telemetry.

use crate::arrivals::{sample_bursts_week, sample_nhpp_week};
use crate::config::GeneratorConfig;
use crate::lifetime::LifetimeSampler;
use crate::services::{synthesize_plans, SubscriptionPlan};
use crate::sizes::SizeSampler;
use crate::utilization::{generate_vm_series, PatternKind, ServiceUtilProfile};
use cloudscope_cluster::{AllocatorStats, Fleet, PlacementPolicy, PlacementRequest, SpreadingRule};
use cloudscope_model::prelude::*;
use cloudscope_model::time::{MINUTES_PER_WEEK, SAMPLE_INTERVAL_MINUTES};
use cloudscope_par::Parallelism;
use cloudscope_sim::engine::Simulation;
use cloudscope_sim::rng::RngFactory;
use cloudscope_stats::dist::{Categorical, LogNormal, Sample};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Per-rack cap on same-service VMs (the fault-domain spreading rule the
/// paper's Insight 1 discusses).
const MAX_SAME_SERVICE_PER_RACK: u32 = 80;
/// How far before the window standing VMs may have been created.
const MAX_STANDING_LEAD_MINUTES: i64 = 3 * MINUTES_PER_WEEK;

/// Ground truth about one service (= one subscription's workload), kept
/// alongside the trace for classifier evaluation and policy case studies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceInfo {
    /// The service's id (equals its subscription's index).
    pub service: ServiceId,
    /// Owning subscription.
    pub subscription: SubscriptionId,
    /// Cloud the service runs in.
    pub cloud: CloudKind,
    /// The utilization profile its VMs share.
    pub profile: ServiceUtilProfile,
    /// Regions it deploys into.
    pub regions: Vec<RegionId>,
    /// Standing VM count at generation time.
    pub standing_vms: usize,
}

/// Counters describing one generation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct GenerationReport {
    /// Allocation-service counters for the private fleet.
    pub private_alloc: AllocatorStats,
    /// Allocation-service counters for the public fleet.
    pub public_alloc: AllocatorStats,
    /// VMs dropped because placement failed.
    pub dropped_vms: u64,
    /// Standing VMs created.
    pub standing_vms: u64,
    /// Regular churn VMs created.
    pub churn_vms: u64,
    /// Burst-deployed VMs created.
    pub burst_vms: u64,
}

/// The output of [`generate`]: the trace plus ground truth and counters.
#[derive(Debug, Clone)]
pub struct GeneratedTrace {
    /// The synthetic one-week trace.
    pub trace: Trace,
    /// Ground-truth service directory, indexed by [`ServiceId`] index.
    pub services: Vec<ServiceInfo>,
    /// Generation counters.
    pub report: GenerationReport,
}

impl GeneratedTrace {
    /// The "ServiceX" of the paper's Figure 7(c): the largest
    /// region-agnostic multi-region private service, if any exists.
    #[must_use]
    pub fn flagship_service(&self) -> Option<&ServiceInfo> {
        self.services
            .iter()
            .filter(|s| {
                s.cloud == CloudKind::Private && s.profile.region_agnostic && s.regions.len() >= 3
            })
            .max_by_key(|s| s.standing_vms)
    }
}

/// One VM to be materialized, before placement.
#[derive(Debug, Clone, Copy)]
struct VmSpec {
    subscription: usize,
    group: usize,
    region: RegionId,
    created: SimTime,
    ended: Option<SimTime>,
    priority: Priority,
    kind: SpecKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SpecKind {
    Standing,
    Churn,
    Burst,
}

/// Discrete events driving placement in time order.
#[derive(Debug, Clone, Copy)]
enum Event {
    Create(usize),
    Release(VmId),
}

/// Generates a full synthetic trace from a configuration.
///
/// Deterministic in `config.seed`: the same configuration always yields
/// the same trace, regardless of thread scheduling.
///
/// # Panics
/// Panics if the configuration is invalid; call
/// [`GeneratorConfig::validate`] first to get a typed
/// [`crate::ConfigError`] instead.
#[must_use]
pub fn generate(config: &GeneratorConfig) -> GeneratedTrace {
    if let Err(e) = config.validate() {
        panic!("{e}");
    }
    let factory = RngFactory::new(config.seed);
    let gen_span = cloudscope_obs::span("tracegen.generate");
    let stage = gen_span.child("topology");

    // 1. Physical plant.
    let mut tb = Topology::builder();
    let mut region_ids = Vec::new();
    for spec in &config.topology.regions {
        let region = tb.add_region(spec.name.clone(), spec.tz_offset_hours, spec.geo.clone());
        region_ids.push(region);
        let dc = tb.add_datacenter(region);
        for _ in 0..config.topology.private_clusters_per_region {
            tb.add_cluster(
                dc,
                CloudKind::Private,
                config.topology.node_sku,
                config.topology.racks_per_cluster,
                config.topology.nodes_per_rack,
            );
        }
        for _ in 0..config.topology.public_clusters_per_region {
            tb.add_cluster(
                dc,
                CloudKind::Public,
                config.topology.node_sku,
                config.topology.racks_per_cluster,
                config.topology.nodes_per_rack,
            );
        }
    }
    let topology = tb.build();
    let tz_of: Vec<i32> = topology
        .regions()
        .iter()
        .map(|r| r.tz_offset_hours)
        .collect();

    stage.finish();
    let stage = gen_span.child("plans");

    // 2. Subscription plans (private first: dense subscription ids).
    let mut plan_rng = factory.stream("plans/private");
    let mut plans = synthesize_plans(
        CloudKind::Private,
        &config.private,
        &region_ids,
        &mut plan_rng,
    );
    let mut plan_rng = factory.stream("plans/public");
    plans.extend(synthesize_plans(
        CloudKind::Public,
        &config.public,
        &region_ids,
        &mut plan_rng,
    ));

    // Global service ids: one service per (subscription, group).
    let mut service_base: Vec<u32> = Vec::with_capacity(plans.len());
    let mut next_service = 0u32;
    for plan in &plans {
        service_base.push(next_service);
        next_service += plan.groups.len() as u32;
    }
    let mut standing_per_service = vec![0usize; next_service as usize];

    stage.finish();
    let stage = gen_span.child("specs");

    // 3. Materialize VM specs.
    let mut report = GenerationReport::default();
    let mut specs: Vec<VmSpec> = Vec::new();
    let mut standing_rng = factory.stream("standing");
    for (idx, plan) in plans.iter().enumerate() {
        let profile = cloud_profile(config, plan.cloud);
        for (region, &count) in plan.regions.iter().zip(&plan.standing_per_region) {
            for _ in 0..count {
                let lead = standing_rng.random_range(1..=MAX_STANDING_LEAD_MINUTES);
                let survives = standing_rng.random::<f64>() < profile.standing_fraction;
                let ended = if survives {
                    None
                } else {
                    Some(SimTime::from_minutes(
                        standing_rng.random_range(0..MINUTES_PER_WEEK),
                    ))
                };
                let group = standing_rng.random_range(0..plan.groups.len());
                standing_per_service[(service_base[idx] + group as u32) as usize] += 1;
                specs.push(VmSpec {
                    subscription: idx,
                    group,
                    region: *region,
                    created: SimTime::from_minutes(-lead),
                    ended,
                    priority: Priority::OnDemand,
                    kind: SpecKind::Standing,
                });
                report.standing_vms += 1;
            }
        }
    }

    churn_specs(
        config,
        &plans,
        &region_ids,
        &tz_of,
        &factory,
        &mut specs,
        &mut report,
    );

    // Sort churn after standing, by creation time, keeping standing
    // first (they are placed before the week starts).
    specs.sort_by_key(|s| (s.kind != SpecKind::Standing, s.created));

    stage.finish();
    let stage = gen_span.child("placement");

    // 4. Placement through the allocation service, in event order.
    let spreading = SpreadingRule {
        max_same_service_per_rack: Some(MAX_SAME_SERVICE_PER_RACK),
    };
    let mut fleets = [
        Fleet::new(
            &topology,
            CloudKind::Private,
            PlacementPolicy::BestFit,
            spreading,
        ),
        Fleet::new(
            &topology,
            CloudKind::Public,
            PlacementPolicy::BestFit,
            spreading,
        ),
    ];
    let size_samplers = [
        SizeSampler::new(config.private.size),
        SizeSampler::new(config.public.size),
    ];
    let mut size_rng = factory.stream("sizes");

    // Dense output tables, indexed by VmId.
    let mut records: Vec<VmRecord> = Vec::with_capacity(specs.len());

    // Standing VMs place first (outside the DES), then churn replays
    // through the event queue so releases free capacity for later
    // creations.
    let mut sim: Simulation<Event> = Simulation::with_capacity(specs.len());
    for spec in &specs {
        let plan = &plans[spec.subscription];
        let fleet_idx = fleet_index(plan.cloud);
        let size = size_samplers[fleet_idx].sample(&mut size_rng);
        let request = PlacementRequest {
            vm: VmId::new(records.len() as u64),
            size,
            service: ServiceId::new(service_base[spec.subscription] + spec.group as u32),
            priority: spec.priority,
        };
        match spec.kind {
            SpecKind::Standing => match fleets[fleet_idx].place_in_region(spec.region, request) {
                Ok((cluster, node)) => {
                    if let Some(end) = spec.ended {
                        sim.schedule(end, Event::Release(request.vm));
                    }
                    records.push(make_record(request, spec, plan, cluster, Some(node)));
                }
                Err(_) => {
                    report.dropped_vms += 1;
                }
            },
            SpecKind::Churn | SpecKind::Burst => {
                // Materialize the record now; the DES will place it.
                records.push(make_record(
                    request,
                    spec,
                    plan,
                    ClusterId::new(u32::MAX),
                    None,
                ));
                sim.schedule(spec.created, Event::Create(records.len() - 1));
            }
        }
    }

    let week_end = SimTime::WEEK_END;
    {
        let fleets = &mut fleets;
        let records_ref = &mut records;
        let plans_ref = &plans;
        sim.run(week_end, |scheduler, time, event| match event {
            Event::Create(record_idx) => {
                let record = &mut records_ref[record_idx];
                let plan = &plans_ref[record.subscription.as_usize()];
                let fleet_idx = fleet_index(plan.cloud);
                let request = PlacementRequest {
                    vm: record.id,
                    size: record.size,
                    service: record.service,
                    priority: record.priority,
                };
                match fleets[fleet_idx].place_in_region(record.region, request) {
                    Ok((cluster, node)) => {
                        record.cluster = cluster;
                        record.node = Some(node);
                        if let Some(end) = record.ended {
                            if end < week_end {
                                scheduler.schedule(end.max(time), Event::Release(record.id));
                            }
                        }
                    }
                    Err(_) => {
                        // Placement failed: the VM never ran.
                        record.node = None;
                    }
                }
            }
            Event::Release(vm) => {
                let record = &records_ref[vm.as_usize()];
                let plan = &plans_ref[record.subscription.as_usize()];
                let _ = fleets[fleet_index(plan.cloud)].release(vm);
            }
        });
    }

    report.private_alloc = fleets[0].stats();
    report.public_alloc = fleets[1].stats();

    stage.finish();
    let stage = gen_span.child("telemetry");

    // 5. Telemetry (deterministic per-VM streams, so order is free).
    let telemetry: Vec<Option<UtilSeries>> = if config.telemetry {
        let tz_of = &tz_of;
        let plans = &plans;
        let records_ref = &records;
        let service_base = &service_base;
        let gen_one = |record: &VmRecord| -> Option<UtilSeries> {
            record.node?;
            let plan = &plans[record.subscription.as_usize()];
            let group =
                (record.service.index() - service_base[record.subscription.as_usize()]) as usize;
            let first_sample = (record.created.minutes().max(0) + SAMPLE_INTERVAL_MINUTES - 1)
                / SAMPLE_INTERVAL_MINUTES;
            let end_minute = record
                .ended
                .map_or(MINUTES_PER_WEEK, |e| e.minutes().min(MINUTES_PER_WEEK));
            let end_sample = end_minute / SAMPLE_INTERVAL_MINUTES;
            let samples = end_sample - first_sample;
            if samples < 2 {
                return None;
            }
            let mut rng = factory.indexed_stream("telemetry", record.id.index());
            Some(generate_vm_series(
                &plan.groups[group],
                tz_of[record.region.as_usize()],
                SimTime::from_minutes(first_sample * SAMPLE_INTERVAL_MINUTES),
                samples as usize,
                &mut rng,
            ))
        };
        // Parallel sweep on the shared executor; per-VM RNG streams keep
        // results independent of the worker count.
        Parallelism::auto().par_map(records_ref, gen_one)
    } else {
        vec![None; records.len()]
    };

    stage.finish();
    let stage = gen_span.child("assemble");
    let samples_generated: u64 = telemetry.iter().flatten().map(|s| s.len() as u64).sum();

    // 6. Assemble the trace.
    let mut builder = Trace::builder(topology);
    for (idx, plan) in plans.iter().enumerate() {
        builder
            .add_subscription(Subscription::new(
                SubscriptionId::new(idx as u32),
                plan.cloud,
                plan.party,
            ))
            .expect("dense subscription ids");
    }
    // Unplaced churn VMs are dropped (the platform never ran them), and
    // the survivors renumbered so VmIds stay dense in the trace.
    let mut next_id = 0u64;
    for (mut record, util) in records.into_iter().zip(telemetry) {
        if record.node.is_none() && record.cluster.index() == u32::MAX {
            report.dropped_vms += 1;
            continue;
        }
        record.id = VmId::new(next_id);
        next_id += 1;
        builder.add_vm(record, util).expect("consistent record");
    }

    let mut services = Vec::with_capacity(next_service as usize);
    for (idx, plan) in plans.iter().enumerate() {
        for (group, profile) in plan.groups.iter().enumerate() {
            let sid = service_base[idx] + group as u32;
            services.push(ServiceInfo {
                service: ServiceId::new(sid),
                subscription: SubscriptionId::new(idx as u32),
                cloud: plan.cloud,
                profile: *profile,
                regions: plan.regions.clone(),
                standing_vms: standing_per_service[sid as usize],
            });
        }
    }

    stage.finish();
    cloudscope_obs::counter("tracegen.generate.vms_generated").add(next_id);
    cloudscope_obs::counter("tracegen.generate.samples_generated").add(samples_generated);

    GeneratedTrace {
        trace: builder.build(),
        services,
        report,
    }
}

fn fleet_index(cloud: CloudKind) -> usize {
    match cloud {
        CloudKind::Private => 0,
        CloudKind::Public => 1,
    }
}

fn cloud_profile(config: &GeneratorConfig, cloud: CloudKind) -> &crate::config::CloudProfile {
    match cloud {
        CloudKind::Private => &config.private,
        CloudKind::Public => &config.public,
    }
}

fn make_record(
    request: PlacementRequest,
    spec: &VmSpec,
    plan: &SubscriptionPlan,
    cluster: ClusterId,
    node: Option<NodeId>,
) -> VmRecord {
    VmRecord {
        id: request.vm,
        subscription: SubscriptionId::new(spec.subscription as u32),
        service: request.service,
        size: request.size,
        priority: request.priority,
        service_model: service_model_for(&plan.groups[spec.group]),
        region: spec.region,
        cluster,
        node,
        created: spec.created,
        ended: spec.ended,
    }
}

/// Service model, derived deterministically from the group's profile:
/// SaaS for user-facing diurnal/hourly services, PaaS for stable
/// backends, IaaS otherwise.
fn service_model_for(profile: &ServiceUtilProfile) -> ServiceModel {
    match profile.kind {
        PatternKind::Diurnal | PatternKind::HourlyPeak => ServiceModel::Saas,
        PatternKind::Stable => ServiceModel::Paas,
        PatternKind::Irregular => ServiceModel::Iaas,
    }
}

/// Generates churn and burst VM specs for both clouds.
fn churn_specs(
    config: &GeneratorConfig,
    plans: &[SubscriptionPlan],
    region_ids: &[RegionId],
    tz_of: &[i32],
    factory: &RngFactory,
    specs: &mut Vec<VmSpec>,
    report: &mut GenerationReport,
) {
    for cloud in CloudKind::BOTH {
        let profile = cloud_profile(config, cloud);
        let lifetimes = LifetimeSampler::new(&profile.lifetime);
        let burst_lifetime = LogNormal::from_median(5.0 * 60.0, 0.6).expect("valid burst lifetime");
        let mut rng = factory.stream(&format!("churn/{cloud}"));

        // Subscriptions by region (indices into `plans`).
        let mut by_region: Vec<Vec<usize>> = vec![Vec::new(); region_ids.len()];
        for (idx, plan) in plans.iter().enumerate() {
            if plan.cloud == cloud {
                for r in &plan.regions {
                    by_region[r.as_usize()].push(idx);
                }
            }
        }

        for (region_idx, &region) in region_ids.iter().enumerate() {
            let members = &by_region[region_idx];
            if members.is_empty() {
                continue;
            }
            let tz = tz_of[region_idx];
            let churn_weights: Vec<f64> = members.iter().map(|&i| plans[i].churn_weight).collect();
            let churn_pick = Categorical::new(&churn_weights).expect("positive weights");

            // Regular (possibly diurnal) churn.
            for created in sample_nhpp_week(&mut rng, &profile.arrival, tz) {
                let sub = members[churn_pick.sample_index(&mut rng)];
                let group = rng.random_range(0..plans[sub].groups.len());
                let autoscale = rng.random::<f64>() < profile.autoscale_fraction;
                let ended = if autoscale {
                    Some(autoscale_end(created, tz, &mut rng))
                } else {
                    Some(created + lifetimes.sample(&mut rng))
                };
                let spot = rng.random::<f64>() < profile.spot_fraction;
                specs.push(VmSpec {
                    subscription: sub,
                    group,
                    region,
                    created,
                    ended,
                    priority: if spot {
                        Priority::Spot
                    } else {
                        Priority::OnDemand
                    },
                    kind: SpecKind::Churn,
                });
                report.churn_vms += 1;
            }

            // Deployment bursts (private-cloud spikes).
            let burst_weights: Vec<f64> = members
                .iter()
                .map(|&i| {
                    let s = plans[i].standing_total() as f64;
                    s * s
                })
                .collect();
            if burst_weights.iter().sum::<f64>() <= 0.0 {
                continue;
            }
            let burst_pick = Categorical::new(&burst_weights).expect("positive weights");
            for burst in sample_bursts_week(&mut rng, &profile.arrival, tz) {
                let sub = members[burst_pick.sample_index(&mut rng)];
                let group = rng.random_range(0..plans[sub].groups.len());
                for _ in 0..burst.size {
                    let life = burst_lifetime.sample(&mut rng).max(30.0) as i64;
                    specs.push(VmSpec {
                        subscription: sub,
                        group,
                        region,
                        created: burst.at,
                        ended: Some(burst.at + SimDuration::from_minutes(life)),
                        priority: Priority::OnDemand,
                        kind: SpecKind::Burst,
                    });
                    report.burst_vms += 1;
                }
            }
        }
    }
}

/// End time for an auto-scaled VM: around 19:00 local on its creation
/// day (or a short life if created in the evening).
fn autoscale_end<R: Rng + ?Sized>(created: SimTime, tz: i32, rng: &mut R) -> SimTime {
    let local = created.to_local(tz);
    let evening = i64::from(19 * 60) + rng.random_range(-45..45);
    let remaining = evening - i64::from(local.minute_of_day());
    if remaining > 30 {
        created + SimDuration::from_minutes(remaining)
    } else {
        created + SimDuration::from_minutes(rng.random_range(20..60))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GeneratorConfig;

    fn small_trace(seed: u64) -> GeneratedTrace {
        generate(&GeneratorConfig::small(seed))
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_trace(7);
        let b = small_trace(7);
        assert_eq!(a.trace.stats(), b.trace.stats());
        assert_eq!(a.report, b.report);
        let vm = VmId::new(3);
        assert_eq!(a.trace.vm(vm).unwrap(), b.trace.vm(vm).unwrap());
        assert_eq!(a.trace.util(vm), b.trace.util(vm));
    }

    #[test]
    fn different_seeds_differ() {
        let a = small_trace(1);
        let b = small_trace(2);
        assert_ne!(a.trace.stats(), b.trace.stats());
    }

    #[test]
    fn both_clouds_populated() {
        let g = small_trace(3);
        let stats = g.trace.stats();
        assert!(stats.private_vms > 100, "{stats:?}");
        assert!(stats.public_vms > 100, "{stats:?}");
        assert!(stats.private_subscriptions > 0);
        assert!(stats.public_subscriptions > stats.private_subscriptions);
        assert!(stats.vms_with_telemetry > 0);
    }

    #[test]
    fn records_reference_valid_entities() {
        let g = small_trace(4);
        for vm in g.trace.vms() {
            let cluster = g.trace.topology().cluster(vm.cluster).expect("cluster");
            assert_eq!(cluster.region, vm.region);
            let sub = g.trace.subscription(vm.subscription).expect("subscription");
            assert_eq!(sub.cloud, cluster.cloud);
            if let Some(node) = vm.node {
                assert_eq!(g.trace.topology().node(node).unwrap().cluster, vm.cluster);
            }
            if let Some(end) = vm.ended {
                assert!(end >= vm.created);
            }
        }
    }

    #[test]
    fn telemetry_spans_alive_window() {
        let g = small_trace(5);
        let mut checked = 0;
        for vm in g.trace.vms() {
            if let Some(series) = g.trace.util(vm.id) {
                assert!(series.start().minutes() >= 0);
                assert!(series.start() >= vm.created);
                let last = series.time_at(series.len() - 1);
                assert!(last < SimTime::WEEK_END);
                if let Some(end) = vm.ended {
                    assert!(last < end.max(SimTime::ZERO) || end > SimTime::WEEK_END);
                }
                checked += 1;
            }
        }
        assert!(checked > 100);
    }

    #[test]
    fn report_counts_are_consistent() {
        let g = small_trace(6);
        let total_specs = g.report.standing_vms + g.report.churn_vms + g.report.burst_vms;
        assert_eq!(
            g.trace.vms().len() as u64 + g.report.dropped_vms,
            total_specs
        );
        assert!(g.report.burst_vms > 0, "private bursts expected");
        assert!(
            g.report.private_alloc.successes + g.report.public_alloc.successes
                >= g.trace.vms().iter().filter(|v| v.node.is_some()).count() as u64
        );
    }

    #[test]
    fn flagship_service_exists_and_is_private_agnostic() {
        // Flagship needs >=3 regions; use a seed-stable small config.
        let g = small_trace(8);
        if let Some(svc) = g.flagship_service() {
            assert_eq!(svc.cloud, CloudKind::Private);
            assert!(svc.profile.region_agnostic);
            assert!(svc.regions.len() >= 3);
        }
    }

    #[test]
    fn telemetry_can_be_disabled() {
        let mut cfg = GeneratorConfig::small(9);
        cfg.telemetry = false;
        let g = generate(&cfg);
        assert_eq!(g.trace.stats().vms_with_telemetry, 0);
        assert!(!g.trace.vms().is_empty());
    }

    #[test]
    fn spot_vms_only_where_configured() {
        let g = small_trace(10);
        let spot_public = g
            .trace
            .vms_of(CloudKind::Public)
            .filter(|v| v.priority == Priority::Spot)
            .count();
        assert!(spot_public > 0, "public cloud should have spot VMs");
    }
}
