//! End-to-end trace generation: builds the topology, synthesizes
//! subscription plans, drives standing deployments and week-long churn
//! through the allocation service on the discrete-event engine, and
//! attaches per-VM 5-minute telemetry.
//!
//! ## Region-parallel drive
//!
//! Placement routes every request to the clusters of the VM's region and
//! nothing else — operations on different regions commute. The generator
//! exploits this by partitioning the sorted spec list by region, driving
//! each region's standing placements and churn simulation independently
//! over [`cloudscope_par::Parallelism`], then merging the outcomes back
//! in ascending global spec order. Determinism is preserved end to end:
//!
//! - **Sizes** are pre-drawn serially from the dedicated `"sizes"` RNG
//!   stream in global spec order, exactly the draws the serial loop made
//!   inline.
//! - **Event order within a region** is the serial order restricted to
//!   that region: each worker schedules its region's events in the same
//!   relative sequence, and same-timestamp FIFO tie-breaks only matter
//!   within a region (cross-region events touch disjoint state).
//! - **VM identities** used during a worker's drive are region-local and
//!   affect no output byte (they key hash maps); the merge re-assigns
//!   each record the id the serial loop would have used — its position
//!   among materialized records in global spec order (standing placement
//!   failures consume no id) — *before* telemetry derives per-VM RNG
//!   streams from those ids.
//! - **Counters** ([`cloudscope_cluster::AllocatorStats`], drop counts)
//!   are commutative integer sums over per-region partials.
//!
//! The result is byte-identical to the serial reference at any worker
//! count; `tests/trace_digest.rs` and the worker-invariance tests lock
//! this, and [`crate::reference::generate_serial_reference`] keeps the
//! pre-index serial path alive as the benchmark baseline and oracle.

use crate::arrivals::{sample_bursts_week, sample_nhpp_week};
use crate::config::GeneratorConfig;
use crate::lifetime::LifetimeSampler;
use crate::services::{synthesize_plans, SubscriptionPlan};
use crate::sizes::SizeSampler;
use crate::utilization::{generate_vm_series, PatternKind, ServiceUtilProfile};
use cloudscope_cluster::{AllocatorStats, Fleet, PlacementPolicy, PlacementRequest, SpreadingRule};
use cloudscope_model::prelude::*;
use cloudscope_model::time::{MINUTES_PER_WEEK, SAMPLE_INTERVAL_MINUTES};
use cloudscope_par::Parallelism;
use cloudscope_sim::engine::Simulation;
use cloudscope_sim::rng::RngFactory;
use cloudscope_stats::dist::{Categorical, LogNormal, Sample};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Per-rack cap on same-service VMs (the fault-domain spreading rule the
/// paper's Insight 1 discusses).
const MAX_SAME_SERVICE_PER_RACK: u32 = 80;
/// How far before the window standing VMs may have been created.
const MAX_STANDING_LEAD_MINUTES: i64 = 3 * MINUTES_PER_WEEK;

/// Ground truth about one service (= one subscription's workload), kept
/// alongside the trace for classifier evaluation and policy case studies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceInfo {
    /// The service's id (equals its subscription's index).
    pub service: ServiceId,
    /// Owning subscription.
    pub subscription: SubscriptionId,
    /// Cloud the service runs in.
    pub cloud: CloudKind,
    /// The utilization profile its VMs share.
    pub profile: ServiceUtilProfile,
    /// Regions it deploys into.
    pub regions: Vec<RegionId>,
    /// Standing VM count at generation time.
    pub standing_vms: usize,
}

/// Counters describing one generation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct GenerationReport {
    /// Allocation-service counters for the private fleet.
    pub private_alloc: AllocatorStats,
    /// Allocation-service counters for the public fleet.
    pub public_alloc: AllocatorStats,
    /// VMs dropped because placement failed.
    pub dropped_vms: u64,
    /// Standing VMs created.
    pub standing_vms: u64,
    /// Regular churn VMs created.
    pub churn_vms: u64,
    /// Burst-deployed VMs created.
    pub burst_vms: u64,
}

/// The output of [`generate`]: the trace plus ground truth and counters.
#[derive(Debug, Clone)]
pub struct GeneratedTrace {
    /// The synthetic one-week trace.
    pub trace: Trace,
    /// Ground-truth service directory, indexed by [`ServiceId`] index.
    pub services: Vec<ServiceInfo>,
    /// Generation counters.
    pub report: GenerationReport,
}

impl GeneratedTrace {
    /// The "ServiceX" of the paper's Figure 7(c): the largest
    /// region-agnostic multi-region private service, if any exists.
    #[must_use]
    pub fn flagship_service(&self) -> Option<&ServiceInfo> {
        self.services
            .iter()
            .filter(|s| {
                s.cloud == CloudKind::Private && s.profile.region_agnostic && s.regions.len() >= 3
            })
            .max_by_key(|s| s.standing_vms)
    }
}

/// One VM to be materialized, before placement.
#[derive(Debug, Clone, Copy)]
pub(crate) struct VmSpec {
    pub(crate) subscription: usize,
    pub(crate) group: usize,
    pub(crate) region: RegionId,
    pub(crate) created: SimTime,
    pub(crate) ended: Option<SimTime>,
    pub(crate) priority: Priority,
    pub(crate) kind: SpecKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SpecKind {
    Standing,
    Churn,
    Burst,
}

/// Discrete events driving placement in time order.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Event {
    Create(usize),
    Release(VmId),
}

/// Everything the placement drive consumes, produced identically by the
/// parallel and serial-reference paths: phases 1–3 (topology, plans,
/// specs) plus the serially pre-drawn VM sizes.
pub(crate) struct Prepared {
    pub(crate) topology: Topology,
    pub(crate) region_ids: Vec<RegionId>,
    pub(crate) tz_of: Vec<i32>,
    pub(crate) plans: Vec<SubscriptionPlan>,
    /// First global service id of each subscription.
    pub(crate) service_base: Vec<u32>,
    pub(crate) next_service: u32,
    pub(crate) standing_per_service: Vec<usize>,
    /// Sorted: standing first, then churn/burst by creation time.
    pub(crate) specs: Vec<VmSpec>,
    /// `sizes[i]` is the size drawn for `specs[i]` from the `"sizes"`
    /// stream, in spec order — the exact draws the serial loop made.
    pub(crate) sizes: Vec<VmSize>,
    pub(crate) report: GenerationReport,
}

/// The fault-domain spreading rule both fleets run under.
pub(crate) const fn spreading_rule() -> SpreadingRule {
    SpreadingRule {
        max_same_service_per_rack: Some(MAX_SAME_SERVICE_PER_RACK),
    }
}

/// Phases 1–3: physical plant, subscription plans, VM specs, sizes.
/// Entirely serial and shared by [`generate_with`] and
/// [`crate::reference::generate_serial_reference`].
pub(crate) fn prepare(
    config: &GeneratorConfig,
    factory: &RngFactory,
    gen_span: &cloudscope_obs::Span,
) -> Prepared {
    let stage = gen_span.child("topology");

    // 1. Physical plant.
    let mut tb = Topology::builder();
    let mut region_ids = Vec::new();
    for spec in &config.topology.regions {
        let region = tb.add_region(spec.name.clone(), spec.tz_offset_hours, spec.geo.clone());
        region_ids.push(region);
        let dc = tb.add_datacenter(region);
        for _ in 0..config.topology.private_clusters_per_region {
            tb.add_cluster(
                dc,
                CloudKind::Private,
                config.topology.node_sku,
                config.topology.racks_per_cluster,
                config.topology.nodes_per_rack,
            );
        }
        for _ in 0..config.topology.public_clusters_per_region {
            tb.add_cluster(
                dc,
                CloudKind::Public,
                config.topology.node_sku,
                config.topology.racks_per_cluster,
                config.topology.nodes_per_rack,
            );
        }
    }
    let topology = tb.build();
    let tz_of: Vec<i32> = topology
        .regions()
        .iter()
        .map(|r| r.tz_offset_hours)
        .collect();

    stage.finish();
    let stage = gen_span.child("plans");

    // 2. Subscription plans (private first: dense subscription ids).
    let mut plan_rng = factory.stream("plans/private");
    let mut plans = synthesize_plans(
        CloudKind::Private,
        &config.private,
        &region_ids,
        &mut plan_rng,
    );
    let mut plan_rng = factory.stream("plans/public");
    plans.extend(synthesize_plans(
        CloudKind::Public,
        &config.public,
        &region_ids,
        &mut plan_rng,
    ));

    // Global service ids: one service per (subscription, group).
    let mut service_base: Vec<u32> = Vec::with_capacity(plans.len());
    let mut next_service = 0u32;
    for plan in &plans {
        service_base.push(next_service);
        next_service += plan.groups.len() as u32;
    }
    let mut standing_per_service = vec![0usize; next_service as usize];

    stage.finish();
    let stage = gen_span.child("specs");

    // 3. Materialize VM specs.
    let mut report = GenerationReport::default();
    let mut specs: Vec<VmSpec> = Vec::new();
    let mut standing_rng = factory.stream("standing");
    for (idx, plan) in plans.iter().enumerate() {
        let profile = cloud_profile(config, plan.cloud);
        for (region, &count) in plan.regions.iter().zip(&plan.standing_per_region) {
            for _ in 0..count {
                let lead = standing_rng.random_range(1..=MAX_STANDING_LEAD_MINUTES);
                let survives = standing_rng.random::<f64>() < profile.standing_fraction;
                let ended = if survives {
                    None
                } else {
                    Some(SimTime::from_minutes(
                        standing_rng.random_range(0..MINUTES_PER_WEEK),
                    ))
                };
                let group = standing_rng.random_range(0..plan.groups.len());
                standing_per_service[(service_base[idx] + group as u32) as usize] += 1;
                specs.push(VmSpec {
                    subscription: idx,
                    group,
                    region: *region,
                    created: SimTime::from_minutes(-lead),
                    ended,
                    priority: Priority::OnDemand,
                    kind: SpecKind::Standing,
                });
                report.standing_vms += 1;
            }
        }
    }

    churn_specs(
        config,
        &plans,
        &region_ids,
        &tz_of,
        factory,
        &mut specs,
        &mut report,
    );

    // Sort churn after standing, by creation time, keeping standing
    // first (they are placed before the week starts).
    specs.sort_by_key(|s| (s.kind != SpecKind::Standing, s.created));

    // 3b. Pre-draw every VM's size from the dedicated stream, in spec
    // order. The serial loop drew these inline between placements; the
    // stream is placement-independent, so drawing up front consumes the
    // identical sequence while freeing the drive to run per region.
    let size_samplers = [
        SizeSampler::new(config.private.size),
        SizeSampler::new(config.public.size),
    ];
    let mut size_rng = factory.stream("sizes");
    let sizes: Vec<VmSize> = specs
        .iter()
        .map(|spec| {
            size_samplers[fleet_index(plans[spec.subscription].cloud)].sample(&mut size_rng)
        })
        .collect();

    stage.finish();

    Prepared {
        topology,
        region_ids,
        tz_of,
        plans,
        service_base,
        next_service,
        standing_per_service,
        specs,
        sizes,
        report,
    }
}

/// One region's slice of the drive: the region, and its specs as
/// `(global spec index, spec, size)` in global spec order.
struct RegionTask {
    region: RegionId,
    specs: Vec<(usize, VmSpec, VmSize)>,
}

/// What one region's drive produced: for every spec of the region (in
/// the task's order), either a materialized record or `None` (standing
/// placement failure), plus the region's allocator counters.
struct RegionOutcome {
    outcomes: Vec<(usize, Option<VmRecord>)>,
    dropped_standing: u64,
    stats: [AllocatorStats; 2],
}

/// Drives one region: standing placements in spec order, then the
/// churn/release simulation over the calendar queue — exactly the
/// serial loop restricted to this region's specs and clusters.
fn drive_region(task: &RegionTask, prep: &Prepared) -> RegionOutcome {
    let spreading = spreading_rule();
    let mut fleets = [
        Fleet::for_region(
            &prep.topology,
            CloudKind::Private,
            task.region,
            PlacementPolicy::BestFit,
            spreading,
        ),
        Fleet::for_region(
            &prep.topology,
            CloudKind::Public,
            task.region,
            PlacementPolicy::BestFit,
            spreading,
        ),
    ];

    // Region-local records; identities are provisional (they key the
    // fleet's hash maps and route Release events) and are re-assigned at
    // merge, so they carry no cross-region information.
    let mut records: Vec<VmRecord> = Vec::with_capacity(task.specs.len());
    let mut outcomes: Vec<(usize, Option<usize>)> = Vec::with_capacity(task.specs.len());
    let mut dropped_standing = 0u64;
    let mut sim: Simulation<Event> = Simulation::with_capacity(task.specs.len());

    for &(global_idx, spec, size) in &task.specs {
        let spec = &spec;
        let plan = &prep.plans[spec.subscription];
        let fleet_idx = fleet_index(plan.cloud);
        let request = PlacementRequest {
            vm: VmId::new(records.len() as u64),
            size,
            service: ServiceId::new(prep.service_base[spec.subscription] + spec.group as u32),
            priority: spec.priority,
        };
        match spec.kind {
            SpecKind::Standing => match fleets[fleet_idx].place_in_region(spec.region, request) {
                Ok((cluster, node)) => {
                    if let Some(end) = spec.ended {
                        sim.schedule(end, Event::Release(request.vm));
                    }
                    records.push(make_record(request, spec, plan, cluster, Some(node)));
                    outcomes.push((global_idx, Some(records.len() - 1)));
                }
                Err(_) => {
                    dropped_standing += 1;
                    outcomes.push((global_idx, None));
                }
            },
            SpecKind::Churn | SpecKind::Burst => {
                // Materialize the record now; the DES will place it.
                records.push(make_record(
                    request,
                    spec,
                    plan,
                    ClusterId::new(u32::MAX),
                    None,
                ));
                sim.schedule(spec.created, Event::Create(records.len() - 1));
                outcomes.push((global_idx, Some(records.len() - 1)));
            }
        }
    }

    let week_end = SimTime::WEEK_END;
    {
        let fleets = &mut fleets;
        let records_ref = &mut records;
        let plans_ref = &prep.plans;
        sim.run(week_end, |scheduler, time, event| match event {
            Event::Create(record_idx) => {
                let record = &mut records_ref[record_idx];
                let plan = &plans_ref[record.subscription.as_usize()];
                let fleet_idx = fleet_index(plan.cloud);
                let request = PlacementRequest {
                    vm: record.id,
                    size: record.size,
                    service: record.service,
                    priority: record.priority,
                };
                match fleets[fleet_idx].place_in_region(record.region, request) {
                    Ok((cluster, node)) => {
                        record.cluster = cluster;
                        record.node = Some(node);
                        if let Some(end) = record.ended {
                            if end < week_end {
                                scheduler.schedule(end.max(time), Event::Release(record.id));
                            }
                        }
                    }
                    Err(_) => {
                        // Placement failed: the VM never ran.
                        record.node = None;
                    }
                }
            }
            Event::Release(vm) => {
                let record = &records_ref[vm.as_usize()];
                let plan = &plans_ref[record.subscription.as_usize()];
                let _ = fleets[fleet_index(plan.cloud)].release(vm);
            }
        });
    }

    let stats = [fleets[0].stats(), fleets[1].stats()];
    let mut record_slots: Vec<Option<VmRecord>> = records.into_iter().map(Some).collect();
    RegionOutcome {
        outcomes: outcomes
            .into_iter()
            .map(|(global_idx, local)| {
                (
                    global_idx,
                    local.map(|i| record_slots[i].take().expect("each record consumed once")),
                )
            })
            .collect(),
        dropped_standing,
        stats,
    }
}

/// Generates a full synthetic trace from a configuration, using the
/// shared executor's auto-detected worker count (`CLOUDSCOPE_WORKERS`
/// overrides) for the region drive and the telemetry sweep.
///
/// Deterministic in `config.seed`: the same configuration always yields
/// the same trace, regardless of thread scheduling or worker count.
///
/// # Panics
/// Panics if the configuration is invalid; call
/// [`GeneratorConfig::validate`] first to get a typed
/// [`crate::ConfigError`] instead.
#[must_use]
pub fn generate(config: &GeneratorConfig) -> GeneratedTrace {
    generate_with(config, Parallelism::auto())
}

/// [`generate`] with an explicit parallelism configuration. Output is
/// byte-identical for every worker count.
///
/// # Panics
/// Panics if the configuration is invalid.
#[must_use]
pub fn generate_with(config: &GeneratorConfig, par: Parallelism) -> GeneratedTrace {
    if let Err(e) = config.validate() {
        panic!("{e}");
    }
    let factory = RngFactory::new(config.seed);
    let gen_span = cloudscope_obs::span("tracegen.generate");
    let prep = prepare(config, &factory, &gen_span);

    let stage = gen_span.child("placement");

    // 4. Placement, partitioned by region: each task carries one
    // region's specs (with pre-drawn sizes) in global spec order.
    let mut by_region: Vec<Vec<(usize, VmSpec, VmSize)>> = vec![Vec::new(); prep.region_ids.len()];
    for (idx, (spec, &size)) in prep.specs.iter().zip(&prep.sizes).enumerate() {
        by_region[spec.region.as_usize()].push((idx, *spec, size));
    }
    let tasks: Vec<RegionTask> = prep
        .region_ids
        .iter()
        .zip(by_region)
        .filter(|(_, specs)| !specs.is_empty())
        .map(|(&region, specs)| RegionTask { region, specs })
        .collect();
    cloudscope_obs::counter("tracegen.generate.regions_driven").add(tasks.len() as u64);
    cloudscope_obs::gauge("tracegen.generate.region_workers").set(par.workers() as f64);

    let region_outcomes = par.par_map(&tasks, |task| drive_region(task, &prep));

    stage.finish();
    let stage = gen_span.child("merge");

    // Deterministic merge, ascending region (par_map returns input
    // order): scatter per-spec outcomes back to global spec order, then
    // assign each materialized record the id the serial loop would have
    // used — its position among materialized records.
    let Prepared {
        topology,
        tz_of,
        plans,
        service_base,
        next_service,
        standing_per_service,
        specs,
        mut report,
        ..
    } = prep;
    let mut outcome_by_spec: Vec<Option<VmRecord>> = (0..specs.len()).map(|_| None).collect();
    let mut private_alloc = AllocatorStats::default();
    let mut public_alloc = AllocatorStats::default();
    for outcome in region_outcomes {
        report.dropped_vms += outcome.dropped_standing;
        for (total, part) in [&mut private_alloc, &mut public_alloc]
            .into_iter()
            .zip(outcome.stats)
        {
            total.attempts += part.attempts;
            total.successes += part.successes;
            total.capacity_failures += part.capacity_failures;
            total.spreading_failures += part.spreading_failures;
            total.evictions += part.evictions;
            total.migrations += part.migrations;
        }
        for (global_idx, record) in outcome.outcomes {
            outcome_by_spec[global_idx] = record;
        }
    }
    report.private_alloc = private_alloc;
    report.public_alloc = public_alloc;

    let mut records: Vec<VmRecord> = Vec::with_capacity(specs.len());
    for mut record in outcome_by_spec.into_iter().flatten() {
        record.id = VmId::new(records.len() as u64);
        records.push(record);
    }
    cloudscope_obs::counter("tracegen.generate.merged_records").add(records.len() as u64);

    stage.finish();

    finish(
        config,
        &factory,
        &gen_span,
        par,
        FinishInputs {
            topology,
            tz_of,
            plans,
            service_base,
            next_service,
            standing_per_service,
            records,
            report,
        },
    )
}

/// Everything the shared telemetry + assemble phases consume.
pub(crate) struct FinishInputs {
    pub(crate) topology: Topology,
    pub(crate) tz_of: Vec<i32>,
    pub(crate) plans: Vec<SubscriptionPlan>,
    pub(crate) service_base: Vec<u32>,
    pub(crate) next_service: u32,
    pub(crate) standing_per_service: Vec<usize>,
    /// Placement outcomes with final pre-assemble ids (dense over
    /// materialized records in global spec order).
    pub(crate) records: Vec<VmRecord>,
    pub(crate) report: GenerationReport,
}

/// Phases 5–6: per-VM telemetry and trace assembly, shared by the
/// parallel and serial-reference paths.
pub(crate) fn finish(
    config: &GeneratorConfig,
    factory: &RngFactory,
    gen_span: &cloudscope_obs::Span,
    par: Parallelism,
    inputs: FinishInputs,
) -> GeneratedTrace {
    let FinishInputs {
        topology,
        tz_of,
        plans,
        service_base,
        next_service,
        standing_per_service,
        records,
        mut report,
    } = inputs;
    let stage = gen_span.child("telemetry");

    // 5. Telemetry (deterministic per-VM streams, so order is free).
    let telemetry: Vec<Option<UtilSeries>> = if config.telemetry {
        let tz_of = &tz_of;
        let plans = &plans;
        let records_ref = &records;
        let service_base = &service_base;
        let gen_one = |record: &VmRecord| -> Option<UtilSeries> {
            record.node?;
            let plan = &plans[record.subscription.as_usize()];
            let group =
                (record.service.index() - service_base[record.subscription.as_usize()]) as usize;
            let first_sample = (record.created.minutes().max(0) + SAMPLE_INTERVAL_MINUTES - 1)
                / SAMPLE_INTERVAL_MINUTES;
            let end_minute = record
                .ended
                .map_or(MINUTES_PER_WEEK, |e| e.minutes().min(MINUTES_PER_WEEK));
            let end_sample = end_minute / SAMPLE_INTERVAL_MINUTES;
            let samples = end_sample - first_sample;
            if samples < 2 {
                return None;
            }
            let mut rng = factory.indexed_stream("telemetry", record.id.index());
            Some(generate_vm_series(
                &plan.groups[group],
                tz_of[record.region.as_usize()],
                SimTime::from_minutes(first_sample * SAMPLE_INTERVAL_MINUTES),
                samples as usize,
                &mut rng,
            ))
        };
        // Parallel sweep on the shared executor; per-VM RNG streams keep
        // results independent of the worker count.
        par.par_map(records_ref, gen_one)
    } else {
        vec![None; records.len()]
    };

    stage.finish();
    let stage = gen_span.child("assemble");
    let samples_generated: u64 = telemetry.iter().flatten().map(|s| s.len() as u64).sum();

    // 6. Assemble the trace.
    let mut builder = Trace::builder(topology);
    for (idx, plan) in plans.iter().enumerate() {
        builder
            .add_subscription(Subscription::new(
                SubscriptionId::new(idx as u32),
                plan.cloud,
                plan.party,
            ))
            .expect("dense subscription ids");
    }
    // Unplaced churn VMs are dropped (the platform never ran them), and
    // the survivors renumbered so VmIds stay dense in the trace.
    let mut next_id = 0u64;
    for (mut record, util) in records.into_iter().zip(telemetry) {
        if record.node.is_none() && record.cluster.index() == u32::MAX {
            report.dropped_vms += 1;
            continue;
        }
        record.id = VmId::new(next_id);
        next_id += 1;
        builder.add_vm(record, util).expect("consistent record");
    }

    let mut services = Vec::with_capacity(next_service as usize);
    for (idx, plan) in plans.iter().enumerate() {
        for (group, profile) in plan.groups.iter().enumerate() {
            let sid = service_base[idx] + group as u32;
            services.push(ServiceInfo {
                service: ServiceId::new(sid),
                subscription: SubscriptionId::new(idx as u32),
                cloud: plan.cloud,
                profile: *profile,
                regions: plan.regions.clone(),
                standing_vms: standing_per_service[sid as usize],
            });
        }
    }

    stage.finish();
    cloudscope_obs::counter("tracegen.generate.vms_generated").add(next_id);
    cloudscope_obs::counter("tracegen.generate.samples_generated").add(samples_generated);

    GeneratedTrace {
        trace: builder.build(),
        services,
        report,
    }
}

pub(crate) fn fleet_index(cloud: CloudKind) -> usize {
    match cloud {
        CloudKind::Private => 0,
        CloudKind::Public => 1,
    }
}

fn cloud_profile(config: &GeneratorConfig, cloud: CloudKind) -> &crate::config::CloudProfile {
    match cloud {
        CloudKind::Private => &config.private,
        CloudKind::Public => &config.public,
    }
}

pub(crate) fn make_record(
    request: PlacementRequest,
    spec: &VmSpec,
    plan: &SubscriptionPlan,
    cluster: ClusterId,
    node: Option<NodeId>,
) -> VmRecord {
    VmRecord {
        id: request.vm,
        subscription: SubscriptionId::new(spec.subscription as u32),
        service: request.service,
        size: request.size,
        priority: request.priority,
        service_model: service_model_for(&plan.groups[spec.group]),
        region: spec.region,
        cluster,
        node,
        created: spec.created,
        ended: spec.ended,
    }
}

/// Service model, derived deterministically from the group's profile:
/// SaaS for user-facing diurnal/hourly services, PaaS for stable
/// backends, IaaS otherwise.
fn service_model_for(profile: &ServiceUtilProfile) -> ServiceModel {
    match profile.kind {
        PatternKind::Diurnal | PatternKind::HourlyPeak => ServiceModel::Saas,
        PatternKind::Stable => ServiceModel::Paas,
        PatternKind::Irregular => ServiceModel::Iaas,
    }
}

/// Generates churn and burst VM specs for both clouds.
fn churn_specs(
    config: &GeneratorConfig,
    plans: &[SubscriptionPlan],
    region_ids: &[RegionId],
    tz_of: &[i32],
    factory: &RngFactory,
    specs: &mut Vec<VmSpec>,
    report: &mut GenerationReport,
) {
    for cloud in CloudKind::BOTH {
        let profile = cloud_profile(config, cloud);
        let lifetimes = LifetimeSampler::new(&profile.lifetime);
        let burst_lifetime = LogNormal::from_median(5.0 * 60.0, 0.6).expect("valid burst lifetime");
        let mut rng = factory.stream(&format!("churn/{cloud}"));

        // Subscriptions by region (indices into `plans`).
        let mut by_region: Vec<Vec<usize>> = vec![Vec::new(); region_ids.len()];
        for (idx, plan) in plans.iter().enumerate() {
            if plan.cloud == cloud {
                for r in &plan.regions {
                    by_region[r.as_usize()].push(idx);
                }
            }
        }

        for (region_idx, &region) in region_ids.iter().enumerate() {
            let members = &by_region[region_idx];
            if members.is_empty() {
                continue;
            }
            let tz = tz_of[region_idx];
            let churn_weights: Vec<f64> = members.iter().map(|&i| plans[i].churn_weight).collect();
            let churn_pick = Categorical::new(&churn_weights).expect("positive weights");

            // Regular (possibly diurnal) churn.
            for created in sample_nhpp_week(&mut rng, &profile.arrival, tz) {
                let sub = members[churn_pick.sample_index(&mut rng)];
                let group = rng.random_range(0..plans[sub].groups.len());
                let autoscale = rng.random::<f64>() < profile.autoscale_fraction;
                let ended = if autoscale {
                    Some(autoscale_end(created, tz, &mut rng))
                } else {
                    Some(created + lifetimes.sample(&mut rng))
                };
                let spot = rng.random::<f64>() < profile.spot_fraction;
                specs.push(VmSpec {
                    subscription: sub,
                    group,
                    region,
                    created,
                    ended,
                    priority: if spot {
                        Priority::Spot
                    } else {
                        Priority::OnDemand
                    },
                    kind: SpecKind::Churn,
                });
                report.churn_vms += 1;
            }

            // Deployment bursts (private-cloud spikes).
            let burst_weights: Vec<f64> = members
                .iter()
                .map(|&i| {
                    let s = plans[i].standing_total() as f64;
                    s * s
                })
                .collect();
            if burst_weights.iter().sum::<f64>() <= 0.0 {
                continue;
            }
            let burst_pick = Categorical::new(&burst_weights).expect("positive weights");
            for burst in sample_bursts_week(&mut rng, &profile.arrival, tz) {
                let sub = members[burst_pick.sample_index(&mut rng)];
                let group = rng.random_range(0..plans[sub].groups.len());
                for _ in 0..burst.size {
                    let life = burst_lifetime.sample(&mut rng).max(30.0) as i64;
                    specs.push(VmSpec {
                        subscription: sub,
                        group,
                        region,
                        created: burst.at,
                        ended: Some(burst.at + SimDuration::from_minutes(life)),
                        priority: Priority::OnDemand,
                        kind: SpecKind::Burst,
                    });
                    report.burst_vms += 1;
                }
            }
        }
    }
}

/// End time for an auto-scaled VM: around 19:00 local on its creation
/// day (or a short life if created in the evening).
fn autoscale_end<R: Rng + ?Sized>(created: SimTime, tz: i32, rng: &mut R) -> SimTime {
    let local = created.to_local(tz);
    let evening = i64::from(19 * 60) + rng.random_range(-45..45);
    let remaining = evening - i64::from(local.minute_of_day());
    if remaining > 30 {
        created + SimDuration::from_minutes(remaining)
    } else {
        created + SimDuration::from_minutes(rng.random_range(20..60))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GeneratorConfig;

    fn small_trace(seed: u64) -> GeneratedTrace {
        generate(&GeneratorConfig::small(seed))
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_trace(7);
        let b = small_trace(7);
        assert_eq!(a.trace.stats(), b.trace.stats());
        assert_eq!(a.report, b.report);
        let vm = VmId::new(3);
        assert_eq!(a.trace.vm(vm).unwrap(), b.trace.vm(vm).unwrap());
        assert_eq!(a.trace.util(vm), b.trace.util(vm));
    }

    #[test]
    fn different_seeds_differ() {
        let a = small_trace(1);
        let b = small_trace(2);
        assert_ne!(a.trace.stats(), b.trace.stats());
    }

    #[test]
    fn both_clouds_populated() {
        let g = small_trace(3);
        let stats = g.trace.stats();
        assert!(stats.private_vms > 100, "{stats:?}");
        assert!(stats.public_vms > 100, "{stats:?}");
        assert!(stats.private_subscriptions > 0);
        assert!(stats.public_subscriptions > stats.private_subscriptions);
        assert!(stats.vms_with_telemetry > 0);
    }

    #[test]
    fn records_reference_valid_entities() {
        let g = small_trace(4);
        for vm in g.trace.vms() {
            let cluster = g.trace.topology().cluster(vm.cluster).expect("cluster");
            assert_eq!(cluster.region, vm.region);
            let sub = g.trace.subscription(vm.subscription).expect("subscription");
            assert_eq!(sub.cloud, cluster.cloud);
            if let Some(node) = vm.node {
                assert_eq!(g.trace.topology().node(node).unwrap().cluster, vm.cluster);
            }
            if let Some(end) = vm.ended {
                assert!(end >= vm.created);
            }
        }
    }

    #[test]
    fn telemetry_spans_alive_window() {
        let g = small_trace(5);
        let mut checked = 0;
        for vm in g.trace.vms() {
            if let Some(series) = g.trace.util(vm.id) {
                assert!(series.start().minutes() >= 0);
                assert!(series.start() >= vm.created);
                let last = series.time_at(series.len() - 1);
                assert!(last < SimTime::WEEK_END);
                if let Some(end) = vm.ended {
                    assert!(last < end.max(SimTime::ZERO) || end > SimTime::WEEK_END);
                }
                checked += 1;
            }
        }
        assert!(checked > 100);
    }

    #[test]
    fn report_counts_are_consistent() {
        let g = small_trace(6);
        let total_specs = g.report.standing_vms + g.report.churn_vms + g.report.burst_vms;
        assert_eq!(
            g.trace.vms().len() as u64 + g.report.dropped_vms,
            total_specs
        );
        assert!(g.report.burst_vms > 0, "private bursts expected");
        assert!(
            g.report.private_alloc.successes + g.report.public_alloc.successes
                >= g.trace.vms().iter().filter(|v| v.node.is_some()).count() as u64
        );
    }

    #[test]
    fn flagship_service_exists_and_is_private_agnostic() {
        // Flagship needs >=3 regions; use a seed-stable small config.
        let g = small_trace(8);
        if let Some(svc) = g.flagship_service() {
            assert_eq!(svc.cloud, CloudKind::Private);
            assert!(svc.profile.region_agnostic);
            assert!(svc.regions.len() >= 3);
        }
    }

    #[test]
    fn telemetry_can_be_disabled() {
        let mut cfg = GeneratorConfig::small(9);
        cfg.telemetry = false;
        let g = generate(&cfg);
        assert_eq!(g.trace.stats().vms_with_telemetry, 0);
        assert!(!g.trace.vms().is_empty());
    }

    #[test]
    fn spot_vms_only_where_configured() {
        let g = small_trace(10);
        let spot_public = g
            .trace
            .vms_of(CloudKind::Public)
            .filter(|v| v.priority == Priority::Spot)
            .count();
        assert!(spot_public > 0, "public cloud should have spot VMs");
    }

    /// Worker-count invariance at the unit level: explicit worker counts
    /// through [`generate_with`] must agree exactly (the integration
    /// digest test locks the same property against the golden bytes).
    #[test]
    fn generate_with_is_worker_count_invariant() {
        let cfg = GeneratorConfig::small(11);
        let base = generate_with(&cfg, Parallelism::with_workers(1));
        for workers in [2, 4, 8] {
            let got = generate_with(&cfg, Parallelism::with_workers(workers));
            assert_eq!(got.trace.stats(), base.trace.stats(), "workers={workers}");
            assert_eq!(got.report, base.report, "workers={workers}");
        }
    }
}
