//! Offline stand-in for `serde`: the workspace derives `Serialize` and
//! `Deserialize` on its model types but never serializes through serde
//! itself (export paths write CSV/JSON by hand), so marker traits plus a
//! no-op derive keep every annotation compiling with no network access.
//!
//! If a future PR introduces a real serializer, replace this shim with the
//! actual crates (they are API-supersets of what is stubbed here).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Marker counterpart of `serde::Serialize`.
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize`.
pub trait Deserialize<'de> {}

/// Marker counterpart of `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}

impl<T> Serialize for T {}
impl<'de, T> Deserialize<'de> for T {}
impl<T> DeserializeOwned for T {}

pub use serde_derive::{Deserialize, Serialize};

/// Sub-module mirroring `serde::de` for `DeserializeOwned` imports.
pub mod de {
    pub use crate::DeserializeOwned;
}
