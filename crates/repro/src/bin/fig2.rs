//! Figure 2: heatmaps of core and memory sizes per VM.

use cloudscope::analysis::vmsize::VmSizeAnalysis;
use cloudscope_repro::checks::fig2_checks;
use cloudscope_repro::{MetricsOpt, ShapeChecks};

fn main() {
    let metrics = MetricsOpt::from_args();
    let generated = metrics.load_trace();
    let a = VmSizeAnalysis::run(&generated.trace).expect("analysis");

    for (label, hm) in [("private", &a.private), ("public", &a.public)] {
        println!("## Fig 2 {label}: cores x memory heatmap (fractions)");
        println!("core_bin,memory_bin,fraction");
        for x in 0..hm.x_axis().bins() {
            for y in 0..hm.y_axis().bins() {
                let f = hm.fraction(x, y);
                if f > 0.0 {
                    println!("{x},{y},{f:.4}");
                }
            }
        }
        println!();
    }

    let mut checks = ShapeChecks::new();
    fig2_checks(&a, &cloudscope_repro::active_profile(), &mut checks);
    let ok = checks.finish("fig2");
    metrics.write();
    std::process::exit(i32::from(!ok));
}
