//! Missing-data policies for gap-bearing series.
//!
//! The convention across the workspace is *in-band NaN*: a missing sample
//! keeps its slot on the time grid and carries `f64::NAN`. This module
//! holds the two repair policies the analysis stack applies before its
//! dense kernels, plus the small folds (coverage, finite mean/std) that
//! every gap-aware consumer needs:
//!
//! - **Mask-and-renormalize** (ACF, periodogram): see
//!   [`crate::acf::autocorrelation_masked`] and
//!   [`crate::fft::periodogram_masked`], which estimate over the present
//!   samples only.
//! - **Linear fill with a max-gap cap** ([`fill_linear_capped`]): interior
//!   gaps up to the cap are linearly interpolated, edge gaps held at the
//!   nearest present value; longer gaps are left as NaN so a 6-hour
//!   blackout is never hallucinated into a smooth ramp.

/// Result of a fill pass: how many slots were repaired and how many gaps
/// remain (runs longer than the cap).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FillReport {
    /// Slots replaced by interpolated or held values.
    pub filled: usize,
    /// Slots still missing after the pass.
    pub remaining: usize,
}

/// Fraction of finite values in `values`, in `[0, 1]` (0 for empty input).
#[must_use]
pub fn coverage(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let present = values.iter().filter(|v| v.is_finite()).count();
    present as f64 / values.len() as f64
}

/// Mean over the finite values, or `None` if there are none.
#[must_use]
pub fn finite_mean(values: &[f64]) -> Option<f64> {
    let mut sum = 0.0;
    let mut count = 0usize;
    for &v in values {
        if v.is_finite() {
            sum += v;
            count += 1;
        }
    }
    (count > 0).then(|| sum / count as f64)
}

/// Population standard deviation over the finite values, or `None` if
/// there are none.
#[must_use]
pub fn finite_std(values: &[f64]) -> Option<f64> {
    let mean = finite_mean(values)?;
    let mut sum_sq = 0.0;
    let mut count = 0usize;
    for &v in values {
        if v.is_finite() {
            sum_sq += (v - mean) * (v - mean);
            count += 1;
        }
    }
    Some((sum_sq / count as f64).sqrt())
}

/// Repairs gaps in place: interior runs of non-finite values of length
/// ≤ `max_gap` are linearly interpolated between their finite neighbours;
/// leading/trailing runs of length ≤ `max_gap` are held at the nearest
/// finite value. Longer runs are left as NaN and counted in
/// [`FillReport::remaining`]. A series with no finite value at all is
/// left untouched (everything counts as remaining).
pub fn fill_linear_capped(values: &mut [f64], max_gap: usize) -> FillReport {
    let mut report = FillReport::default();
    let first_finite = values.iter().position(|v| v.is_finite());
    let Some(first_finite) = first_finite else {
        report.remaining = values.len();
        return report;
    };
    let last_finite = values
        .iter()
        .rposition(|v| v.is_finite())
        .expect("a finite value exists");

    // Leading edge: hold the first finite value backwards.
    if first_finite > 0 {
        if first_finite <= max_gap {
            let v = values[first_finite];
            for slot in &mut values[..first_finite] {
                *slot = v;
            }
            report.filled += first_finite;
        } else {
            report.remaining += first_finite;
        }
    }
    // Trailing edge: hold the last finite value forwards.
    let tail = values.len() - 1 - last_finite;
    if tail > 0 {
        if tail <= max_gap {
            let v = values[last_finite];
            for slot in &mut values[last_finite + 1..] {
                *slot = v;
            }
            report.filled += tail;
        } else {
            report.remaining += tail;
        }
    }
    // Interior runs between finite anchors.
    let mut anchor = first_finite;
    let mut i = first_finite + 1;
    while i <= last_finite {
        if values[i].is_finite() {
            let run = i - anchor - 1;
            if run > 0 {
                if run <= max_gap {
                    let left = values[anchor];
                    let right = values[i];
                    let span = (i - anchor) as f64;
                    for k in 1..=run {
                        values[anchor + k] = left + (right - left) * (k as f64 / span);
                    }
                    report.filled += run;
                } else {
                    report.remaining += run;
                }
            }
            anchor = i;
        }
        i += 1;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_counts_finite_fraction() {
        assert_eq!(coverage(&[]), 0.0);
        assert_eq!(coverage(&[1.0, 2.0]), 1.0);
        assert!((coverage(&[1.0, f64::NAN, f64::INFINITY, 4.0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn finite_folds_skip_gaps() {
        let v = [1.0, f64::NAN, 3.0];
        assert!((finite_mean(&v).unwrap() - 2.0).abs() < 1e-12);
        assert!((finite_std(&v).unwrap() - 1.0).abs() < 1e-12);
        assert!(finite_mean(&[f64::NAN]).is_none());
        assert!(finite_std(&[]).is_none());
    }

    #[test]
    fn interior_gap_interpolated() {
        let mut v = [10.0, f64::NAN, f64::NAN, 40.0];
        let report = fill_linear_capped(&mut v, 6);
        assert_eq!(
            report,
            FillReport {
                filled: 2,
                remaining: 0
            }
        );
        assert!((v[1] - 20.0).abs() < 1e-12);
        assert!((v[2] - 30.0).abs() < 1e-12);
    }

    #[test]
    fn edge_gaps_held_not_extrapolated() {
        let mut v = [f64::NAN, 5.0, 7.0, f64::NAN, f64::NAN];
        let report = fill_linear_capped(&mut v, 6);
        assert_eq!(report.filled, 3);
        assert_eq!(v[0], 5.0);
        assert_eq!(v[3], 7.0);
        assert_eq!(v[4], 7.0);
    }

    #[test]
    fn long_gaps_stay_missing() {
        let mut v = [1.0, f64::NAN, f64::NAN, f64::NAN, 2.0, f64::NAN, 3.0];
        let report = fill_linear_capped(&mut v, 2);
        assert_eq!(report.filled, 1);
        assert_eq!(report.remaining, 3);
        assert!(v[1].is_nan() && v[2].is_nan() && v[3].is_nan());
        assert!((v[5] - 2.5).abs() < 1e-12);
    }

    #[test]
    fn all_missing_left_untouched() {
        let mut v = [f64::NAN, f64::NAN];
        let report = fill_linear_capped(&mut v, 10);
        assert_eq!(report.filled, 0);
        assert_eq!(report.remaining, 2);
        assert!(v.iter().all(|x| x.is_nan()));
    }

    #[test]
    fn dense_input_is_untouched() {
        let mut v = [1.0, 2.0, 3.0];
        let report = fill_linear_capped(&mut v, 3);
        assert_eq!(report, FillReport::default());
        assert_eq!(v, [1.0, 2.0, 3.0]);
    }
}
