//! Column encode/decode between model types and chunk column bytes.
//!
//! VM metadata chunks hold one fixed-width column per record field
//! (options split into a presence byte column and a value column);
//! telemetry chunks hold the run locator columns plus one variable
//! width samples column whose extents derive from the length column.
//! Everything is little-endian and bit-exact — `f64` fields travel as
//! IEEE-754 bit patterns, samples as the quantized storage bytes.

use crate::chunk::{ChunkKind, DecodedChunk, RawColumn};
use crate::error::StoreError;
use crate::layout::{Dec, Enc};
use bytes::Bytes;
use cloudscope_model::ids::{ClusterId, NodeId, RegionId, ServiceId, SubscriptionId, VmId};
use cloudscope_model::time::SimTime;
use cloudscope_model::vm::{Priority, ServiceModel, VmRecord, VmSize};

/// Physical column ids. VM metadata and telemetry chunks use disjoint
/// namespaces (a chunk's kind disambiguates).
pub(crate) mod col {
    pub(crate) const VM_ID: u16 = 0;
    pub(crate) const VM_SUBSCRIPTION: u16 = 1;
    pub(crate) const VM_SERVICE: u16 = 2;
    pub(crate) const VM_CORES: u16 = 3;
    pub(crate) const VM_MEMORY: u16 = 4;
    pub(crate) const VM_PRIORITY: u16 = 5;
    pub(crate) const VM_SERVICE_MODEL: u16 = 6;
    pub(crate) const VM_REGION: u16 = 7;
    pub(crate) const VM_CLUSTER: u16 = 8;
    pub(crate) const VM_NODE_PRESENT: u16 = 9;
    pub(crate) const VM_NODE: u16 = 10;
    pub(crate) const VM_CREATED: u16 = 11;
    pub(crate) const VM_ENDED_PRESENT: u16 = 12;
    pub(crate) const VM_ENDED: u16 = 13;

    pub(crate) const TEL_VM_ID: u16 = 0;
    pub(crate) const TEL_START: u16 = 1;
    pub(crate) const TEL_LEN: u16 = 2;
    pub(crate) const TEL_SAMPLES: u16 = 3;
}

/// The logical columns a scan can project. `Id` is always decoded —
/// batches are meaningless without row identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Column {
    /// VM id (both chunk kinds).
    Id,
    /// Owning subscription.
    Subscription,
    /// Logical service.
    Service,
    /// Resource shape (cores and memory together).
    Size,
    /// Priority class.
    Priority,
    /// Service model.
    ServiceModel,
    /// Deployment region.
    Region,
    /// Placement cluster.
    Cluster,
    /// Placement node.
    Node,
    /// Creation time.
    Created,
    /// Termination time.
    Ended,
    /// Telemetry run start timestamps.
    TelemetryStart,
    /// Telemetry run sample bytes.
    TelemetrySamples,
}

/// Which logical columns a scan decodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Projection {
    mask: u32,
}

impl Projection {
    /// Every column.
    #[must_use]
    pub const fn all() -> Self {
        Self { mask: u32::MAX }
    }

    /// Only the named columns (ids are always included).
    #[must_use]
    pub fn columns(cols: &[Column]) -> Self {
        let mut mask = 1u32 << Column::Id as u32;
        for &c in cols {
            mask |= 1 << c as u32;
        }
        Self { mask }
    }

    /// `true` if the projection includes `c`.
    #[must_use]
    pub fn includes(self, c: Column) -> bool {
        self.mask & (1 << c as u32) != 0
    }

    /// The physical columns to decompress for a chunk of `kind`.
    pub(crate) fn physical(self, kind: ChunkKind) -> Vec<u16> {
        let mut wanted = Vec::new();
        match kind {
            ChunkKind::VmMeta => {
                let map = [
                    (Column::Id, &[col::VM_ID][..]),
                    (Column::Subscription, &[col::VM_SUBSCRIPTION]),
                    (Column::Service, &[col::VM_SERVICE]),
                    (Column::Size, &[col::VM_CORES, col::VM_MEMORY]),
                    (Column::Priority, &[col::VM_PRIORITY]),
                    (Column::ServiceModel, &[col::VM_SERVICE_MODEL]),
                    (Column::Region, &[col::VM_REGION]),
                    (Column::Cluster, &[col::VM_CLUSTER]),
                    (Column::Node, &[col::VM_NODE_PRESENT, col::VM_NODE]),
                    (Column::Created, &[col::VM_CREATED]),
                    (Column::Ended, &[col::VM_ENDED_PRESENT, col::VM_ENDED]),
                ];
                for (logical, physical) in map {
                    if self.includes(logical) {
                        wanted.extend_from_slice(physical);
                    }
                }
            }
            ChunkKind::Telemetry => {
                wanted.push(col::TEL_VM_ID);
                if self.includes(Column::TelemetryStart) {
                    wanted.push(col::TEL_START);
                }
                if self.includes(Column::TelemetrySamples) {
                    wanted.extend_from_slice(&[col::TEL_START, col::TEL_LEN, col::TEL_SAMPLES]);
                }
                wanted.dedup();
            }
        }
        wanted
    }
}

impl Default for Projection {
    fn default() -> Self {
        Self::all()
    }
}

/// Column buffers for one open VM-metadata chunk, appended row by row.
#[derive(Debug, Default)]
pub(crate) struct VmMetaColumns {
    ids: Enc,
    subscriptions: Enc,
    services: Enc,
    cores: Enc,
    memory: Enc,
    priorities: Enc,
    service_models: Enc,
    regions: Enc,
    clusters: Enc,
    node_present: Enc,
    nodes: Enc,
    created: Enc,
    ended_present: Enc,
    ended: Enc,
    pub(crate) rows: u32,
    pub(crate) min_vm: u64,
    pub(crate) max_vm: u64,
}

impl VmMetaColumns {
    pub(crate) fn push(&mut self, vm: &VmRecord) {
        let id = vm.id.index();
        if self.rows == 0 {
            self.min_vm = id;
        }
        self.max_vm = id;
        self.rows += 1;
        self.ids.put_u64(id);
        self.subscriptions.put_u32(vm.subscription.index());
        self.services.put_u32(vm.service.index());
        self.cores.put_u32(vm.size.cores());
        self.memory.put_f64(vm.size.memory_gb());
        self.priorities.put_u8(match vm.priority {
            Priority::OnDemand => 0,
            Priority::Spot => 1,
        });
        self.service_models.put_u8(match vm.service_model {
            ServiceModel::Iaas => 0,
            ServiceModel::Paas => 1,
            ServiceModel::Saas => 2,
        });
        self.regions.put_u32(vm.region.index());
        self.clusters.put_u32(vm.cluster.index());
        self.node_present.put_u8(u8::from(vm.node.is_some()));
        self.nodes.put_u32(vm.node.map_or(0, NodeId::index));
        self.created.put_i64(vm.created.minutes());
        self.ended_present.put_u8(u8::from(vm.ended.is_some()));
        self.ended.put_i64(vm.ended.map_or(0, SimTime::minutes));
    }

    pub(crate) fn into_columns(self) -> Vec<RawColumn> {
        let raw = |id: u16, e: Enc| RawColumn {
            id,
            bytes: e.into_vec(),
        };
        vec![
            raw(col::VM_ID, self.ids),
            raw(col::VM_SUBSCRIPTION, self.subscriptions),
            raw(col::VM_SERVICE, self.services),
            raw(col::VM_CORES, self.cores),
            raw(col::VM_MEMORY, self.memory),
            raw(col::VM_PRIORITY, self.priorities),
            raw(col::VM_SERVICE_MODEL, self.service_models),
            raw(col::VM_REGION, self.regions),
            raw(col::VM_CLUSTER, self.clusters),
            raw(col::VM_NODE_PRESENT, self.node_present),
            raw(col::VM_NODE, self.nodes),
            raw(col::VM_CREATED, self.created),
            raw(col::VM_ENDED_PRESENT, self.ended_present),
            raw(col::VM_ENDED, self.ended),
        ]
    }
}

/// Column buffers for one open telemetry chunk.
#[derive(Debug, Default)]
pub(crate) struct TelemetryColumns {
    ids: Enc,
    starts: Enc,
    lens: Enc,
    samples: Enc,
    pub(crate) rows: u32,
    pub(crate) min_vm: u64,
    pub(crate) max_vm: u64,
}

impl TelemetryColumns {
    pub(crate) fn push(&mut self, id: u64, start_minute: i64, samples: &[u8]) {
        if self.rows == 0 {
            self.min_vm = id;
        }
        self.max_vm = id;
        self.rows += 1;
        self.ids.put_u64(id);
        self.starts.put_i64(start_minute);
        self.lens.put_u32(samples.len() as u32);
        self.samples.put_slice(samples);
    }

    /// Bytes buffered so far — the writer's seal threshold watches
    /// this, since sample payloads dominate.
    pub(crate) fn buffered_bytes(&self) -> usize {
        self.samples.len() + self.ids.len() + self.starts.len() + self.lens.len()
    }

    pub(crate) fn into_columns(self) -> Vec<RawColumn> {
        let raw = |id: u16, e: Enc| RawColumn {
            id,
            bytes: e.into_vec(),
        };
        vec![
            raw(col::TEL_VM_ID, self.ids),
            raw(col::TEL_START, self.starts),
            raw(col::TEL_LEN, self.lens),
            raw(col::TEL_SAMPLES, self.samples),
        ]
    }
}

/// A decoded VM-metadata chunk with whatever columns the projection
/// asked for; unprojected columns are `None`.
#[derive(Debug)]
pub struct VmMetaBatch {
    /// The chunk's manifest name.
    pub chunk: String,
    /// Row ids, ascending.
    pub ids: Vec<VmId>,
    /// Owning subscriptions.
    pub subscriptions: Option<Vec<SubscriptionId>>,
    /// Logical services.
    pub services: Option<Vec<ServiceId>>,
    /// Resource shapes.
    pub sizes: Option<Vec<VmSize>>,
    /// Priority classes.
    pub priorities: Option<Vec<Priority>>,
    /// Service models.
    pub service_models: Option<Vec<ServiceModel>>,
    /// Deployment regions.
    pub regions: Option<Vec<RegionId>>,
    /// Placement clusters.
    pub clusters: Option<Vec<ClusterId>>,
    /// Placement nodes.
    pub nodes: Option<Vec<Option<NodeId>>>,
    /// Creation times.
    pub created: Option<Vec<SimTime>>,
    /// Termination times.
    pub ended: Option<Vec<Option<SimTime>>>,
}

impl VmMetaBatch {
    /// Reassembles full [`VmRecord`]s; requires an unprojected batch.
    ///
    /// # Errors
    /// [`StoreError::Inconsistent`] if any column was projected away.
    pub fn records(&self) -> Result<Vec<VmRecord>, StoreError> {
        let missing = || {
            StoreError::Inconsistent(format!(
                "chunk {}: records() on a projected batch",
                self.chunk
            ))
        };
        let subscriptions = self.subscriptions.as_ref().ok_or_else(missing)?;
        let services = self.services.as_ref().ok_or_else(missing)?;
        let sizes = self.sizes.as_ref().ok_or_else(missing)?;
        let priorities = self.priorities.as_ref().ok_or_else(missing)?;
        let service_models = self.service_models.as_ref().ok_or_else(missing)?;
        let regions = self.regions.as_ref().ok_or_else(missing)?;
        let clusters = self.clusters.as_ref().ok_or_else(missing)?;
        let nodes = self.nodes.as_ref().ok_or_else(missing)?;
        let created = self.created.as_ref().ok_or_else(missing)?;
        let ended = self.ended.as_ref().ok_or_else(missing)?;
        Ok((0..self.ids.len())
            .map(|i| VmRecord {
                id: self.ids[i],
                subscription: subscriptions[i],
                service: services[i],
                size: sizes[i],
                priority: priorities[i],
                service_model: service_models[i],
                region: regions[i],
                cluster: clusters[i],
                node: nodes[i],
                created: created[i],
                ended: ended[i],
            })
            .collect())
    }
}

/// A decoded telemetry chunk: one row per (VM, day) run.
#[derive(Debug)]
pub struct TelemetryBatch {
    /// The chunk's manifest name.
    pub chunk: String,
    /// The chunk's trace-week day.
    pub day: u8,
    /// Row ids, ascending.
    pub ids: Vec<VmId>,
    /// Run start times.
    pub starts: Option<Vec<SimTime>>,
    /// Run sample bytes (quantized storage representation); rows
    /// share the chunk's decoded buffer.
    pub samples: Option<Vec<Bytes>>,
}

/// One decoded batch from a scan.
#[derive(Debug)]
pub enum Batch {
    /// A VM-metadata chunk.
    VmMeta(VmMetaBatch),
    /// A telemetry chunk.
    Telemetry(TelemetryBatch),
}

impl Batch {
    /// Rows in the batch.
    #[must_use]
    pub fn rows(&self) -> usize {
        match self {
            Batch::VmMeta(b) => b.ids.len(),
            Batch::Telemetry(b) => b.ids.len(),
        }
    }
}

/// Context for column-decode errors.
fn ctx(path: &std::path::Path, name: &str, what: &str, e: String) -> StoreError {
    StoreError::corrupt(path, name, format!("{what}: {e}"))
}

/// Decodes a fixed-width column of `rows` entries via `f`, verifying
/// the byte count matches exactly.
#[allow(clippy::too_many_arguments)] // error-context threading, not state
fn fixed_column<T>(
    path: &std::path::Path,
    name: &str,
    chunk: &DecodedChunk,
    id: u16,
    rows: usize,
    width: usize,
    what: &str,
    f: impl Fn(&mut Dec<'_>) -> Result<T, String>,
) -> Result<Option<Vec<T>>, StoreError> {
    let Some(bytes) = chunk.column(id) else {
        return Ok(None);
    };
    if bytes.len() != rows * width {
        return Err(ctx(
            path,
            name,
            what,
            format!("{} bytes for {rows} rows of width {width}", bytes.len()),
        ));
    }
    let mut d = Dec::new(bytes);
    let mut out = Vec::with_capacity(rows);
    for _ in 0..rows {
        out.push(f(&mut d).map_err(|e| ctx(path, name, what, e))?);
    }
    Ok(Some(out))
}

/// Decodes a VM-metadata chunk into a batch.
pub(crate) fn decode_vm_meta(
    path: &std::path::Path,
    chunk: &DecodedChunk,
) -> Result<VmMetaBatch, StoreError> {
    let name = chunk.meta.name();
    let rows = chunk.meta.rows as usize;
    let ids = fixed_column(path, &name, chunk, col::VM_ID, rows, 8, "id column", |d| {
        d.take_u64().map(VmId::new)
    })?
    .ok_or_else(|| StoreError::corrupt(path, &name, "id column missing"))?;
    for win in ids.windows(2) {
        if win[1] <= win[0] {
            return Err(StoreError::corrupt(
                path,
                &name,
                format!("ids not strictly ascending: {} then {}", win[0], win[1]),
            ));
        }
    }

    let subscriptions = fixed_column(
        path,
        &name,
        chunk,
        col::VM_SUBSCRIPTION,
        rows,
        4,
        "subscription column",
        |d| d.take_u32().map(SubscriptionId::new),
    )?;
    let services = fixed_column(
        path,
        &name,
        chunk,
        col::VM_SERVICE,
        rows,
        4,
        "service column",
        |d| d.take_u32().map(ServiceId::new),
    )?;
    let cores = fixed_column(
        path,
        &name,
        chunk,
        col::VM_CORES,
        rows,
        4,
        "cores column",
        |d| d.take_u32(),
    )?;
    let memory = fixed_column(
        path,
        &name,
        chunk,
        col::VM_MEMORY,
        rows,
        8,
        "memory column",
        |d| d.take_f64(),
    )?;
    let sizes = match (cores, memory) {
        (Some(c), Some(m)) => {
            let mut sizes = Vec::with_capacity(rows);
            for (i, (&cores, &mem)) in c.iter().zip(&m).enumerate() {
                if cores == 0 || !(mem > 0.0 && mem.is_finite()) {
                    return Err(StoreError::corrupt(
                        path,
                        &name,
                        format!("row {i}: implausible size {cores}c/{mem}g"),
                    ));
                }
                sizes.push(VmSize::new(cores, mem));
            }
            Some(sizes)
        }
        _ => None,
    };
    let priorities = fixed_column(
        path,
        &name,
        chunk,
        col::VM_PRIORITY,
        rows,
        1,
        "priority column",
        |d| match d.take_u8()? {
            0 => Ok(Priority::OnDemand),
            1 => Ok(Priority::Spot),
            other => Err(format!("unknown priority tag {other}")),
        },
    )?;
    let service_models = fixed_column(
        path,
        &name,
        chunk,
        col::VM_SERVICE_MODEL,
        rows,
        1,
        "service model column",
        |d| match d.take_u8()? {
            0 => Ok(ServiceModel::Iaas),
            1 => Ok(ServiceModel::Paas),
            2 => Ok(ServiceModel::Saas),
            other => Err(format!("unknown service model tag {other}")),
        },
    )?;
    let regions = fixed_column(
        path,
        &name,
        chunk,
        col::VM_REGION,
        rows,
        4,
        "region column",
        |d| d.take_u32().map(RegionId::new),
    )?;
    let clusters = fixed_column(
        path,
        &name,
        chunk,
        col::VM_CLUSTER,
        rows,
        4,
        "cluster column",
        |d| d.take_u32().map(ClusterId::new),
    )?;
    let nodes = option_column(
        path,
        &name,
        chunk,
        (col::VM_NODE_PRESENT, col::VM_NODE, 4),
        rows,
        "node column",
        |d| d.take_u32().map(NodeId::new),
    )?;
    let created = fixed_column(
        path,
        &name,
        chunk,
        col::VM_CREATED,
        rows,
        8,
        "created column",
        |d| d.take_i64().map(SimTime::from_minutes),
    )?;
    let ended = option_column(
        path,
        &name,
        chunk,
        (col::VM_ENDED_PRESENT, col::VM_ENDED, 8),
        rows,
        "ended column",
        |d| d.take_i64().map(SimTime::from_minutes),
    )?;

    Ok(VmMetaBatch {
        chunk: name,
        ids,
        subscriptions,
        services,
        sizes,
        priorities,
        service_models,
        regions,
        clusters,
        nodes,
        created,
        ended,
    })
}

/// Decodes a presence-byte + value column pair into `Vec<Option<T>>`.
fn option_column<T>(
    path: &std::path::Path,
    name: &str,
    chunk: &DecodedChunk,
    (present_id, value_id, width): (u16, u16, usize),
    rows: usize,
    what: &str,
    f: impl Fn(&mut Dec<'_>) -> Result<T, String>,
) -> Result<Option<Vec<Option<T>>>, StoreError> {
    let present = fixed_column(path, name, chunk, present_id, rows, 1, what, |d| {
        match d.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(format!("presence byte {other}")),
        }
    })?;
    let values = fixed_column(path, name, chunk, value_id, rows, width, what, f)?;
    match (present, values) {
        (Some(p), Some(v)) => Ok(Some(
            p.into_iter()
                .zip(v)
                .map(|(is_present, value)| is_present.then_some(value))
                .collect(),
        )),
        _ => Ok(None),
    }
}

/// Decodes a telemetry chunk into a batch. Sample rows slice one
/// shared buffer, so a decoded chunk costs one allocation.
pub(crate) fn decode_telemetry(
    path: &std::path::Path,
    chunk: &DecodedChunk,
) -> Result<TelemetryBatch, StoreError> {
    let name = chunk.meta.name();
    let rows = chunk.meta.rows as usize;
    let ids = fixed_column(
        path,
        &name,
        chunk,
        col::TEL_VM_ID,
        rows,
        8,
        "id column",
        |d| d.take_u64().map(VmId::new),
    )?
    .ok_or_else(|| StoreError::corrupt(path, &name, "id column missing"))?;
    for win in ids.windows(2) {
        if win[1] <= win[0] {
            return Err(StoreError::corrupt(
                path,
                &name,
                format!("ids not strictly ascending: {} then {}", win[0], win[1]),
            ));
        }
    }
    let starts = fixed_column(
        path,
        &name,
        chunk,
        col::TEL_START,
        rows,
        8,
        "start column",
        |d| d.take_i64().map(SimTime::from_minutes),
    )?;
    let lens = fixed_column(
        path,
        &name,
        chunk,
        col::TEL_LEN,
        rows,
        4,
        "length column",
        |d| d.take_u32(),
    )?;
    let samples = match (&lens, chunk.column(col::TEL_SAMPLES)) {
        (Some(lens), Some(bytes)) => {
            let total: u64 = lens.iter().map(|&l| u64::from(l)).sum();
            if total != bytes.len() as u64 {
                return Err(StoreError::corrupt(
                    path,
                    &name,
                    format!(
                        "length column sums to {total} but samples column holds {}",
                        bytes.len()
                    ),
                ));
            }
            let shared = Bytes::from(bytes.to_vec());
            let mut out = Vec::with_capacity(rows);
            let mut offset = 0usize;
            for &len in lens {
                let len = len as usize;
                out.push(shared.slice(offset..offset + len));
                offset += len;
            }
            Some(out)
        }
        _ => None,
    };

    Ok(TelemetryBatch {
        chunk: name,
        day: chunk.meta.day,
        ids,
        starts,
        samples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::{decode_chunk_file, encode_chunk_file, ChunkMeta};
    use std::path::Path;

    fn vm(id: u64, node: Option<u32>, ended: Option<i64>) -> VmRecord {
        VmRecord {
            id: VmId::new(id),
            subscription: SubscriptionId::new(3),
            service: ServiceId::new(9),
            size: VmSize::new(4, 16.5),
            priority: Priority::Spot,
            service_model: ServiceModel::Paas,
            region: RegionId::new(1),
            cluster: ClusterId::new(2),
            node: node.map(NodeId::new),
            created: SimTime::from_minutes(-30),
            ended: ended.map(SimTime::from_minutes),
        }
    }

    #[test]
    fn vm_meta_roundtrip_and_projection() {
        let records = vec![vm(5, Some(8), None), vm(9, None, Some(400))];
        let mut cols = VmMetaColumns::default();
        for r in &records {
            cols.push(r);
        }
        let meta = ChunkMeta {
            kind: ChunkKind::VmMeta,
            region: 1,
            day: 0,
            seq: 0,
            rows: cols.rows,
            min_vm: cols.min_vm,
            max_vm: cols.max_vm,
        };
        let (file, _) = encode_chunk_file(&meta, &cols.into_columns(), 2);
        let p = Path::new("t.chunk");

        let full = decode_chunk_file(p, "t", &file, None, None, true).unwrap();
        let batch = decode_vm_meta(p, &full).unwrap();
        assert_eq!(batch.records().unwrap(), records);

        let proj = Projection::columns(&[Column::Created]);
        let wanted = proj.physical(ChunkKind::VmMeta);
        let partial = decode_chunk_file(p, "t", &file, Some(&wanted), None, true).unwrap();
        let batch = decode_vm_meta(p, &partial).unwrap();
        assert_eq!(batch.ids, vec![VmId::new(5), VmId::new(9)]);
        assert_eq!(
            batch.created.as_deref(),
            Some(&[SimTime::from_minutes(-30), SimTime::from_minutes(-30)][..])
        );
        assert!(batch.nodes.is_none());
        assert!(batch.records().is_err(), "projected batch lacks columns");
    }

    #[test]
    fn telemetry_roundtrip_slices_shared_buffer() {
        let mut cols = TelemetryColumns::default();
        cols.push(2, 0, &[1, 2, 3]);
        cols.push(7, 1440, &[9, 9]);
        let meta = ChunkMeta {
            kind: ChunkKind::Telemetry,
            region: 0,
            day: 1,
            seq: 0,
            rows: cols.rows,
            min_vm: cols.min_vm,
            max_vm: cols.max_vm,
        };
        let (file, _) = encode_chunk_file(&meta, &cols.into_columns(), 1);
        let p = Path::new("t.chunk");
        let decoded = decode_chunk_file(p, "t", &file, None, None, true).unwrap();
        let batch = decode_telemetry(p, &decoded).unwrap();
        assert_eq!(batch.ids, vec![VmId::new(2), VmId::new(7)]);
        let samples = batch.samples.unwrap();
        assert_eq!(&*samples[0], &[1, 2, 3]);
        assert_eq!(&*samples[1], &[9, 9]);
        assert_eq!(
            batch.starts.unwrap(),
            vec![SimTime::ZERO, SimTime::from_minutes(1440)]
        );
    }

    #[test]
    fn unsorted_ids_are_rejected() {
        let mut cols = TelemetryColumns::default();
        cols.push(7, 0, &[1]);
        cols.push(2, 0, &[1]);
        let meta = ChunkMeta {
            kind: ChunkKind::Telemetry,
            region: 0,
            day: 0,
            seq: 0,
            rows: 2,
            min_vm: 7,
            max_vm: 2,
        };
        let (file, _) = encode_chunk_file(&meta, &cols.into_columns(), 0);
        let p = Path::new("t.chunk");
        let decoded = decode_chunk_file(p, "t", &file, None, None, true).unwrap();
        assert!(decode_telemetry(p, &decoded).is_err());
    }
}
