//! Week-grid projection and coverage accounting for gap-bearing
//! telemetry.
//!
//! Figure-level analyses that need a dense, aligned week of samples per
//! VM (the Figure 6 bands, the oversubscription planner's demand pool)
//! go through [`filled_week_series`]: the VM's telemetry is projected
//! onto the global week grid, its coverage measured, and — if it clears
//! the caller's floor — the remaining gaps are linearly interpolated
//! (edge gaps held) so downstream percentile kernels see finite input.
//! Coverage ratios are reported upward so every figure can state how
//! much data actually backed it.

use cloudscope_model::prelude::*;
use cloudscope_model::time::{SAMPLES_PER_WEEK, SAMPLE_INTERVAL_MINUTES};
use cloudscope_timeseries::gaps::{coverage, fill_linear_capped};

/// Projects a telemetry series onto the week grid: a vector of
/// `SAMPLES_PER_WEEK` values where slot `i` is the sample at minute
/// `i * 5`, NaN where the series has a gap or never covered the slot.
#[must_use]
pub fn week_grid_values(util: &UtilSeries) -> Vec<f64> {
    let mut grid = vec![f64::NAN; SAMPLES_PER_WEEK];
    let base = util.start().minutes() / SAMPLE_INTERVAL_MINUTES;
    for (i, v) in util.iter().enumerate() {
        if !v.is_finite() {
            continue;
        }
        let slot = base + i as i64;
        if (0..SAMPLES_PER_WEEK as i64).contains(&slot) {
            grid[slot as usize] = f64::from(v);
        }
    }
    grid
}

/// Projects `util` onto the week grid and, if its coverage is at least
/// `min_coverage`, repairs all gaps (linear interpolation, edges held)
/// and returns the dense values together with the pre-fill coverage.
/// Returns `None` below the floor — the VM does not carry enough of the
/// week to stand in for it.
#[must_use]
pub fn filled_week_series(util: &UtilSeries, min_coverage: f64) -> Option<(Vec<f64>, f64)> {
    let mut grid = week_grid_values(util);
    let cov = coverage(&grid);
    if cov < min_coverage || cov == 0.0 {
        cloudscope_obs::counter("analysis.coverage.gate_rejections").inc();
        return None;
    }
    fill_linear_capped(&mut grid, SAMPLES_PER_WEEK);
    cloudscope_obs::counter("analysis.coverage.series_filled").inc();
    Some((grid, cov))
}

/// Mean week-grid coverage over the telemetry-bearing VMs of one cloud,
/// or `None` if the cloud has no telemetry at all. This is the figure
/// input-quality number the report surfaces per cloud.
#[must_use]
pub fn telemetry_slot_coverage(trace: &Trace, cloud: CloudKind) -> Option<f64> {
    let mut sum = 0.0;
    let mut count = 0usize;
    for vm in trace.vms_of(cloud) {
        if let Some(util) = trace.util(vm.id) {
            sum += coverage(&week_grid_values(&util));
            count += 1;
        }
    }
    (count > 0).then(|| sum / count as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudscope_model::time::SimTime;

    #[test]
    fn full_week_projects_onto_grid() {
        let util = UtilSeries::from_percentages(
            SimTime::ZERO,
            std::iter::repeat_n(10.0f32, SAMPLES_PER_WEEK),
        );
        let grid = week_grid_values(&util);
        assert_eq!(grid.len(), SAMPLES_PER_WEEK);
        assert!(grid.iter().all(|v| (*v - 10.0).abs() < 0.3));
        let (filled, cov) = filled_week_series(&util, 0.9).unwrap();
        assert_eq!(cov, 1.0);
        assert!(filled.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn partial_series_lands_at_its_offset() {
        let util = UtilSeries::from_percentages(SimTime::from_hours(1), [20.0, 30.0]);
        let grid = week_grid_values(&util);
        assert!(grid[11].is_nan());
        assert!((grid[12] - 20.0).abs() < 0.3);
        assert!((grid[13] - 30.0).abs() < 0.3);
        assert!(grid[14].is_nan());
    }

    #[test]
    fn coverage_floor_rejects_sparse_vms() {
        // Half a week of telemetry: below a 0.9 floor, above 0.4.
        let util = UtilSeries::from_percentages(
            SimTime::ZERO,
            std::iter::repeat_n(10.0f32, SAMPLES_PER_WEEK / 2),
        );
        assert!(filled_week_series(&util, 0.9).is_none());
        let (filled, cov) = filled_week_series(&util, 0.4).unwrap();
        assert!((cov - 0.5).abs() < 0.01);
        // The missing half is edge-held, not NaN.
        assert!(filled.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn gaps_inside_the_week_count_against_coverage() {
        let values: Vec<f32> = (0..SAMPLES_PER_WEEK)
            .map(|i| if i % 10 == 0 { f32::NAN } else { 50.0 })
            .collect();
        let util = UtilSeries::from_percentages(SimTime::ZERO, values);
        let (filled, cov) = filled_week_series(&util, 0.85).unwrap();
        assert!((cov - 0.9).abs() < 0.01);
        assert!(filled.iter().all(|v| v.is_finite()));
    }
}
