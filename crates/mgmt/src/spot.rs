//! Spot-VM policies (the Insight 2 implication for the public cloud):
//! candidate selection from the knowledge base, eviction-rate prediction,
//! and a Snape-style reliability-aware mixture of spot and on-demand VMs.

use crate::error::MgmtError;
use cloudscope_kb::{KbQuery, KnowledgeBase, WorkloadKnowledge};
use serde::{Deserialize, Serialize};

/// Features the eviction predictor scores. All in `[0, 1]`-ish ranges.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvictionFeatures {
    /// Core-allocation ratio of the hosting cluster (capacity pressure is
    /// the dominant eviction driver).
    pub cluster_allocation_ratio: f64,
    /// VM cores as a fraction of node cores (bigger VMs are evicted
    /// first when capacity is reclaimed in bulk).
    pub relative_vm_size: f64,
    /// Regional demand intensity right now, normalized to the daily peak
    /// (evictions cluster at demand peaks).
    pub demand_intensity: f64,
}

/// Logistic eviction-probability model, in the spirit of the production
/// spot-eviction predictors the paper cites.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvictionPredictor {
    bias: f64,
    w_allocation: f64,
    w_size: f64,
    w_demand: f64,
}

impl Default for EvictionPredictor {
    /// Weights hand-fitted so that an idle cluster predicts ≈ 1%/h and a
    /// full cluster at peak demand predicts ≳ 50%/h for large VMs.
    fn default() -> Self {
        Self {
            bias: -4.6,
            w_allocation: 5.2,
            w_size: 1.4,
            w_demand: 1.2,
        }
    }
}

impl EvictionPredictor {
    /// Creates a predictor with explicit weights.
    #[must_use]
    pub const fn new(bias: f64, w_allocation: f64, w_size: f64, w_demand: f64) -> Self {
        Self {
            bias,
            w_allocation,
            w_size,
            w_demand,
        }
    }

    /// Predicted probability that a spot VM is evicted within the next
    /// hour, in `[0, 1]`.
    #[must_use]
    pub fn eviction_rate_per_hour(&self, f: &EvictionFeatures) -> f64 {
        let z = self.bias
            + self.w_allocation * f.cluster_allocation_ratio.clamp(0.0, 1.0)
            + self.w_size * f.relative_vm_size.clamp(0.0, 1.0)
            + self.w_demand * f.demand_intensity.clamp(0.0, 1.0);
        1.0 / (1.0 + (-z).exp())
    }

    /// Probability a spot VM survives `hours` without eviction, assuming
    /// a constant hazard.
    #[must_use]
    pub fn survival_probability(&self, f: &EvictionFeatures, hours: f64) -> f64 {
        let rate = self.eviction_rate_per_hour(f);
        // Constant hazard: convert the per-hour probability to a rate.
        let hazard = -(1.0 - rate).max(1e-12).ln();
        (-hazard * hours.max(0.0)).exp()
    }
}

/// A spot/on-demand mixture plan for a job of `total_vms` running
/// `duration_hours` (the Snape idea: buy cheap evictable capacity but
/// keep enough on-demand to meet the completion target).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpotMixPlan {
    /// VMs bought as spot.
    pub spot_vms: usize,
    /// VMs bought on-demand.
    pub on_demand_vms: usize,
    /// Probability that at least `required_vms` survive the duration.
    pub availability: f64,
    /// Expected cost relative to an all-on-demand deployment (1.0 = no
    /// saving).
    pub relative_cost: f64,
}

/// Plans the cheapest spot/on-demand mix meeting an availability target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpotMixPolicy {
    /// Spot price as a fraction of the on-demand price (e.g. 0.3).
    pub spot_price_ratio: f64,
    /// Require `P(survivors >= required) >= availability_target`.
    pub availability_target: f64,
}

impl SpotMixPolicy {
    /// Creates a policy.
    ///
    /// # Errors
    /// Returns [`MgmtError::InvalidParameter`] for ratios outside (0, 1)
    /// or targets outside (0, 1).
    pub fn new(spot_price_ratio: f64, availability_target: f64) -> Result<Self, MgmtError> {
        if !(0.0 < spot_price_ratio && spot_price_ratio < 1.0) {
            return Err(MgmtError::InvalidParameter("spot price ratio in (0,1)"));
        }
        if !(0.0 < availability_target && availability_target < 1.0) {
            return Err(MgmtError::InvalidParameter("availability target in (0,1)"));
        }
        Ok(Self {
            spot_price_ratio,
            availability_target,
        })
    }

    /// Chooses the largest spot share such that, with per-VM survival
    /// probability `survival`, at least `required_vms` of `total_vms`
    /// survive with probability ≥ the target. Extra spot VMs beyond
    /// `total_vms` are not considered (no over-provisioning).
    ///
    /// # Errors
    /// Returns [`MgmtError::InvalidParameter`] if `required_vms >
    /// total_vms` or `total_vms == 0`.
    pub fn plan(
        &self,
        total_vms: usize,
        required_vms: usize,
        survival: f64,
    ) -> Result<SpotMixPlan, MgmtError> {
        if total_vms == 0 || required_vms > total_vms {
            return Err(MgmtError::InvalidParameter("required exceeds total"));
        }
        cloudscope_obs::counter("mgmt.spot.mix_plans_computed").inc();
        let survival = survival.clamp(0.0, 1.0);
        // Try the largest spot count first; on-demand VMs never die here.
        for spot in (0..=total_vms).rev() {
            let on_demand = total_vms - spot;
            let need_from_spot = required_vms.saturating_sub(on_demand);
            let availability = binomial_tail_at_least(spot, need_from_spot, survival);
            if availability >= self.availability_target {
                let relative_cost =
                    (on_demand as f64 + spot as f64 * self.spot_price_ratio) / total_vms as f64;
                return Ok(SpotMixPlan {
                    spot_vms: spot,
                    on_demand_vms: on_demand,
                    availability,
                    relative_cost,
                });
            }
        }
        // All on-demand always satisfies (need_from_spot = 0).
        Ok(SpotMixPlan {
            spot_vms: 0,
            on_demand_vms: total_vms,
            availability: 1.0,
            relative_cost: 1.0,
        })
    }
}

/// `P(Binomial(n, p) >= k)` computed with a numerically stable recurrence.
#[must_use]
fn binomial_tail_at_least(n: usize, k: usize, p: f64) -> f64 {
    if k == 0 {
        return 1.0;
    }
    if k > n {
        return 0.0;
    }
    // pmf(0) = (1-p)^n, pmf(i+1) = pmf(i) * (n-i)/(i+1) * p/(1-p).
    if p >= 1.0 {
        return 1.0;
    }
    if p <= 0.0 {
        return 0.0;
    }
    let ratio = p / (1.0 - p);
    let mut pmf = (1.0 - p).powi(n as i32);
    let mut cdf_below_k = 0.0;
    for i in 0..k {
        cdf_below_k += pmf;
        pmf *= (n - i) as f64 / (i + 1) as f64 * ratio;
    }
    (1.0 - cdf_below_k).clamp(0.0, 1.0)
}

/// Selects spot-adoption candidates from the knowledge base, largest
/// fleet first — the paper's "81% of public VMs fall into the shortest
/// lifetime bin shows the considerable number of candidate VMs".
#[must_use]
pub fn spot_candidates(kb: &KnowledgeBase) -> Vec<WorkloadKnowledge> {
    // `collect` returns the matches subscription-sorted; the stable sort
    // then orders by fleet size while keeping subscription order within
    // equal fleet sizes, so the ranking is fully deterministic.
    let mut candidates = KbQuery::spot_candidates().collect(kb);
    candidates.sort_by_key(|c| std::cmp::Reverse(c.vm_count));
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;

    fn features(alloc: f64) -> EvictionFeatures {
        EvictionFeatures {
            cluster_allocation_ratio: alloc,
            relative_vm_size: 0.1,
            demand_intensity: 0.5,
        }
    }

    #[test]
    fn eviction_rate_monotone_in_pressure() {
        let p = EvictionPredictor::default();
        let idle = p.eviction_rate_per_hour(&features(0.1));
        let busy = p.eviction_rate_per_hour(&features(0.95));
        assert!(idle < 0.1, "idle cluster: {idle}");
        assert!(busy > 0.3, "full cluster: {busy}");
        assert!(busy > idle);
    }

    #[test]
    fn survival_decays_with_time() {
        let p = EvictionPredictor::default();
        let f = features(0.7);
        let s1 = p.survival_probability(&f, 1.0);
        let s10 = p.survival_probability(&f, 10.0);
        assert!(s1 > s10);
        assert!((0.0..=1.0).contains(&s1));
        assert_eq!(p.survival_probability(&f, 0.0), 1.0);
    }

    #[test]
    fn binomial_tail_sanity() {
        assert_eq!(binomial_tail_at_least(10, 0, 0.5), 1.0);
        assert_eq!(binomial_tail_at_least(5, 6, 0.9), 0.0);
        // P(Bin(2, 0.5) >= 1) = 0.75.
        assert!((binomial_tail_at_least(2, 1, 0.5) - 0.75).abs() < 1e-12);
        // P(Bin(10, 1) >= 10) = 1.
        assert_eq!(binomial_tail_at_least(10, 10, 1.0), 1.0);
    }

    #[test]
    fn reliable_spot_goes_all_spot() {
        let policy = SpotMixPolicy::new(0.3, 0.95).unwrap();
        let plan = policy.plan(10, 8, 0.999).unwrap();
        assert_eq!(plan.spot_vms, 10);
        assert!((plan.relative_cost - 0.3).abs() < 1e-12);
        assert!(plan.availability >= 0.95);
    }

    #[test]
    fn flaky_spot_keeps_on_demand_floor() {
        let policy = SpotMixPolicy::new(0.3, 0.99).unwrap();
        let plan = policy.plan(10, 8, 0.5).unwrap();
        assert!(
            plan.on_demand_vms >= 8,
            "must guarantee the floor on-demand"
        );
        assert!(plan.availability >= 0.99);
        assert!(plan.relative_cost > 0.8);
    }

    #[test]
    fn cost_decreases_with_looser_requirements() {
        let policy = SpotMixPolicy::new(0.3, 0.95).unwrap();
        let strict = policy.plan(10, 10, 0.9).unwrap();
        let loose = policy.plan(10, 5, 0.9).unwrap();
        assert!(loose.relative_cost <= strict.relative_cost);
        assert!(loose.spot_vms >= strict.spot_vms);
    }

    #[test]
    fn survival_monotone_nonincreasing_in_hours() {
        let p = EvictionPredictor::default();
        for alloc in [0.1, 0.5, 0.9] {
            let f = features(alloc);
            let mut prev = 1.0f64;
            for step in 0..=48 {
                let hours = f64::from(step) * 0.5;
                let s = p.survival_probability(&f, hours);
                assert!(
                    (0.0..=1.0).contains(&s),
                    "survival out of range at alloc={alloc} hours={hours}: {s}"
                );
                assert!(
                    s <= prev + 1e-12,
                    "survival must not increase with hours: alloc={alloc} hours={hours} {s} > {prev}"
                );
                prev = s;
            }
        }
    }

    #[test]
    fn plan_always_meets_availability_target() {
        // Sweep survival probabilities and targets: every plan the policy
        // returns must meet its availability target (the all-on-demand
        // fallback has availability 1.0, so a valid plan always exists).
        for &target in &[0.5, 0.9, 0.99, 0.999] {
            let policy = SpotMixPolicy::new(0.3, target).unwrap();
            for step in 0..=10 {
                let survival = f64::from(step) / 10.0;
                for (total, required) in [(1usize, 1usize), (10, 8), (20, 1), (16, 16)] {
                    let plan = policy.plan(total, required, survival).unwrap();
                    assert!(
                        plan.availability >= target,
                        "target {target} missed: total={total} required={required} \
                         survival={survival} -> {plan:?}"
                    );
                    assert_eq!(plan.spot_vms + plan.on_demand_vms, total);
                    assert!(
                        (0.0..=1.0 + 1e-12).contains(&plan.relative_cost),
                        "cost out of range: {plan:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn parameter_validation() {
        assert!(SpotMixPolicy::new(0.0, 0.9).is_err());
        assert!(SpotMixPolicy::new(1.0, 0.9).is_err());
        assert!(SpotMixPolicy::new(0.3, 1.0).is_err());
        let policy = SpotMixPolicy::new(0.3, 0.9).unwrap();
        assert!(policy.plan(0, 0, 0.9).is_err());
        assert!(policy.plan(5, 6, 0.9).is_err());
    }
}
