//! The frozen end state of an ingestion run, served as a
//! [`TelemetrySource`].

use crate::ingestor::IngestReport;
use cloudscope_analysis::UtilizationPattern;
use cloudscope_model::prelude::*;
use cloudscope_model::trace::TelemetrySource;
use std::collections::BTreeMap;

/// What one VM's lane froze into.
#[derive(Debug, Clone)]
struct FrozenLane {
    /// Full sealed series (gap-preserving); `None` if no valid sample
    /// ever sealed — the VM has no telemetry, as `Trace::util` models.
    series: Option<UtilSeries>,
    /// Classification at the last window close.
    pattern: Option<UtilizationPattern>,
    /// Late-dropped samples of this VM.
    dropped_late: u64,
}

/// The immutable result of [`Ingestor::finish`](crate::Ingestor::finish):
/// per-VM reconstructed telemetry plus the streaming classifications.
///
/// As a [`TelemetrySource`] it is interchangeable with a resident
/// [`Trace`](cloudscope_model::trace::Trace) or the out-of-core store —
/// the same classifier code runs over all three. On a clean stream the
/// served series are byte-identical to what batch ingestion of the same
/// samples produces; under faults, every divergent VM is named by
/// [`IngestSession::had_drops`].
#[derive(Debug, Clone)]
pub struct IngestSession {
    lanes: BTreeMap<VmId, FrozenLane>,
    report: IngestReport,
}

impl IngestSession {
    /// Freezes per-lane end state (series, last pattern, drop count)
    /// into a session.
    pub(crate) fn freeze(
        lanes: impl Iterator<Item = (VmId, Option<UtilSeries>, Option<UtilizationPattern>, u64)>,
        report: IngestReport,
    ) -> Self {
        Self {
            lanes: lanes
                .map(|(vm, series, pattern, dropped_late)| {
                    (
                        vm,
                        FrozenLane {
                            series,
                            pattern,
                            dropped_late,
                        },
                    )
                })
                .collect(),
            report,
        }
    }

    /// The run's aggregate counters.
    #[must_use]
    pub fn report(&self) -> &IngestReport {
        &self.report
    }

    /// The streaming classification of `vm` at its last window close;
    /// `None` if the VM never classified (or never appeared).
    #[must_use]
    pub fn pattern(&self, vm: VmId) -> Option<UtilizationPattern> {
        self.lanes.get(&vm).and_then(|lane| lane.pattern)
    }

    /// `true` if at least one of `vm`'s samples arrived too late and
    /// was dropped — the only way a clean-ingest invariant can break,
    /// so any divergence from batch output must be inside this set.
    #[must_use]
    pub fn had_drops(&self, vm: VmId) -> bool {
        self.lanes
            .get(&vm)
            .is_some_and(|lane| lane.dropped_late > 0)
    }

    /// VMs with at least one late-dropped sample, ascending.
    pub fn vms_with_drops(&self) -> impl Iterator<Item = VmId> + '_ {
        self.lanes
            .iter()
            .filter(|(_, lane)| lane.dropped_late > 0)
            .map(|(&vm, _)| vm)
    }

    /// VMs that ever offered a sample, ascending.
    pub fn vms(&self) -> impl Iterator<Item = VmId> + '_ {
        self.lanes.keys().copied()
    }
}

impl TelemetrySource for IngestSession {
    fn load(&self, id: VmId) -> Option<UtilSeries> {
        self.lanes.get(&id)?.series.clone()
    }

    fn has(&self, id: VmId) -> bool {
        self.lanes
            .get(&id)
            .is_some_and(|lane| lane.series.is_some())
    }
}
