//! Property-based guarantees of the watermarked window state machine:
//! delivery order inside the watermark is irrelevant, and lateness is
//! always accounted, never silently applied.

use cloudscope_analysis::PatternClassifier;
use cloudscope_faults::WireSample;
use cloudscope_ingest::{IngestConfig, Ingestor, WindowClose};
use cloudscope_model::prelude::*;
use cloudscope_model::time::SAMPLE_INTERVAL_MINUTES;
use cloudscope_model::trace::TelemetrySource;
use proptest::prelude::*;

/// Maximum positional displacement (in samples) the jittered delivery
/// may introduce — strictly inside the watermark below.
const MAX_DISPLACEMENT: i64 = 3;

fn config() -> IngestConfig {
    IngestConfig {
        // Roomy enough that a MAX_DISPLACEMENT-late sample is still
        // inside the watermark when it arrives.
        watermark_delay_minutes: (MAX_DISPLACEMENT + 2) * SAMPLE_INTERVAL_MINUTES,
        ..IngestConfig::default()
    }
}

/// A base stream: one sample per slot `0..n`, values in percent.
fn base_stream(max_len: usize) -> impl Strategy<Value = Vec<WireSample>> {
    prop::collection::vec(0.0f64..100.0, 1..max_len).prop_map(|values| {
        values
            .into_iter()
            .enumerate()
            .map(|(slot, value)| WireSample {
                minute: slot as i64 * SAMPLE_INTERVAL_MINUTES,
                value: value as f32,
            })
            .collect()
    })
}

/// Runs a stream through an ingestor: at tick `i` the watermark clock
/// advances to `i` intervals, then every sample of group `i` is
/// offered. Returns the close summaries, the frozen series, and the
/// late-drop count.
fn run_stream(groups: &[Vec<WireSample>]) -> (Vec<WindowClose>, Option<UtilSeries>, u64) {
    let vm = VmId::new(1);
    let mut ingestor = Ingestor::new(config(), PatternClassifier::default());
    for (tick, group) in groups.iter().enumerate() {
        let now = SimTime::from_minutes(tick as i64 * SAMPLE_INTERVAL_MINUTES);
        let closes = ingestor.advance_watermark(now);
        assert!(closes.is_empty(), "no window boundary inside the week");
        for sample in group {
            ingestor.offer(vm, *sample);
        }
    }
    let closes = ingestor.drain(SimTime::WEEK_END);
    let dropped = ingestor.report().dropped_late;
    let session = ingestor.finish();
    (closes, session.load(vm), dropped)
}

proptest! {
    /// Any interleaving of late (bounded displacement), duplicated, and
    /// reordered deliveries inside the watermark yields *byte-identical*
    /// window state to the sorted clean stream: same reconstructed
    /// series, same close summary (mean, p95, coverage, ACF, pattern),
    /// and zero drops.
    #[test]
    fn in_watermark_interleavings_are_byte_identical(
        base in base_stream(64),
        jitter in prop::collection::vec(0i64..=MAX_DISPLACEMENT, 64),
        dup_mask in prop::collection::vec(any::<bool>(), 64),
    ) {
        // Displacement-bounded shuffle: sort by slot + jitter. A sample
        // sorted to tick `i` has slot `j >= i - MAX_DISPLACEMENT` (at
        // most j + MAX_DISPLACEMENT + 1 samples can precede it), so it
        // arrives late *and* reordered but strictly in-watermark.
        let mut shuffled: Vec<(i64, WireSample)> = base
            .iter()
            .enumerate()
            .map(|(i, s)| (i as i64 + jitter[i % jitter.len()], *s))
            .collect();
        shuffled.sort_by_key(|&(key, s)| (key, s.minute));
        // Duplicates: the fault model re-sends the delivered sample in
        // the same tick, so the copy carries an equal value and the
        // watermark clock is untouched.
        let delivered: Vec<Vec<WireSample>> = shuffled
            .iter()
            .enumerate()
            .map(|(i, &(_, sample))| {
                if dup_mask[i % dup_mask.len()] {
                    vec![sample, sample]
                } else {
                    vec![sample]
                }
            })
            .collect();
        let clean: Vec<Vec<WireSample>> = base.iter().map(|&s| vec![s]).collect();

        let (clean_closes, clean_series, clean_dropped) = run_stream(&clean);
        let (messy_closes, messy_series, messy_dropped) = run_stream(&delivered);

        prop_assert_eq!(clean_dropped, 0u64);
        prop_assert_eq!(messy_dropped, 0u64, "in-watermark deliveries must never drop");
        // Byte-identical series (UtilSeries equality compares the
        // quantized buffers) and identical close summaries.
        prop_assert_eq!(clean_series, messy_series);
        prop_assert_eq!(clean_closes, messy_closes);
    }

    /// A sample arriving after its slot sealed is counted in
    /// `dropped_late` (and in the flushed `ingest.dropped_late`
    /// metric) and never mutates sealed state — no matter its value.
    #[test]
    fn too_late_samples_are_counted_never_applied(
        base in base_stream(32),
        late_value in 0.0f64..100.0,
        late_slot_frac in 0.0f64..1.0,
    ) {
        use cloudscope_obs::testing::snapshot_diff;
        use std::sync::Arc;

        let vm = VmId::new(1);
        // Control: the same stream with no straggler.
        let mut control = Ingestor::new(config(), PatternClassifier::default());
        for sample in &base {
            control.offer(vm, *sample);
        }
        let clean = control
            .finish()
            .load(vm)
            .expect("non-empty stream must produce telemetry");

        let registry = Arc::new(cloudscope_obs::Registry::new());
        let ((), diff) = snapshot_diff(&registry, || {
            let mut ingestor = Ingestor::new(config(), PatternClassifier::default());
            for sample in &base {
                ingestor.offer(vm, *sample);
            }
            // Seal every offered slot: advance far past the last one.
            let horizon = (base.len() as i64 + MAX_DISPLACEMENT + 4) * SAMPLE_INTERVAL_MINUTES
                + config().watermark_delay_minutes;
            let _ = ingestor.advance_watermark(SimTime::from_minutes(horizon));

            // The straggler targets an already-sealed slot.
            let late_slot = ((base.len() - 1) as f64 * late_slot_frac) as i64;
            ingestor.offer(vm, WireSample {
                minute: late_slot * SAMPLE_INTERVAL_MINUTES,
                value: late_value as f32,
            });

            let report = ingestor.report();
            assert_eq!(report.dropped_late, 1, "straggler must be counted");
            assert_eq!(report.vms_with_drops, 1);
            let session = ingestor.finish();
            assert_eq!(
                session.load(vm).as_ref(),
                Some(&clean),
                "straggler must never mutate sealed state"
            );
            assert!(session.had_drops(vm));
        });
        prop_assert_eq!(diff.counter("ingest.dropped_late"), Some(1));
    }
}
