//! Calendar (bucket) event queue: O(1) scheduling and popping for the
//! trace week's integer-minute timestamps.
//!
//! [`crate::EventQueue`]'s `BinaryHeap` costs O(log n) per operation and
//! compares `(time, seq)` pairs on every sift. Trace generation schedules
//! hundreds of thousands of events whose times all land on whole minutes
//! inside one simulated week, so a calendar queue — one FIFO bucket per
//! minute of `[SimTime::ZERO, SimTime::WEEK_END]` — replaces the heap's
//! comparisons with array indexing.
//!
//! ## Tie-breaking
//!
//! Events at equal times pop in insertion order, exactly like
//! [`crate::EventQueue`]. Within a bucket that is literally append
//! order: the bucket granularity is a single minute and times are whole
//! minutes, so every entry of a bucket shares one timestamp and FIFO
//! needs no comparisons at all. (A coarser bucket — say the 5-minute
//! telemetry grid — would break this: a mid-drain insertion at an
//! earlier minute of the current bucket would have to pop before
//! already-buffered later-minute entries, forcing a sorted structure per
//! bucket. That is why the calendar deviates from the sampling grid and
//! buckets by minute.)
//!
//! ## Overflow
//!
//! Times outside the trace week — or behind an already-drained bucket,
//! which [`crate::Scheduler`]'s past-clamping makes unreachable in
//! simulation use but the public API permits — go to a small fallback
//! `BinaryHeap` with the same `(time, seq)` ordering. `pop` merges the
//! two structures by `(time, seq)`, so the queue behaves exactly like
//! the heap oracle for arbitrary schedules: the calendar is a fast
//! path, never a semantic change. (Ties across the two structures are
//! impossible by construction — an event is only diverted to overflow
//! when its minute can never host a calendar entry again — but the
//! merge compares the full `(time, seq)` key anyway.) The unit tests
//! drive this queue and the heap through identical random schedules and
//! assert identical pop streams.

use cloudscope_model::time::{SimTime, MINUTES_PER_WEEK};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// Bucket count: one per whole minute in `[0, MINUTES_PER_WEEK]`, both
/// ends inclusive so `SimTime::WEEK_END` itself stays on the fast path.
const BUCKETS: usize = MINUTES_PER_WEEK as usize + 1;

/// An event queue ordered by `(time, insertion order)`, served from
/// per-minute calendar buckets with a heap fallback for out-of-window
/// times. Drop-in replacement for [`crate::EventQueue`] over the trace
/// week; the heap stays available as the comparison oracle.
#[derive(Debug)]
pub struct CalendarQueue<E> {
    /// `buckets[m]` holds the events scheduled at minute `m`, in
    /// insertion order. All entries of one bucket share one timestamp,
    /// so `pop_front` is exactly the heap's `(time, seq)` order.
    buckets: Vec<VecDeque<(u64, E)>>,
    /// First bucket that may still hold pending entries; only ever
    /// advances.
    cursor: usize,
    /// Events outside the calendar window, ordered by `(time, seq)`.
    overflow: BinaryHeap<OverflowEntry<E>>,
    /// Next insertion sequence number (shared by both structures).
    seq: u64,
    /// Pending events across both structures.
    pending: usize,
    /// Lifetime insertion count, flushed to `sim.queue.scheduled`.
    scheduled_total: u64,
    /// Lifetime overflow insertions, flushed to
    /// `sim.queue.overflow_events`.
    overflow_total: u64,
}

#[derive(Debug)]
struct OverflowEntry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for OverflowEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for OverflowEntry<E> {}
impl<E> PartialOrd for OverflowEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for OverflowEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> CalendarQueue<E> {
    /// Creates an empty queue. The bucket array is allocated up front
    /// (one empty deque per minute of the week; deques allocate nothing
    /// until first use).
    #[must_use]
    pub fn new() -> Self {
        let mut buckets = Vec::with_capacity(BUCKETS);
        buckets.resize_with(BUCKETS, VecDeque::new);
        Self {
            buckets,
            cursor: 0,
            overflow: BinaryHeap::new(),
            seq: 0,
            pending: 0,
            scheduled_total: 0,
            overflow_total: 0,
        }
    }

    /// Creates an empty queue; `capacity` is accepted for signature
    /// parity with [`crate::EventQueue::with_capacity`] but unused —
    /// calendar buckets grow independently and amortize their own
    /// doubling.
    #[must_use]
    pub fn with_capacity(_capacity: usize) -> Self {
        Self::new()
    }

    /// Schedules `event` at `time`.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.pending += 1;
        self.scheduled_total += 1;
        let minutes = time.minutes();
        // A minute at or ahead of the cursor can still be drained in
        // order; anything else (out of window, or behind an exhausted
        // bucket) must merge through the overflow heap.
        if minutes >= self.cursor as i64 && minutes < BUCKETS as i64 {
            self.buckets[minutes as usize].push_back((seq, event));
        } else {
            self.overflow_total += 1;
            self.overflow.push(OverflowEntry { time, seq, event });
        }
    }

    /// Advances the cursor to the first non-empty bucket (if any).
    fn settle_cursor(&mut self) {
        while self.cursor < BUCKETS && self.buckets[self.cursor].is_empty() {
            self.cursor += 1;
        }
    }

    /// `(time, seq)` of the earliest calendar entry, if any.
    fn calendar_front(&mut self) -> Option<(SimTime, u64)> {
        self.settle_cursor();
        let &(seq, _) = self.buckets.get(self.cursor)?.front()?;
        Some((SimTime::from_minutes(self.cursor as i64), seq))
    }

    /// Removes and returns the earliest event; ties at one timestamp pop
    /// in insertion order.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let take_overflow = match (
            self.calendar_front(),
            self.overflow.peek().map(|e| (e.time, e.seq)),
        ) {
            (None, None) => return None,
            (Some(_), None) => false,
            (None, Some(_)) => true,
            (Some(cal), Some(ovf)) => ovf < cal,
        };
        self.pending -= 1;
        if take_overflow {
            let e = self.overflow.pop().expect("peeked");
            Some((e.time, e.event))
        } else {
            let time = SimTime::from_minutes(self.cursor as i64);
            let (_, event) = self.buckets[self.cursor].pop_front().expect("settled");
            Some((time, event))
        }
    }

    /// Time of the earliest event without removing it. Takes `&mut self`
    /// (unlike [`crate::EventQueue::peek_time`]) because peeking settles
    /// the bucket cursor.
    #[must_use]
    pub fn peek_time(&mut self) -> Option<SimTime> {
        let cal = self.calendar_front();
        let ovf = self.overflow.peek().map(|e| (e.time, e.seq));
        match (cal, ovf) {
            (None, None) => None,
            (Some((t, _)), None) | (None, Some((t, _))) => Some(t),
            (Some(c), Some(o)) => Some(c.min(o).0),
        }
    }

    /// Number of pending events.
    #[must_use]
    pub const fn len(&self) -> usize {
        self.pending
    }

    /// `true` if no events are pending.
    #[must_use]
    pub const fn is_empty(&self) -> bool {
        self.pending == 0
    }

    /// Lifetime count of scheduled events, for the `sim.queue.scheduled`
    /// metric (flushed once per [`crate::Simulation::run`]).
    #[must_use]
    pub const fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Lifetime count of events that missed the calendar window and went
    /// through the fallback heap (`sim.queue.overflow_events`). In
    /// simulation use this stays 0; a nonzero value flags schedules
    /// outside the trace week.
    #[must_use]
    pub const fn overflow_total(&self) -> u64 {
        self.overflow_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::splitmix64;
    use crate::EventQueue;

    #[test]
    fn pops_in_time_order() {
        let mut q = CalendarQueue::new();
        q.schedule(SimTime::from_hours(3), "c");
        q.schedule(SimTime::from_hours(1), "a");
        q.schedule(SimTime::from_hours(2), "b");
        assert_eq!(q.peek_time(), Some(SimTime::from_hours(1)));
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    /// The documented tie-break: equal timestamps pop in insertion
    /// order, including insertions made *while* the bucket is draining.
    #[test]
    fn equal_times_pop_fifo() {
        let mut q = CalendarQueue::new();
        let t = SimTime::from_hours(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..50 {
            assert_eq!(q.pop().unwrap().1, i);
        }
        // Mid-drain insertions at the same timestamp queue behind the
        // remaining 50, in their own insertion order.
        q.schedule(t, 100);
        q.schedule(t, 101);
        for i in (50..100).chain(100..102) {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn out_of_window_times_overflow_but_stay_ordered() {
        let mut q = CalendarQueue::new();
        q.schedule(SimTime::from_minutes(-30), "before-week");
        q.schedule(
            SimTime::WEEK_END + cloudscope_model::time::SimDuration::HOUR,
            "after-week",
        );
        q.schedule(SimTime::from_hours(1), "in-week");
        assert_eq!(q.overflow_total(), 2);
        assert_eq!(q.scheduled_total(), 3);
        assert_eq!(q.pop().unwrap().1, "before-week");
        assert_eq!(q.pop().unwrap().1, "in-week");
        assert_eq!(q.pop().unwrap().1, "after-week");
    }

    #[test]
    fn insertion_behind_cursor_falls_back_to_overflow() {
        let mut q = CalendarQueue::new();
        q.schedule(SimTime::from_hours(2), "first");
        assert_eq!(q.pop().unwrap().1, "first");
        // Minute 0 is behind the drained cursor now.
        q.schedule(SimTime::ZERO, "late");
        q.schedule(SimTime::from_hours(3), "next");
        assert_eq!(q.overflow_total(), 1);
        // The late event still pops first: overflow merges by time.
        assert_eq!(q.pop().unwrap(), (SimTime::ZERO, "late"));
        assert_eq!(q.pop().unwrap().1, "next");
    }

    /// Oracle test: random interleaved schedules and pops must produce
    /// the identical stream from the calendar and from the binary heap.
    #[test]
    fn matches_heap_oracle_on_random_schedules() {
        let mut state = 0x00c0_ffee_u64;
        let mut rng = move || splitmix64(&mut state);
        for round in 0..20 {
            let mut cal = CalendarQueue::new();
            let mut heap = EventQueue::new();
            for i in 0..500u32 {
                if rng() % 4 == 0 {
                    assert_eq!(cal.pop(), heap.pop(), "round {round}");
                } else {
                    // Mostly in-week minutes, some duplicates, a few
                    // out-of-window stragglers.
                    let m = match rng() % 10 {
                        0 => -(i64::try_from(rng() % 100).unwrap()),
                        1 => MINUTES_PER_WEEK + (rng() % 100) as i64,
                        _ => (rng() % (MINUTES_PER_WEEK as u64 / 16)) as i64,
                    };
                    let t = SimTime::from_minutes(m);
                    cal.schedule(t, i);
                    heap.schedule(t, i);
                }
                assert_eq!(cal.len(), heap.len());
                assert_eq!(cal.peek_time(), heap.peek_time());
            }
            while let Some(got) = cal.pop() {
                assert_eq!(Some(got), heap.pop(), "round {round} drain");
            }
            assert!(heap.pop().is_none());
        }
    }
}
