//! The full characterization report: runs every figure's analysis over a
//! trace and distils the paper's four insights.

use crate::correlation::{node_vm_correlation_cdf, region_pair_correlation_cdf};
use crate::deployment::DeploymentSizeAnalysis;
use crate::error::AnalysisError;
use crate::patterns::{pattern_shares, PatternClassifier, PatternShares, UtilizationPattern};
use crate::spatial::SpatialAnalysis;
use crate::temporal::TemporalAnalysis;
use crate::utilization::UtilizationDistribution;
use crate::vmsize::VmSizeAnalysis;
use cloudscope_model::prelude::*;
use cloudscope_stats::Ecdf;

/// Work limits for a report run: the full pipeline touches every VM, so
/// the heavyweight per-VM analyses are stride-sampled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportConfig {
    /// Snapshot time for the deployment-size analyses (Fig 1).
    pub snapshot: SimTime,
    /// Region used for the Fig 3(b)/(c) sample curves.
    pub sample_region: RegionId,
    /// Geography tag for the cross-region study (Fig 7(b)).
    pub geo: String,
    /// Cap on VMs classified per cloud (Fig 5).
    pub max_classified_vms: usize,
    /// Cap on VMs aggregated into utilization bands (Fig 6).
    pub max_band_vms: usize,
    /// Cap on nodes examined for node-level correlation (Fig 7(a)).
    pub max_nodes: usize,
}

// Manual impl: `geo` is a String, so the struct cannot be Copy; keep the
// derive list honest.
impl Default for ReportConfig {
    fn default() -> Self {
        Self {
            // Wednesday 14:00 UTC: an ordinary weekday afternoon.
            snapshot: SimTime::from_minutes(2 * 24 * 60 + 14 * 60),
            sample_region: RegionId::new(0),
            geo: "US".to_owned(),
            max_classified_vms: 4000,
            max_band_vms: 3000,
            max_nodes: 1500,
        }
    }
}

/// Everything the paper's evaluation section reports, for one trace.
#[derive(Debug, Clone)]
pub struct CharacterizationReport {
    /// Figure 1.
    pub deployment: DeploymentSizeAnalysis,
    /// Figure 2.
    pub vm_size: VmSizeAnalysis,
    /// Figure 3.
    pub temporal: TemporalAnalysis,
    /// Figure 4.
    pub spatial: SpatialAnalysis,
    /// Figure 5(d), private cloud.
    pub private_patterns: PatternShares,
    /// Figure 5(d), public cloud.
    pub public_patterns: PatternShares,
    /// Figure 6(a)/(c), private cloud.
    pub private_utilization: UtilizationDistribution,
    /// Figure 6(b)/(d), public cloud.
    pub public_utilization: UtilizationDistribution,
    /// Figure 7(a): node-level correlation CDFs (private, public).
    pub node_correlation: (Ecdf, Ecdf),
    /// Figure 7(b): cross-region correlation CDFs (private, public).
    pub region_correlation: (Ecdf, Ecdf),
}

impl CharacterizationReport {
    /// Runs the full pipeline.
    ///
    /// # Errors
    /// Returns the first analysis error (typically [`AnalysisError::NoData`]
    /// when the trace lacks a population the paper's figures need).
    pub fn analyze(trace: &Trace, config: &ReportConfig) -> Result<Self, AnalysisError> {
        let classifier = PatternClassifier::default();
        // One child span per figure family, so a metrics snapshot shows
        // where analysis wall time went.
        let report_span = cloudscope_obs::span("analysis.report");
        let deployment = {
            let _s = report_span.child("deployment");
            DeploymentSizeAnalysis::run(trace, config.snapshot)?
        };
        let vm_size = {
            let _s = report_span.child("vm_size");
            VmSizeAnalysis::run(trace)?
        };
        let temporal = {
            let _s = report_span.child("temporal");
            TemporalAnalysis::run(trace, config.sample_region)?
        };
        let spatial = {
            let _s = report_span.child("spatial");
            SpatialAnalysis::run(trace)?
        };
        let (private_patterns, public_patterns) = {
            let _s = report_span.child("patterns");
            (
                pattern_shares(
                    trace,
                    CloudKind::Private,
                    &classifier,
                    config.max_classified_vms,
                )?,
                pattern_shares(
                    trace,
                    CloudKind::Public,
                    &classifier,
                    config.max_classified_vms,
                )?,
            )
        };
        let (private_utilization, public_utilization) = {
            let _s = report_span.child("utilization");
            (
                UtilizationDistribution::run(trace, CloudKind::Private, config.max_band_vms)?,
                UtilizationDistribution::run(trace, CloudKind::Public, config.max_band_vms)?,
            )
        };
        let (node_correlation, region_correlation) = {
            let _s = report_span.child("correlation");
            (
                (
                    node_vm_correlation_cdf(trace, CloudKind::Private, config.max_nodes)?,
                    node_vm_correlation_cdf(trace, CloudKind::Public, config.max_nodes)?,
                ),
                (
                    region_pair_correlation_cdf(trace, CloudKind::Private, &config.geo)?,
                    region_pair_correlation_cdf(trace, CloudKind::Public, &config.geo)?,
                ),
            )
        };
        Ok(Self {
            deployment,
            vm_size,
            temporal,
            spatial,
            private_patterns,
            public_patterns,
            private_utilization,
            public_utilization,
            node_correlation,
            region_correlation,
        })
    }

    /// Checks the paper's four insights against this report, returning a
    /// human-readable verdict per insight (`(holds, description)`).
    #[must_use]
    pub fn insight_verdicts(&self) -> Vec<(bool, String)> {
        let mut verdicts = Vec::new();

        // Insight 1: larger private deployments; more diverse public
        // clusters.
        let i1 = self.deployment.private_vms_per_subscription.median()
            > self.deployment.public_vms_per_subscription.median()
            && self.deployment.subscriptions_per_cluster_ratio > 1.0
            && self.vm_size.public_corner_mass > self.vm_size.private_corner_mass;
        verdicts.push((
            i1,
            format!(
                "Insight 1: private deployments larger (median {} vs {} VMs/subscription); \
                 public clusters host {:.1}x subscriptions; corner-size mass {:.3} vs {:.3}",
                self.deployment.private_vms_per_subscription.median(),
                self.deployment.public_vms_per_subscription.median(),
                self.deployment.subscriptions_per_cluster_ratio,
                self.vm_size.public_corner_mass,
                self.vm_size.private_corner_mass,
            ),
        ));

        // Insight 2: private deployment bursty (higher CV), public more
        // short-lived and regular.
        let i2 = self.temporal.creation_cv.0.median > self.temporal.creation_cv.1.median
            && self.temporal.public_short_fraction > self.temporal.private_short_fraction;
        verdicts.push((
            i2,
            format!(
                "Insight 2: creation CV median {:.2} (private) vs {:.2} (public); \
                 shortest-bin lifetimes {:.0}% vs {:.0}%",
                self.temporal.creation_cv.0.median,
                self.temporal.creation_cv.1.median,
                100.0 * self.temporal.private_short_fraction,
                100.0 * self.temporal.public_short_fraction,
            ),
        ));

        // Insight 3: diurnal dominates both; hourly-peak mostly private;
        // stable share higher in public.
        let p = &self.private_patterns;
        let q = &self.public_patterns;
        let i3 = p.fraction(UtilizationPattern::Diurnal) > q.fraction(UtilizationPattern::Diurnal)
            && p.fraction(UtilizationPattern::HourlyPeak)
                > q.fraction(UtilizationPattern::HourlyPeak)
            && q.fraction(UtilizationPattern::Stable) > p.fraction(UtilizationPattern::Stable);
        verdicts.push((
            i3,
            format!(
                "Insight 3: diurnal {:.0}%/{:.0}%, stable {:.0}%/{:.0}%, hourly-peak \
                 {:.0}%/{:.0}% (private/public)",
                100.0 * p.fraction(UtilizationPattern::Diurnal),
                100.0 * q.fraction(UtilizationPattern::Diurnal),
                100.0 * p.fraction(UtilizationPattern::Stable),
                100.0 * q.fraction(UtilizationPattern::Stable),
                100.0 * p.fraction(UtilizationPattern::HourlyPeak),
                100.0 * q.fraction(UtilizationPattern::HourlyPeak),
            ),
        ));

        // Insight 4: higher node-level and region-level similarity in
        // the private cloud.
        let i4 = self.node_correlation.0.median() > self.node_correlation.1.median()
            && self.region_correlation.0.median() > self.region_correlation.1.median();
        verdicts.push((
            i4,
            format!(
                "Insight 4: node-level correlation median {:.2} vs {:.2}; cross-region \
                 median {:.2} vs {:.2} (private/public)",
                self.node_correlation.0.median(),
                self.node_correlation.1.median(),
                self.region_correlation.0.median(),
                self.region_correlation.1.median(),
            ),
        ));

        verdicts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::tiny_trace;

    #[test]
    fn full_report_on_tiny_trace() {
        let trace = tiny_trace();
        let config = ReportConfig {
            snapshot: SimTime::from_hours(24),
            ..ReportConfig::default()
        };
        let report = CharacterizationReport::analyze(&trace, &config).unwrap();
        let verdicts = report.insight_verdicts();
        assert_eq!(verdicts.len(), 4);
        // Insight 4 must hold even on the miniature trace.
        assert!(verdicts[3].0, "{}", verdicts[3].1);
        // Descriptions mention concrete numbers.
        assert!(verdicts[0].1.contains("Insight 1"));
    }

    #[test]
    fn default_config_is_sane() {
        let c = ReportConfig::default();
        assert!(c.snapshot.in_trace_week());
        assert!(!c.snapshot.is_weekend());
        assert!(c.max_classified_vms > 0);
    }
}
