//! Collection strategies: `prop::collection::vec`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Length specifications accepted by [`vec`]: a fixed size or a
/// (half-open or inclusive) range of sizes.
pub trait SizeRange {
    /// Picks a length.
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for std::ops::Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty vec length range");
        self.start + (rng.next_u64() % (self.end - self.start) as u64) as usize
    }
}

impl SizeRange for std::ops::RangeInclusive<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty vec length range");
        lo + (rng.next_u64() % (hi - lo + 1) as u64) as usize
    }
}

/// Strategy generating `Vec`s whose elements come from `element` and whose
/// length comes from `size`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S, R> {
    element: S,
    size: R,
}

impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates vectors of `element`-generated values with lengths in `size`.
pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
    VecStrategy { element, size }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_lengths_and_elements_in_range() {
        let mut rng = TestRng::for_test("vec");
        let s = vec(-1.0f64..1.0, 3..10);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((3..10).contains(&v.len()));
            assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
        }
        let fixed = vec(0u32..5, 24..=24).generate(&mut rng);
        assert_eq!(fixed.len(), 24);
    }
}
