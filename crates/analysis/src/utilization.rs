//! CPU-utilization distribution analyses (Figure 6): percentile bands
//! across the VM population, over the week and folded into a day.

use crate::coverage::filled_week_series;
use crate::error::AnalysisError;
use cloudscope_model::prelude::*;
use cloudscope_model::time::SAMPLE_INTERVAL_MINUTES;
use cloudscope_stats::percentile::FIGURE6_LEVELS;
use cloudscope_timeseries::{daily_profile, PercentileBands, Series};

/// A VM must cover at least this fraction of the week's slots to join
/// the band population. High enough to keep the population semantics of
/// "VMs that span the whole week", tolerant enough that realistic sample
/// loss (a few percent plus a blackout window) does not empty the figure.
pub const MIN_VM_WEEK_COVERAGE: f64 = 0.88;

/// Below this mean coverage across the included VMs the bands are
/// considered untrustworthy and [`UtilizationDistribution::run`] degrades
/// to [`AnalysisError::InsufficientData`].
pub const MIN_POPULATION_COVERAGE: f64 = 0.75;

/// Collects the hourly-resolution utilization series of up to `max_vms`
/// VMs of one cloud whose telemetry covers (almost all of) the week,
/// with gaps repaired. Returns the series and the mean pre-fill
/// coverage.
fn full_week_hourly_series(
    trace: &Trace,
    source: &(impl TelemetrySource + ?Sized),
    cloud: CloudKind,
    max_vms: usize,
) -> (Vec<Series>, f64) {
    // Pass 1 keeps only (id, coverage) per eligible VM — the filled
    // week vectors are dropped immediately, so memory stays O(eligible
    // VMs), not O(eligible VMs × week length). Pass 2 re-derives the
    // series for just the strided selection; on an out-of-core trace
    // that means streaming the telemetry twice instead of ever
    // materializing every series at once.
    let candidates: Vec<(VmId, f64)> = trace
        .vms_of(cloud)
        .filter_map(|vm| {
            let util = source.load(vm.id)?;
            filled_week_series(&util, MIN_VM_WEEK_COVERAGE).map(|(_, cov)| (vm.id, cov))
        })
        .collect();
    let stride = (candidates.len() / max_vms.max(1)).max(1);
    let mut coverage_sum = 0.0;
    let series: Vec<Series> = candidates
        .into_iter()
        .step_by(stride)
        .take(max_vms)
        .map(|(id, cov)| {
            coverage_sum += cov;
            let util = source.load(id).expect("eligible in pass 1");
            let (values, _) =
                filled_week_series(&util, MIN_VM_WEEK_COVERAGE).expect("eligible in pass 1");
            Series::new(0, SAMPLE_INTERVAL_MINUTES, values)
                .downsample_mean(12)
                .expect("positive factor")
        })
        .collect();
    let mean_coverage = if series.is_empty() {
        0.0
    } else {
        coverage_sum / series.len() as f64
    };
    (series, mean_coverage)
}

/// The Figure 6 bundle for one cloud.
#[derive(Debug, Clone, PartialEq)]
pub struct UtilizationDistribution {
    /// Fig 6(a)/(b): percentile bands over the week (hourly resolution).
    pub weekly: PercentileBands,
    /// Fig 6(c)/(d): percentile bands over the folded day (hourly).
    pub daily: PercentileBands,
    /// Number of VMs the bands aggregate.
    pub vms: usize,
    /// Mean pre-fill week coverage of the aggregated VMs, in `[0, 1]` —
    /// how much measured (rather than interpolated) data backs the bands.
    pub coverage: f64,
}

impl UtilizationDistribution {
    /// Computes the weekly and daily utilization bands for `cloud` from
    /// up to `max_vms` week-covering telemetry series. Gap-bearing
    /// series participate as long as they cover at least
    /// [`MIN_VM_WEEK_COVERAGE`] of the week; their gaps are linearly
    /// interpolated before banding and the achieved mean coverage is
    /// reported in [`UtilizationDistribution::coverage`].
    ///
    /// # Errors
    /// - [`AnalysisError::NoData`] if no VM covers enough of the week.
    /// - [`AnalysisError::InsufficientData`] if VMs qualified but their
    ///   mean coverage falls below [`MIN_POPULATION_COVERAGE`].
    pub fn run(trace: &Trace, cloud: CloudKind, max_vms: usize) -> Result<Self, AnalysisError> {
        Self::run_from(trace, trace, cloud, max_vms)
    }

    /// [`UtilizationDistribution::run`] with telemetry decoupled from VM
    /// metadata: `trace` enumerates the population, `source` serves the
    /// samples (resident, out-of-core, or streamed).
    ///
    /// # Errors
    /// Same as [`UtilizationDistribution::run`].
    pub fn run_from(
        trace: &Trace,
        source: &(impl TelemetrySource + ?Sized),
        cloud: CloudKind,
        max_vms: usize,
    ) -> Result<Self, AnalysisError> {
        let (hourly, coverage) = full_week_hourly_series(trace, source, cloud, max_vms);
        if hourly.is_empty() {
            return Err(AnalysisError::NoData("full-week telemetry"));
        }
        if coverage < MIN_POPULATION_COVERAGE {
            return Err(AnalysisError::InsufficientData {
                what: "figure 6 utilization bands",
                coverage,
                required: MIN_POPULATION_COVERAGE,
            });
        }
        let refs: Vec<&Series> = hourly.iter().collect();
        let weekly = PercentileBands::across(&refs, &FIGURE6_LEVELS)?;

        let daily_profiles: Vec<Series> = hourly
            .iter()
            .map(|s| Series::new(0, 60, daily_profile(s).expect("hourly divides a day")))
            .collect();
        let daily_refs: Vec<&Series> = daily_profiles.iter().collect();
        let daily = PercentileBands::across(&daily_refs, &FIGURE6_LEVELS)?;

        Ok(Self {
            weekly,
            daily,
            vms: hourly.len(),
            coverage,
        })
    }

    /// Maximum of the 75th-percentile band over the week — the paper
    /// observes it stays below 30% in both clouds.
    #[must_use]
    pub fn p75_peak(&self) -> f64 {
        self.weekly
            .band(75.0)
            .map_or(0.0, |b| b.iter().cloned().fold(0.0, f64::max))
    }

    /// Standard deviation of the daily median band over the day: high
    /// for a working-hours shape (private), near zero for a flat profile
    /// (public).
    #[must_use]
    pub fn daily_median_variability(&self) -> f64 {
        self.daily.median_band_std()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::tiny_trace;

    #[test]
    fn bands_have_expected_shape() {
        let trace = tiny_trace();
        let private = UtilizationDistribution::run(&trace, CloudKind::Private, 100).unwrap();
        assert_eq!(private.vms, 6);
        assert_eq!(private.weekly.bands[0].len(), 168);
        assert_eq!(private.daily.bands[0].len(), 24);
        // Bands are ordered.
        let p25 = private.weekly.band(25.0).unwrap();
        let p75 = private.weekly.band(75.0).unwrap();
        assert!(p25.iter().zip(p75).all(|(a, b)| a <= b));
    }

    #[test]
    fn private_daily_profile_varies_more_than_stable_public() {
        let trace = tiny_trace();
        let private = UtilizationDistribution::run(&trace, CloudKind::Private, 100).unwrap();
        let public = UtilizationDistribution::run(&trace, CloudKind::Public, 100).unwrap();
        // Private VMs are all diurnal; the public population is
        // stable-dominated, so its median band is flatter.
        assert!(
            private.daily_median_variability() > 1.3 * public.daily_median_variability(),
            "private {} vs public {}",
            private.daily_median_variability(),
            public.daily_median_variability()
        );
    }

    #[test]
    fn max_vms_caps_population() {
        let trace = tiny_trace();
        let d = UtilizationDistribution::run(&trace, CloudKind::Private, 3).unwrap();
        assert!(d.vms <= 3);
    }

    #[test]
    fn p75_peak_reported() {
        let trace = tiny_trace();
        let d = UtilizationDistribution::run(&trace, CloudKind::Public, 100).unwrap();
        assert!(d.p75_peak() > 0.0);
        assert!(d.p75_peak() <= 100.0);
    }

    #[test]
    fn clean_trace_reports_full_coverage() {
        let trace = tiny_trace();
        let d = UtilizationDistribution::run(&trace, CloudKind::Private, 100).unwrap();
        assert!((d.coverage - 1.0).abs() < 1e-9);
    }
}
